package pka_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"pka"
	"pka/internal/contingency"
	"pka/internal/stats"
	"pka/internal/synth"
)

// TestWideSchemaEndToEnd proves the multi-word representation end to end:
// a schema far past the old single-word 64-attribute ceiling (520
// attributes; 200 under the race detector — see wide_scale_test.go) is
// sampled without materializing any joint, discovered with the pairwise +
// conditional-independence screens, fit through the factored engine,
// snapshotted, round-tripped, and served over HTTP with answers checked
// against the exact ground-truth conditionals.
func TestWideSchemaEndToEnd(t *testing.T) {
	const (
		nPairs = wideE2EPairs
		rows   = wideE2ERows
	)
	truth, err := synth.WidePairs(nPairs, 3)
	if err != nil {
		t.Fatalf("WidePairs: %v", err)
	}
	tab, err := truth.SampleSparse(stats.NewRNG(99), rows)
	if err != nil {
		t.Fatalf("SampleSparse: %v", err)
	}
	if got := tab.KeyWords(); got < 2 {
		t.Fatalf("%d binary attributes pack into %d key words, want >= 2 (multi-word path)", 2*nPairs, got)
	}
	model, err := pka.DiscoverSparse(tab, truth.Schema(), pka.Options{
		MaxOrder:       2,
		ScreenPairs:    true,
		ScreenCI:       true,
		MaxConstraints: wideE2EMaxConstraints,
	})
	if err != nil {
		t.Fatalf("DiscoverSparse: %v", err)
	}
	info := model.Info()
	if info.Attributes != 2*nPairs {
		t.Fatalf("model has %d attributes, want %d", info.Attributes, 2*nPairs)
	}
	rep := model.Screen()
	if rep == nil {
		t.Fatalf("no screen report")
	}
	if rep.PairsTotal != (2*nPairs)*(2*nPairs-1)/2 {
		t.Errorf("screen surveyed %d pairs, want %d", rep.PairsTotal, (2*nPairs)*(2*nPairs-1)/2)
	}
	if rep.CIAlpha == 0 {
		t.Errorf("screen report does not record the CI pass: %+v", rep)
	}

	// Structure: every accepted order >= 2 family must be a planted pair.
	planted := make(map[contingency.VarSet]bool, nPairs)
	for _, fam := range truth.Planted() {
		planted[fam] = true
	}
	recovered := make(map[contingency.VarSet]bool)
	for _, f := range model.Findings() {
		fam := f.Constraint.Family
		if fam.Len() < 2 {
			continue
		}
		if !planted[fam] {
			t.Errorf("discovery promoted a non-planted family %v", fam.Members())
			continue
		}
		recovered[fam] = true
	}
	if len(recovered) < wideE2EMinRecovered {
		t.Fatalf("only %d planted pairs recovered under the constraint cap, want >= %d", len(recovered), wideE2EMinRecovered)
	}

	// Snapshot round-trip: binary save must reload as an equivalent model.
	var snap bytes.Buffer
	if err := model.SaveSnapshot(&snap); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, err := pka.LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	// Save -> Load -> Save must be byte-stable at the new format version.
	reloaded, err := pka.LoadModelSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("LoadModelSnapshot: %v", err)
	}
	var snap2 bytes.Buffer
	if err := reloaded.SaveSnapshot(&snap2); err != nil {
		t.Fatalf("re-SaveSnapshot: %v", err)
	}
	if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
		t.Errorf("wide snapshot is not byte-stable across a round trip (%d vs %d bytes)",
			snap.Len(), snap2.Len())
	}

	// Serve the loaded snapshot and check answers against the exact
	// ground-truth conditionals of recovered pairs. With both first-order
	// marginals and a pair cell pinned, the fitted 2x2 block reproduces the
	// empirical pair joint, so the tolerance is pure sampling error.
	srv := httptest.NewServer(pka.NewServer(loaded))
	defer srv.Close()
	checked := 0
	for i := 0; i < nPairs && checked < wideE2ECheckPairs; i++ {
		if !recovered[contingency.NewVarSet(2*i, 2*i+1)] {
			continue
		}
		checked++
		left := fmt.Sprintf("W%04d", 2*i)
		right := fmt.Sprintf("W%04d", 2*i+1)
		want := truth.PairCond(i, 1, 1)

		got, err := loaded.Conditional(
			[]pka.Assignment{{Attr: right, Value: "1"}},
			[]pka.Assignment{{Attr: left, Value: "1"}},
		)
		if err != nil {
			t.Fatalf("Conditional(%s|%s): %v", right, left, err)
		}
		if math.Abs(got-want) > 0.08 {
			t.Errorf("pair %d: served conditional %g, ground truth %g", i, got, want)
		}

		body := fmt.Sprintf(`{"kind":"conditional","target":[{"attr":%q,"value":"1"}],"given":[{"attr":%q,"value":"1"}]}`,
			right, left)
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST /v1/query: %v", err)
		}
		var out struct {
			Probability float64 `json:"probability"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding query response: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		if math.Abs(out.Probability-got) > 1e-12 {
			t.Errorf("HTTP answer %g differs from direct answer %g", out.Probability, got)
		}
	}
	if checked < wideE2ECheckPairs {
		t.Errorf("only %d recovered pairs checked, want %d", checked, wideE2ECheckPairs)
	}
}
