package pka_test

import (
	"math"
	"testing"

	"pka"
	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/stats"
)

// TestIntegrationWideSparsePipeline exercises the wide-schema workflow: 24
// binary attributes (dense space 16.7M cells) are tabulated sparsely, an
// analyst projects onto a candidate subset, and discovery runs on the dense
// projection.
func TestIntegrationWideSparsePipeline(t *testing.T) {
	const r = 24
	attrs := make([]pka.Attribute, r)
	for i := range attrs {
		attrs[i] = pka.Attribute{
			Name:   attrName(i),
			Values: []string{"lo", "hi"},
		}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := pka.NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Generate records where attribute 3 drives attribute 17 strongly and
	// everything else is independent noise.
	rng := stats.NewRNG(404)
	cell := make([]int, r)
	const n = 30000
	for s := 0; s < n; s++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.85 {
			cell[17] = cell[3]
		}
		if err := sparse.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	if sparse.Total() != n {
		t.Fatalf("sparse total = %d", sparse.Total())
	}

	// Project the suspected trio (3, 17, plus a control attribute 9).
	proj, err := sparse.Project(contingency.NewVarSet(3, 9, 17))
	if err != nil {
		t.Fatal(err)
	}
	subSchema, err := pka.NewSchema([]pka.Attribute{
		attrs[3], attrs[9], attrs[17],
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverTable(proj, subSchema, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 3↔17 coupling (positions 0 and 2 in the projection) must be the
	// only structure found.
	want := contingency.NewVarSet(0, 2)
	found := false
	for _, f := range model.Findings() {
		if f.Order != 2 {
			continue
		}
		if f.Test.Family != want {
			t.Errorf("spurious family %v", f.Test.Family)
			continue
		}
		found = true
	}
	if !found {
		t.Error("planted coupling not found in projection")
	}
	// And the conditional strength is recovered: P(a17=hi | a3=hi) ≈
	// 0.85 + 0.15·0.5 = 0.925.
	p, err := model.Conditional(
		[]pka.Assignment{{Attr: attrName(17), Value: "hi"}},
		[]pka.Assignment{{Attr: attrName(3), Value: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.925) > 0.02 {
		t.Errorf("P(17=hi|3=hi) = %.3f, want ≈0.925", p)
	}
}

func attrName(i int) string {
	return "SENSOR_" + string(rune('A'+i))
}

// TestIntegrationSparseVsDenseAgreement: on a space small enough for both,
// the sparse-projection path and the direct dense path find identical
// structure.
func TestIntegrationSparseVsDenseAgreement(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"0", "1"}},
		{Name: "Y", Values: []string{"0", "1", "2"}},
		{Name: "Z", Values: []string{"0", "1"}},
	})
	d := dataset.NewDataset(schema)
	rng := stats.NewRNG(7)
	for s := 0; s < 5000; s++ {
		x := rng.Intn(2)
		y := rng.Intn(3)
		z := x
		if rng.Float64() < 0.2 {
			z = 1 - x
		}
		if err := d.Append(dataset.Record{x, y, z}); err != nil {
			t.Fatal(err)
		}
	}
	dense, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := d.TabulateSparse()
	if err != nil {
		t.Fatal(err)
	}
	fromSparse, err := sparse.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	mDense, err := pka.DiscoverTable(dense, schema, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mSparse, err := pka.DiscoverTable(fromSparse, schema, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, fs := mDense.Findings(), mSparse.Findings()
	if len(fd) != len(fs) {
		t.Fatalf("dense found %d, sparse-path %d", len(fd), len(fs))
	}
	for i := range fd {
		if fd[i].Test.Family != fs[i].Test.Family || fd[i].Test.Delta != fs[i].Test.Delta {
			t.Errorf("finding %d differs between paths", i)
		}
	}
}
