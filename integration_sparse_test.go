package pka_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"pka"
	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/paperdata"
	"pka/internal/stats"
)

// TestIntegrationWideSparsePipeline exercises the wide-schema workflow end
// to end: 24 binary attributes (dense space 16.7M cells) are tabulated
// sparsely and discovery runs on the sparse table directly — screened,
// factored, and without ever materializing the joint space.
func TestIntegrationWideSparsePipeline(t *testing.T) {
	const r = 24
	attrs := make([]pka.Attribute, r)
	for i := range attrs {
		attrs[i] = pka.Attribute{
			Name:   attrName(i),
			Values: []string{"lo", "hi"},
		}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := pka.NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Generate records where attribute 3 drives attribute 17 strongly and
	// everything else is independent noise.
	rng := stats.NewRNG(404)
	cell := make([]int, r)
	const n = 30000
	for s := 0; s < n; s++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.85 {
			cell[17] = cell[3]
		}
		if err := sparse.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	if sparse.Total() != n {
		t.Fatalf("sparse total = %d", sparse.Total())
	}

	// Discovery runs on the full 24-attribute table: the association
	// screen bounds the order-2 scan to the pairs that associate.
	model, err := pka.DiscoverSparse(sparse, schema, pka.Options{
		MaxOrder:    2,
		ScreenPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := model.Screen()
	if rep == nil {
		t.Fatal("no screen report despite ScreenPairs")
	}
	if rep.PairsTotal != r*(r-1)/2 {
		t.Errorf("screen surveyed %d pairs, want %d", rep.PairsTotal, r*(r-1)/2)
	}
	if rep.PairsKept < 1 || rep.PairsKept > 5 {
		t.Errorf("screen kept %d pairs, want the planted coupling and little else", rep.PairsKept)
	}

	// The 3↔17 coupling must be found, and nothing else.
	want := contingency.NewVarSet(3, 17)
	found := false
	for _, f := range model.Findings() {
		if f.Order != 2 {
			continue
		}
		if f.Test.Family != want {
			t.Errorf("spurious family %v", f.Test.Family)
			continue
		}
		found = true
	}
	if !found {
		t.Error("planted coupling not found by sparse discovery")
	}
	// And the conditional strength is recovered, queried on the full
	// 24-attribute model: P(a17=hi | a3=hi) ≈ 0.85 + 0.15·0.5 = 0.925.
	p, err := model.Conditional(
		[]pka.Assignment{{Attr: attrName(17), Value: "hi"}},
		[]pka.Assignment{{Attr: attrName(3), Value: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.925) > 0.02 {
		t.Errorf("P(17=hi|3=hi) = %.3f, want ≈0.925", p)
	}
	// Holdout-style validation also runs sparsely.
	loss, err := model.LogLossSparse(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(loss, 1) || loss <= 0 {
		t.Errorf("sparse log loss = %v", loss)
	}
}

func attrName(i int) string {
	return "SENSOR_" + string(rune('A'+i))
}

// TestIntegrationSparseVsDenseAgreement: on a space small enough for both,
// the sparse-projection path and the direct dense path find identical
// structure.
func TestIntegrationSparseVsDenseAgreement(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"0", "1"}},
		{Name: "Y", Values: []string{"0", "1", "2"}},
		{Name: "Z", Values: []string{"0", "1"}},
	})
	d := dataset.NewDataset(schema)
	rng := stats.NewRNG(7)
	for s := 0; s < 5000; s++ {
		x := rng.Intn(2)
		y := rng.Intn(3)
		z := x
		if rng.Float64() < 0.2 {
			z = 1 - x
		}
		if err := d.Append(dataset.Record{x, y, z}); err != nil {
			t.Fatal(err)
		}
	}
	dense, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := d.TabulateSparse()
	if err != nil {
		t.Fatal(err)
	}
	fromSparse, err := sparse.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	mDense, err := pka.DiscoverTable(dense, schema, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mSparse, err := pka.DiscoverTable(fromSparse, schema, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, fs := mDense.Findings(), mSparse.Findings()
	if len(fd) != len(fs) {
		t.Fatalf("dense found %d, sparse-path %d", len(fd), len(fs))
	}
	for i := range fd {
		if fd[i].Test.Family != fs[i].Test.Family || fd[i].Test.Delta != fs[i].Test.Delta {
			t.Errorf("finding %d differs between paths", i)
		}
	}
}

// TestDiscoverSparseDenseBitIdentical is the equivalence guarantee of the
// new path: with screening off, DiscoverSparse on FromDense(table) must
// reproduce dense Discover on the same counts bit for bit — every finding
// (statistics included) and every query answer.
func TestDiscoverSparseDenseBitIdentical(t *testing.T) {
	run := func(t *testing.T, table *pka.Table, schema *pka.Schema) {
		t.Helper()
		sp, err := contingency.FromDense(table)
		if err != nil {
			t.Fatal(err)
		}
		mDense, err := pka.DiscoverTable(table, schema, pka.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mSparse, err := pka.DiscoverSparse(sp, schema, pka.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mDense.Findings(), mSparse.Findings()) {
			t.Errorf("findings differ:\ndense:  %+v\nsparse: %+v",
				mDense.Findings(), mSparse.Findings())
		}
		// Every full-joint cell probability must agree exactly.
		r := schema.R()
		assign := make([]pka.Assignment, r)
		var walk func(i int)
		walk = func(i int) {
			if i == r {
				pd, err := mDense.Probability(assign...)
				if err != nil {
					t.Fatal(err)
				}
				ps, err := mSparse.Probability(assign...)
				if err != nil {
					t.Fatal(err)
				}
				if pd != ps {
					t.Errorf("P(%v) = %v dense, %v sparse", assign, pd, ps)
				}
				return
			}
			a := schema.Attr(i)
			for _, v := range a.Values {
				assign[i] = pka.Assignment{Attr: a.Name, Value: v}
				walk(i + 1)
			}
		}
		walk(0)
	}

	t.Run("memo", func(t *testing.T) {
		run(t, paperdata.Table(), paperdata.Schema())
	})

	t.Run("random", func(t *testing.T) {
		schema := dataset.MustSchema([]dataset.Attribute{
			{Name: "A", Values: []string{"0", "1"}},
			{Name: "B", Values: []string{"0", "1", "2"}},
			{Name: "C", Values: []string{"0", "1"}},
			{Name: "D", Values: []string{"0", "1"}},
		})
		d := dataset.NewDataset(schema)
		rng := stats.NewRNG(11)
		for s := 0; s < 8000; s++ {
			a := rng.Intn(2)
			b := rng.Intn(3)
			c := a
			if rng.Float64() < 0.25 {
				c = 1 - a
			}
			dd := rng.Intn(2)
			if b == 2 && rng.Float64() < 0.6 {
				dd = 1
			}
			if err := d.Append(dataset.Record{a, b, c, dd}); err != nil {
				t.Fatal(err)
			}
		}
		table, err := d.Tabulate()
		if err != nil {
			t.Fatal(err)
		}
		run(t, table, schema)
	})
}

// TestSaveLoadQueryPropertyRoundTrip asserts a discovered Model and its
// re-Loaded QueryModel answer identical Probability, Conditional,
// Distribution, and MPE queries across a randomized battery — the
// serialized coefficients must round-trip exactly.
func TestSaveLoadQueryPropertyRoundTrip(t *testing.T) {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := pka.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	schema := model.Schema()
	r := schema.R()
	rng := stats.NewRNG(1234)
	randomAssign := func(positions []int) []pka.Assignment {
		out := make([]pka.Assignment, len(positions))
		for i, p := range positions {
			a := schema.Attr(p)
			out[i] = pka.Assignment{Attr: a.Name, Value: a.Values[rng.Intn(len(a.Values))]}
		}
		return out
	}
	randomSubset := func() []int {
		var out []int
		for p := 0; p < r; p++ {
			if rng.Float64() < 0.5 {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			out = append(out, rng.Intn(r))
		}
		return out
	}

	for iter := 0; iter < 200; iter++ {
		// Probability over a random partial assignment.
		sub := randomSubset()
		assigns := randomAssign(sub)
		want, err := model.Probability(assigns...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Probability(assigns...)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("iter %d: Probability(%v) = %v loaded, %v original", iter, assigns, got, want)
		}

		// Conditional: split the assignment into target | given.
		if len(assigns) >= 2 {
			cut := 1 + rng.Intn(len(assigns)-1)
			target, given := assigns[:cut], assigns[cut:]
			want, err := model.Conditional(target, given)
			if err == nil {
				got, err := loaded.Conditional(target, given)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("iter %d: Conditional(%v|%v) = %v loaded, %v original",
						iter, target, given, got, want)
				}
			}
		}

		// Distribution of a random attribute given a random other one.
		attr := schema.Attr(rng.Intn(r)).Name
		var given []pka.Assignment
		if p := rng.Intn(r); schema.Attr(p).Name != attr {
			given = randomAssign([]int{p})
		}
		wantDist, err := model.Distribution(attr, given...)
		if err != nil {
			t.Fatal(err)
		}
		gotDist, err := loaded.Distribution(attr, given...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantDist, gotDist) {
			t.Fatalf("iter %d: Distribution(%s|%v) = %v loaded, %v original",
				iter, attr, given, gotDist, wantDist)
		}

		// MPE given a random single assignment.
		ev := randomAssign([]int{rng.Intn(r)})
		wantMPE, err := model.MostProbableExplanation(ev...)
		if err != nil {
			t.Fatal(err)
		}
		gotMPE, err := loaded.MostProbableExplanation(ev...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantMPE, gotMPE) {
			t.Fatalf("iter %d: MPE(%v) = %+v loaded, %+v original", iter, ev, gotMPE, wantMPE)
		}
	}
}
