// Survey: knowledge acquisition from a synthetic medical survey with a
// known planted dependence structure — the memo's "psychological, medical,
// and social surveys" workload, made checkable.
//
// A ground-truth distribution couples FACTOR1↔FACTOR2, FACTOR3↔FACTOR4 and
// FACTOR1↔OUTCOME; everything else is independent. The example samples
// 40,000 questionnaires, runs discovery, and verifies that exactly the
// planted attribute pairs are flagged.
//
// Run with:
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/contingency"
	"pka/internal/stats"
	"pka/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("survey: ")

	truth, err := synth.Survey(4, 2.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planted dependence structure:")
	for _, fam := range truth.Planted() {
		names := []string{}
		for _, p := range fam.Members() {
			names = append(names, truth.Schema().Attr(p).Name)
		}
		fmt.Printf("  %v\n", names)
	}

	const n = 40000
	table, err := truth.SampleTable(stats.NewRNG(2026), n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsampled %d questionnaires (seeded, reproducible)\n\n", n)

	model, err := pka.DiscoverTable(table, truth.Schema(), pka.Options{MaxOrder: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(model.Summary())

	// Compare discovered families against the planted ones.
	planted := map[contingency.VarSet]bool{}
	for _, fam := range truth.Planted() {
		planted[fam] = true
	}
	found := map[contingency.VarSet]bool{}
	for _, f := range model.Findings() {
		found[f.Test.Family] = true
	}
	fmt.Println("\nrecovery check:")
	hits, spurious := 0, 0
	for fam := range found {
		if planted[fam] {
			hits++
		} else {
			spurious++
			fmt.Printf("  spurious family %v\n", fam)
		}
	}
	missed := 0
	for fam := range planted {
		if !found[fam] {
			missed++
			fmt.Printf("  missed family %v\n", fam)
		}
	}
	fmt.Printf("  planted pairs recovered: %d/%d, spurious families: %d\n",
		hits, len(planted), spurious)
	if missed == 0 && spurious == 0 {
		fmt.Println("  exact structural recovery ✓")
	}

	// A practitioner query: how does FACTOR1 shift the outcome?
	dist, err := model.Distribution("OUTCOME",
		pka.Assignment{Attr: "FACTOR1", Value: "yes"})
	if err != nil {
		log.Fatal(err)
	}
	baseDist, err := model.Distribution("OUTCOME")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOUTCOME distribution:")
	for _, v := range []string{"healthy", "mild", "severe"} {
		fmt.Printf("  %-8s base %.3f -> with FACTOR1 %.3f\n", v, baseDist[v], dist[v])
	}
}
