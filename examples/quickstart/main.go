// Quickstart: the memo's own worked example, end to end.
//
// It loads the smoking/cancer survey of Figure 1 (N = 3428), runs the full
// knowledge-acquisition procedure, and then uses the resulting knowledge
// base the way the memo envisions: conditional-probability queries and
// IF-THEN rules for a probabilistic expert system.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"pka"
	"pka/internal/paperdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The survey data in raw-record form (the memo's Figure 5). In a real
	// application this would come from pka.ReadCSV.
	data := paperdata.Records()
	fmt.Printf("loaded %d survey records over %d attributes\n\n",
		data.Len(), data.Schema().R())

	// Discover the significant joint probabilities (Figures 3-4,
	// Tables 1-2 of the memo).
	model, err := pka.Discover(data, pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(model.Summary())

	// The memo's headline relationship.
	smoker := pka.Assignment{Attr: "SMOKING", Value: "Smoker"}
	cancer := pka.Assignment{Attr: "CANCER", Value: "Yes"}

	base, err := model.Probability(cancer)
	if err != nil {
		log.Fatal(err)
	}
	cond, err := model.Conditional([]pka.Assignment{cancer}, []pka.Assignment{smoker})
	if err != nil {
		log.Fatal(err)
	}
	lift, err := model.Lift(cancer, smoker)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(cancer)            = %.3f\n", base)
	fmt.Printf("P(cancer | smoker)   = %.3f\n", cond)
	fmt.Printf("lift                 = %.2f\n", lift)

	// Combining evidence, as the memo's IF B AND C THEN A example.
	withHistory, err := model.Conditional(
		[]pka.Assignment{cancer},
		[]pka.Assignment{smoker, {Attr: "FAMILY HISTORY", Value: "Yes"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(cancer | smoker, family history) = %.3f\n", withHistory)

	// Extract expert-system rules.
	rules, err := model.Rules(pka.RuleOptions{MinLiftDistance: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d rules at |lift-1| >= 0.1:\n", len(rules))
	for i, r := range rules {
		fmt.Printf("%3d. %s\n", i+1, r)
	}

	// Persist the knowledge base for later query-only use.
	f, err := os.CreateTemp("", "pka-quickstart-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nknowledge base saved to %s\n", f.Name())
}
