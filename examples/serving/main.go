// Serving: the knowledge base as a network service.
//
// It discovers the memo's smoking/cancer model, mounts it behind the
// JSON-over-HTTP serving layer (pka.NewServer), and then acts as its own
// client: a single conditional query, a same-evidence batch (validated
// once, served through one engine sweep), and the schema endpoint. This is
// the programmatic twin of:
//
//	pka discover -in survey.csv -out kb.json
//	pka serve -kb kb.json -addr :8080
//	curl -d '{"kind":"conditional",...}' localhost:8080/v1/query
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"pka"
	"pka/internal/paperdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serving: ")

	// Acquire the knowledge base and compile its engine once; the handler
	// reuses it for every request, from any number of concurrent clients.
	model, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: pka.NewServer(model)}
	go srv.Serve(l)
	defer srv.Close()
	base := "http://" + l.Addr().String()
	fmt.Printf("serving the model on %s\n\n", base)

	// One query over the wire: the memo's headline conditional.
	res := postJSON(base+"/v1/query", pka.Query{
		Kind:   pka.QueryConditional,
		Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		Given:  []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}},
	})
	var one pka.QueryResult
	decode(res, &one)
	fmt.Printf("P(CANCER=Yes | SMOKING=Smoker) = %.3f\n\n", one.Probability)

	// A batch sharing one evidence set: the server validates the evidence
	// once and answers the group from one conditional-slice sweep.
	smoker := []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	batch := struct {
		Queries []pka.Query `json:"queries"`
	}{[]pka.Query{
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "No"}}, Given: smoker},
		{Kind: pka.QueryMostLikely, Attr: "FAMILY HISTORY", Given: smoker},
		{Kind: pka.QueryMPE, Given: smoker},
	}}
	var results struct {
		Results []pka.QueryResult `json:"results"`
	}
	decode(postJSON(base+"/v1/query/batch", batch), &results)
	for i, r := range results.Results {
		switch r.Kind {
		case pka.QueryConditional:
			fmt.Printf("batch[%d] conditional  = %.3f\n", i, r.Probability)
		case pka.QueryMostLikely:
			fmt.Printf("batch[%d] most likely  = %s (%.3f)\n", i, r.Value, r.Probability)
		case pka.QueryMPE:
			fmt.Printf("batch[%d] explanation  = %v (p=%.3f)\n", i, r.Assignments, r.Probability)
		}
	}

	// The schema endpoint tells clients what they may ask about.
	resp, err := http.Get(base + "/v1/schema")
	if err != nil {
		log.Fatal(err)
	}
	var schema struct {
		Attributes []struct {
			Name   string   `json:"name"`
			Values []string `json:"values"`
		} `json:"attributes"`
	}
	decode(resp, &schema)
	fmt.Println("\nserved schema:")
	for _, a := range schema.Attributes {
		fmt.Printf("  %s: %v\n", a.Name, a.Values)
	}
}

func postJSON(url string, v any) *http.Response {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	return resp
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
