// Expertsystem: building and shipping a probabilistic expert system from
// data, the memo's stated goal ("develop a knowledge base for a
// probabilistic expert system").
//
// Phase 1 (knowledge engineer): discover a knowledge base from survey data
// and save it to JSON. Phase 2 (deployed system): load the JSON — no raw
// data needed — and run consultations: combine evidence incrementally and
// watch the posterior move, exactly the IF-THEN usage the memo describes.
//
// Run with:
//
//	go run ./examples/expertsystem
package main

import (
	"bytes"
	"fmt"
	"log"

	"pka"
	"pka/internal/paperdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("expertsystem: ")

	// ---- Phase 1: acquisition ----
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var kbFile bytes.Buffer
	if err := model.Save(&kbFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: knowledge base built (%d constraints, %d bytes serialized)\n\n",
		model.NumConstraints(), kbFile.Len())
	fmt.Print(model.Explain())

	// ---- Phase 2: deployment ----
	system, err := pka.Load(&kbFile)
	if err != nil {
		log.Fatal(err)
	}

	// The memo's rule form: IF B AND C THEN A (with probability p).
	rules, err := system.Rules(pka.RuleOptions{MinLiftDistance: 0.15, MaxRules: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop rules shipped with the system:\n")
	for i, r := range rules {
		fmt.Printf("%3d. %s\n", i+1, r)
	}

	// Consultations: evidence arrives piece by piece.
	consult := func(title string, evidence ...pka.Assignment) {
		fmt.Printf("\nconsultation: %s\n", title)
		dist, err := system.Distribution("CANCER", evidence...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P(CANCER=Yes) = %.3f   P(CANCER=No) = %.3f\n",
			dist["Yes"], dist["No"])
	}
	consult("no evidence")
	consult("patient smokes",
		pka.Assignment{Attr: "SMOKING", Value: "Smoker"})
	consult("patient smokes, family history of cancer",
		pka.Assignment{Attr: "SMOKING", Value: "Smoker"},
		pka.Assignment{Attr: "FAMILY HISTORY", Value: "Yes"})
	consult("non smoker married to a smoker",
		pka.Assignment{Attr: "SMOKING", Value: "Non smoker married to a smoker"})

	// Reverse inference: the same formula answers any direction.
	fmt.Println("\nreverse inference: what does a cancer diagnosis say about smoking?")
	dist, err := system.Distribution("SMOKING",
		pka.Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range system.Schema().Attr(0).Values {
		fmt.Printf("  P(SMOKING=%-31s | cancer) = %.3f\n", v, dist[v])
	}
}
