// Streaming: continuous knowledge acquisition as the data bank grows.
//
// The paper frames acquisition as continuous — knowledge is re-derived as
// observations accumulate. This example discovers a model from an initial
// telemetry batch, then streams three more batches through Model.Update:
// each batch folds into the retained counts (cached marginal projections
// updated in place), constraints whose marginals moved are retargeted, the
// solver warm-starts from the previous coefficients, and the compiled
// engine is swapped atomically under any concurrent queries. The last
// batch deliberately shifts the distribution so a new significant joint
// probability appears mid-stream.
//
// It is the programmatic twin of:
//
//	pka serve -data telemetry.csv -addr :8080
//	curl -d '{"rows":[["hi","hi","lo"],...]}' localhost:8080/v1/observe
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pka"
)

// draw samples one (LOAD, LATENCY, ERRORS) row: latency tracks load, and
// after the regime change errors start tracking load too.
func draw(rng *rand.Rand, shifted bool) pka.Record {
	load := rng.Intn(2)
	latency := load
	if rng.Float64() < 0.25 {
		latency = rng.Intn(2)
	}
	errors := rng.Intn(2)
	if shifted && rng.Float64() < 0.8 {
		errors = load
	}
	return pka.Record{load, latency, errors}
}

func rows(rng *rand.Rand, n int, shifted bool) []pka.Record {
	out := make([]pka.Record, n)
	for i := range out {
		out[i] = draw(rng, shifted)
	}
	return out
}

func main() {
	schema, err := pka.NewSchema([]pka.Attribute{
		{Name: "LOAD", Values: []string{"lo", "hi"}},
		{Name: "LATENCY", Values: []string{"lo", "hi"}},
		{Name: "ERRORS", Values: []string{"lo", "hi"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	table, err := pka.NewSparseTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	initial := rows(rng, 3000, false)
	cells := make([][]int, len(initial))
	for i, r := range initial {
		cells[i] = r
	}
	if err := table.ObserveBatch(cells); err != nil {
		log.Fatal(err)
	}
	model, err := pka.DiscoverSparse(table, schema, pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial discovery over %d samples: %d constraints\n",
		3000, model.NumConstraints())

	ask := func() float64 {
		p, err := model.Conditional(
			[]pka.Assignment{{Attr: "ERRORS", Value: "hi"}},
			[]pka.Assignment{{Attr: "LOAD", Value: "hi"}})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	fmt.Printf("P(errors hi | load hi) at start: %.3f\n\n", ask())

	for batch := 1; batch <= 3; batch++ {
		shifted := batch == 3 // the regime change arrives in the last batch
		rep, err := model.Update(rows(rng, 1500, shifted))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %d rows in, %d retargeted, %d new constraints, %d sweeps (total N=%d)\n",
			batch, rep.Rows, rep.Retargeted, rep.NewConstraints, rep.Sweeps, rep.TotalSamples)
		fmt.Printf("         P(errors hi | load hi) now %.3f\n", ask())
	}

	fmt.Println()
	names := schema.Names()
	for _, f := range model.Findings() {
		fmt.Printf("finding #%d (order %d): %s = %.4f\n",
			f.Step, f.Order, f.Constraint.Label(names), f.Constraint.Target)
	}
}
