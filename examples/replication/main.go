// Replication: a distributed data bank over the observe log.
//
// The paper's data bank grows continuously; at scale, one process is not
// enough to both absorb observations and answer every query. This example
// wires the replicated topology in-process: a primary applies observe
// batches and appends each one to a CRC-framed log, a read replica boots
// from the primary's snapshot and tails that log, and — because the model
// update path is deterministic — the replica's answers are bit-identical
// to the primary's at every offset.
//
// It is the programmatic twin of:
//
//	pka serve -data telemetry.csv -log observe.log -addr :8080   # primary
//	pka serve -replica-of http://localhost:8080 -addr :8081      # replica
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"pka"
	"pka/internal/cluster"
	"pka/internal/replog"
	"pka/internal/server"
)

// draw samples one (LOAD, LATENCY, ERRORS) row, latency tracking load.
func draw(rng *rand.Rand) pka.Record {
	load := rng.Intn(2)
	latency := load
	if rng.Float64() < 0.25 {
		latency = rng.Intn(2)
	}
	return pka.Record{load, latency, rng.Intn(2)}
}

func labeled(schema *pka.Schema, rng *rand.Rand, n int) [][]string {
	names := make([][]string, n)
	for i := range names {
		r := draw(rng)
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = schema.Attr(j).Values[v]
		}
		names[i] = row
	}
	return names
}

func main() {
	schema, err := pka.NewSchema([]pka.Attribute{
		{Name: "LOAD", Values: []string{"lo", "hi"}},
		{Name: "LATENCY", Values: []string{"lo", "hi"}},
		{Name: "ERRORS", Values: []string{"lo", "hi"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	// Discover the seed model: this is the primary's data bank.
	table, err := pka.NewSparseTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range labeled(schema, rng, 3000) {
		cell := make([]int, len(r))
		for j, v := range r {
			cell[j] = schema.Attr(j).ValueIndex(v)
		}
		if err := table.Observe(cell...); err != nil {
			log.Fatal(err)
		}
	}
	bank, err := pka.DiscoverSparse(table, schema, pka.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Bind the bank to its observe log: every applied batch is appended as
	// one record, offsets in lockstep with the model version.
	dir, err := os.MkdirTemp("", "pka-replication-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lg, err := replog.Open(filepath.Join(dir, "observe.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer lg.Close()
	primary, err := cluster.NewPrimary(bank, lg)
	if err != nil {
		log.Fatal(err)
	}
	psrv := httptest.NewServer(primary.Handler(server.New(primary)))
	defer psrv.Close()
	fmt.Printf("primary up at %s (version %d)\n", psrv.URL, bank.Version())

	// Feed the primary a few batches before any replica exists.
	var version int64
	for i := 0; i < 3; i++ {
		rep, err := primary.ObserveLabeled(labeled(schema, rng, 500))
		if err != nil {
			log.Fatal(err)
		}
		version = rep.Version
	}
	fmt.Printf("primary absorbed 3 batches, version now %d\n\n", version)

	// A replica boots from the primary's snapshot (paired with its exact
	// log offset) and tails the log from there.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	load := func(r io.Reader) (cluster.Bank, error) { return pka.LoadModelSnapshot(r) }
	replica, err := cluster.BootReplica(ctx, psrv.URL, load, 20*time.Millisecond, nil)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := replica.Follow(ctx); err != nil {
			log.Printf("replica: log stream broken: %v", err)
		}
	}()
	fmt.Printf("replica booted at version %d\n", replica.Version())

	// More traffic lands on the primary while the replica follows. The
	// observe response's version is the read-your-writes token: poll the
	// replica until it reports that version, then reads there see the write.
	rep, err := primary.ObserveLabeled(labeled(schema, rng, 500))
	if err != nil {
		log.Fatal(err)
	}
	for replica.Version() < rep.Version {
		time.Sleep(5 * time.Millisecond)
	}
	rd := replica.Readiness()
	fmt.Printf("replica caught up: %+v\n\n", rd)

	// Convergent counts: the replayed batches land the replica on the exact
	// model the primary serves — the same query returns the same bits.
	target := []pka.Assignment{{Attr: "ERRORS", Value: "hi"}}
	given := []pka.Assignment{{Attr: "LOAD", Value: "hi"}}
	pp, err := primary.Conditional(target, given)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := replica.Conditional(target, given)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(errors hi | load hi) on primary: %v\n", pp)
	fmt.Printf("P(errors hi | load hi) on replica: %v\n", rp)
	fmt.Printf("bit-identical: %v\n", math.Float64bits(pp) == math.Float64bits(rp))
}
