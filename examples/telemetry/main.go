// Telemetry: mining correlations from simulated spacecraft sensor streams —
// the memo's motivating NASA workload ("masses of unevaluated data from its
// space explorations").
//
// Continuous bus-voltage and temperature-gradient readings are simulated
// with injected thermal and power anomalies, discretized with quantile
// binners into categorical attributes, and fed through the acquisition
// pipeline. The discovered knowledge base then answers the operations
// question: given what the sensors show, which anomaly is most likely?
//
// Run with:
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math"

	"pka"
	"pka/internal/stats"
)

// sample is one downlinked telemetry frame before discretization.
type sample struct {
	busVoltage float64
	tempGrad   float64
	wheelRPM   float64
	anomaly    string
}

// simulate produces n frames: nominal operation with occasional thermal
// anomalies (temperature gradient climbs) and power anomalies (bus voltage
// sags). Wheel RPM is independent noise — a deliberate decoy channel.
func simulate(rng *stats.RNG, n int) []sample {
	out := make([]sample, n)
	for i := range out {
		s := sample{
			busVoltage: 28 + 0.6*gauss(rng),
			tempGrad:   0.02 * gauss(rng),
			wheelRPM:   2000 + 150*gauss(rng),
			anomaly:    "none",
		}
		switch r := rng.Float64(); {
		case r < 0.08: // thermal event
			s.anomaly = "thermal"
			s.tempGrad += 0.09 + 0.03*gauss(rng)
		case r < 0.14: // power event
			s.anomaly = "power"
			s.busVoltage -= 2.4 + 0.5*gauss(rng)
		}
		out[i] = s
	}
	return out
}

// gauss draws a standard normal via Box–Muller from the seeded source.
func gauss(rng *stats.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("telemetry: ")

	rng := stats.NewRNG(7)
	const n = 30000
	frames := simulate(rng, n)
	fmt.Printf("simulated %d telemetry frames\n", n)

	// Discretize the continuous channels with quantile binners trained on
	// the observed readings (Appendix A's tabulation needs categories).
	volt := make([]float64, n)
	temp := make([]float64, n)
	rpm := make([]float64, n)
	for i, s := range frames {
		volt[i], temp[i], rpm[i] = s.busVoltage, s.tempGrad, s.wheelRPM
	}
	voltBins, err := pka.NewQuantileBinner(volt, 3)
	if err != nil {
		log.Fatal(err)
	}
	tempBins, err := pka.NewQuantileBinner(temp, 3)
	if err != nil {
		log.Fatal(err)
	}
	rpmBins, err := pka.NewQuantileBinner(rpm, 3)
	if err != nil {
		log.Fatal(err)
	}

	schema, err := pka.NewSchema([]pka.Attribute{
		voltBins.Attribute("BUS_VOLTAGE"),
		tempBins.Attribute("TEMP_GRADIENT"),
		rpmBins.Attribute("WHEEL_RPM"),
		{Name: "ANOMALY", Values: []string{"none", "thermal", "power"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	data := pka.NewDataset(schema)
	anomalyIdx := map[string]int{"none": 0, "thermal": 1, "power": 2}
	for _, s := range frames {
		rec := pka.Record{
			voltBins.Bin(s.busVoltage),
			tempBins.Bin(s.tempGrad),
			rpmBins.Bin(s.wheelRPM),
			anomalyIdx[s.anomaly],
		}
		if err := data.Append(rec); err != nil {
			log.Fatal(err)
		}
	}

	model, err := pka.Discover(data, pka.Options{MaxOrder: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(model.Summary())

	// Sanity: the decoy channel must not correlate with anomalies.
	for _, f := range model.Findings() {
		for _, p := range f.Test.Family.Members() {
			if schema.Attr(p).Name == "WHEEL_RPM" {
				fmt.Printf("NOTE: decoy channel flagged: %v\n", f.Test.Family)
			}
		}
	}

	// Operations queries: diagnose from evidence.
	tempLabels := tempBins.Labels()
	voltLabels := voltBins.Labels()
	// The last label is the NaN catch-all; the top interval sits before it.
	highTemp := pka.Assignment{Attr: "TEMP_GRADIENT", Value: tempLabels[len(tempLabels)-2]}
	lowVolt := pka.Assignment{Attr: "BUS_VOLTAGE", Value: voltLabels[0]}

	fmt.Println("\ndiagnosis given a rising temperature gradient:")
	dist, err := model.Distribution("ANOMALY", highTemp)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []string{"none", "thermal", "power"} {
		fmt.Printf("  P(ANOMALY=%-7s | temp high) = %.3f\n", v, dist[v])
	}

	fmt.Println("\ndiagnosis given a sagging bus voltage:")
	dist, err = model.Distribution("ANOMALY", lowVolt)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []string{"none", "thermal", "power"} {
		fmt.Printf("  P(ANOMALY=%-7s | volt low)  = %.3f\n", v, dist[v])
	}

	best, p, err := model.MostLikely("ANOMALY", highTemp, lowVolt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nboth at once -> most likely anomaly: %s (p=%.3f)\n", best, p)
}
