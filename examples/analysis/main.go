// Analysis: the statistician's workflow around discovery — survey the
// pairwise associations first (the memo's "clues for discovering more
// causal explanations"), run acquisition, check goodness of fit, and
// validate generalization on held-out data.
//
// Run with:
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/baseline"
	"pka/internal/stats"
	"pka/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analysis: ")

	truth, err := synth.Telemetry()
	if err != nil {
		log.Fatal(err)
	}
	full, err := truth.SampleTable(stats.NewRNG(2025), 12000)
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(2026)
	train, holdout, err := baseline.TrainTestSplit(full, 0.25, rng.Float64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("telemetry frames: %d train, %d held out\n\n", train.Total(), holdout.Total())

	// Step 1: association survey before any modeling.
	pairs, err := pka.Associations(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairwise association survey (strongest first):")
	fmt.Print(pka.RenderAssociations(truth.Schema().Names(), pairs))

	// Step 2: discovery.
	model, err := pka.DiscoverTable(train, truth.Schema(), pka.Options{MaxOrder: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(model.Summary())

	// Step 3: goodness of fit on the training data.
	fit := model.Fit()
	fmt.Printf("\ngoodness of fit: G² = %.1f at %d df (p = %.3f)\n", fit.G2, fit.DF, fit.PValue)
	if fit.PValue < 0.05 {
		fmt.Println("  -> model rejected; consider raising MaxOrder")
	} else {
		fmt.Println("  -> model accepted at the 5% level")
	}

	// Step 4: held-out validation.
	loss, err := model.LogLoss(holdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out log loss: %.4f nats/sample\n", loss)

	// Step 5: ship the strongest rules with confidence intervals.
	scored, err := model.RulesWithIntervals(pka.RuleOptions{MinLiftDistance: 0.3, MaxRules: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest rules with 95% intervals:")
	for i, s := range scored {
		fmt.Printf("%3d. %s\n", i+1, s)
	}
}
