// Widescreen: the wide-schema workflow for data whose dense joint space
// cannot be materialized — the memo's "mammoth NASA reserve data bank"
// regime.
//
// 30 binary sensor channels (dense space: 2³⁰ ≈ 10⁹ cells) are tabulated
// sparsely, all 435 channel pairs are screened with the sparse association
// survey, and the attribute subsets that light up are projected densely and
// run through discovery. Ground truth plants two couplings; the screen must
// surface exactly those.
//
// Run with:
//
//	go run ./examples/widescreen
package main

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/contingency"
	"pka/internal/stats"
)

const nSensors = 30

func sensorName(i int) string { return fmt.Sprintf("CH%02d", i) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("widescreen: ")

	attrs := make([]pka.Attribute, nSensors)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: sensorName(i), Values: []string{"lo", "hi"}}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		log.Fatal(err)
	}
	sparse, err := pka.NewSparseTable(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 50,000 frames: CH07 drives CH21 (strong), CH02 drives CH28
	// (moderate), everything else independent.
	rng := stats.NewRNG(30)
	cell := make([]int, nSensors)
	const n = 50000
	for s := 0; s < n; s++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.9 {
			cell[21] = cell[7]
		}
		if rng.Float64() < 0.7 {
			cell[28] = cell[2]
		}
		if err := sparse.Observe(cell...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tabulated %d frames over %d channels (%d distinct patterns; dense space would need 2^%d cells)\n\n",
		sparse.Total(), nSensors, sparse.Occupied(), nSensors)

	// Screen all pairs sparsely.
	pairs, err := pka.AssociationsSparse(sparse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 of 435 screened pairs:")
	for i := 0; i < 5 && i < len(pairs); i++ {
		p := pairs[i]
		fmt.Printf("  %s × %s   MI=%.5f  V=%.3f  p=%.2g\n",
			sensorName(p.I), sensorName(p.J), p.MI, p.CramersV, p.PValue)
	}

	// Project the significant pairs densely and run discovery on each.
	fmt.Println("\ndiscovery on the flagged subsets:")
	for _, p := range pairs[:2] {
		proj, err := sparse.Project(contingency.NewVarSet(p.I, p.J))
		if err != nil {
			log.Fatal(err)
		}
		subSchema, err := pka.NewSchema([]pka.Attribute{attrs[p.I], attrs[p.J]})
		if err != nil {
			log.Fatal(err)
		}
		model, err := pka.DiscoverTable(proj, subSchema, pka.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cond, err := model.Conditional(
			[]pka.Assignment{{Attr: sensorName(p.J), Value: "hi"}},
			[]pka.Assignment{{Attr: sensorName(p.I), Value: "hi"}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s × %s: %d significant cells, P(%s=hi | %s=hi) = %.3f\n",
			sensorName(p.I), sensorName(p.J), len(model.Findings()),
			sensorName(p.J), sensorName(p.I), cond)
	}
}
