// Widescreen: the wide-schema workflow for data whose dense joint space
// cannot be materialized — the memo's "mammoth NASA reserve data bank"
// regime.
//
// 30 binary sensor channels (dense space: 2³⁰ ≈ 10⁹ cells) are tabulated
// sparsely and run through pka.DiscoverSparse with association screening
// on: all 435 channel pairs are surveyed first, and the expensive family
// scan only visits the pairs that light up. Ground truth plants two
// couplings; discovery must surface exactly those — without ever
// allocating the joint space.
//
// Run with:
//
//	go run ./examples/widescreen
package main

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/stats"
)

const nSensors = 30

func sensorName(i int) string { return fmt.Sprintf("CH%02d", i) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("widescreen: ")

	attrs := make([]pka.Attribute, nSensors)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: sensorName(i), Values: []string{"lo", "hi"}}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		log.Fatal(err)
	}
	sparse, err := pka.NewSparseTable(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 50,000 frames: CH07 drives CH21 (strong), CH02 drives CH28
	// (moderate), everything else independent.
	rng := stats.NewRNG(30)
	cell := make([]int, nSensors)
	const n = 50000
	for s := 0; s < n; s++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.9 {
			cell[21] = cell[7]
		}
		if rng.Float64() < 0.7 {
			cell[28] = cell[2]
		}
		if err := sparse.Observe(cell...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tabulated %d frames over %d channels (%d distinct patterns; dense space would need 2^%d cells)\n\n",
		sparse.Total(), nSensors, sparse.Occupied(), nSensors)

	// The pairwise survey is still available as a standalone diagnostic.
	pairs, err := pka.AssociationsSparse(sparse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 of 435 surveyed pairs:")
	for i := 0; i < 5 && i < len(pairs); i++ {
		p := pairs[i]
		fmt.Printf("  %s × %s   MI=%.5f  V=%.3f  p=%.2g\n",
			sensorName(p.I), sensorName(p.J), p.MI, p.CramersV, p.PValue)
	}

	// Discovery runs on the sparse table directly: ScreenPairs repeats the
	// survey internally and restricts the order-2 scan to the pairs that
	// pass, so the scan prices a handful of families instead of all 435.
	model, err := pka.DiscoverSparse(sparse, schema, pka.Options{
		MaxOrder:    2,
		ScreenPairs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := model.Screen()
	fmt.Printf("\nscreen: %d of %d pairs passed (alpha %.2g)\n",
		rep.PairsKept, rep.PairsTotal, rep.Alpha)

	fmt.Printf("discovered %d significant cells across the kept families:\n",
		len(model.Findings()))
	printed := map[[2]int]bool{}
	for _, f := range model.Findings() {
		m := f.Test.Family.Members()
		key := [2]int{m[0], m[1]}
		if printed[key] {
			continue
		}
		printed[key] = true
		cond, err := model.Conditional(
			[]pka.Assignment{{Attr: sensorName(m[1]), Value: "hi"}},
			[]pka.Assignment{{Attr: sensorName(m[0]), Value: "hi"}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s × %s: P(%s=hi | %s=hi) = %.3f\n",
			sensorName(m[0]), sensorName(m[1]),
			sensorName(m[1]), sensorName(m[0]), cond)
	}
}
