package pka

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"

	"pka/internal/contingency"
	"pka/internal/kb"
	"pka/internal/memo"
	"pka/internal/query"
	"pka/internal/rules"
	"pka/internal/server"
)

// Querier is the canonical query surface of a probabilistic knowledge
// base: every joint, marginal, and conditional question the memo's
// acquired model answers, as one interface. Both Model (fresh from
// Discover) and QueryModel (loaded from a saved file) satisfy it through
// one shared implementation, so batch execution (AnswerBatch), the HTTP
// server (NewServer), and downstream expert systems serve either
// interchangeably.
type Querier = query.Querier

// Query is one probabilistic question as a first-class value: a typed kind
// plus target/evidence assignments, JSON-serializable for routing,
// logging, batching, and the network wire format. Construct it directly or
// decode it from the wire; Answer executes it.
type Query = query.Query

// QueryResult is the answer to one Query, in the wire format shared by
// AnswerBatch, the HTTP server, and `pka query -json`.
type QueryResult = query.Result

// QueryKind discriminates what a Query asks for.
type QueryKind = query.Kind

// The query kinds, one per probabilistic Querier method.
const (
	QueryProbability  = query.KindProbability
	QueryConditional  = query.KindConditional
	QueryDistribution = query.KindDistribution
	QueryMostLikely   = query.KindMostLikely
	QueryLift         = query.KindLift
	QueryMPE          = query.KindMPE
)

// Counts is the read-only view of tabulated observations shared by the
// dense Table and the wide-schema SparseTable — the shape LogLoss accepts,
// so models validate against either backend.
type Counts = contingency.Counts

// Answer executes one query against any Querier.
func Answer(q Querier, qu Query) (QueryResult, error) { return query.Answer(q, qu) }

// AnswerBatch executes a group of queries, sharing the engine work they
// have in common instead of issuing len(queries) independent calls:
// evidence is validated and priced once per distinct set, groups of
// same-evidence queries are served through the compiled engine's batch
// conditional-slice sweep, and distinct evidence groups execute
// concurrently over GOMAXPROCS workers (the compiled engine is immutable
// and safe for any number of goroutines). Probabilities are bit-identical
// to per-query Answer for any worker count; a failed query carries its
// message in QueryResult.Error without sinking the batch.
func AnswerBatch(q Querier, queries []Query) ([]QueryResult, error) {
	return query.AnswerBatch(q, queries)
}

// AnswerBatchWorkers is AnswerBatch with an explicit worker bound:
// 0 uses GOMAXPROCS, 1 forces the sequential single-session execution.
// Results (wire bytes included) are bit-identical across worker counts.
func AnswerBatchWorkers(q Querier, queries []Query, workers int) ([]QueryResult, error) {
	return query.AnswerBatchWorkers(q, queries, workers)
}

// EncodeQueryResult writes a result in the shared wire encoding (one JSON
// object, trailing newline) — the exact bytes `pka query -json` prints and
// the server's /v1/query endpoint returns.
func EncodeQueryResult(w io.Writer, res QueryResult) error {
	return query.EncodeResult(w, res)
}

// NewServer wraps any Querier in the JSON-over-HTTP network layer:
//
//	GET  /healthz         liveness probe
//	GET  /v1/schema       attribute layout
//	POST /v1/query        one Query -> one QueryResult
//	POST /v1/query/batch  {"queries": [...]} -> {"results": [...]}
//	POST /v1/observe      {"rows": [...]} -> UpdateReport (streaming ingest)
//	GET  /v1/rules        extracted IF-THEN rules
//	GET  /v1/explain      the stored probability formula
//
// The handler reuses the model's compiled engine for every request — no
// per-request compilation or locking — and any number of concurrent
// requests may hit one handler. When the Querier is a *Model (which
// retains its discovery counts), /v1/observe streams new observations into
// it via the incremental-refit path; read-only models answer it with 501.
// `pka serve` wraps this with listener management and graceful shutdown;
// NewServerWithOptions tunes the request caps.
func NewServer(q Querier) http.Handler { return server.New(q) }

// ServerOptions tunes the handler NewServerWithOptions returns: the batch
// size cap and the request body byte cap (zero values take the defaults).
type ServerOptions = server.Options

// NewServerWithOptions is NewServer with tunable request caps, for
// embedders whose batch sizes or payloads outgrow the defaults.
func NewServerWithOptions(q Querier, opts ServerOptions) http.Handler {
	return server.NewWithOptions(q, opts)
}

// Model and QueryModel answer queries through one shared core; the
// assertions pin both to the canonical interface at compile time.
var (
	_ Querier = (*Model)(nil)
	_ Querier = (*QueryModel)(nil)
)

// queryCore is the single implementation of the Querier surface that Model
// and QueryModel embed — one method set over the compiled knowledge base,
// so the two public types cannot drift apart.
//
// The knowledge base lives behind an atomic pointer: every query loads the
// current snapshot once and serves entirely from it, so a streaming update
// (Model.Update) can swap in a refitted engine while in-flight queries
// keep answering from the snapshot they started with — no locks on the
// query path.
type queryCore struct {
	kbase atomic.Pointer[kb.KnowledgeBase]
	// version counts successfully applied observe batches — the monotonic
	// model version replication compares across processes. A freshly
	// discovered or loaded model starts at 0; on a replicated primary the
	// version equals the observe log's next offset at all times.
	//
	// Ordering contract with kbase: an engine swap stores the new knowledge
	// base BEFORE bumping version, so at every instant Version() is at most
	// the version of the engine actually serving. A caller that reads the
	// version first and then answers therefore computes from an engine at
	// least that fresh — the invariant the serving cache's read-your-writes
	// guarantee rests on.
	version atomic.Int64
	// cache is the engine-tier memoization cache shared across engine
	// swaps (entries are version-keyed, so a swap invalidates implicitly);
	// nil until EnableCache.
	cache atomic.Pointer[memo.Cache]
}

// kb returns the current knowledge-base snapshot.
func (c *queryCore) kb() *kb.KnowledgeBase { return c.kbase.Load() }

// Schema returns the model's schema.
func (c *queryCore) Schema() *Schema { return c.kb().Schema() }

// Probability returns the joint probability of the assignments.
func (c *queryCore) Probability(assigns ...Assignment) (float64, error) {
	return c.kb().Probability(assigns...)
}

// Conditional returns P(target | given), the memo's ratio of joints.
func (c *queryCore) Conditional(target, given []Assignment) (float64, error) {
	return c.kb().Conditional(target, given)
}

// Distribution returns the conditional distribution of attr given evidence.
func (c *queryCore) Distribution(attr string, given ...Assignment) (map[string]float64, error) {
	return c.kb().Distribution(attr, given...)
}

// MostLikely returns attr's most probable value given the evidence.
func (c *queryCore) MostLikely(attr string, given ...Assignment) (string, float64, error) {
	return c.kb().MostLikely(attr, given...)
}

// Lift returns P(target|given)/P(target).
func (c *queryCore) Lift(target Assignment, given ...Assignment) (float64, error) {
	return c.kb().Lift(target, given...)
}

// MostProbableExplanation returns the most likely full completion of the
// evidence (MPE/MAP inference).
func (c *queryCore) MostProbableExplanation(given ...Assignment) (Explanation, error) {
	return c.kb().MostProbableExplanation(given...)
}

// Rules extracts IF-THEN rules from the stored constraints.
func (c *queryCore) Rules(opts RuleOptions) ([]Rule, error) {
	return rules.FromKnowledgeBase(c.kb(), opts)
}

// Explain renders the stored probability formula with value labels.
func (c *queryCore) Explain() string { return c.kb().Explain() }

// DependencyDOT renders the stored dependency structure as Graphviz.
func (c *queryCore) DependencyDOT() string { return c.kb().DependencyDOT() }

// LogLoss returns the model's average negative log-likelihood (nats per
// sample) on validation counts of the same shape — dense Table or wide
// SparseTable alike (only occupied cells are scored).
func (c *queryCore) LogLoss(table Counts) (float64, error) { return c.kb().LogLoss(table) }

// LogLossSparse is LogLoss on a sparse validation table: only occupied
// cells are scored, so wide holdouts validate without densifying.
func (c *queryCore) LogLossSparse(table *SparseTable) (float64, error) {
	return c.kb().LogLoss(table)
}

// Save persists the knowledge base (schema + fitted model) as JSON — the
// interchange format.
func (c *queryCore) Save(w io.Writer) error { return c.kb().Save(w) }

// SaveSnapshot persists the knowledge base as a PKAS binary snapshot:
// schema, constraints, and the already-solved coefficients with their
// compiled engine state, so LoadSnapshot restores to the first query
// without refitting. Model overrides this with the full form that also
// carries the discovery counts; a QueryModel saves the query-only form.
func (c *queryCore) SaveSnapshot(w io.Writer) error { return c.kb().SaveBinary(w) }

// Entropy returns the fitted joint's entropy in nats.
func (c *queryCore) Entropy() (float64, error) { return c.kb().Model().Entropy() }

// NumConstraints returns the stored constraint count (first-order
// marginals included) — the model's parameter size.
func (c *queryCore) NumConstraints() int { return c.kb().Model().NumConstraints() }

// Version returns the monotonic model version: how many observe batches
// have been applied since this process loaded or discovered the model. It
// satisfies the serving layer's query.Versioned, so /v1/schema and
// /v1/observe expose it for read-your-writes against replicas.
func (c *queryCore) Version() int64 { return c.version.Load() }

// enableCache attaches an engine-tier memoization cache of the given byte
// capacity to the current knowledge base. capacityBytes == 0 leaves
// caching off; negative means unbounded. Model wraps this under its
// update lock; QueryModel (never swapped) calls it directly.
func (c *queryCore) enableCache(capacityBytes int64) {
	if capacityBytes == 0 {
		return
	}
	cc := memo.New(capacityBytes)
	c.cache.Store(cc)
	c.kbase.Store(c.kb().WithCache(cc, c.version.Load()))
}

// CacheStats reports the engine-tier cache counters (nil when caching is
// off). It satisfies query.CacheStatsReporter, so a server built over the
// model folds this tier into GET /v1/stats.
func (c *queryCore) CacheStats() []query.CacheTierStats {
	cc := c.cache.Load()
	if cc == nil {
		return nil
	}
	return []query.CacheTierStats{{Tier: "engine", Stats: cc.Stats()}}
}

// EnableCache sizes the engine-tier memoization cache: cross-request
// reuse of evidence denominators, conditional-slice sweeps, and MPE
// completions, keyed by model version. capacityBytes == 0 disables (the
// default), negative means unbounded.
func (q *QueryModel) EnableCache(capacityBytes int64) { q.enableCache(capacityBytes) }

// KnowledgeBase exposes the query layer for advanced use. AnswerBatch also
// keys on it to route batches through the shared-engine fast path; note
// that a streaming update swaps the returned snapshot out from under
// long-lived holders (grab it per batch, not per process).
func (c *queryCore) KnowledgeBase() *kb.KnowledgeBase { return c.kb() }

// Info is the metadata digest available on any knowledge base — including
// loaded query-only models, which carry no discovery record.
type Info struct {
	// Attributes is the schema's attribute count.
	Attributes int
	// Cells is the joint space size (product of cardinalities), or 0 when
	// it exceeds the machine int range — the wide factored regime, where
	// the joint is never materialized anyway.
	Cells int
	// Constraints is the stored constraint count.
	Constraints int
	// MaxOrder is the highest stored constraint order.
	MaxOrder int
	// Version is the monotonic model version: applied observe batches since
	// load (on a replicated primary, the observe log's next offset).
	Version int64
}

// Info returns the knowledge base's metadata digest.
func (c *queryCore) Info() Info {
	kbase := c.kb()
	m := kbase.Model()
	info := Info{
		Attributes:  m.R(),
		Constraints: m.NumConstraints(),
		Version:     c.version.Load(),
	}
	cells := 1
	for i := 0; i < info.Attributes; i++ {
		card := kbase.Schema().Attr(i).Card()
		if cells > math.MaxInt/card {
			cells = 0
			break
		}
		cells *= card
	}
	info.Cells = cells
	for _, con := range m.Constraints() {
		if o := con.Order(); o > info.MaxOrder {
			info.MaxOrder = o
		}
	}
	return info
}

// Summary renders a one-line digest of the stored knowledge base. Model
// overrides it with the discovery run's digest (sample count, findings);
// this shared form is what a loaded QueryModel can say about a file.
func (c *queryCore) Summary() string {
	i := c.Info()
	cells := "joint space beyond int range"
	if i.Cells > 0 {
		cells = fmt.Sprintf("%d cells", i.Cells)
	}
	return fmt.Sprintf("knowledge base: %d attributes (%s), %d constraints, max order %d\n",
		i.Attributes, cells, i.Constraints, i.MaxOrder)
}
