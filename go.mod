module pka

go 1.24
