package pka

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// pka_cache_test.go — the serving-cache correctness battery: with caching
// on, every wire response must be byte-identical to the cache-off server,
// for every query kind, on dense and factored engines, before and after
// streaming updates, at any worker setting; and the whole stack must stay
// clean under -race while observes and queries interleave.

// cacheTestModel discovers a fresh model over the deterministic stream
// corpus: factored (sparse tabulation, multi-block engine) or dense.
func cacheTestModel(t testing.TB, factored bool) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	schema := streamSchema(t)
	rows := streamRows(rng, 3000)
	opts := Options{MaxOrder: 2}
	if factored {
		m, err := DiscoverSparse(sparseOf(t, schema, rows), schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	d := NewDataset(schema)
	for _, r := range rows {
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Discover(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cacheRequest is one wire request of the equality sweep.
type cacheRequest struct {
	name, method, path, body string
}

// cacheSweepRequests covers every query kind — the six /v1/query kinds,
// rules, and explain — plus the batch endpoint and two error shapes
// (errors are never cached, but their bytes must not change either).
var cacheSweepRequests = []cacheRequest{
	{"probability", "POST", "/v1/query", `{"kind":"probability","target":[{"attr":"A","value":"a1"},{"attr":"B","value":"b1"}]}`},
	{"conditional", "POST", "/v1/query", `{"kind":"conditional","target":[{"attr":"B","value":"b1"}],"given":[{"attr":"A","value":"a1"}]}`},
	{"distribution", "POST", "/v1/query", `{"kind":"distribution","attr":"D","given":[{"attr":"C","value":"c0"}]}`},
	{"most_likely", "POST", "/v1/query", `{"kind":"most_likely","attr":"B","given":[{"attr":"A","value":"a0"}]}`},
	{"lift", "POST", "/v1/query", `{"kind":"lift","target":[{"attr":"B","value":"b0"}],"given":[{"attr":"A","value":"a0"}]}`},
	{"mpe", "POST", "/v1/query", `{"kind":"mpe","given":[{"attr":"A","value":"a2"}]}`},
	{"rules", "GET", "/v1/rules?min_lift=0.05&top=10", ""},
	{"explain", "GET", "/v1/explain", ""},
	{"batch", "POST", "/v1/query/batch", `{"queries":[` +
		`{"kind":"probability","target":[{"attr":"C","value":"c1"}]},` +
		`{"kind":"conditional","target":[{"attr":"D","value":"d1"}],"given":[{"attr":"C","value":"c1"}]},` +
		`{"kind":"mpe","given":[{"attr":"B","value":"b0"}]}]}`},
	{"contradiction", "POST", "/v1/query", `{"kind":"probability","target":[{"attr":"A","value":"a0"},{"attr":"A","value":"a1"}]}`},
	{"unknown_attr", "POST", "/v1/query", `{"kind":"probability","target":[{"attr":"Z","value":"z0"}]}`},
}

// doCacheRequest issues one sweep request and returns status plus body.
func doCacheRequest(t testing.TB, base string, req cacheRequest) (int, []byte) {
	t.Helper()
	var resp *http.Response
	var err error
	if req.method == "GET" {
		resp, err = http.Get(base + req.path)
	} else {
		resp, err = http.Post(base+req.path, "application/json", strings.NewReader(req.body))
	}
	if err != nil {
		t.Fatalf("%s: %v", req.name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: reading body: %v", req.name, err)
	}
	return resp.StatusCode, body
}

// TestCacheWireByteIdentity: two identical models, one served with every
// cache tier armed and one with caching off, answer each sweep request
// with byte-identical responses — on the miss, on the hit, and again after
// both fold in the same observe batch.
func TestCacheWireByteIdentity(t *testing.T) {
	for _, eng := range []struct {
		name     string
		factored bool
	}{{"dense", false}, {"factored", true}} {
		for _, workers := range []int{1, 0} {
			t.Run(fmt.Sprintf("%s/workers=%d", eng.name, workers), func(t *testing.T) {
				mOn := cacheTestModel(t, eng.factored)
				mOff := cacheTestModel(t, eng.factored)
				mOn.EnableCache(1 << 20)
				srvOn := httptest.NewServer(NewServerWithOptions(mOn,
					ServerOptions{Workers: workers, CacheBytes: 1 << 20}))
				defer srvOn.Close()
				srvOff := httptest.NewServer(NewServerWithOptions(mOff,
					ServerOptions{Workers: workers}))
				defer srvOff.Close()

				sweep := func(stage string) {
					for _, req := range cacheSweepRequests {
						offStatus, offBody := doCacheRequest(t, srvOff.URL, req)
						for pass, label := range []string{"miss", "hit"} {
							onStatus, onBody := doCacheRequest(t, srvOn.URL, req)
							if onStatus != offStatus {
								t.Fatalf("%s %s (%s): cached server answered %d, uncached %d",
									stage, req.name, label, onStatus, offStatus)
							}
							if !bytes.Equal(onBody, offBody) {
								t.Fatalf("%s %s (pass %d, %s): cached bytes diverge\n  on: %s\n off: %s",
									stage, req.name, pass, label, onBody, offBody)
							}
						}
					}
				}

				sweep("cold")
				delta := streamRows(rand.New(rand.NewSource(83)), 40)
				if _, err := mOn.Update(delta); err != nil {
					t.Fatal(err)
				}
				if _, err := mOff.Update(delta); err != nil {
					t.Fatal(err)
				}
				// The very next request after the update must already serve
				// post-update bytes: read-your-writes with no settling time.
				sweep("post-observe")
			})
		}
	}
}

// statsTiers decodes GET /v1/stats into tier-name -> counters.
func statsTiers(t testing.TB, base string) (int64, map[string]map[string]int64) {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var parsed struct {
		Version int64 `json:"version"`
		Tiers   []struct {
			Tier      string `json:"tier"`
			Hits      int64  `json:"hits"`
			Misses    int64  `json:"misses"`
			Evictions int64  `json:"evictions"`
			Entries   int64  `json:"entries"`
			Bytes     int64  `json:"bytes"`
		} `json:"tiers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	tiers := make(map[string]map[string]int64, len(parsed.Tiers))
	for _, tr := range parsed.Tiers {
		tiers[tr.Tier] = map[string]int64{
			"hits": tr.Hits, "misses": tr.Misses,
			"evictions": tr.Evictions, "entries": tr.Entries, "bytes": tr.Bytes,
		}
	}
	return parsed.Version, tiers
}

// TestCacheStatsAndInvalidation drives the observable cache lifecycle
// through /v1/stats: a repeated query advances the wire tier's hit
// counter, an observe batch advances the version, and the first
// post-observe answer reflects the new model (served fresh, not from the
// stale entry, which version mismatch retires).
func TestCacheStatsAndInvalidation(t *testing.T) {
	m := cacheTestModel(t, true)
	m.EnableCache(1 << 20)
	srv := httptest.NewServer(NewServerWithOptions(m, ServerOptions{CacheBytes: 1 << 20}))
	defer srv.Close()

	query := cacheSweepRequests[1] // conditional
	v0, tiers := statsTiers(t, srv.URL)
	if _, ok := tiers["wire"]; !ok {
		t.Fatalf("wire tier missing from stats: %v", tiers)
	}
	if _, ok := tiers["engine"]; !ok {
		t.Fatalf("engine tier missing from stats: %v", tiers)
	}

	_, first := doCacheRequest(t, srv.URL, query)
	_, second := doCacheRequest(t, srv.URL, query)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated query changed bytes: %s vs %s", first, second)
	}
	_, tiers = statsTiers(t, srv.URL)
	if hits := tiers["wire"]["hits"]; hits < 1 {
		t.Errorf("wire hits = %d after a repeated query, want >= 1", hits)
	}

	if _, err := m.Update(streamRows(rand.New(rand.NewSource(17)), 60)); err != nil {
		t.Fatal(err)
	}
	v1, _ := statsTiers(t, srv.URL)
	if v1 <= v0 {
		t.Fatalf("version did not advance across observe: %d -> %d", v0, v1)
	}
	_, after := doCacheRequest(t, srv.URL, query)
	var res QueryResult
	if err := json.Unmarshal(after, &res); err != nil || res.Error != "" {
		t.Fatalf("post-observe answer: %v %s", err, after)
	}
	if bytes.Equal(after, first) {
		t.Error("post-observe answer still serves pre-observe bytes")
	}
	// The fresh answer must itself be cache-consistent: ask again.
	_, again := doCacheRequest(t, srv.URL, query)
	if !bytes.Equal(after, again) {
		t.Fatalf("post-observe answer unstable: %s vs %s", after, again)
	}
}

// TestCacheObserveQueryRaceHammer is the cached twin of the server race
// hammer: observes stream in while HTTP single queries, HTTP batches, and
// direct in-process queries hammer the same model with every cache tier
// armed. Run under -race; correctness here is "no race, no error, sane
// probabilities" — byte identity is the equality test's job.
func TestCacheObserveQueryRaceHammer(t *testing.T) {
	m := cacheTestModel(t, true)
	m.EnableCache(1 << 18) // small enough that eviction pressure is real
	srv := httptest.NewServer(NewServerWithOptions(m, ServerOptions{CacheBytes: 1 << 18}))
	defer srv.Close()

	batchBody := cacheSweepRequests[8].body
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := cacheSweepRequests[g%6]
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body := doCacheRequest(t, srv.URL, req)
				if status != http.StatusOK {
					t.Errorf("%s: status %d: %s", req.name, status, body)
					return
				}
				if status, body = doCacheRequest(t, srv.URL,
					cacheRequest{"batch", "POST", "/v1/query/batch", batchBody}); status != http.StatusOK {
					t.Errorf("batch: status %d: %s", status, body)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := m.Conditional(
				[]Assignment{{Attr: "B", Value: "b1"}},
				[]Assignment{{Attr: "A", Value: "a1"}})
			if err != nil || p <= 0 || p > 1 {
				t.Errorf("direct conditional: %v p=%g", err, p)
				return
			}
		}
	}()

	obsRng := rand.New(rand.NewSource(29))
	for i := 0; i < 8; i++ {
		if _, err := m.Update(streamRows(obsRng, 15)); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
