package pka

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// wideStreamSchema is a 16-binary-attribute schema: wide enough that the
// model fits and serves through the factored engine and the association
// screen gates discovery, the regime every parallel path engages in.
func wideStreamSchema(t testing.TB) *Schema {
	t.Helper()
	attrs := make([]Attribute, 16)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("W%d", i), Values: []string{"0", "1"}}
	}
	s, err := NewSchema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wideStreamRows draws rows with two planted couplings.
func wideStreamRows(rng *rand.Rand, n int) []Record {
	rows := make([]Record, n)
	for i := range rows {
		cell := make(Record, 16)
		for j := range cell {
			cell[j] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[15] = cell[0]
		}
		if rng.Float64() < 0.6 {
			cell[8] = cell[1]
		}
		rows[i] = cell
	}
	return rows
}

// TestParallelFitScreenServeRaceHammer is the tentpole's -race hammer: one
// wide streaming model concurrently (a) folding in observation batches —
// each Update runs the parallel association screen and the parallel
// incremental factored refit — (b) serving HTTP batch queries through the
// parallel per-evidence-group executor, (c) answering direct AnswerBatch
// calls, and (d) reading the discovery record (Screen, Findings, Fit).
// Every served probability must stay in range and no request may fail;
// the race detector guards the rest.
func TestParallelFitScreenServeRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	schema := wideStreamSchema(t)
	model, err := DiscoverSparse(
		sparseOf(t, schema, wideStreamRows(rng, 4000)), schema,
		Options{MaxOrder: 2, ScreenPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(model))
	defer srv.Close()

	var queries []Query
	for g := 0; g < 6; g++ {
		given := []Assignment{{Attr: "W0", Value: fmt.Sprint(g % 2)}, {Attr: "W1", Value: fmt.Sprint((g / 2) % 2)}}
		queries = append(queries,
			Query{Kind: QueryConditional, Target: []Assignment{{Attr: "W15", Value: "1"}}, Given: given},
			Query{Kind: QueryDistribution, Attr: "W8", Given: given},
			Query{Kind: QueryMPE, Given: given},
		)
	}
	batchBody, err := json.Marshal(struct {
		Queries []Query `json:"queries"`
	}{queries})
	if err != nil {
		t.Fatal(err)
	}

	const (
		updaters     = 1
		httpQueriers = 3
		directs      = 2
		readers      = 1
		iterations   = 6
	)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			upRng := rand.New(rand.NewSource(72))
			for i := 0; i < iterations; i++ {
				if _, err := model.Update(wideStreamRows(upRng, 50)); err != nil {
					fail("update: " + err.Error())
					return
				}
			}
		}()
	}
	for g := 0; g < httpQueriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations*3; i++ {
				resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", bytes.NewReader(batchBody))
				if err != nil {
					fail("http batch: " + err.Error())
					return
				}
				var body struct {
					Results []QueryResult `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Sprintf("http batch: %v status %d", err, resp.StatusCode))
					return
				}
				if len(body.Results) != len(queries) {
					fail(fmt.Sprintf("http batch: %d results for %d queries", len(body.Results), len(queries)))
					return
				}
				for qi, r := range body.Results {
					if r.Error != "" {
						fail(fmt.Sprintf("http batch query %d: %s", qi, r.Error))
						return
					}
					if r.Probability < 0 || r.Probability > 1 {
						fail(fmt.Sprintf("http batch query %d: probability %g", qi, r.Probability))
						return
					}
				}
			}
		}()
	}
	for d := 0; d < directs; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations*3; i++ {
				results, err := AnswerBatchWorkers(model, queries, 3)
				if err != nil {
					fail("direct batch: " + err.Error())
					return
				}
				for qi, r := range results {
					if r.Error != "" {
						fail(fmt.Sprintf("direct batch query %d: %s", qi, r.Error))
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations*4; i++ {
				if rep := model.Screen(); rep != nil && rep.PairsTotal != 120 {
					fail(fmt.Sprintf("screen surveyed %d pairs, want C(16,2)=120", rep.PairsTotal))
					return
				}
				_ = model.Findings()
				_ = model.Fit()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
