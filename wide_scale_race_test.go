//go:build race

package pka_test

// Race-build wide end-to-end workload: still far past the 64-attribute
// single-word ceiling (200 attributes, 4 key words), but small enough that
// the race-instrumented O(pairs × occupied) screen finishes in seconds.
// The full 520-attribute instance runs in every non-race test pass.
const (
	wideE2EPairs          = 100 // 200 attributes
	wideE2ERows           = 800
	wideE2EMaxConstraints = 20
	wideE2EMinRecovered   = 6
	wideE2ECheckPairs     = 3
)
