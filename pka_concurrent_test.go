package pka_test

import (
	"bytes"
	"sync"
	"testing"

	"pka"
	"pka/internal/paperdata"
)

// concurrentModel discovers the memo model once for the concurrency tests.
func concurrentModel(t *testing.T) *pka.Model {
	t.Helper()
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelConcurrentQueries exercises the public concurrency contract:
// one discovered pka.Model serving mixed queries from many goroutines
// (run with -race), with deterministic answers throughout.
func TestModelConcurrentQueries(t *testing.T) {
	m := concurrentModel(t)
	smoker := pka.Assignment{Attr: "SMOKING", Value: "Smoker"}
	cancer := pka.Assignment{Attr: "CANCER", Value: "Yes"}

	wantProb, err := m.Probability(smoker, cancer)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := m.Distribution("CANCER", smoker)
	if err != nil {
		t.Fatal(err)
	}
	wantMPE, err := m.MostProbableExplanation(cancer)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				switch (g + i) % 3 {
				case 0:
					p, err := m.Probability(smoker, cancer)
					if err != nil || p != wantProb {
						errs <- "Probability diverged under concurrency"
						return
					}
				case 1:
					d, err := m.Distribution("CANCER", smoker)
					if err != nil {
						errs <- err.Error()
						return
					}
					for v, p := range wantDist {
						if d[v] != p {
							errs <- "Distribution diverged under concurrency"
							return
						}
					}
				default:
					e, err := m.MostProbableExplanation(cancer)
					if err != nil || e.Probability != wantMPE.Probability {
						errs <- "MostProbableExplanation diverged under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestQueryModelConcurrentQueries covers the save/load deployment path:
// a loaded pka.QueryModel hammered by concurrent mixed queries.
func TestQueryModelConcurrentQueries(t *testing.T) {
	var buf bytes.Buffer
	if err := concurrentModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := pka.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	smoker := pka.Assignment{Attr: "SMOKING", Value: "Smoker"}
	cancer := pka.Assignment{Attr: "CANCER", Value: "Yes"}
	wantProb, err := q.Probability(smoker, cancer)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, wantP, err := q.MostLikely("CANCER", smoker)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				switch (g + i) % 3 {
				case 0:
					p, err := q.Probability(smoker, cancer)
					if err != nil || p != wantProb {
						errs <- "QueryModel.Probability diverged under concurrency"
						return
					}
				case 1:
					best, p, err := q.MostLikely("CANCER", smoker)
					if err != nil || best != wantBest || p != wantP {
						errs <- "QueryModel.MostLikely diverged under concurrency"
						return
					}
				default:
					if _, err := q.MostProbableExplanation(cancer); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
