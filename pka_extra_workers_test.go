package pka_test

import (
	"testing"

	"pka"
	"pka/internal/paperdata"
)

// TestDiscoverNegativeWorkers: Options.Workers < 0 means GOMAXPROCS (the
// pre-parallel-solver contract), flowing through the scan, the screen,
// and the solver without error.
func TestDiscoverNegativeWorkers(t *testing.T) {
	m, err := pka.Discover(paperdata.Records(), pka.Options{Workers: -1})
	if err != nil {
		t.Fatalf("Workers=-1 discovery failed: %v", err)
	}
	ref, err := pka.Discover(paperdata.Records(), pka.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1, err1 := m.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	p2, err2 := ref.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err1 != nil || err2 != nil || p1 != p2 {
		t.Fatalf("Workers=-1 diverged: %x vs %x (%v, %v)", p1, p2, err1, err2)
	}
}
