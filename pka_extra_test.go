package pka

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pka/internal/paperdata"
	"pka/internal/stats"
)

func TestModelFitReport(t *testing.T) {
	m := memoModel(t, Options{})
	fit := m.Fit()
	if fit.G2 <= 0 {
		t.Errorf("G2 = %g, want positive on finite data", fit.G2)
	}
	if fit.DF <= 0 {
		t.Errorf("df = %d, want positive", fit.DF)
	}
	if fit.PValue < 0.01 {
		t.Errorf("discovered model rejected on its own data: p = %g", fit.PValue)
	}
}

func TestModelLogLossSelf(t *testing.T) {
	m := memoModel(t, Options{})
	tab := paperdata.Table()
	loss, err := m.LogLoss(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Self log-loss = H(emp) + KL(emp‖model): it can't beat the empirical
	// entropy and should exceed it only by the model's small residual KL.
	probs, err := tab.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	h := stats.Entropy(probs)
	if loss < h-1e-9 {
		t.Errorf("log loss %.4f below empirical entropy %.4f", loss, h)
	}
	if loss > h+0.01 {
		t.Errorf("log loss %.4f far above empirical entropy %.4f", loss, h)
	}
}

func TestRulesWithIntervalsFacade(t *testing.T) {
	m := memoModel(t, Options{})
	scored, err := m.RulesWithIntervals(RuleOptions{MinLiftDistance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) == 0 {
		t.Fatal("no scored rules")
	}
	for _, s := range scored {
		if s.CI.Low > s.Probability || s.CI.High < s.Probability {
			t.Errorf("CI excludes estimate: %s", s)
		}
		if !strings.Contains(s.String(), "CI95=") {
			t.Errorf("String missing interval: %s", s)
		}
	}
}

func TestIncludeForcedCellsOption(t *testing.T) {
	// The raw memo mode admits forced cells, so it can only find at least
	// as many constraints as the default mode.
	def := memoModel(t, Options{})
	raw := memoModel(t, Options{IncludeForcedCells: true})
	if len(raw.Findings()) < len(def.Findings()) {
		t.Errorf("raw mode found %d, default %d", len(raw.Findings()), len(def.Findings()))
	}
}

func TestAssociationsFacade(t *testing.T) {
	pairs, err := Associations(paperdata.Table())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	out := RenderAssociations(paperdata.Schema().Names(), pairs)
	if !strings.Contains(out, "SMOKING") {
		t.Errorf("render missing names:\n%s", out)
	}
}

func TestMPEFacade(t *testing.T) {
	m := memoModel(t, Options{})
	exp, err := m.MostProbableExplanation(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Assignments) != 3 || exp.Probability <= 0 {
		t.Errorf("explanation = %+v", exp)
	}
	// Also reachable after save/load.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	exp2, err := q.MostProbableExplanation(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Probability-exp2.Probability) > 1e-12 {
		t.Error("MPE differs after reload")
	}
	if _, err := q.LogLoss(paperdata.Table()); err != nil {
		t.Errorf("loaded LogLoss: %v", err)
	}
}

func TestAssociationsSparseFacade(t *testing.T) {
	s, err := NewSparseTable(paperdata.Schema())
	if err != nil {
		t.Fatal(err)
	}
	paperdata.Table().EachCell(func(cell []int, count int64) {
		if count > 0 {
			if err := s.Add(count, cell...); err != nil {
				t.Fatal(err)
			}
		}
	})
	pairs, err := AssociationsSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Associations(paperdata.Table())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(dense) {
		t.Fatalf("sparse %d pairs, dense %d", len(pairs), len(dense))
	}
	for i := range pairs {
		if math.Abs(pairs[i].MI-dense[i].MI) > 1e-12 {
			t.Errorf("pair %d MI differs", i)
		}
	}
}

func TestSparseFacade(t *testing.T) {
	schema := paperdata.Schema()
	s, err := NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if s.Total() != 2 || s.Occupied() != 2 {
		t.Errorf("sparse totals: %d, %d", s.Total(), s.Occupied())
	}
	dense, err := s.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if dense.Total() != 2 {
		t.Errorf("dense total = %d", dense.Total())
	}
}

func TestTabulateCSVFacade(t *testing.T) {
	var csvBuf bytes.Buffer
	if err := paperdata.Records().WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	table, err := TabulateCSV(bytes.NewReader(csvBuf.Bytes()), paperdata.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(paperdata.Table()) {
		t.Error("streamed tabulation differs from fixture")
	}
	sparse, err := TabulateCSVSparse(bytes.NewReader(csvBuf.Bytes()), paperdata.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Total() != paperdata.TotalN {
		t.Errorf("sparse total = %d", sparse.Total())
	}
}

func TestSelectMaxOrderFacade(t *testing.T) {
	scores, best, err := SelectMaxOrder(paperdata.Table(), 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	if best != 2 && best != 3 {
		t.Errorf("chosen order = %d", best)
	}
	// The memo's data has no third-order structure, so the gap must be
	// small and order 2 usually wins or ties.
	gap := math.Abs(scores[0].MeanLoss - scores[1].MeanLoss)
	if gap > 0.01 {
		t.Errorf("order gap %.4f on pairwise-only data", gap)
	}
	if _, _, err := SelectMaxOrder(paperdata.Table(), 9, 3, 7); err == nil {
		t.Error("maxOrder above R accepted")
	}
}

func TestBinnerFacade(t *testing.T) {
	// Bins() counts the requested interval bins plus the NaN catch-all.
	b, err := NewEqualWidthBinner(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 5 {
		t.Errorf("bins = %d, want 4 intervals + catch-all", b.Bins())
	}
	if got := b.Bin(math.NaN()); got != b.Bins()-1 {
		t.Errorf("NaN binned to %d, want the catch-all %d", got, b.Bins()-1)
	}
	if got := b.Bin(0.99); got == b.Bins()-1 {
		t.Error("real reading landed in the NaN catch-all")
	}
	q, err := NewQuantileBinner([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bins() != 3 {
		t.Errorf("quantile bins = %d, want 2 intervals + catch-all", q.Bins())
	}
}
