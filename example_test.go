package pka_test

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/paperdata"
)

// ExampleDiscover runs the full acquisition procedure on the memo's
// smoking/cancer survey and prints the discovery summary's first line.
func ExampleDiscover() {
	data := paperdata.Records() // 3428 survey records
	model, err := pka.Discover(data, pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("findings: %d\n", len(model.Findings()))
	first := model.Findings()[0]
	fmt.Printf("most significant: order %d, m2-m1 = %.2f\n",
		first.Order, first.Test.Delta)
	// Output:
	// findings: 3
	// most significant: order 2, m2-m1 = -11.57
}

// ExampleModel_Conditional answers the memo's IF-THEN query
// P(CANCER | SMOKING) from the stored formula.
func ExampleModel_Conditional() {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := model.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(cancer | smoker) = %.3f\n", p)
	// Output:
	// P(cancer | smoker) = 0.186
}

// ExampleModel_Rules extracts the memo's IF-THEN rule form.
func ExampleModel_Rules() {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rules, err := model.Rules(pka.RuleOptions{MinLiftDistance: 0.3, MaxRules: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rules[0])
	// Output:
	// IF SMOKING=Smoker THEN CANCER=Yes (p=0.186, support=0.070, lift=1.47)
}

// ExampleModel_MostProbableExplanation finds the most likely world state
// consistent with evidence.
func ExampleModel_MostProbableExplanation() {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exp, err := model.MostProbableExplanation(
		pka.Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range exp.Assignments {
		fmt.Println(a)
	}
	// Output:
	// SMOKING=Smoker
	// CANCER=Yes
	// FAMILY HISTORY=Yes
}

// ExampleAnswer routes a first-class Query value through the unified
// Querier API — the same form the HTTP server and `pka query -json` use.
func ExampleAnswer() {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pka.Answer(model, pka.Query{
		Kind:   pka.QueryConditional,
		Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		Given:  []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(cancer | smoker) = %.3f\n", res.Probability)
	// Output:
	// P(cancer | smoker) = 0.186
}

// ExampleAnswerBatch answers a same-evidence group of queries in one
// batch: the evidence is validated and priced once and the conditionals
// are served from one engine sweep, bit-identical to per-query Answer.
func ExampleAnswerBatch() {
	model, err := pka.DiscoverTable(paperdata.Table(), paperdata.Schema(), pka.Options{})
	if err != nil {
		log.Fatal(err)
	}
	smoker := []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	results, err := pka.AnswerBatch(model, []pka.Query{
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "No"}}, Given: smoker},
		{Kind: pka.QueryMostLikely, Attr: "FAMILY HISTORY", Given: smoker},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(cancer | smoker)    = %.3f\n", results[0].Probability)
	fmt.Printf("P(no cancer | smoker) = %.3f\n", results[1].Probability)
	fmt.Printf("likely family history = %s\n", results[2].Value)
	// Output:
	// P(cancer | smoker)    = 0.186
	// P(no cancer | smoker) = 0.814
	// likely family history = No
}

// ExampleAssociations surveys pairwise associations before modeling.
func ExampleAssociations() {
	pairs, err := pka.Associations(paperdata.Table())
	if err != nil {
		log.Fatal(err)
	}
	names := paperdata.Schema().Names()
	top := pairs[0]
	fmt.Printf("strongest pair: %s × %s\n", names[top.I], names[top.J])
	// Output:
	// strongest pair: SMOKING × FAMILY HISTORY
}
