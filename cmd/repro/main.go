// Command repro regenerates every table and figure of Gevarter's NASA
// TM-88224 / ICDE 1987 memo from this implementation, printing measured
// values side by side with the paper's published ones.
//
// Usage:
//
//	repro -exp all          # everything, in paper order
//	repro -exp table1       # one experiment: fig1 fig2 table1 table2
//	                        # fig3 fig4 fig5 fig6 prior appB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// experiments maps experiment ids to their runners, in paper order.
var experiments = []struct {
	id   string
	desc string
	run  func(w io.Writer) error
}{
	{"fig1", "Figure 1: smoking/cancer contingency tables", runFigure1},
	{"fig2", "Figure 2: marginal sums", runFigure2},
	{"table1", "Table 1: second-order significance scan", runTable1},
	{"table2", "Table 2: iterative a-value calculation", runTable2},
	{"fig3", "Figure 3: overall discovery procedure", runFigure3},
	{"fig4", "Figure 4: a-value refitting per constraint", runFigure4},
	{"fig5", "Figure 5: original data form", runFigure5},
	{"fig6", "Figure 6: sample data in triples form", runFigure6},
	{"prior", "p(H2') prior sensitivity (memo's Eq. 63 note)", runPrior},
	{"appB", "Appendix B: sum-of-products evaluation", runAppendixB},
	{"gof", "goodness of fit of the discovered model (extension)", runGoodnessOfFit},
	{"assoc", "pairwise association survey (extension)", runAssociations},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (all, fig1, fig2, table1, table2, fig3, fig4, fig5, fig6, prior, appB)")
	flag.Parse()
	if err := run(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string) error {
	matched := false
	for _, e := range experiments {
		if exp != "all" && e.id != exp {
			continue
		}
		matched = true
		fmt.Fprintf(w, "\n### %s — %s\n\n", e.id, e.desc)
		if err := e.run(w); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
