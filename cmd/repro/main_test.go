package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"### fig1", "### table1", "### table2", "### fig3", "### appB",
		"130", "N^AB_11", "-11.57", "p^AC_12", "machine precision",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "gof"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "independence (first order only)") {
		t.Errorf("gof output:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, "assoc"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SMOKING × CANCER", "Cramér's V"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("assoc output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "prior"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"-0.40", "-1.39"} {
		if !strings.Contains(out, want) {
			t.Errorf("prior output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "### fig1") {
		t.Error("single experiment printed others")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1DecisionsMatchPaper(t *testing.T) {
	// The significance column must mark exactly the paper's 7 cells.
	var buf bytes.Buffer
	if err := run(&buf, "table1"); err != nil {
		t.Fatal(err)
	}
	sig := strings.Count(buf.String(), "true")
	if sig != 7 {
		t.Errorf("%d significant rows, paper has 7:\n%s", sig, buf.String())
	}
}
