package main

import (
	"fmt"
	"io"
	"math"

	"pka/internal/assoc"
	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/maxent"
	"pka/internal/mml"
	"pka/internal/paperdata"
	"pka/internal/report"
	"pka/internal/sumprod"
)

// cellName renders N^{AB}_{11}-style names with the memo's letters.
func cellName(family contingency.VarSet, values []int) string {
	letters := []string{"A", "B", "C"}
	sup, sub := "", ""
	for i, p := range family.Members() {
		sup += letters[p]
		sub += fmt.Sprintf("%d", values[i]+1)
	}
	return fmt.Sprintf("N^%s_%s", sup, sub)
}

func runFigure1(w io.Writer) error {
	tab := paperdata.Table()
	fmt.Fprintln(w, "Rows = SMOKING, columns = CANCER, one block per FAMILY HISTORY value.")
	fmt.Fprintln(w, "Paper: Figure 1a (family history = yes), 1b (no); N = 3428.")
	fmt.Fprintln(w)
	return tab.RenderSlices(w, paperdata.PosSmoking, paperdata.PosCancer, false)
}

func runFigure2(w io.Writer) error {
	tab := paperdata.Table()
	fmt.Fprintln(w, "Same tables with marginals (Figures 2a, 2b):")
	fmt.Fprintln(w)
	if err := tab.RenderSlices(w, paperdata.PosSmoking, paperdata.PosCancer, true); err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2c — SMOKING × CANCER summed over family history:")
	fmt.Fprintln(w)
	ab, err := tab.Marginalize(contingency.NewVarSet(paperdata.PosSmoking, paperdata.PosCancer))
	if err != nil {
		return err
	}
	return ab.RenderSlices(w, 0, 1, true)
}

// independencePrediction returns the Eq. 62 product-of-marginals predictor.
func independencePrediction(tab *contingency.Table) (func(contingency.VarSet, []int) (float64, error), error) {
	first, err := tab.FirstOrderProbabilities()
	if err != nil {
		return nil, err
	}
	return func(fam contingency.VarSet, values []int) (float64, error) {
		p := 1.0
		for i, pos := range fam.Members() {
			p *= first[pos][values[i]]
		}
		return p, nil
	}, nil
}

func runTable1(w io.Writer) error {
	tab := paperdata.Table()
	tester, err := mml.NewTester(tab, mml.DefaultConfig())
	if err != nil {
		return err
	}
	predict, err := independencePrediction(tab)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"cell", "p(indep)", "N obs",
		"mean", "mean(paper)", "sd", "z", "z(paper)",
		"m2-m1", "m2-m1(paper)", "p(H1|D)/p(H2|D)", "significant").
		Align(report.Left, report.Right, report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right, report.Right, report.Right,
			report.Right, report.Left)
	for _, row := range paperdata.Table1() {
		p, err := predict(row.Family, row.Values[:])
		if err != nil {
			return err
		}
		ct, err := tester.Test(row.Family, row.Values[:], p)
		if err != nil {
			return err
		}
		meanPaper := "(ocr?)"
		zPaper := "(ocr?)"
		if row.Mean > 0 {
			meanPaper = fmt.Sprintf("%.0f", row.Mean)
			zPaper = fmt.Sprintf("%.2f", row.Z)
		}
		t.AddRow(
			cellName(row.Family, row.Values[:]),
			fmt.Sprintf("%.3f", ct.Predicted),
			fmt.Sprintf("%d", ct.Observed),
			fmt.Sprintf("%.0f", ct.Mean),
			meanPaper,
			fmt.Sprintf("%.1f", ct.SD),
			fmt.Sprintf("%.2f", ct.Z),
			zPaper,
			fmt.Sprintf("%.2f", ct.Delta),
			fmt.Sprintf("%.2f", row.Delta),
			report.Float(ct.LikelihoodRatio, 1, 0.1),
			fmt.Sprintf("%v", ct.Significant),
		)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nNotes: the paper rounds p to 3 digits before computing means, which")
	fmt.Fprintln(w, "shifts its extreme rows; all 16 significance decisions (the sign of")
	fmt.Fprintln(w, "m2-m1) match the paper. '(ocr?)' marks entries garbled in the scan.")
	return nil
}

func runTable2(w io.Writer) error {
	tab := paperdata.Table()
	model, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		return err
	}
	if err := model.AddFirstOrderConstraints(tab); err != nil {
		return err
	}
	if _, err := model.Fit(maxent.SolveOptions{}); err != nil {
		return err
	}
	fam, values, target := paperdata.Table2Constraint()
	if err := model.AddConstraint(maxent.Constraint{Family: fam, Values: values, Target: target}); err != nil {
		return err
	}
	rep, err := model.Fit(maxent.SolveOptions{Tol: 1e-3, RecordTrace: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Constraint: p^AC_12 = %.3f (the paper's .219). Tolerance 1e-3,\n", target)
	fmt.Fprintf(w, "matching the paper's 2-decimal hand iteration (its Table 2: 7 passes).\n\n")
	fmt.Fprintf(w, "Converged: %v in %d sweeps (residual %.2g).\n\n", rep.Converged, rep.Sweeps, rep.Residual)
	t := report.NewTable(append([]string{"sweep"}, append(rep.Labels, "a0")...)...)
	for s, snap := range rep.Trace {
		row := make([]string, 0, len(snap)+2)
		row = append(row, fmt.Sprintf("%d", s+1))
		for _, v := range snap {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		row = append(row, fmt.Sprintf("%.3f", rep.A0Trace[s]))
		t.AddRow(row...)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	// Verify the fitted model satisfies the constraint and the paper's
	// conditional-independence property.
	if _, err := model.Fit(maxent.SolveOptions{}); err != nil {
		return err
	}
	got, err := model.Prob(fam, values)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFitted p^AC_12 = %.6f (target %.6f).\n", got, target)
	fmt.Fprintln(w, "Paper check: B stays independent of (A,C) — Eqs. 68-69 'do not contribute':")
	pB, _ := model.Prob(contingency.NewVarSet(paperdata.PosCancer), []int{0})
	pAC, _ := model.Prob(fam, values)
	full := contingency.NewVarSet(paperdata.PosSmoking, paperdata.PosCancer, paperdata.PosFamily)
	pABC, _ := model.Prob(full, []int{0, 0, 1})
	fmt.Fprintf(w, "  p(A=1,B=1,C=2) = %.6f vs p^AC_12 · p^B_1 = %.6f\n", pABC, pAC*pB)
	return nil
}

func runFigure3(w io.Writer) error {
	res, err := core.Discover(paperdata.Table(), core.Options{RecordScans: true})
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Summary())
	fmt.Fprintln(w, "\nScan passes (the first pass at order 2 is exactly Table 1):")
	for _, s := range res.Scans {
		sel := "none significant — order complete"
		if s.Selected >= 0 {
			ct := s.Tests[s.Selected]
			sel = fmt.Sprintf("selected %s (m2-m1 = %.2f)", cellName(ct.Family, ct.Values), ct.Delta)
		}
		fmt.Fprintf(w, "  order %d pass %d: %d candidates, %s\n",
			s.Order, s.Pass, len(s.Tests), sel)
	}
	return nil
}

func runFigure4(w io.Writer) error {
	res, err := core.Discover(paperdata.Table(), core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Refit cost per accepted constraint (warm-started, as the paper's")
	fmt.Fprintln(w, "'starting with the last previously calculated a values'):")
	t := report.NewTable("step", "constraint", "target", "solver sweeps").
		Align(report.Right, report.Left, report.Right, report.Right)
	for _, f := range res.Findings {
		t.AddRow(
			fmt.Sprintf("%d", f.Step),
			cellName(f.Test.Family, f.Test.Values),
			fmt.Sprintf("%.4f", f.Constraint.Target),
			fmt.Sprintf("%d", f.FitSweeps),
		)
	}
	return t.Write(w)
}

func runFigure5(w io.Writer) error {
	d := paperdata.Records()
	fmt.Fprintf(w, "Reconstructed original data form: %d samples × %d attributes.\n",
		d.Len(), d.Schema().R())
	fmt.Fprintln(w, "First rows (value per attribute, as in the memo's Figure 5 mark grid):")
	t := report.NewTable("sample", "A SMOKING", "B CANCER", "C FAMILY HISTORY").
		Align(report.Right, report.Left, report.Left, report.Left)
	for i := 0; i < 4; i++ {
		labels := d.Labels(i)
		t.AddRow(fmt.Sprintf("%d", i+1), labels[0], labels[1], labels[2])
	}
	return t.Write(w)
}

func runFigure6(w io.Writer) error {
	d := paperdata.Records()
	tab, err := d.Tabulate()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Triples-form sums (Figure 6 bottom row) — each equals Figure 1's cell:")
	t := report.NewTable("triple ijk", "sum", "paper").
		Align(report.Left, report.Right, report.Right)
	paper := map[[3]int]int64{
		{0, 0, 0}: 130, {0, 1, 0}: 410, {0, 0, 1}: 110, {0, 1, 1}: 640,
		{1, 0, 0}: 62, {1, 1, 0}: 580, {1, 0, 1}: 31, {1, 1, 1}: 460,
		{2, 0, 0}: 78, {2, 1, 0}: 520, {2, 0, 1}: 22, {2, 1, 1}: 385,
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				got := tab.MustAt(i, j, k)
				t.AddRow(
					fmt.Sprintf("N^ABC_%d%d%d", i+1, j+1, k+1),
					fmt.Sprintf("%d", got),
					fmt.Sprintf("%d", paper[[3]int{i, j, k}]),
				)
			}
		}
	}
	return t.Write(w)
}

func runPrior(w io.Writer) error {
	tab := paperdata.Table()
	predict, err := independencePrediction(tab)
	if err != nil {
		return err
	}
	fam := contingency.NewVarSet(paperdata.PosSmoking, paperdata.PosCancer)
	cell := []int{0, 1} // the memo's moderate example row N^AB_12
	p, _ := predict(fam, cell)
	t := report.NewTable("p(H2')", "m2-m1", "shift vs 0.5", "paper shift").
		Align(report.Right, report.Right, report.Right, report.Right)
	var base float64
	for i, prior := range []float64{0.5, 0.6, 0.8} {
		tester, err := mml.NewTester(tab, mml.Config{PriorH2: prior})
		if err != nil {
			return err
		}
		ct, err := tester.Test(fam, cell, p)
		if err != nil {
			return err
		}
		if i == 0 {
			base = ct.Delta
		}
		paper := map[float64]string{0.5: "0.00", 0.6: "-0.40", 0.8: "-1.39"}[prior]
		t.AddRow(
			fmt.Sprintf("%.1f", prior),
			fmt.Sprintf("%.2f", ct.Delta),
			fmt.Sprintf("%.2f", ct.Delta-base),
			paper,
		)
	}
	return t.Write(w)
}

func runGoodnessOfFit(w io.Writer) error {
	tab := paperdata.Table()
	// Independence only.
	indep, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		return err
	}
	if err := indep.AddFirstOrderConstraints(tab); err != nil {
		return err
	}
	if _, err := indep.Fit(maxent.SolveOptions{}); err != nil {
		return err
	}
	fitIndep, err := core.GoodnessOfFit(tab, indep)
	if err != nil {
		return err
	}
	// Discovered.
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		return err
	}
	fitDisc, err := core.GoodnessOfFit(tab, res.Model)
	if err != nil {
		return err
	}
	t := report.NewTable("model", "G²", "X²", "df", "p-value").
		Align(report.Left, report.Right, report.Right, report.Right, report.Right)
	t.AddRow("independence (first order only)",
		fmt.Sprintf("%.1f", fitIndep.G2), fmt.Sprintf("%.1f", fitIndep.X2),
		fmt.Sprintf("%d", fitIndep.DF), fmt.Sprintf("%.2g", fitIndep.PValue))
	t.AddRow(fmt.Sprintf("discovered (+%d constraints)", len(res.Findings)),
		fmt.Sprintf("%.1f", fitDisc.G2), fmt.Sprintf("%.1f", fitDisc.X2),
		fmt.Sprintf("%d", fitDisc.DF), fmt.Sprintf("%.2g", fitDisc.PValue))
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nIndependence is decisively rejected; the three discovered")
	fmt.Fprintln(w, "constraints render the remainder statistically indistinguishable")
	fmt.Fprintln(w, "from the data — the memo's 'succinct equation' in test form.")
	return nil
}

func runAssociations(w io.Writer) error {
	tab := paperdata.Table()
	pairs, err := assoc.Pairwise(tab)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Pairwise association survey over the memo's data — the 'clues for")
	fmt.Fprintln(w, "discovering more causal explanations' view:")
	fmt.Fprintln(w)
	fmt.Fprint(w, assoc.Render(tab.Names(), pairs))
	return nil
}

func runAppendixB(w io.Writer) error {
	// The memo's example space with its first-order a-values (Eq. 60) and
	// an AC coupling, evaluated three ways: matrix chain (the appendix's
	// notation), the general recursion, and brute force.
	cards := []int{3, 2, 2}
	aA := []float64{0.38, 0.33, 0.29}
	aB := []float64{0.13, 0.87}
	aC := []float64{0.52, 0.48}
	aAC := []float64{1, 1.2, 1, 1, 0.9, 1}
	terms := []sumprod.Term{
		{Vars: []int{0}, Coeffs: aA},
		{Vars: []int{1}, Coeffs: aB},
		{Vars: []int{2}, Coeffs: aC},
		{Vars: []int{0, 2}, Coeffs: aAC},
	}
	ev, err := sumprod.NewEvaluator(cards, terms)
	if err != nil {
		return err
	}
	recursive := ev.Sum()
	brute := 0.0
	for _, v := range ev.FullJoint() {
		brute += v
	}
	// Matrix-layer chain: Σ_i a_i Σ_j a_j Σ_k a_k a_ik (B commutes out).
	chain := 0.0
	for i := 0; i < 3; i++ {
		inner := 0.0
		for k := 0; k < 2; k++ {
			inner += aC[k] * aAC[i*2+k]
		}
		mid := 0.0
		for j := 0; j < 2; j++ {
			mid += aB[j]
		}
		chain += aA[i] * mid * inner
	}
	fmt.Fprintf(w, "1/a0 by the Appendix B recursion: %.9f\n", recursive)
	fmt.Fprintf(w, "1/a0 by the grouped matrix chain:  %.9f\n", chain)
	fmt.Fprintf(w, "1/a0 by brute-force enumeration:   %.9f\n", brute)
	if math.Abs(recursive-brute) > 1e-12 || math.Abs(chain-brute) > 1e-12 {
		return fmt.Errorf("evaluation methods disagree")
	}
	fmt.Fprintln(w, "All three agree to machine precision.")
	return nil
}
