package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pka"
)

// discoverKB builds a knowledge base file from the memo data via the real
// discover subcommand.
func discoverKB(t *testing.T) string {
	t.Helper()
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	return kbPath
}

// TestServeEndToEnd: `pka serve` answers a conditional query over HTTP
// with exactly the probability the loaded model computes, serves batches,
// and shuts down gracefully on context cancel.
func TestServeEndToEnd(t *testing.T) {
	kbPath := discoverKB(t)

	f, err := os.Open(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- runServe(ctx, &out, serveConfig{kbPath: kbPath, addr: "127.0.0.1:0"},
			func(a net.Addr) { ready <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`
	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res pka.QueryResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Error != "" {
		t.Fatalf("query = %d %+v", resp.StatusCode, res)
	}
	if res.Probability != want {
		t.Errorf("served conditional = %x, model says %x", res.Probability, want)
	}

	batch := `{"queries":[` + body + `,{"kind":"mpe","given":[{"attr":"SMOKING","value":"Smoker"}]}]}`
	resp, err = http.Post(base+"/v1/query/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var batchRes struct {
		Results []pka.QueryResult `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&batchRes)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(batchRes.Results) != 2 || batchRes.Results[0].Probability != want || len(batchRes.Results[1].Assignments) != 3 {
		t.Fatalf("batch = %+v", batchRes)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if s := out.String(); !strings.Contains(s, "serving") || !strings.Contains(s, "server stopped") {
		t.Errorf("serve output = %q", s)
	}
}

// TestServeFlagErrors: missing/bad inputs fail before binding a port.
func TestServeFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"serve"}); err == nil {
		t.Error("serve without -kb accepted")
	}
	if err := run(&buf, []string{"serve", "-kb", "/nonexistent"}); err == nil {
		t.Error("serve with missing kb accepted")
	}
}

// TestQueryJSON: `pka query -json` emits exactly the server wire format.
func TestQueryJSON(t *testing.T) {
	kbPath := discoverKB(t)
	var buf bytes.Buffer
	err := run(&buf, []string{"query", "-kb", kbPath, "-json",
		"-target", "CANCER=Yes", "-given", "SMOKING=Smoker"})
	if err != nil {
		t.Fatal(err)
	}
	var res pka.QueryResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output %q not JSON: %v", buf.String(), err)
	}
	if res.Kind != pka.QueryConditional || res.Probability <= 0 || res.Probability >= 1 {
		t.Errorf("result = %+v", res)
	}
	// The bytes must equal the shared encoder's output for the same result
	// — one wire format across CLI and server.
	var want bytes.Buffer
	if err := pka.EncodeQueryResult(&want, res); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want.String() {
		t.Errorf("CLI bytes %q != shared encoder %q", buf.String(), want.String())
	}

	buf.Reset()
	err = run(&buf, []string{"query", "-kb", kbPath, "-json", "-dist", "CANCER"})
	if err != nil {
		t.Fatal(err)
	}
	var dres pka.QueryResult
	if err := json.Unmarshal(buf.Bytes(), &dres); err != nil {
		t.Fatal(err)
	}
	if dres.Kind != pka.QueryDistribution || len(dres.Distribution) != 2 {
		t.Errorf("distribution result = %+v", dres)
	}

	buf.Reset()
	if err := run(&buf, []string{"query", "-kb", kbPath, "-json"}); err == nil {
		t.Error("query -json without -target or -dist accepted")
	}
}

// TestServeReadOnlyObserve501: a -kb server has no counts to ingest into;
// the streaming endpoint must say so, not 404 or panic.
func TestServeReadOnlyObserve501(t *testing.T) {
	kbPath := discoverKB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- runServe(ctx, &out, serveConfig{kbPath: kbPath, addr: "127.0.0.1:0"},
			func(a net.Addr) { ready <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Post("http://"+addr.String()+"/v1/observe", "application/json",
		strings.NewReader(`{"rows":[["Smoker","Yes","Yes"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("observe on -kb server = %d, want 501", resp.StatusCode)
	}
	cancel()
	<-done
}

// TestServeStreamingIngest: `pka serve -data` discovers at startup and
// accepts POST /v1/observe; ingested rows change the served answers.
func TestServeStreamingIngest(t *testing.T) {
	csvPath := writeMemoCSV(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- runServe(ctx, &out, serveConfig{dataPath: csvPath, addr: "127.0.0.1:0"},
			func(a net.Addr) { ready <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	queryBody := `{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`
	ask := func() float64 {
		t.Helper()
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(queryBody))
		if err != nil {
			t.Fatal(err)
		}
		var res pka.QueryResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil || res.Error != "" {
			t.Fatalf("query: %v %+v", err, res)
		}
		return res.Probability
	}
	before := ask()

	// Feed a biased batch: many smokers with cancer.
	rows := `{"rows":[` + strings.Repeat(`["Smoker","Yes","Yes"],`, 99) + `["Smoker","Yes","Yes"]]}`
	resp, err := http.Post(base+"/v1/observe", "application/json", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	var rep pka.UpdateReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe = %d (%+v)", resp.StatusCode, rep)
	}
	if rep.Rows != 100 || !rep.Refit {
		t.Errorf("observe report = %+v, want 100 rows refit", rep)
	}

	after := ask()
	if !(after > before) {
		t.Errorf("P(cancer|smoker) after biased ingest = %g, want > %g", after, before)
	}

	// Unknown labels reject the batch without disturbing serving.
	resp, err = http.Post(base+"/v1/observe", "application/json",
		strings.NewReader(`{"rows":[["Vaper","Yes","Yes"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("observe with unknown label = %d, want 400", resp.StatusCode)
	}
	if got := ask(); got != after {
		t.Errorf("rejected batch moved the answer: %g -> %g", after, got)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if s := out.String(); !strings.Contains(s, "streaming ingest") {
		t.Errorf("serve banner should announce streaming mode: %q", s)
	}
}

// TestServeFlagExclusive: -kb and -data are mutually exclusive.
func TestServeFlagExclusive(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"serve", "-kb", "a.json", "-data", "b.csv"}); err == nil {
		t.Error("serve with both -kb and -data accepted")
	}
}
