package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimulateScenarios(t *testing.T) {
	for _, sc := range []string{"survey", "telemetry", "xor"} {
		var buf bytes.Buffer
		if err := run(&buf, []string{"simulate", "-scenario", sc, "-n", "100", "-seed", "7"}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines != 101 { // header + 100 rows
			t.Errorf("%s: %d lines, want 101", sc, lines)
		}
	}
}

func TestSimulateWide(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"simulate", "-scenario", "wide", "-factors", "40", "-n", "25", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 26 { // header + 25 rows
		t.Fatalf("%d lines, want 26", len(lines))
	}
	if got := strings.Count(lines[0], ",") + 1; got != 80 {
		t.Errorf("header has %d columns, want 80 (2 x 40 pairs)", got)
	}
}

func TestSimulatePaperExact(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"simulate", "-scenario", "paper"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3429 {
		t.Errorf("paper scenario has %d lines, want 3429", got)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	gen := func() string {
		var buf bytes.Buffer
		if err := run(&buf, []string{"simulate", "-scenario", "survey", "-n", "50", "-seed", "3"}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different CSV")
	}
}

func TestSimulateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"simulate", "-scenario", "bogus"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(&buf, []string{"simulate", "-n", "0"}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSimulateDiscoverRoundTrip(t *testing.T) {
	// Generated data must flow straight back into discovery.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "sim.csv")
	var buf bytes.Buffer
	if err := run(&buf, []string{
		"simulate", "-scenario", "survey", "-n", "5000", "-seed", "11", "-out", csvPath,
	}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"discover", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "significant constraints") {
		t.Errorf("discover on simulated data:\n%s", buf.String())
	}
}

func TestExplainSubcommand(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"explain", "-kb", kbPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P(SMOKING=Smoker)") {
		t.Errorf("explain formula output:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, []string{"explain", "-kb", kbPath, "-given", "CANCER=Yes"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "most probable explanation") || !strings.Contains(out, "CANCER=Yes") {
		t.Errorf("explain MPE output:\n%s", out)
	}
}
