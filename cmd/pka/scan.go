package main

import (
	"fmt"
	"io"
	"strings"

	"pka"
	"pka/internal/report"
)

// printFirstScan renders the first significance pass in the layout of the
// memo's Table 1, with the user's attribute names and value labels.
func printFirstScan(w io.Writer, model *pka.Model) error {
	scans := model.Scans()
	if len(scans) == 0 {
		return fmt.Errorf("discover: no scans recorded")
	}
	first := scans[0]
	schema := model.Schema()
	t := report.NewTable(
		"cell", "p(model)", "N obs", "mean", "sd", "z", "m2-m1", "significant").
		Align(report.Left, report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right, report.Left)
	for _, ct := range first.Tests {
		parts := make([]string, 0, ct.Family.Len())
		for i, pos := range ct.Family.Members() {
			attr := schema.Attr(pos)
			parts = append(parts, fmt.Sprintf("%s=%s", attr.Name, attr.Values[ct.Values[i]]))
		}
		t.AddRow(
			strings.Join(parts, ","),
			fmt.Sprintf("%.4f", ct.Predicted),
			fmt.Sprintf("%d", ct.Observed),
			fmt.Sprintf("%.0f", ct.Mean),
			fmt.Sprintf("%.1f", ct.SD),
			fmt.Sprintf("%.2f", ct.Z),
			fmt.Sprintf("%.2f", ct.Delta),
			fmt.Sprintf("%v", ct.Significant),
		)
	}
	fmt.Fprintf(w, "first significance scan (order %d, %d candidates):\n\n",
		first.Order, len(first.Tests))
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
