package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/snapshot"
)

// queryJSON answers one canned conditional through the query subcommand's
// -json wire format, from whichever KB file format is given.
func queryJSON(t *testing.T, kbPath string) string {
	t.Helper()
	var buf bytes.Buffer
	err := run(&buf, []string{"query", "-kb", kbPath, "-json",
		"-target", "CANCER=Yes", "-given", "SMOKING=Smoker"})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCmdSnapshotRoundTrip drives the full CLI loop: discover a JSON KB,
// convert it to a PKAS binary, serve queries from both, convert back to
// JSON, and check every stop answers identically.
func TestCmdSnapshotRoundTrip(t *testing.T) {
	kbPath := discoverKB(t)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "kb.pkas")
	backPath := filepath.Join(dir, "back.json")

	var buf bytes.Buffer
	if err := run(&buf, []string{"snapshot", "-in", kbPath, "-out", binPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(json) -> ") || !strings.Contains(buf.String(), "(binary)") {
		t.Errorf("conversion report = %q", buf.String())
	}
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshot.IsSnapshot(data) {
		t.Fatal("snapshot output lacks PKAS magic")
	}

	buf.Reset()
	if err := run(&buf, []string{"snapshot", "-in", binPath, "-out", backPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(binary) -> ") || !strings.Contains(buf.String(), "(json)") {
		t.Errorf("conversion report = %q", buf.String())
	}

	fromJSON := queryJSON(t, kbPath)
	fromBinary := queryJSON(t, binPath)
	fromBack := queryJSON(t, backPath)
	if fromJSON != fromBinary {
		t.Errorf("binary KB answers differently:\njson:   %sbinary: %s", fromJSON, fromBinary)
	}
	if fromJSON != fromBack {
		t.Errorf("round-tripped JSON KB answers differently:\njson: %sback: %s", fromJSON, fromBack)
	}
}

func TestCmdSnapshotExplicitFormat(t *testing.T) {
	kbPath := discoverKB(t)
	copyPath := filepath.Join(t.TempDir(), "copy.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"snapshot", "-in", kbPath, "-out", copyPath, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if queryJSON(t, kbPath) != queryJSON(t, copyPath) {
		t.Error("json -> json copy answers differently")
	}
}

func TestCmdSnapshotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"snapshot"}); err == nil {
		t.Error("snapshot without flags accepted")
	}
	if err := run(&buf, []string{"snapshot", "-in", "/nonexistent", "-out", "x"}); err == nil {
		t.Error("missing input accepted")
	}
	kbPath := discoverKB(t)
	out := filepath.Join(t.TempDir(), "out")
	if err := run(&buf, []string{"snapshot", "-in", kbPath, "-out", out, "-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("not a kb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"snapshot", "-in", garbage, "-out", out}); err == nil {
		t.Error("garbage input accepted")
	}
}
