package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pka"
	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
	"pka/internal/synth"
)

// cmdBench runs a fixed performance suite over synthetic deterministic
// workloads — dense discovery, wide sparse discovery with screening,
// 520-attribute multi-word discovery with the conditional-independence
// screen,
// incremental refit, the factored block solver, batched query answering,
// the HTTP batch endpoint, and cold-start (load-to-first-query) for both
// persistence formats — and writes a machine-readable snapshot:
//
//	pka bench [-out BENCH_7.json] [-iters N] [-workers W]
//
// The snapshot (host info plus ns/op, allocs/op, and bytes/op per suite
// item) seeds the repo's performance trajectory: each perf-focused PR
// records its BENCH_<pr>.json so regressions are diffable instead of
// anecdotal. -iters 1 is the CI smoke configuration; the committed
// snapshots use the default iteration count.
//
// -workers-sweep re-measures the worker-sensitive items at each listed
// worker count, recording name@wN entries, so one snapshot captures the
// parallel scaling curve (meaningful on multi-core hosts; the host record
// flags single-core runs).
//
// With -serve the command is an HTTP load generator instead: it reads the
// target's schema, builds a rotating query workload, and fires it over
// -conns connections for -duration, reporting throughput and latency
// percentiles — the fleet-measurement harness for replicated and sharded
// deployments.
func cmdBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_9.json", "snapshot output path (empty = stdout only); ignored with -serve")
	iters := fs.Int("iters", 5, "iterations per suite item (1 = CI smoke)")
	workers := fs.Int("workers", 0, "worker goroutines for the parallel suite items (0 = all cores, 1 = serial)")
	sweep := fs.String("workers-sweep", "", "comma-separated worker counts: re-measure the parallel suite items at each, as name@wN entries")
	serveURL := fs.String("serve", "", "loadgen mode: fire the query workload at this running pka server instead of the local suite")
	conns := fs.Int("conns", 4, "with -serve: concurrent connections")
	duration := fs.Duration("duration", 10*time.Second, "with -serve: measurement window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("bench: -iters must be >= 1, got %d", *iters)
	}
	if *serveURL != "" {
		return runLoadgen(w, *serveURL, *conns, *duration)
	}
	var sweepCounts []int
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bench: bad -workers-sweep entry %q", s)
			}
			sweepCounts = append(sweepCounts, n)
		}
	}
	snap := benchSnapshot{
		Version: 9,
		Host: benchHost{
			Go:         runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			MultiCore:  runtime.NumCPU() > 1,
		},
		Workers: *workers,
	}
	suite, err := buildBenchSuite(*workers)
	if err != nil {
		return err
	}
	defer suite.close()
	for _, item := range suite.items {
		entry, err := measureBench(item, *iters)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", item.name, err)
		}
		snap.Benchmarks = append(snap.Benchmarks, entry)
		fmt.Fprintf(w, "%-28s %12.0f ns/op %10d allocs/op %12d B/op\n",
			entry.Name, entry.NsPerOp, entry.AllocsPerOp, entry.BytesPerOp)
	}
	// The sweep rebuilds the suite per worker count (workloads are seeded,
	// so the measured operations are identical) and re-measures only the
	// items whose execution actually spreads across workers.
	for _, wc := range sweepCounts {
		sub, err := buildBenchSuite(wc)
		if err != nil {
			return err
		}
		for _, item := range sub.items {
			if !item.parallel {
				continue
			}
			entry, err := measureBench(item, *iters)
			if err != nil {
				sub.close()
				return fmt.Errorf("bench: %s @w%d: %w", item.name, wc, err)
			}
			entry.Name = fmt.Sprintf("%s@w%d", item.name, wc)
			snap.Benchmarks = append(snap.Benchmarks, entry)
			fmt.Fprintf(w, "%-28s %12.0f ns/op %10d allocs/op %12d B/op\n",
				entry.Name, entry.NsPerOp, entry.AllocsPerOp, entry.BytesPerOp)
		}
		sub.close()
	}
	snap.WorkersSweep = sweepCounts
	if *out != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		fmt.Fprintf(w, "\nsnapshot written to %s\n", *out)
	}
	return nil
}

// benchSnapshot is the machine-readable perf record.
type benchSnapshot struct {
	Version int       `json:"version"`
	Host    benchHost `json:"host"`
	Workers int       `json:"workers"`
	// WorkersSweep lists the worker counts the name@wN entries were
	// re-measured at, empty when no sweep ran.
	WorkersSweep []int        `json:"workers_sweep,omitempty"`
	Benchmarks   []benchEntry `json:"benchmarks"`
}

// benchHost records where the numbers were taken. MultiCore flags whether
// the parallel suite items (worker-pool discovery, block solves, batch
// serving) could actually spread across cores on this host — single-core
// snapshots are not comparable on those items.
type benchHost struct {
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	MultiCore  bool   `json:"multi_core"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// measureBench times iters runs of the item and reads allocation deltas
// from the runtime — coarser than testing.B's auto-scaling but
// dependency-free, covers allocations on worker goroutines, and is exactly
// reproducible given the suite's fixed seeds. Items with a prepare hook
// get it run untimed before every iteration, so operations that consume
// their input (the incremental refit folding a batch into a model) measure
// the same state every iteration instead of drifting with -iters.
func measureBench(item benchItem, iters int) (benchEntry, error) {
	var elapsed time.Duration
	var mallocs, bytes uint64
	var before, after runtime.MemStats
	for i := 0; i < iters; i++ {
		op := item.fn
		if item.prepare != nil {
			var err error
			if op, err = item.prepare(); err != nil {
				return benchEntry{}, err
			}
		}
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := op(); err != nil {
			return benchEntry{}, err
		}
		elapsed += time.Since(start)
		runtime.ReadMemStats(&after)
		mallocs += after.Mallocs - before.Mallocs
		bytes += after.TotalAlloc - before.TotalAlloc
	}
	n := uint64(iters)
	return benchEntry{
		Name:        item.name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: mallocs / n,
		BytesPerOp:  bytes / n,
	}, nil
}

// benchSuite carries the prepared workloads plus any servers to tear down.
type benchSuite struct {
	items []benchItem
	srvs  []*http.Server
}

// benchItem is one suite entry: fn is the measured operation; prepare, if
// set, builds a fresh operation per iteration (untimed setup) instead.
// parallel marks items whose execution spreads across the -workers pool —
// the set -workers-sweep re-measures.
type benchItem struct {
	name     string
	fn       func() error
	prepare  func() (func() error, error)
	parallel bool
}

func (s *benchSuite) close() {
	for _, srv := range s.srvs {
		_ = srv.Close()
	}
}

// benchLabels is the shared ternary value set of the synthetic schemas.
var benchLabels = []string{"a", "b", "c"}

// benchDenseTable builds the dense-discovery workload: 6 ternary
// attributes, 4000 seeded rows with two planted couplings.
func benchDenseTable() (*pka.Table, *pka.Schema, error) {
	attrs := make([]pka.Attribute, 6)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: fmt.Sprintf("A%d", i), Values: benchLabels}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		return nil, nil, err
	}
	tab, err := contingency.New(schema.Names(), schema.Cards())
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(101))
	cell := make([]int, 6)
	for n := 0; n < 4000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(3)
		}
		if rng.Float64() < 0.6 {
			cell[1] = cell[0]
		}
		if rng.Float64() < 0.5 {
			cell[4] = cell[3]
		}
		if err := tab.Observe(cell...); err != nil {
			return nil, nil, err
		}
	}
	return tab, schema, nil
}

// benchSparseTable builds the wide-schema workload: 24 binary attributes,
// 8000 seeded rows, two planted couplings.
func benchSparseTable() (*pka.SparseTable, *pka.Schema, error) {
	attrs := make([]pka.Attribute, 24)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: fmt.Sprintf("W%d", i), Values: []string{"0", "1"}}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		return nil, nil, err
	}
	s, err := pka.NewSparseTable(schema)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(202))
	cell := make([]int, 24)
	for n := 0; n < 8000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[23] = cell[0]
		}
		if rng.Float64() < 0.6 {
			cell[12] = cell[1]
		}
		if err := s.Observe(cell...); err != nil {
			return nil, nil, err
		}
	}
	return s, schema, nil
}

// benchFactoredModel builds the block-solver workload: 6 independent
// blocks of 5 ternary attributes with empirical first-order and order-2
// constraints — the same shape BenchmarkFitFactoredParallel measures.
func benchFactoredModel() (*maxent.Model, error) {
	const nBlocks, blockAttrs = 6, 5
	r := nBlocks * blockAttrs
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 3
	}
	tab, err := contingency.NewSparse(nil, cards)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(303))
	cell := make([]int, r)
	for n := 0; n < 4000; n++ {
		for b := 0; b < nBlocks; b++ {
			base := b * blockAttrs
			cell[base] = rng.Intn(3)
			for j := 1; j < blockAttrs; j++ {
				if rng.Float64() < 0.7 {
					cell[base+j] = cell[base]
				} else {
					cell[base+j] = rng.Intn(3)
				}
			}
		}
		if err := tab.Observe(cell...); err != nil {
			return nil, err
		}
	}
	m, err := maxent.NewModel(nil, cards)
	if err != nil {
		return nil, err
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		return nil, err
	}
	total := float64(tab.Total())
	for b := 0; b < nBlocks; b++ {
		base := b * blockAttrs
		for j := 1; j < blockAttrs; j++ {
			fam := contingency.NewVarSet(base, base+j)
			n, err := tab.MarginalCount(fam, []int{1, 1})
			if err != nil {
				return nil, err
			}
			if err := m.AddConstraint(maxent.Constraint{
				Family: fam, Values: []int{1, 1}, Target: float64(n) / total,
			}); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// benchQueryWorkload builds 128 queries over 16 distinct evidence groups
// (base-3 digits of g over three evidence attributes: 27 possible combos,
// g = 0..15 all distinct) against the dense-discovery schema.
func benchQueryWorkload() []pka.Query {
	var queries []pka.Query
	for g := 0; g < 16; g++ {
		given := []pka.Assignment{
			{Attr: "A0", Value: benchLabels[g%3]},
			{Attr: "A3", Value: benchLabels[(g/3)%3]},
			{Attr: "A5", Value: benchLabels[(g/9)%3]},
		}
		for v := 0; v < 3; v++ {
			queries = append(queries,
				pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "A1", Value: benchLabels[v]}}, Given: given},
				pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "A4", Value: benchLabels[v]}}, Given: given},
			)
		}
		queries = append(queries,
			pka.Query{Kind: pka.QueryDistribution, Attr: "A2", Given: given},
			pka.Query{Kind: pka.QueryMPE, Given: given},
		)
	}
	return queries
}

// buildBenchSuite prepares every workload up front so the measured
// functions run nothing but the operation under test (plus the documented
// per-iteration clone where the operation consumes its input).
func buildBenchSuite(workers int) (*benchSuite, error) {
	suite := &benchSuite{}

	denseTab, denseSchema, err := benchDenseTable()
	if err != nil {
		return nil, err
	}
	discoverOpts := pka.Options{MaxOrder: 2, Workers: workers}
	suite.items = append(suite.items, benchItem{name: "discover_dense", fn: func() error {
		_, err := pka.DiscoverTable(denseTab.Clone(), denseSchema, discoverOpts)
		return err
	}})

	sparseMaster, sparseSchema, err := benchSparseTable()
	if err != nil {
		return nil, err
	}
	sparseOpts := pka.Options{MaxOrder: 2, ScreenPairs: true, Workers: workers}
	suite.items = append(suite.items, benchItem{name: "discover_sparse_screen", fn: func() error {
		// DiscoverSparse takes ownership of its table: each iteration
		// clones the master (O(occupied), cold projection cache).
		_, err := pka.DiscoverSparse(sparseMaster.Clone(), sparseSchema, sparseOpts)
		return err
	}})

	// The mammoth-schema workload: 520 binary attributes (8 key words) with
	// 260 planted pair couplings, discovered through the flattened bulk
	// pairwise screen, the conditional-independence refinement, and the
	// factored fit under a constraint cap. This is the representative
	// measurement of the multi-word representation: no single-word schema
	// can express it.
	wideTruth, err := synth.WidePairs(260, 3)
	if err != nil {
		return nil, err
	}
	wideMaster, err := wideTruth.SampleSparse(stats.NewRNG(707), 1200)
	if err != nil {
		return nil, err
	}
	wideOpts := pka.Options{
		MaxOrder:       2,
		ScreenPairs:    true,
		ScreenCI:       true,
		MaxConstraints: 32,
		Workers:        workers,
	}
	suite.items = append(suite.items, benchItem{name: "wide_discover", parallel: true, fn: func() error {
		_, err := pka.DiscoverSparse(wideMaster.Clone(), wideTruth.Schema(), wideOpts)
		return err
	}})

	// One fixed delta batch (1% of the 8000-row bank), applied to a fresh
	// model per iteration: every iteration measures the same refit against
	// the same state, so snapshots taken at different -iters stay
	// comparable. Model construction happens in the untimed prepare hook.
	refitRng := rand.New(rand.NewSource(404))
	delta := make([]pka.Record, 80)
	for i := range delta {
		row := make([]int, 24)
		for j := range row {
			row[j] = refitRng.Intn(2)
		}
		if refitRng.Float64() < 0.8 {
			row[23] = row[0]
		}
		delta[i] = row
	}
	suite.items = append(suite.items, benchItem{name: "incremental_refit", prepare: func() (func() error, error) {
		refitModel, err := pka.DiscoverSparse(sparseMaster.Clone(), sparseSchema, sparseOpts)
		if err != nil {
			return nil, err
		}
		return func() error {
			_, err := refitModel.Update(delta)
			return err
		}, nil
	}})

	// Cold start: the wide sparse discovery output persisted once in each
	// format, then timed from bytes to a served first answer. The snapshot
	// bytes come from the JSON-loaded QueryModel so both items restore the
	// identical schema+model payload (no discovery counts in either file) —
	// the delta is purely parse + engine reconstruction, with the solve
	// skipped on the binary path.
	coldModel, err := pka.DiscoverSparse(sparseMaster.Clone(), sparseSchema, sparseOpts)
	if err != nil {
		return nil, err
	}
	var jsonBuf bytes.Buffer
	if err := coldModel.Save(&jsonBuf); err != nil {
		return nil, err
	}
	coldQuery, err := pka.Load(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		return nil, err
	}
	var snapBuf bytes.Buffer
	if err := coldQuery.SaveSnapshot(&snapBuf); err != nil {
		return nil, err
	}
	jsonBytes, snapBytes := jsonBuf.Bytes(), snapBuf.Bytes()
	coldFirstQuery := func(m *pka.QueryModel) error {
		p, err := m.Conditional(
			[]pka.Assignment{{Attr: "W1", Value: "1"}},
			[]pka.Assignment{{Attr: "W0", Value: "1"}},
		)
		if err != nil {
			return err
		}
		if p <= 0 || p >= 1 {
			return fmt.Errorf("cold-start query answered %g", p)
		}
		return nil
	}
	suite.items = append(suite.items, benchItem{name: "cold_start_json", fn: func() error {
		m, err := pka.Load(bytes.NewReader(jsonBytes))
		if err != nil {
			return err
		}
		return coldFirstQuery(m)
	}})
	suite.items = append(suite.items, benchItem{name: "cold_start_snapshot", fn: func() error {
		m, err := pka.LoadSnapshot(bytes.NewReader(snapBytes))
		if err != nil {
			return err
		}
		return coldFirstQuery(m)
	}})

	factoredMaster, err := benchFactoredModel()
	if err != nil {
		return nil, err
	}
	suite.items = append(suite.items, benchItem{name: "fit_factored", parallel: true, fn: func() error {
		m := factoredMaster.Clone()
		rep, err := m.Fit(maxent.SolveOptions{Workers: workers})
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("factored fit did not converge (residual %g)", rep.Residual)
		}
		return nil
	}})

	queryModel, err := pka.DiscoverTable(denseTab.Clone(), denseSchema, discoverOpts)
	if err != nil {
		return nil, err
	}
	queries := benchQueryWorkload()
	suite.items = append(suite.items, benchItem{name: "answer_batch", parallel: true, fn: func() error {
		results, err := pka.AnswerBatchWorkers(queryModel, queries, workers)
		if err != nil {
			return err
		}
		for i, r := range results {
			if r.Error != "" {
				return fmt.Errorf("query %d: %s", i, r.Error)
			}
		}
		return nil
	}})

	// A real loopback listener (not httptest, which panics on failure and
	// belongs to test binaries): bind errors surface as clean bench errors.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("binding loopback listener: %w", err)
	}
	srv := &http.Server{Handler: pka.NewServerWithOptions(queryModel, pka.ServerOptions{Workers: workers})}
	suite.srvs = append(suite.srvs, srv)
	go func() { _ = srv.Serve(l) }()
	baseURL := "http://" + l.Addr().String()
	body, err := json.Marshal(struct {
		Queries []pka.Query `json:"queries"`
	}{queries})
	if err != nil {
		return nil, err
	}
	client := &http.Client{}
	httpBatch := func(url string) func() error {
		return func() error {
			resp, err := client.Post(url+"/v1/query/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("http batch status %d", resp.StatusCode)
			}
			return nil
		}
	}
	suite.items = append(suite.items, benchItem{name: "http_batch", parallel: true, fn: httpBatch(baseURL)})

	// The serving-cache measurement pair: the identical single query driven
	// straight through the HTTP handler (no TCP stack — both sides of the
	// ratio shed the same socket overhead, so the numbers isolate the
	// serving path itself). The model is the 24-attribute wide factored
	// snapshot — the shape caching exists for. The miss side evaluates and
	// re-encodes every request against a cache-off handler; the hit side
	// hits a fully warmed wire tier. Each measured op is a fixed burst so
	// the per-request cost stands clear of the measurement floor.
	missModel, err := pka.LoadSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		return nil, err
	}
	hitModel, err := pka.LoadSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		return nil, err
	}
	hitModel.EnableCache(32 << 20)
	missHandler := pka.NewServerWithOptions(missModel, pka.ServerOptions{Workers: workers})
	hitHandler := pka.NewServerWithOptions(hitModel, pka.ServerOptions{Workers: workers, CacheBytes: 32 << 20})
	singleBody := []byte(`{"kind":"mpe","given":[{"attr":"W0","value":"1"}]}`)
	// One request object per handler, its body rewound between calls: the
	// burst measures the handler, not request construction.
	const queryBurst = 512
	burst := func(h http.Handler) (func() error, error) {
		rd := bytes.NewReader(singleBody)
		req, err := http.NewRequest(http.MethodPost, "/v1/query", nil)
		if err != nil {
			return nil, err
		}
		req.Body = rewindCloser{rd}
		req.ContentLength = int64(len(singleBody))
		rec := &benchResponseWriter{header: make(http.Header)}
		return func() error {
			for i := 0; i < queryBurst; i++ {
				if _, err := rd.Seek(0, io.SeekStart); err != nil {
					return err
				}
				// Re-arm the body every call: decodeBody wraps r.Body in a
				// MaxBytesReader, so leaving it would stack one wrapper per
				// iteration on the shared request.
				req.Body = rewindCloser{rd}
				rec.status = 0
				h.ServeHTTP(rec, req)
				if rec.status != 0 && rec.status != http.StatusOK {
					return fmt.Errorf("http query status %d", rec.status)
				}
			}
			return nil
		}, nil
	}
	missBurst, err := burst(missHandler)
	if err != nil {
		return nil, err
	}
	hitBurst, err := burst(hitHandler)
	if err != nil {
		return nil, err
	}
	if err := hitBurst(); err != nil {
		return nil, fmt.Errorf("warming the cached handler: %w", err)
	}
	suite.items = append(suite.items, benchItem{name: "http_query_miss", fn: missBurst})
	suite.items = append(suite.items, benchItem{name: "http_query_hit", fn: hitBurst})

	// The cache-on side of the batch sweep: same workload, same real
	// loopback server shape as http_batch, but with the engine tier warm —
	// cross-request reuse of denominators and marginals that http_batch can
	// only exploit within one request.
	cachedBatchModel, err := pka.DiscoverTable(denseTab.Clone(), denseSchema, discoverOpts)
	if err != nil {
		return nil, err
	}
	cachedBatchModel.EnableCache(32 << 20)
	lc, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("binding loopback listener: %w", err)
	}
	cachedSrv := &http.Server{Handler: pka.NewServerWithOptions(cachedBatchModel, pka.ServerOptions{Workers: workers, CacheBytes: 32 << 20})}
	suite.srvs = append(suite.srvs, cachedSrv)
	go func() { _ = cachedSrv.Serve(lc) }()
	suite.items = append(suite.items, benchItem{name: "http_batch_cached", parallel: true, fn: httpBatch("http://" + lc.Addr().String())})

	return suite, nil
}

// benchResponseWriter is the minimal ResponseWriter the handler-direct
// bench items write into: headers kept, body discarded, status recorded.
type benchResponseWriter struct {
	header http.Header
	status int
}

func (w *benchResponseWriter) Header() http.Header         { return w.header }
func (w *benchResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *benchResponseWriter) WriteHeader(status int)      { w.status = status }

// rewindCloser lets one request body serve every burst iteration.
type rewindCloser struct{ *bytes.Reader }

func (rewindCloser) Close() error { return nil }
