package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnalyzeSubcommand(t *testing.T) {
	csvPath := writeMemoCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"analyze", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3428 samples", "MI (nats)", "SMOKING × CANCER", "p-value"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	if err := run(&buf, []string{"analyze"}); err == nil {
		t.Error("analyze without -in accepted")
	}
	if err := run(&buf, []string{"analyze", "-in", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRulesWithCI(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"rules", "-kb", kbPath, "-ci", "-n", "3428"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CI95=") {
		t.Errorf("rules -ci output missing intervals:\n%s", buf.String())
	}
	if err := run(&buf, []string{"rules", "-kb", kbPath, "-ci"}); err == nil {
		t.Error("-ci without -n accepted")
	}
}

func TestDiscoverMergeRare(t *testing.T) {
	// A CSV with a rare value: -merge-rare must fold it into 'other'.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "rare.csv")
	var sb strings.Builder
	sb.WriteString("COLOR,SIZE\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("red,small\n")
		sb.WriteString("green,large\n")
	}
	sb.WriteString("mauve,small\n")
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-merge-rare", "5"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "other") {
		t.Errorf("merged output missing 'other':\n%s", buf.String())
	}
}

func TestDiscoverWithScan(t *testing.T) {
	csvPath := writeMemoCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-scan"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"first significance scan (order 2, 16 candidates)", "m2-m1", "SMOKING=Smoker,CANCER=Yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("scan output missing %q:\n%s", want, out)
		}
	}
}

func TestDiscoverWithCV(t *testing.T) {
	csvPath := writeMemoCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-cv", "3"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cv: order 2 ->", "cv: order 3 ->", "cv: selected max-order"} {
		if !strings.Contains(out, want) {
			t.Errorf("cv output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "significant constraints") {
		t.Errorf("discovery did not follow cv:\n%s", out)
	}
}

func TestExplainDOT(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"explain", "-kb", kbPath, "-dot"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph dependencies") || !strings.Contains(out, "SMOKING") {
		t.Errorf("DOT output:\n%s", out)
	}
}

func TestValidateSubcommand(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	// Validating on the training data itself: loss ≈ data entropy.
	if err := run(&buf, []string{"validate", "-kb", kbPath, "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3428 samples") || !strings.Contains(out, "nats/sample") {
		t.Errorf("validate output:\n%s", out)
	}
	if err := run(&buf, []string{"validate", "-kb", kbPath}); err == nil {
		t.Error("validate without -in accepted")
	}
	if err := run(&buf, []string{"validate", "-in", csvPath}); err == nil {
		t.Error("validate without -kb accepted")
	}
}

func TestValidateSimulatedHoldout(t *testing.T) {
	// Train on one simulated sample, validate on a second with a different
	// seed — the full deployment loop through the CLI.
	dir := t.TempDir()
	trainCSV := filepath.Join(dir, "train.csv")
	testCSV := filepath.Join(dir, "test.csv")
	kbPath := filepath.Join(dir, "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"simulate", "-scenario", "telemetry", "-n", "5000", "-seed", "1", "-out", trainCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"simulate", "-scenario", "telemetry", "-n", "2000", "-seed", "2", "-out", testCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"discover", "-in", trainCSV, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"validate", "-kb", kbPath, "-in", testCSV}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2000 samples") {
		t.Errorf("holdout validate output:\n%s", buf.String())
	}
}
