package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pka"
	"pka/internal/stats"
	"pka/internal/synth"
)

// pkaBinary builds the CLI once per test process — the cluster integration
// tests exercise real OS processes, not in-process handlers.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func pkaBinary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pka-bin-")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "pka")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// startServeProc launches `pka serve` as a separate process on an
// ephemeral port, waits for its announce line, and returns the base URL.
// The process is killed at test cleanup.
func startServeProc(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(pkaBinary(t), append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			// The announce line ends "... on 127.0.0.1:PORT".
			if i := strings.LastIndex(line, " on 127.0.0.1:"); strings.HasPrefix(line, "serving") && i >= 0 {
				addrCh <- line[i+len(" on "):]
				break
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(90 * time.Second):
		t.Fatalf("serve %v: no announce line within 90s", args)
		return ""
	}
}

// queryWire POSTs one query and returns the raw response bytes — the
// byte-for-byte payload bit-identity is asserted on.
func queryWire(t *testing.T, base string, q pka.Query) []byte {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %s returned %s: %s", base, resp.Status, out)
	}
	return out
}

// schemaVersion reads the monotonic model version from /v1/schema.
func schemaVersion(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Version
}

func waitForVersion(t *testing.T, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v := schemaVersion(t, base); v >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck below version %d", base, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// clusterCSV writes the deterministic replication seed dataset.
func clusterCSV(t *testing.T, dir string) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("A,B,C,D\n")
	// Every label the observe batches use must appear in the seed — the
	// inferred schema is closed after discovery.
	for i := 0; i < 300; i++ {
		a := i % 3
		c := (i / 3) % 2
		fmt.Fprintf(&sb, "a%d,b%d,c%d,d%d\n", a, a%2, c, (a+c)%3)
	}
	path := filepath.Join(dir, "seed.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// clusterBatch is the k-th observe batch, identical to the in-package
// cluster test workload.
func clusterBatch(k int) [][]string {
	rows := make([][]string, 5)
	for i := range rows {
		a := (k + i) % 3
		c := (k + 2*i) % 2
		rows[i] = []string{
			fmt.Sprintf("a%d", a),
			fmt.Sprintf("b%d", (a+k)%2),
			fmt.Sprintf("c%d", c),
			fmt.Sprintf("d%d", (c+k+i)%3),
		}
	}
	return rows
}

// clusterQueries is one of every query kind over the seed schema.
func clusterQueries() []pka.Query {
	return []pka.Query{
		{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: "A", Value: "a1"}}},
		{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: "A", Value: "a0"}, {Attr: "D", Value: "d1"}}},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "B", Value: "b1"}}, Given: []pka.Assignment{{Attr: "A", Value: "a0"}}},
		{Kind: pka.QueryDistribution, Attr: "D", Given: []pka.Assignment{{Attr: "C", Value: "c1"}}},
		{Kind: pka.QueryMostLikely, Attr: "B", Given: []pka.Assignment{{Attr: "A", Value: "a2"}}},
		{Kind: pka.QueryLift, Target: []pka.Assignment{{Attr: "D", Value: "d2"}}, Given: []pka.Assignment{{Attr: "C", Value: "c0"}}},
		{Kind: pka.QueryMPE, Given: []pka.Assignment{{Attr: "A", Value: "a1"}}},
	}
}

// TestReplicationMultiProcess: a primary and two replicas as real
// processes. A stream of observe batches lands on the primary; both
// replicas converge to its exact version and every query kind answered by
// a replica is byte-identical to the primary's answer.
func TestReplicationMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	dir := t.TempDir()
	csvPath := clusterCSV(t, dir)
	logPath := filepath.Join(dir, "observe.log")

	primary := startServeProc(t, "-data", csvPath, "-log", logPath, "-max-order", "2")

	// Stream batches; the observe response must carry the growing version.
	for k := 0; k < 6; k++ {
		body, err := json.Marshal(map[string]any{"rows": clusterBatch(k)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(primary+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: %s: %s", k, resp.Status, raw)
		}
		var rep struct {
			Version int64 `json:"version"`
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Version != int64(k)+1 {
			t.Fatalf("observe %d: version %d, want %d", k, rep.Version, k+1)
		}
	}

	replica1 := startServeProc(t, "-replica-of", primary, "-poll", "20ms")
	replica2 := startServeProc(t, "-replica-of", primary, "-poll", "20ms")

	// More traffic after the replicas exist, so both tail the live log.
	for k := 6; k < 10; k++ {
		body, _ := json.Marshal(map[string]any{"rows": clusterBatch(k)})
		resp, err := http.Post(primary+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	waitForVersion(t, replica1, 10)
	waitForVersion(t, replica2, 10)

	for _, q := range clusterQueries() {
		want := queryWire(t, primary, q)
		if got := queryWire(t, replica1, q); !bytes.Equal(want, got) {
			t.Errorf("replica1 %s diverges:\n%svs\n%s", q.Kind, got, want)
		}
		if got := queryWire(t, replica2, q); !bytes.Equal(want, got) {
			t.Errorf("replica2 %s diverges:\n%svs\n%s", q.Kind, got, want)
		}
	}

	// readyz: replicas report their role and zero lag once converged.
	resp, err := http.Get(replica1 + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd struct {
		Ready   bool   `json:"ready"`
		Role    string `json:"role"`
		Version int64  `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rd.Ready || rd.Role != "replica" || rd.Version != 10 {
		t.Fatalf("replica readyz %d %+v", resp.StatusCode, rd)
	}

	// Writes on a replica answer 501 — the primary owns ingest.
	body, _ := json.Marshal(map[string]any{"rows": clusterBatch(0)})
	resp, err = http.Post(replica1+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("observe on replica returned %d, want 501", resp.StatusCode)
	}
}

// TestShardingMultiProcess: a factored snapshot served by two shard
// processes behind a coordinator answers every query kind byte-identically
// to a single process serving the same snapshot.
func TestShardingMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	truth, err := synth.WidePairs(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleSparse(stats.NewRNG(7), 600)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverSparse(tab, truth.Schema(), pka.Options{
		MaxOrder: 2, ScreenPairs: true, ScreenCI: true, MaxConstraints: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	kbPath := filepath.Join(t.TempDir(), "wide.pkas")
	f, err := os.Create(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	single := startServeProc(t, "-kb", kbPath)
	shard0 := startServeProc(t, "-kb", kbPath, "-shard", "0/2")
	shard1 := startServeProc(t, "-kb", kbPath, "-shard", "1/2")
	coord := startServeProc(t, "-kb", kbPath, "-shards", shard0+","+shard1)

	queries := []pka.Query{
		{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: "W0000", Value: "1"}}},
		{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: "W0002", Value: "1"}, {Attr: "W0005", Value: "0"}}},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "W0001", Value: "1"}}, Given: []pka.Assignment{{Attr: "W0000", Value: "0"}}},
		{Kind: pka.QueryDistribution, Attr: "W0004", Given: []pka.Assignment{{Attr: "W0005", Value: "1"}}},
		{Kind: pka.QueryMostLikely, Attr: "W0007", Given: []pka.Assignment{{Attr: "W0006", Value: "0"}}},
		{Kind: pka.QueryLift, Target: []pka.Assignment{{Attr: "W0009", Value: "1"}}, Given: []pka.Assignment{{Attr: "W0008", Value: "1"}}},
		{Kind: pka.QueryMPE, Given: []pka.Assignment{{Attr: "W0000", Value: "1"}, {Attr: "W0011", Value: "0"}}},
	}
	for _, q := range queries {
		want := queryWire(t, single, q)
		if got := queryWire(t, coord, q); !bytes.Equal(want, got) {
			t.Errorf("coordinator %s diverges:\n%svs\n%s", q.Kind, got, want)
		}
	}
}
