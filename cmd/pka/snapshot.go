package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"pka"
	"pka/internal/snapshot"
)

// cmdSnapshot converts a saved knowledge base between the two on-disk
// formats:
//
//	pka snapshot -in kb.json -out kb.pkas            # JSON -> binary
//	pka snapshot -in kb.pkas -out kb.json            # binary -> JSON
//	pka snapshot -in kb.json -out copy.json -format json
//
// The input format is auto-detected from the PKAS magic bytes; without
// -format the output is the opposite format, so the bare invocation always
// converts. JSON is the interchange format (stable, diffable); the binary
// snapshot carries the already-solved engine state for near-instant serve
// cold starts.
func cmdSnapshot(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	in := fs.String("in", "", "input knowledge base (JSON or PKAS binary, auto-detected)")
	out := fs.String("out", "", "output path")
	format := fs.String("format", "", "output format: binary or json (default: the opposite of the input)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("snapshot: -in and -out are required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	inFormat := "json"
	if snapshot.IsSnapshot(data) {
		inFormat = "binary"
	}
	outFormat := *format
	if outFormat == "" {
		if inFormat == "binary" {
			outFormat = "json"
		} else {
			outFormat = "binary"
		}
	}
	if outFormat != "binary" && outFormat != "json" {
		return fmt.Errorf("snapshot: unknown -format %q (want binary or json)", outFormat)
	}
	model, err := pka.LoadAny(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("snapshot: reading %s: %w", *in, err)
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if outFormat == "binary" {
		err = model.SaveSnapshot(f)
	} else {
		err = model.Save(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("snapshot: writing %s: %w", *out, err)
	}
	fmt.Fprintf(w, "%s (%s) -> %s (%s)\n", *in, inFormat, *out, outFormat)
	return nil
}
