package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/paperdata"
)

// writeMemoCSV materializes the paper's survey as a CSV file.
func writeMemoCSV(t *testing.T) string {
	t.Helper()
	d := paperdata.Records()
	path := filepath.Join(t.TempDir(), "memo.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run(&buf, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(&buf, []string{"discover"}); err == nil {
		t.Error("discover without -in accepted")
	}
	if err := run(&buf, []string{"rules"}); err == nil {
		t.Error("rules without -kb accepted")
	}
	if err := run(&buf, []string{"query", "-kb", "/nonexistent"}); err == nil {
		t.Error("query with missing kb accepted")
	}
	if err := run(&buf, []string{"tables"}); err == nil {
		t.Error("tables without -in accepted")
	}
}

func TestDiscoverRulesQueryPipeline(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")

	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"N=3428", "significant constraints", "knowledge base written"} {
		if !strings.Contains(out, want) {
			t.Errorf("discover output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run(&buf, []string{"rules", "-kb", kbPath, "-min-lift", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IF ") {
		t.Errorf("rules output has no rules:\n%s", buf.String())
	}

	buf.Reset()
	if err := run(&buf, []string{
		"query", "-kb", kbPath,
		"-target", "CANCER=Yes",
		"-given", "SMOKING=Smoker",
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P(CANCER=Yes | SMOKING=Smoker) = 0.18") {
		t.Errorf("query output wrong (want ≈0.186):\n%s", buf.String())
	}

	buf.Reset()
	if err := run(&buf, []string{"query", "-kb", kbPath, "-dist", "SMOKING"}); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(buf.String(), "P(SMOKING="); c != 3 {
		t.Errorf("distribution printed %d lines, want 3:\n%s", c, buf.String())
	}
}

func TestTablesSubcommand(t *testing.T) {
	csvPath := writeMemoCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{
		"tables", "-in", csvPath, "-rows", "SMOKING", "-cols", "CANCER",
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One page per family-history value with that page's marginals
	// (value labels are sorted by InferSchema, so rows permute but the
	// counts and page totals of Figures 2a/2b must all appear).
	for _, want := range []string{"1780", "1648", "750", "491", "1510", "270"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q:\n%s", want, out)
		}
	}
}

func TestParseAssignments(t *testing.T) {
	as, err := parseAssignments("A=x, FAMILY HISTORY=Yes")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[1].Attr != "FAMILY HISTORY" || as[1].Value != "Yes" {
		t.Errorf("parsed = %v", as)
	}
	if _, err := parseAssignments("novalue"); err == nil {
		t.Error("missing = accepted")
	}
	if _, err := parseAssignments("=x"); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := parseAssignments("A="); err == nil {
		t.Error("empty value accepted")
	}
	if as, err := parseAssignments("  "); err != nil || as != nil {
		t.Errorf("blank input: %v, %v", as, err)
	}
}

func TestQueryZeroEvidence(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"discover", "-in", csvPath, "-out", kbPath}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{"query", "-kb", kbPath, "-target", "CANCER=Maybe"}); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestDiscoverSparseMode(t *testing.T) {
	csvPath := writeMemoCSV(t)
	kbPath := filepath.Join(t.TempDir(), "kb.json")

	// -sparse with screening discovers the memo's structure end to end and
	// reports the screen.
	var buf bytes.Buffer
	if err := run(&buf, []string{
		"discover", "-in", csvPath, "-out", kbPath, "-sparse", "-screen",
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"N=3428", "screen:", "significant constraints", "knowledge base written"} {
		if !strings.Contains(out, want) {
			t.Errorf("sparse discover output missing %q:\n%s", want, out)
		}
	}

	// The saved knowledge base answers queries like the dense one.
	buf.Reset()
	if err := run(&buf, []string{
		"query", "-kb", kbPath,
		"-target", "CANCER=Yes",
		"-given", "SMOKING=Smoker",
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P(CANCER=Yes | SMOKING=Smoker) = 0.18") {
		t.Errorf("query on sparse-discovered kb wrong (want ≈0.186):\n%s", buf.String())
	}

	// Dense-only flags are rejected in sparse mode.
	if err := run(&buf, []string{"discover", "-in", csvPath, "-sparse", "-cv", "3"}); err == nil {
		t.Error("-sparse with -cv accepted")
	}
	if err := run(&buf, []string{"discover", "-in", csvPath, "-sparse", "-merge-rare", "5"}); err == nil {
		t.Error("-sparse with -merge-rare accepted")
	}
}
