package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pka"
)

// runLoadgen is `pka bench -serve <url>`: a self-contained HTTP load
// generator for any pka serving process — standalone, primary, replica, or
// shard coordinator. It reads the target's schema, synthesizes a rotating
// workload of every query kind, and fires it over conns connections for
// the duration, then reports throughput and latency percentiles.
func runLoadgen(w io.Writer, url string, conns int, duration time.Duration) error {
	if conns < 1 {
		return fmt.Errorf("bench: -conns must be >= 1, got %d", conns)
	}
	if duration <= 0 {
		return fmt.Errorf("bench: -duration must be positive, got %s", duration)
	}
	url = strings.TrimRight(url, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Get(url + "/v1/schema")
	if err != nil {
		return fmt.Errorf("bench: fetching %s/v1/schema: %w", url, err)
	}
	var schema struct {
		Attributes []struct {
			Name   string   `json:"name"`
			Values []string `json:"values"`
		} `json:"attributes"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&schema)
	resp.Body.Close()
	if decErr != nil {
		return fmt.Errorf("bench: decoding schema: %w", decErr)
	}
	if len(schema.Attributes) == 0 {
		return fmt.Errorf("bench: %s serves an empty schema", url)
	}

	bodies, err := loadgenWorkload(schema.Attributes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "loadgen: %s, %d attributes, %d query workload, %d conns, %s\n",
		url, len(schema.Attributes), len(bodies), conns, duration)

	deadline := time.Now().Add(duration)
	var errs atomic.Int64
	lats := make([][]time.Duration, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Per-connection client: its own keep-alive connection, like a
			// distinct downstream caller.
			cl := &http.Client{Timeout: 30 * time.Second}
			for i := c; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := cl.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("bench: no request succeeded against %s (%d errors)", url, errs.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Fprintf(w, "requests %d  errors %d  %.0f req/s\n",
		len(all), errs.Load(), float64(len(all))/elapsed.Seconds())
	fmt.Fprintf(w, "latency p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	return nil
}

// loadgenWorkload builds one marshaled query per kind per schema slot:
// joints, conditionals, distributions, most-likely, lift, and one MPE —
// the same surface the correctness tests sweep, here as a steady-state
// traffic mix.
func loadgenWorkload(attrs []struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}) ([][]byte, error) {
	n := len(attrs)
	var queries []pka.Query
	for i := 0; i < n && i < 16; i++ {
		a, b := attrs[i], attrs[(i+1)%n]
		queries = append(queries,
			pka.Query{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: a.Name, Value: a.Values[0]}}},
			pka.Query{Kind: pka.QueryConditional,
				Target: []pka.Assignment{{Attr: b.Name, Value: b.Values[len(b.Values)-1]}},
				Given:  []pka.Assignment{{Attr: a.Name, Value: a.Values[0]}}},
			pka.Query{Kind: pka.QueryDistribution, Attr: a.Name,
				Given: []pka.Assignment{{Attr: b.Name, Value: b.Values[0]}}},
			pka.Query{Kind: pka.QueryMostLikely, Attr: b.Name,
				Given: []pka.Assignment{{Attr: a.Name, Value: a.Values[len(a.Values)-1]}}},
			pka.Query{Kind: pka.QueryLift,
				Target: []pka.Assignment{{Attr: a.Name, Value: a.Values[0]}},
				Given:  []pka.Assignment{{Attr: b.Name, Value: b.Values[0]}}},
		)
	}
	queries = append(queries, pka.Query{Kind: pka.QueryMPE,
		Given: []pka.Assignment{{Attr: attrs[0].Name, Value: attrs[0].Values[0]}}})
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, fmt.Errorf("bench: encoding workload: %w", err)
		}
		bodies[i] = b
	}
	return bodies, nil
}
