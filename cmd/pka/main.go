// Command pka is the command-line front end to the probabilistic knowledge
// acquisition library: point it at CSV observation data and it discovers
// the significant correlations, builds a queryable knowledge base, and
// extracts IF-THEN rules.
//
// Subcommands:
//
//	pka discover -in data.csv -out kb.json [-max-order N] [-prior P] [-sparse] [-screen]
//	pka rules    -kb kb.json [-min-prob P] [-min-lift D] [-top K]
//	pka query    -kb kb.json -target "ATTR=value" [-given "A=v,B=w"] [-json]
//	pka serve    -kb kb.json|kb.pkas [-addr :8080]
//	pka snapshot -in kb.json -out kb.pkas [-format binary|json]
//	pka tables   -in data.csv [-rows ATTR] [-cols ATTR]
//	pka bench    [-out BENCH_6.json] [-iters N] [-workers W]
//
// All probability output derives from the stored product formula; no raw
// data is needed after discovery.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pka"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pka:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pka <discover|rules|query|serve|snapshot|tables> [flags]")
	}
	switch args[0] {
	case "discover":
		return cmdDiscover(w, args[1:])
	case "rules":
		return cmdRules(w, args[1:])
	case "query":
		return cmdQuery(w, args[1:])
	case "tables":
		return cmdTables(w, args[1:])
	case "simulate":
		return cmdSimulate(w, args[1:])
	case "explain":
		return cmdExplain(w, args[1:])
	case "analyze":
		return cmdAnalyze(w, args[1:])
	case "validate":
		return cmdValidate(w, args[1:])
	case "serve":
		return cmdServe(w, args[1:])
	case "snapshot":
		return cmdSnapshot(w, args[1:])
	case "bench":
		return cmdBench(w, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want discover, rules, query, serve, snapshot, tables, simulate, explain, analyze, validate, or bench)", args[0])
	}
}

// cmdExplain prints either the stored formula of a knowledge base or the
// most probable explanation of evidence.
//
//	pka explain -kb kb.json                      # the formula
//	pka explain -kb kb.json -given "A=x,B=y"     # MPE completion
func cmdExplain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	kbPath := fs.String("kb", "", "knowledge base: JSON from 'pka discover -out' or PKAS binary from 'pka snapshot'")
	given := fs.String("given", "", "evidence; if set, print the most probable explanation")
	dot := fs.Bool("dot", false, "emit the dependency structure as Graphviz instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(w, model.DependencyDOT())
		return nil
	}
	if *given == "" {
		fmt.Fprint(w, model.Explain())
		return nil
	}
	assigns, err := parseAssignments(*given)
	if err != nil {
		return err
	}
	exp, err := model.MostProbableExplanation(assigns...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "most probable explanation (p = %.6f):\n", exp.Probability)
	for _, a := range exp.Assignments {
		fmt.Fprintf(w, "  %s\n", a)
	}
	return nil
}

func cmdDiscover(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("discover", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV file (header row = attribute names)")
	out := fs.String("out", "", "output knowledge-base JSON file (default: stdout summary only)")
	maxOrder := fs.Int("max-order", 0, "highest attribute-family order to scan (0 = all)")
	prior := fs.Float64("prior", 0, "p(H2') prior (0 = the memo's 0.5)")
	maxCard := fs.Int("max-card", 64, "reject CSV columns with more distinct values than this")
	cvFolds := fs.Int("cv", 0, "select max-order by k-fold cross-validation (0 = off)")
	cvSeed := fs.Int64("cv-seed", 1, "fold-assignment seed for -cv")
	scan := fs.Bool("scan", false, "print the first significance scan (a Table 1 for your data)")
	mergeRare := fs.Int64("merge-rare", 0, "collapse values seen fewer than this many times into 'other' (0 = off)")
	sparse := fs.Bool("sparse", false, "wide-schema mode: tabulate into a sparse table and discover without materializing the joint space")
	screen := fs.Bool("screen", false, "gate order >= 2 scans on a pairwise association screen (recommended with -sparse)")
	screenAlpha := fs.Float64("screen-alpha", 0, "pairwise G² p-value threshold for -screen (0 = Bonferroni 0.05/pairs)")
	screenCI := fs.Bool("screen-ci", false, "refine -screen with conditional-independence triple tests (prunes pairs a common neighbor explains)")
	screenCIAlpha := fs.Float64("screen-ci-alpha", 0, "p-value above which a conditional test counts as independent for -screen-ci (0 = 0.05)")
	maxConstraints := fs.Int("max-constraints", 0, "stop after accepting this many order >= 2 constraints (0 = no cap)")
	workers := fs.Int("workers", 0, "worker goroutines for scans, screening, and block solves (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("discover: -in is required")
	}
	if *sparse && *cvFolds > 0 {
		return fmt.Errorf("discover: -cv needs the dense path; drop -sparse or -cv")
	}
	if *sparse && *mergeRare > 0 {
		return fmt.Errorf("discover: -merge-rare needs the dense path; drop -sparse or -merge-rare")
	}
	if *cvFolds > 0 {
		schema, table, err := tabulateCSVFile(*in, *maxCard)
		if err != nil {
			return err
		}
		limit := *maxOrder
		if limit == 0 {
			limit = schema.R()
		}
		scores, best, err := pka.SelectMaxOrder(table, limit, *cvFolds, *cvSeed)
		if err != nil {
			return err
		}
		for _, s := range scores {
			fmt.Fprintf(w, "cv: order %d -> %.4f nats/sample (avg %.1f constraints)\n",
				s.MaxOrder, s.MeanLoss, s.MeanFindings)
		}
		fmt.Fprintf(w, "cv: selected max-order %d\n\n", best)
		*maxOrder = best
	}
	opts := pka.Options{
		MaxOrder:       *maxOrder,
		PriorH2:        *prior,
		RecordScans:    *scan,
		ScreenPairs:    *screen,
		ScreenAlpha:    *screenAlpha,
		ScreenCI:       *screenCI,
		ScreenCIAlpha:  *screenCIAlpha,
		MaxConstraints: *maxConstraints,
		Workers:        *workers,
	}
	var model *pka.Model
	var err error
	if *sparse {
		model, err = discoverSparseFromCSV(*in, *maxCard, opts)
	} else {
		model, err = discoverFromCSVMerged(*in, *maxCard, *mergeRare, opts)
	}
	if err != nil {
		return err
	}
	if rep := model.Screen(); rep != nil {
		fmt.Fprintf(w, "screen: %d of %d attribute pairs passed (alpha %.3g)\n",
			rep.PairsKept, rep.PairsTotal, rep.Alpha)
		if rep.CIAlpha != 0 {
			fmt.Fprintf(w, "screen-ci: %d conditional tests dropped %d pairs (alpha %.3g)\n",
				rep.CITriplesTested, rep.CIEdgesDropped, rep.CIAlpha)
		}
		fmt.Fprintln(w)
	}
	if *scan {
		if err := printFirstScan(w, model); err != nil {
			return err
		}
	}
	fmt.Fprint(w, model.Summary())
	fmt.Fprintln(w)
	fmt.Fprint(w, model.Explain())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("discover: %w", err)
		}
		defer f.Close()
		if err := model.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nknowledge base written to %s\n", *out)
	}
	return nil
}

func discoverFromCSV(path string, maxCard int, opts pka.Options) (*pka.Model, error) {
	return discoverFromCSVMerged(path, maxCard, 0, opts)
}

// discoverSparseFromCSV is the wide-schema path: the file is streamed into
// a sparse contingency table and acquisition runs on it directly, so the
// dense joint space is never allocated.
func discoverSparseFromCSV(path string, maxCard int, opts pka.Options) (*pka.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	schema, err := pka.InferSchema(f, maxCard)
	f.Close()
	if err != nil {
		return nil, err
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	table, err := pka.TabulateCSVSparse(f, schema)
	if err != nil {
		return nil, err
	}
	return pka.DiscoverSparse(table, schema, opts)
}

func discoverFromCSVMerged(path string, maxCard int, mergeRare int64, opts pka.Options) (*pka.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	schema, err := pka.InferSchema(f, maxCard)
	f.Close()
	if err != nil {
		return nil, err
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := pka.ReadCSV(f, schema)
	if err != nil {
		return nil, err
	}
	if mergeRare > 0 {
		data, err = pka.MergeRareValues(data, mergeRare)
		if err != nil {
			return nil, err
		}
	}
	return pka.Discover(data, opts)
}

func cmdRules(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rules", flag.ContinueOnError)
	kbPath := fs.String("kb", "", "knowledge base: JSON from 'pka discover -out' or PKAS binary from 'pka snapshot'")
	minProb := fs.Float64("min-prob", 0, "minimum rule probability")
	minLift := fs.Float64("min-lift", 0, "minimum |lift-1| distance from independence")
	top := fs.Int("top", 0, "keep only the strongest K rules (0 = all)")
	withCI := fs.Bool("ci", false, "attach 95% Wilson confidence intervals (needs -n)")
	n := fs.Int64("n", 0, "discovery sample count, for -ci")
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	rs, err := model.Rules(pka.RuleOptions{
		MinProbability:  *minProb,
		MinLiftDistance: *minLift,
		MaxRules:        *top,
	})
	if err != nil {
		return err
	}
	if len(rs) == 0 {
		fmt.Fprintln(w, "no rules pass the filters")
		return nil
	}
	if *withCI {
		if *n <= 0 {
			return fmt.Errorf("rules: -ci needs -n (the discovery sample count)")
		}
		scored, err := pka.RulesWithIntervals(rs, *n)
		if err != nil {
			return err
		}
		for i, s := range scored {
			fmt.Fprintf(w, "%3d. %s\n", i+1, s)
		}
		return nil
	}
	for i, r := range rs {
		fmt.Fprintf(w, "%3d. %s\n", i+1, r)
	}
	return nil
}

func cmdQuery(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	kbPath := fs.String("kb", "", "knowledge base: JSON from 'pka discover -out' or PKAS binary from 'pka snapshot'")
	target := fs.String("target", "", `target assignments, e.g. "CANCER=Yes"`)
	given := fs.String("given", "", `evidence assignments, e.g. "SMOKING=Smoker,FAMILY HISTORY=Yes"`)
	dist := fs.String("dist", "", "print the full distribution of this attribute instead")
	asJSON := fs.Bool("json", false, "emit machine-readable output (the server's query wire format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	givenAssigns, err := parseAssignments(*given)
	if err != nil {
		return err
	}
	if *asJSON {
		q := pka.Query{Kind: pka.QueryConditional, Given: givenAssigns}
		if *dist != "" {
			q.Kind, q.Attr = pka.QueryDistribution, *dist
		} else {
			if *target == "" {
				return fmt.Errorf("query: -target or -dist is required")
			}
			if q.Target, err = parseAssignments(*target); err != nil {
				return err
			}
		}
		res, err := pka.Answer(model, q)
		if err != nil {
			return err
		}
		return pka.EncodeQueryResult(w, res)
	}
	if *dist != "" {
		d, err := model.Distribution(*dist, givenAssigns...)
		if err != nil {
			return err
		}
		attr, _, err := model.Schema().AttrByName(*dist)
		if err != nil {
			return err
		}
		for _, v := range attr.Values {
			fmt.Fprintf(w, "P(%s=%s%s) = %.6f\n", *dist, v, givenSuffix(*given), d[v])
		}
		return nil
	}
	if *target == "" {
		return fmt.Errorf("query: -target or -dist is required")
	}
	targetAssigns, err := parseAssignments(*target)
	if err != nil {
		return err
	}
	p, err := model.Conditional(targetAssigns, givenAssigns)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "P(%s%s) = %.6f\n", *target, givenSuffix(*given), p)
	return nil
}

func givenSuffix(given string) string {
	if given == "" {
		return ""
	}
	return " | " + given
}

func cmdTables(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV file")
	rows := fs.String("rows", "", "row attribute (default: first)")
	cols := fs.String("cols", "", "column attribute (default: second)")
	maxCard := fs.Int("max-card", 64, "reject CSV columns with more distinct values than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("tables: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	schema, err := pka.InferSchema(f, *maxCard)
	f.Close()
	if err != nil {
		return err
	}
	f, err = os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := pka.ReadCSV(f, schema)
	if err != nil {
		return err
	}
	table, err := data.Tabulate()
	if err != nil {
		return err
	}
	rowAxis, colAxis := 0, 1
	if *rows != "" {
		if rowAxis, err = schema.Position(*rows); err != nil {
			return err
		}
	}
	if *cols != "" {
		if colAxis, err = schema.Position(*cols); err != nil {
			return err
		}
	}
	if schema.R() < 2 {
		return fmt.Errorf("tables: need at least 2 attributes")
	}
	return table.RenderSlices(w, rowAxis, colAxis, true)
}

// loadKB opens a saved knowledge base in either on-disk format — JSON or
// PKAS binary snapshot — sniffing the magic bytes to dispatch.
func loadKB(path string) (*pka.QueryModel, error) {
	if path == "" {
		return nil, fmt.Errorf("-kb is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pka.LoadAny(f)
}

// parseAssignments parses "A=x,B=y" into assignments; attribute names may
// contain spaces (only the comma splits pairs).
func parseAssignments(s string) ([]pka.Assignment, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]pka.Assignment, 0, len(parts))
	for _, part := range parts {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad assignment %q (want ATTR=value)", part)
		}
		attr := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if attr == "" || val == "" {
			return nil, fmt.Errorf("bad assignment %q (want ATTR=value)", part)
		}
		out = append(out, pka.Assignment{Attr: attr, Value: val})
	}
	return out, nil
}
