package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pka/internal/paperdata"
	"pka/internal/stats"
	"pka/internal/synth"
)

// cmdSimulate emits a synthetic CSV from a named scenario so the rest of
// the CLI can be exercised without external data.
//
//	pka simulate -scenario survey -n 10000 -seed 1 > survey.csv
func cmdSimulate(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	scenario := fs.String("scenario", "survey",
		"one of: paper, survey, telemetry, xor, wide")
	n := fs.Int("n", 10000, "number of records")
	seed := fs.Int64("seed", 1, "random seed (paper scenario ignores it)")
	out := fs.String("out", "", "output CSV file (default stdout)")
	factors := fs.Int("factors", 4, "survey: number of risk factors; wide: number of coupled attribute pairs (2x attributes)")
	strength := fs.Float64("strength", 2.5, "survey/xor/wide scenario: coupling strength")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("simulate: -n must be positive")
	}
	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
		defer f.Close()
		dst = f
	}
	if *scenario == "paper" {
		// The paper's exact survey, not a sample.
		return paperdata.Records().WriteCSV(dst)
	}
	if *scenario == "wide" {
		// Product-of-pairs ground truth: no joint is materialized, so the
		// schema can go far past the dense builder's cell cap — this is the
		// data source for the 500+-attribute workflow.
		truth, err := synth.WidePairs(*factors, *strength)
		if err != nil {
			return err
		}
		data, err := truth.SampleDataset(stats.NewRNG(*seed), *n)
		if err != nil {
			return err
		}
		return data.WriteCSV(dst)
	}
	truth, err := buildScenario(*scenario, *factors, *strength)
	if err != nil {
		return err
	}
	data, err := truth.SampleDataset(stats.NewRNG(*seed), *n)
	if err != nil {
		return err
	}
	return data.WriteCSV(dst)
}

func buildScenario(name string, factors int, strength float64) (*synth.GroundTruth, error) {
	switch name {
	case "survey":
		return synth.Survey(factors, strength)
	case "telemetry":
		return synth.Telemetry()
	case "xor":
		return synth.XOR3(strength)
	default:
		return nil, fmt.Errorf("simulate: unknown scenario %q (want paper, survey, telemetry, xor, or wide)", name)
	}
}
