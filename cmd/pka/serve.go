package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pka"
	"pka/internal/cluster"
	"pka/internal/replog"
	"pka/internal/server"
)

// cmdServe runs the knowledge-base query server:
//
//	pka serve -kb kb.json [-addr :8080] [-max-batch N]
//	pka serve -data data.csv [-sparse] [-screen] [-max-order N] ...
//	pka serve -data data.csv -log observe.log            # replicated primary
//	pka serve -replica-of http://primary:8080            # read replica
//	pka serve -kb kb.pkas -shard 0/2                     # block shard
//	pka serve -kb kb.pkas -shards http://s0,http://s1    # shard coordinator
//
// With -kb the model is loaded from a saved file and served read-only.
// With -data the model is discovered from the CSV at startup and served
// with streaming ingest enabled: POST /v1/observe folds new observation
// rows into the model (incremental refit, atomic engine swap) while
// queries keep flowing. SIGINT/SIGTERM trigger a graceful shutdown.
//
// The cluster modes compose the same server:
//
//   - -log turns the ingest server into a replicated primary: every applied
//     observe batch is appended to the CRC-framed log and served to
//     replicas via GET /v1/log and GET /v1/snapshot. On restart the log is
//     replayed over the freshly discovered seed, so the primary resumes at
//     its exact pre-crash version (the seed discovery is deterministic —
//     keep -data pointed at the same CSV).
//   - -replica-of boots from the primary's snapshot, tails its log, and
//     serves reads that are bit-identical to the primary at the applied
//     offset; writes answer 501. GET /readyz reports catch-up lag.
//   - -shard i/n serves the i-th slice of a factored model's constraint
//     blocks (block b belongs to shard b mod n); -shards assembles the
//     fleet back into one query surface whose answers are bit-identical to
//     serving the snapshot in one process.
func cmdServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveConfig{}
	fs.StringVar(&cfg.kbPath, "kb", "", "knowledge base to serve read-only: JSON or PKAS binary snapshot, auto-detected by magic bytes")
	fs.StringVar(&cfg.dataPath, "data", "", "observation CSV: discover at startup and serve with streaming ingest")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.maxBatch, "max-batch", 0, "max queries per batch request (0 = default)")
	fs.IntVar(&cfg.maxObserve, "max-observe", 0, "max rows per observe request (0 = default)")
	fs.Int64Var(&cfg.cacheBytes, "cache-bytes", 32<<20, "serving-cache capacity in bytes per tier (0 disables, negative unbounded)")
	fs.IntVar(&cfg.workers, "workers", 0, "server-wide worker budget for batch queries, plus startup-discovery parallelism (0 = all cores, 1 = serial)")
	fs.IntVar(&cfg.maxCard, "max-card", 64, "with -data: reject CSV columns with more distinct values than this")
	fs.IntVar(&cfg.maxOrder, "max-order", 0, "with -data: highest attribute-family order to scan (0 = all)")
	fs.BoolVar(&cfg.sparse, "sparse", false, "with -data: wide-schema mode (sparse tabulation, factored engine)")
	fs.BoolVar(&cfg.screen, "screen", false, "with -data: gate order >= 2 scans on a pairwise association screen")
	fs.Float64Var(&cfg.screenAlpha, "screen-alpha", 0, "with -data: screen p-value threshold (0 = Bonferroni)")
	fs.BoolVar(&cfg.screenCI, "screen-ci", false, "with -data: refine -screen with conditional-independence triple tests")
	fs.Float64Var(&cfg.screenCIAlpha, "screen-ci-alpha", 0, "with -data: independence p-value for -screen-ci (0 = 0.05)")
	fs.StringVar(&cfg.logPath, "log", "", "with -data: replicated-primary mode — append applied observe batches to this log and serve /v1/log + /v1/snapshot for replicas")
	fs.StringVar(&cfg.replicaOf, "replica-of", "", "read-replica mode: boot from this primary's snapshot and follow its observe log")
	fs.DurationVar(&cfg.poll, "poll", 200*time.Millisecond, "with -replica-of: log tail poll interval")
	fs.StringVar(&cfg.shard, "shard", "", "with -kb: serve one slice i/n of a factored model's constraint blocks (e.g. 0/2)")
	fs.StringVar(&cfg.shardURLs, "shards", "", "with -kb: coordinate a comma-separated shard fleet into one query surface")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, w, cfg, nil)
}

// serveConfig carries cmdServe's flags so tests can drive runServe
// directly.
type serveConfig struct {
	kbPath, dataPath  string
	addr              string
	maxBatch          int
	maxObserve        int
	cacheBytes        int64
	workers           int
	maxCard, maxOrder int
	sparse            bool
	screen            bool
	screenAlpha       float64
	screenCI          bool
	screenCIAlpha     float64

	// Cluster modes.
	logPath   string
	replicaOf string
	poll      time.Duration
	shard     string
	shardURLs string
}

func (c serveConfig) serverOptions() server.Options {
	return server.Options{
		MaxBatch:       c.maxBatch,
		MaxObserveRows: c.maxObserve,
		Workers:        c.workers,
		CacheBytes:     c.cacheBytes,
	}
}

// runServe is cmdServe minus flag and signal handling, so tests can drive
// it with their own context and capture the bound address.
func runServe(ctx context.Context, w io.Writer, cfg serveConfig, ready func(net.Addr)) error {
	sources := 0
	for _, s := range []string{cfg.kbPath, cfg.dataPath, cfg.replicaOf} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("serve: exactly one of -kb (read-only), -data (streaming ingest), or -replica-of (follower) is required")
	}
	if cfg.shard != "" && cfg.shardURLs != "" {
		return fmt.Errorf("serve: -shard serves a slice, -shards coordinates a fleet — pick one")
	}
	if (cfg.shard != "" || cfg.shardURLs != "") && cfg.kbPath == "" {
		return fmt.Errorf("serve: -shard/-shards need the snapshot via -kb (every process loads the same file)")
	}
	if cfg.logPath != "" && cfg.dataPath == "" {
		return fmt.Errorf("serve: -log (replicated primary) needs -data for the seed model")
	}
	switch {
	case cfg.replicaOf != "":
		return runServeReplica(ctx, w, cfg, ready)
	case cfg.shard != "":
		return runServeShard(ctx, w, cfg, ready)
	case cfg.shardURLs != "":
		return runServeCoordinator(ctx, w, cfg, ready)
	}

	var model pka.Querier
	source := cfg.kbPath
	mode := "read-only"
	if cfg.dataPath != "" {
		source = cfg.dataPath
		mode = "streaming ingest"
		opts := pka.Options{
			MaxOrder:      cfg.maxOrder,
			ScreenPairs:   cfg.screen,
			ScreenAlpha:   cfg.screenAlpha,
			ScreenCI:      cfg.screenCI,
			ScreenCIAlpha: cfg.screenCIAlpha,
			Workers:       cfg.workers,
		}
		var err error
		if cfg.sparse {
			model, err = discoverSparseFromCSV(cfg.dataPath, cfg.maxCard, opts)
		} else {
			model, err = discoverFromCSV(cfg.dataPath, cfg.maxCard, opts)
		}
		if err != nil {
			return fmt.Errorf("serve: discovering from %s: %w", cfg.dataPath, err)
		}
	} else {
		var err error
		model, err = loadKB(cfg.kbPath)
		if err != nil {
			return err
		}
	}
	if ce, ok := model.(interface{ EnableCache(capacityBytes int64) }); ok {
		ce.EnableCache(cfg.cacheBytes)
	}
	handler := server.NewWithOptions(model, cfg.serverOptions())
	if cfg.logPath != "" {
		// Replicated primary: replay the log over the deterministic seed
		// (a restart resumes exactly where it stopped), then route every
		// observe through the apply+append critical section.
		bank, ok := model.(cluster.Bank)
		if !ok {
			return fmt.Errorf("serve: -log needs an ingest-capable model")
		}
		lg, err := replog.Open(cfg.logPath)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		defer lg.Close()
		if _, err := cluster.Replay(lg, bank, 0); err != nil {
			return fmt.Errorf("serve: replaying %s: %w", cfg.logPath, err)
		}
		p, err := cluster.NewPrimary(bank, lg)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		handler = p.Handler(server.NewWithOptions(p, cfg.serverOptions()))
		mode = fmt.Sprintf("primary, log %s at offset %d", cfg.logPath, lg.Next())
	}
	info := model.(interface{ Info() pka.Info }).Info()
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving %s (%d attributes, %d constraints, %s) on %s\n",
			source, info.Attributes, info.Constraints, mode, a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, cfg.addr, handler, announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}

// runServeReplica boots from the primary's snapshot, follows its log in
// the background, and serves reads.
func runServeReplica(ctx context.Context, w io.Writer, cfg serveConfig, ready func(net.Addr)) error {
	load := func(r io.Reader) (cluster.Bank, error) {
		m, err := pka.LoadModelSnapshot(r)
		if err != nil {
			return nil, err
		}
		m.EnableCache(cfg.cacheBytes)
		return m, nil
	}
	rep, err := cluster.BootReplica(ctx, strings.TrimRight(cfg.replicaOf, "/"), load, cfg.poll, http.DefaultClient)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	go func() {
		if err := rep.Follow(ctx); err != nil {
			// The replica keeps serving its last consistent state but
			// reports unready; surface the fault for the operator.
			fmt.Fprintf(w, "replica: log stream broken: %v\n", err)
		}
	}()
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving replica of %s (boot version %d, read-only) on %s\n",
			cfg.replicaOf, rep.Version(), a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, cfg.addr, server.NewWithOptions(rep, cfg.serverOptions()), announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}

// runServeShard serves one slice of a factored snapshot's blocks.
func runServeShard(ctx context.Context, w io.Writer, cfg serveConfig, ready func(net.Addr)) error {
	var index, total int
	if n, err := fmt.Sscanf(cfg.shard, "%d/%d", &index, &total); n != 2 || err != nil {
		return fmt.Errorf("serve: -shard wants i/n (e.g. 0/2), got %q", cfg.shard)
	}
	qm, err := loadKB(cfg.kbPath)
	if err != nil {
		return err
	}
	sh, err := cluster.NewShard(qm.KnowledgeBase(), index, total)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving shard %d/%d of %s (%d of %d blocks) on %s\n",
			index, total, cfg.kbPath, len(sh.Meta().Owned), sh.Meta().Blocks, a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, cfg.addr, sh.Handler(), announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}

// runServeCoordinator assembles a shard fleet into one query surface.
func runServeCoordinator(ctx context.Context, w io.Writer, cfg serveConfig, ready func(net.Addr)) error {
	urls := strings.Split(cfg.shardURLs, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	qm, err := loadKB(cfg.kbPath)
	if err != nil {
		return err
	}
	coord, err := cluster.NewCoordinator(qm.KnowledgeBase(), urls, http.DefaultClient)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	coord.EnableCache(cfg.cacheBytes)
	info := qm.Info()
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving %s (%d attributes, %d constraints) across %d shards on %s\n",
			cfg.kbPath, info.Attributes, info.Constraints, len(urls), a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, cfg.addr, server.NewWithOptions(coord, cfg.serverOptions()), announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}
