package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os/signal"
	"syscall"

	"pka"
	"pka/internal/server"
)

// cmdServe runs the knowledge-base query server:
//
//	pka serve -kb kb.json [-addr :8080] [-max-batch N]
//	pka serve -data data.csv [-sparse] [-screen] [-max-order N] ...
//
// With -kb the model is loaded from a saved file and served read-only.
// With -data the model is discovered from the CSV at startup and served
// with streaming ingest enabled: POST /v1/observe folds new observation
// rows into the model (incremental refit, atomic engine swap) while
// queries keep flowing. SIGINT/SIGTERM trigger a graceful shutdown.
func cmdServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveConfig{}
	fs.StringVar(&cfg.kbPath, "kb", "", "knowledge base to serve read-only: JSON or PKAS binary snapshot, auto-detected by magic bytes")
	fs.StringVar(&cfg.dataPath, "data", "", "observation CSV: discover at startup and serve with streaming ingest")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.maxBatch, "max-batch", 0, "max queries per batch request (0 = default)")
	fs.IntVar(&cfg.maxObserve, "max-observe", 0, "max rows per observe request (0 = default)")
	fs.IntVar(&cfg.workers, "workers", 0, "server-wide worker budget for batch queries, plus startup-discovery parallelism (0 = all cores, 1 = serial)")
	fs.IntVar(&cfg.maxCard, "max-card", 64, "with -data: reject CSV columns with more distinct values than this")
	fs.IntVar(&cfg.maxOrder, "max-order", 0, "with -data: highest attribute-family order to scan (0 = all)")
	fs.BoolVar(&cfg.sparse, "sparse", false, "with -data: wide-schema mode (sparse tabulation, factored engine)")
	fs.BoolVar(&cfg.screen, "screen", false, "with -data: gate order >= 2 scans on a pairwise association screen")
	fs.Float64Var(&cfg.screenAlpha, "screen-alpha", 0, "with -data: screen p-value threshold (0 = Bonferroni)")
	fs.BoolVar(&cfg.screenCI, "screen-ci", false, "with -data: refine -screen with conditional-independence triple tests")
	fs.Float64Var(&cfg.screenCIAlpha, "screen-ci-alpha", 0, "with -data: independence p-value for -screen-ci (0 = 0.05)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, w, cfg, nil)
}

// serveConfig carries cmdServe's flags so tests can drive runServe
// directly.
type serveConfig struct {
	kbPath, dataPath  string
	addr              string
	maxBatch          int
	maxObserve        int
	workers           int
	maxCard, maxOrder int
	sparse            bool
	screen            bool
	screenAlpha       float64
	screenCI          bool
	screenCIAlpha     float64
}

// runServe is cmdServe minus flag and signal handling, so tests can drive
// it with their own context and capture the bound address.
func runServe(ctx context.Context, w io.Writer, cfg serveConfig, ready func(net.Addr)) error {
	if (cfg.kbPath == "") == (cfg.dataPath == "") {
		return fmt.Errorf("serve: exactly one of -kb (read-only) or -data (streaming ingest) is required")
	}
	var model pka.Querier
	source := cfg.kbPath
	mode := "read-only"
	if cfg.dataPath != "" {
		source = cfg.dataPath
		mode = "streaming ingest"
		opts := pka.Options{
			MaxOrder:      cfg.maxOrder,
			ScreenPairs:   cfg.screen,
			ScreenAlpha:   cfg.screenAlpha,
			ScreenCI:      cfg.screenCI,
			ScreenCIAlpha: cfg.screenCIAlpha,
			Workers:       cfg.workers,
		}
		var err error
		if cfg.sparse {
			model, err = discoverSparseFromCSV(cfg.dataPath, cfg.maxCard, opts)
		} else {
			model, err = discoverFromCSV(cfg.dataPath, cfg.maxCard, opts)
		}
		if err != nil {
			return fmt.Errorf("serve: discovering from %s: %w", cfg.dataPath, err)
		}
	} else {
		var err error
		model, err = loadKB(cfg.kbPath)
		if err != nil {
			return err
		}
	}
	info := model.(interface{ Info() pka.Info }).Info()
	handler := server.NewWithOptions(model, server.Options{
		MaxBatch:       cfg.maxBatch,
		MaxObserveRows: cfg.maxObserve,
		Workers:        cfg.workers,
	})
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving %s (%d attributes, %d constraints, %s) on %s\n",
			source, info.Attributes, info.Constraints, mode, a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, cfg.addr, handler, announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}
