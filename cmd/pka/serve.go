package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os/signal"
	"syscall"

	"pka/internal/server"
)

// cmdServe runs the knowledge-base query server:
//
//	pka serve -kb kb.json [-addr :8080] [-max-batch N]
//
// The model is loaded and compiled once; every request is served from the
// shared engine. SIGINT/SIGTERM trigger a graceful shutdown.
func cmdServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	kbPath := fs.String("kb", "", "knowledge-base JSON from 'pka discover -out'")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "max queries per batch request (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, w, *kbPath, *addr, *maxBatch, nil)
}

// runServe is cmdServe minus flag and signal handling, so tests can drive
// it with their own context and capture the bound address.
func runServe(ctx context.Context, w io.Writer, kbPath, addr string, maxBatch int, ready func(net.Addr)) error {
	model, err := loadKB(kbPath)
	if err != nil {
		return err
	}
	info := model.Info()
	handler := server.NewWithOptions(model, server.Options{MaxBatch: maxBatch})
	announce := func(a net.Addr) {
		fmt.Fprintf(w, "serving %s (%d attributes, %d constraints) on %s\n",
			kbPath, info.Attributes, info.Constraints, a)
		if ready != nil {
			ready(a)
		}
	}
	if err := server.ListenAndServe(ctx, addr, handler, announce); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "server stopped")
	return nil
}
