package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdBenchSnapshot runs the suite once (the CI smoke configuration)
// and validates the snapshot: every suite item present with positive
// timings, host info filled in, and the file parseable by any JSON
// consumer.
func TestCmdBenchSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"bench", "-iters", "1", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Version != 9 {
		t.Errorf("version = %d, want 9", snap.Version)
	}
	if snap.Host.Go == "" || snap.Host.OS == "" || snap.Host.Arch == "" ||
		snap.Host.NumCPU < 1 || snap.Host.GOMAXPROCS < 1 {
		t.Errorf("host info incomplete: %+v", snap.Host)
	}
	want := []string{
		"discover_dense", "discover_sparse_screen", "wide_discover",
		"incremental_refit",
		"cold_start_json", "cold_start_snapshot",
		"fit_factored", "answer_batch", "http_batch",
		"http_query_miss", "http_query_hit", "http_batch_cached",
	}
	if len(snap.Benchmarks) != len(want) {
		t.Fatalf("%d suite items, want %d", len(snap.Benchmarks), len(want))
	}
	for i, name := range want {
		e := snap.Benchmarks[i]
		if e.Name != name {
			t.Errorf("item %d = %q, want %q", i, e.Name, name)
		}
		if e.Iters != 1 || e.NsPerOp <= 0 {
			t.Errorf("item %q has degenerate measurements: %+v", name, e)
		}
		if !strings.Contains(buf.String(), name) {
			t.Errorf("summary output missing %q", name)
		}
	}
}

// TestCmdBenchValidatesIters pins the flag validation.
func TestCmdBenchValidatesIters(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"bench", "-iters", "0", "-out", ""}); err == nil {
		t.Fatal("bench accepted -iters 0")
	}
}
