package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pka"
)

// cmdAnalyze prints the pairwise association survey of a CSV dataset — the
// pre-discovery view an analyst uses to decide where to look.
//
//	pka analyze -in data.csv
func cmdAnalyze(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV file")
	maxCard := fs.Int("max-card", 64, "reject CSV columns with more distinct values than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("analyze: -in is required")
	}
	schema, table, err := tabulateCSVFile(*in, *maxCard)
	if err != nil {
		return err
	}
	pairs, err := pka.Associations(table)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pairwise associations over %d samples:\n\n", table.Total())
	fmt.Fprint(w, pka.RenderAssociations(schema.Names(), pairs))
	return nil
}

// cmdValidate scores a saved knowledge base against fresh data.
//
//	pka validate -kb kb.json -in holdout.csv
func cmdValidate(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	kbPath := fs.String("kb", "", "knowledge base: JSON from 'pka discover -out' or PKAS binary from 'pka snapshot'")
	in := fs.String("in", "", "validation CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("validate: -in is required")
	}
	model, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	table, err := pka.TabulateCSV(f, model.Schema())
	if err != nil {
		return err
	}
	loss, err := model.LogLoss(table)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "validation: %d samples\n", table.Total())
	if math.IsInf(loss, 1) {
		fmt.Fprintln(w, "log loss: +Inf — the data occupies cells the model rules out")
		return nil
	}
	fmt.Fprintf(w, "log loss: %.4f nats/sample (%.4f bits/sample)\n",
		loss, loss/math.Ln2)
	return nil
}

// tabulateCSVFile infers a schema and tabulates the file in one pass each.
func tabulateCSVFile(path string, maxCard int) (*pka.Schema, *pka.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	schema, err := pka.InferSchema(f, maxCard)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	table, err := pka.TabulateCSV(f, schema)
	if err != nil {
		return nil, nil, err
	}
	return schema, table, nil
}
