// Command pkalint runs the repo's invariant analyzers (internal/analysis)
// over Go packages. It speaks two protocols:
//
//	pkalint ./...                     standalone: load, analyze, report
//	go vet -vettool=$(which pkalint)  the cmd/go vet-tool protocol
//
// The vet-tool protocol is the one CI uses: cmd/go hands the tool one
// .cfg file per package (absolute file list, import map, export-data
// paths) plus the -V=full and -flags handshakes. Both modes print
// findings as file:line:col: message [analyzer] and exit 2 when any
// finding survives suppression.
package main

import (
	"fmt"
	"os"
	"strings"

	"pka/internal/analysis"
)

const version = "v1.0.0"

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go's tool-ID handshake: "<name> version <semver>".
			fmt.Printf("pkalint version %s\n", version)
			return
		case "-flags", "--flags":
			// cmd/go asks which analyzer flags the tool accepts: none.
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			fmt.Fprintf(os.Stderr, "usage: pkalint [packages]\n       go vet -vettool=$(which pkalint) [packages]\n\nAnalyzers:\n")
			for _, an := range analysis.Analyzers() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", an.Name, an.Doc)
			}
			os.Exit(0)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0]))
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads packages by pattern relative to the working
// directory and analyzes them.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkalint: %v\n", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pkalint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if found {
		return 2
	}
	return 0
}
