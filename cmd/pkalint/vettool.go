package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pka/internal/analysis"
)

// vetConfig mirrors the JSON cmd/go writes for each vetted package (see
// $GOROOT/src/cmd/go/internal/work/exec.go, type vetConfig). Fields the
// tool does not consume are omitted; unknown JSON keys are ignored.
type vetConfig struct {
	ID         string
	ImportPath string
	GoFiles    []string // absolute paths

	ImportMap   map[string]string // source import path -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file

	VetxOnly   bool   // only facts wanted; we produce none
	VetxOutput string // file to write facts to (must exist afterwards)

	SucceedOnTypecheckFailure bool
}

// runVetTool executes one package analysis under the cmd/go vet
// protocol and returns the process exit code.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkalint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pkalint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exports no facts, so an empty vetx file satisfies the
	// protocol, and fact-only runs (dependencies of the vetted targets)
	// need no analysis at all.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pkalint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test files are outside the suite's contracts (tests seed rand and
	// read clocks deliberately); dropping them still leaves a
	// self-consistent package to type-check.
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0 // external test package: nothing but test files
	}
	pkg, err := analysis.CheckPackage(cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pkalint: %v\n", err)
		return 1
	}
	diags, err := analysis.Run(pkg, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkalint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
