package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildPkalint compiles the pkalint binary into a test temp dir.
func buildPkalint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pkalint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building pkalint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestStandaloneCleanOverTree is the acceptance smoke: the shipped tree
// analyzes clean, so any finding a change introduces is new.
func TestStandaloneCleanOverTree(t *testing.T) {
	bin := buildPkalint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("pkalint ./... reported findings or failed: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("pkalint ./... produced unexpected output:\n%s", out)
	}
}

// TestVetToolProtocol drives the real `go vet -vettool` path over two
// packages, which exercises the -V=full and -flags handshakes plus the
// per-package .cfg mode.
func TestVetToolProtocol(t *testing.T) {
	bin := buildPkalint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/snapshot", "./internal/replog")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestVetToolDetects proves the vettool path actually reports: a scratch
// module whose package (named replog, so the namederr gate applies)
// exports a mis-named sentinel must fail the vet run.
func TestVetToolDetects(t *testing.T) {
	bin := buildPkalint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module probe\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "probe.go"),
		"package replog\n\nimport \"errors\"\n\nvar ProbeSentinel = errors.New(\"probe\")\n")
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a planted violation:\n%s", out)
	}
	if !strings.Contains(string(out), "ProbeSentinel must be named Err*") {
		t.Fatalf("expected namederr finding for ProbeSentinel, got:\n%s", out)
	}

	// The standalone mode must agree.
	cmd = exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err = cmd.CombinedOutput()
	if err == nil || !strings.Contains(string(out), "ProbeSentinel must be named Err*") {
		t.Fatalf("standalone mode missed the planted violation (err=%v):\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHandshakes pins the two cmd/go handshakes the vettool protocol
// depends on.
func TestHandshakes(t *testing.T) {
	bin := buildPkalint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "pkalint version ") {
		t.Fatalf("-V=full output %q lacks 'pkalint version ' prefix", out)
	}
	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags output %q, want []", out)
	}
}
