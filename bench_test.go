// Benchmarks regenerating every table and figure of the memo (one bench per
// experiment id in DESIGN.md) plus the scaling and ablation experiments
// X1-X6. Custom metrics (constraints found, KL to truth, parameter counts)
// are attached with b.ReportMetric so `go test -bench=.` reproduces the
// qualitative shape of each result, not just its wall time.
package pka_test

import (
	"fmt"
	"math"
	"testing"

	"pka"
	"pka/internal/baseline"
	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/crossval"
	"pka/internal/maxent"
	"pka/internal/mml"
	"pka/internal/paperdata"
	"pka/internal/stats"
	"pka/internal/sumprod"
	"pka/internal/synth"
)

// ---------------------------------------------------------------- Figures

// BenchmarkFigure1_Tabulate measures the Appendix A pipeline: 3428 raw
// records into the Figure 1 contingency table.
func BenchmarkFigure1_Tabulate(b *testing.B) {
	d := paperdata.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Tabulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_Marginals measures all Figure 2 marginalizations
// (three second-order + three first-order sums).
func BenchmarkFigure2_Marginals(b *testing.B) {
	tab := paperdata.Table()
	keeps := []contingency.VarSet{
		contingency.NewVarSet(0, 1), contingency.NewVarSet(0, 2), contingency.NewVarSet(1, 2),
		contingency.NewVarSet(0), contingency.NewVarSet(1), contingency.NewVarSet(2),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keeps {
			if _, err := tab.Marginalize(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1_SignificanceScan measures one full 16-cell second-order
// MML scan with independence predictions — the memo's Table 1.
func BenchmarkTable1_SignificanceScan(b *testing.B) {
	tab := paperdata.Table()
	first, err := tab.FirstOrderProbabilities()
	if err != nil {
		b.Fatal(err)
	}
	predict := func(fam contingency.VarSet, values []int) (float64, error) {
		p := 1.0
		for i, pos := range fam.Members() {
			p *= first[pos][values[i]]
		}
		return p, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tester, err := mml.NewTester(tab, mml.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tests, err := tester.ScanOrder(2, mml.PerCell(tab.Cards(), predict))
		if err != nil {
			b.Fatal(err)
		}
		if len(tests) != 16 {
			b.Fatalf("scan produced %d tests", len(tests))
		}
	}
}

// BenchmarkTable2_IterativeScaling measures the memo's Table 2: fitting the
// first-order model plus the N^AC_12 constraint at the memo's 2-decimal
// precision, cold start each iteration.
func BenchmarkTable2_IterativeScaling(b *testing.B) {
	tab := paperdata.Table()
	fam, values, target := paperdata.Table2Constraint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := maxent.NewModel(tab.Names(), tab.Cards())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AddFirstOrderConstraints(tab); err != nil {
			b.Fatal(err)
		}
		if err := m.AddConstraint(maxent.Constraint{Family: fam, Values: values, Target: target}); err != nil {
			b.Fatal(err)
		}
		rep, err := m.Fit(maxent.SolveOptions{Tol: 1e-3})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatal("did not converge")
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Sweeps), "sweeps")
		}
	}
}

// BenchmarkFigure3_FullDiscovery measures the complete procedure on the
// memo's data: scans, selections, refits, orders 2 and 3.
func BenchmarkFigure3_FullDiscovery(b *testing.B) {
	tab := paperdata.Table()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Discover(tab, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Findings)), "findings")
		}
	}
}

// BenchmarkFigure4_Refit measures one warm refit after adding a constraint —
// the memo's "starting with the last previously calculated a values".
func BenchmarkFigure4_Refit(b *testing.B) {
	tab := paperdata.Table()
	base, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		b.Fatal(err)
	}
	if err := base.AddFirstOrderConstraints(tab); err != nil {
		b.Fatal(err)
	}
	if _, err := base.Fit(maxent.SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	fam, values, target := paperdata.Table2Constraint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := base.Clone()
		if err := m.AddConstraint(maxent.Constraint{Family: fam, Values: values, Target: target}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Fit(maxent.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5_RecordIngest measures building the 3428-record raw
// dataset (Figure 5's original data form).
func BenchmarkFigure5_RecordIngest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := paperdata.Records()
		if d.Len() != paperdata.TotalN {
			b.Fatal("wrong record count")
		}
	}
}

// BenchmarkFigure6_Triples measures the triples-form conversion and
// summation (Figure 6): per-record tuple view plus cell sums.
func BenchmarkFigure6_Triples(b *testing.B) {
	d := paperdata.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := d.Tabulate()
		if err != nil {
			b.Fatal(err)
		}
		if tab.Total() != paperdata.TotalN {
			b.Fatal("bad total")
		}
	}
}

// BenchmarkPriorSweep measures the p(H2') sensitivity experiment (the
// memo's Eq. 63 note: priors 0.5 / 0.6 / 0.8).
func BenchmarkPriorSweep(b *testing.B) {
	tab := paperdata.Table()
	first, err := tab.FirstOrderProbabilities()
	if err != nil {
		b.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	cell := []int{0, 1}
	p := first[0][0] * first[1][1]
	priors := []float64{0.5, 0.6, 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prior := range priors {
			tester, err := mml.NewTester(tab, mml.Config{PriorH2: prior})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tester.Test(fam, cell, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAppendixB_SumProducts compares the Appendix B recursion against
// brute-force joint enumeration on a 6-attribute space, reproducing the
// appendix's point that grouped summation is the cheaper evaluation.
func BenchmarkAppendixB_SumProducts(b *testing.B) {
	cards := []int{4, 4, 4, 4, 4, 4} // 4096 cells
	rng := stats.NewRNG(9)
	mk := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 0.5 + rng.Float64()
		}
		return out
	}
	terms := []sumprod.Term{
		{Vars: []int{0}, Coeffs: mk(4)},
		{Vars: []int{1}, Coeffs: mk(4)},
		{Vars: []int{2}, Coeffs: mk(4)},
		{Vars: []int{3}, Coeffs: mk(4)},
		{Vars: []int{4}, Coeffs: mk(4)},
		{Vars: []int{5}, Coeffs: mk(4)},
		{Vars: []int{0, 1}, Coeffs: mk(16)},
		{Vars: []int{2, 3}, Coeffs: mk(16)},
		{Vars: []int{4, 5}, Coeffs: mk(16)},
	}
	ev, err := sumprod.NewEvaluator(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("recursion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ev.Sum()
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0.0
			for _, v := range ev.FullJoint() {
				total += v
			}
			_ = total
		}
	})
}

// ------------------------------------------------------------- Extensions

// BenchmarkScaling_N (X1): discovery cost versus sample count on a fixed
// 3-attribute space. The table is sampled once per size outside the loop.
func BenchmarkScaling_N(b *testing.B) {
	truth, err := synth.SmokingCancer()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int64{1_000, 10_000, 100_000, 1_000_000} {
		tab, err := truth.SampleTable(stats.NewRNG(n), n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(tab, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(res.Findings)), "findings")
				}
			}
		})
	}
}

// BenchmarkScaling_Attributes (X2): discovery cost versus attribute count
// (binary attributes, one planted coupling chain), order-2 scan.
func BenchmarkScaling_Attributes(b *testing.B) {
	for _, r := range []int{3, 4, 6, 8, 10} {
		truth, err := synth.Survey(r-1, 2)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := truth.SampleTable(stats.NewRNG(int64(r)), 50_000)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(tab, core.Options{MaxOrder: 2})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(res.Findings)), "findings")
				}
			}
		})
	}
}

// BenchmarkAblation_SolverGSvsIPF (X3): sequential (Gauss–Seidel) versus
// simultaneous damped (Jacobi) iterative scaling on the memo's Table 2
// problem. Sweep counts are the headline metric.
func BenchmarkAblation_SolverGSvsIPF(b *testing.B) {
	tab := paperdata.Table()
	fam, values, target := paperdata.Table2Constraint()
	build := func() *maxent.Model {
		m, err := maxent.NewModel(tab.Names(), tab.Cards())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AddFirstOrderConstraints(tab); err != nil {
			b.Fatal(err)
		}
		if err := m.AddConstraint(maxent.Constraint{Family: fam, Values: values, Target: target}); err != nil {
			b.Fatal(err)
		}
		return m
	}
	for _, method := range []maxent.Method{maxent.GaussSeidel, maxent.Jacobi} {
		b.Run(method.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := build()
				rep, err := m.Fit(maxent.SolveOptions{Method: method, MaxSweeps: 100000})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged {
					b.Fatal("did not converge")
				}
				if i == 0 {
					b.ReportMetric(float64(rep.Sweeps), "sweeps")
				}
			}
		})
	}
}

// BenchmarkAblation_Criterion (X4): MML versus chi-square versus BIC
// selection on null data (no structure, 4 attributes × 3 values): the
// findings metric is the false-positive count.
func BenchmarkAblation_Criterion(b *testing.B) {
	truth, err := synth.IndependentUniform(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(31), 50_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Discover(tab, core.Options{MaxOrder: 2})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(res.Findings)), "false_positives")
			}
		}
	})
	b.Run("chisq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, picks, err := baseline.DiscoverChiSq(tab, 0.05, 2)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(picks)), "false_positives")
			}
		}
	})
	b.Run("bic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, picks, err := baseline.DiscoverBIC(tab, 2)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(picks)), "false_positives")
			}
		}
	})
}

// BenchmarkRecovery_Planted (X5): structure recovery on the survey workload
// — hits (planted families found) and spurious families, plus KL to truth.
func BenchmarkRecovery_Planted(b *testing.B) {
	truth, err := synth.Survey(4, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(37), 40_000)
	if err != nil {
		b.Fatal(err)
	}
	planted := map[contingency.VarSet]bool{}
	for _, fam := range truth.Planted() {
		planted[fam] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Discover(tab, core.Options{MaxOrder: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			hit := map[contingency.VarSet]bool{}
			spurious := 0
			for _, f := range res.Findings {
				if planted[f.Test.Family] {
					hit[f.Test.Family] = true
				} else {
					spurious++
				}
			}
			b.ReportMetric(float64(len(hit)), "recovered_families")
			b.ReportMetric(float64(spurious), "spurious_findings")
			fitted, err := res.Model.Joint()
			if err != nil {
				b.Fatal(err)
			}
			kl, err := stats.KLDivergence(truth.Joint(), fitted)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(kl*1000, "mKL_to_truth")
		}
	}
}

// BenchmarkCompactness (X6): parameters and fidelity of the discovered
// model versus the empirical and independence baselines on the telemetry
// workload.
func BenchmarkCompactness(b *testing.B) {
	truth, err := synth.Telemetry()
	if err != nil {
		b.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(41), 60_000)
	if err != nil {
		b.Fatal(err)
	}
	score := func(b *testing.B, m baseline.JointModel) {
		joint, err := m.Joint()
		if err != nil {
			b.Fatal(err)
		}
		kl, err := stats.KLDivergence(truth.Joint(), joint)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Parameters()), "parameters")
		b.ReportMetric(kl*1000, "mKL_to_truth")
	}
	b.Run("mml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Discover(tab, core.Options{MaxOrder: 2})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				score(b, &baseline.MaxentModel{Label: "mml", M: res.Model})
			}
		}
	})
	b.Run("empirical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := baseline.NewEmpirical(tab, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				score(b, m)
			}
		}
	})
	b.Run("independence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := baseline.NewIndependence(tab)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				score(b, m)
			}
		}
	})
}

// BenchmarkGeneralization_HeldOut (X7): held-out log loss (nats/sample) of
// the discovered model versus the smoothed and unsmoothed empirical joints
// on a 50/50 split of a modest telemetry sample. Lower is better; the
// unsmoothed empirical typically scores +Inf from unseen cells.
func BenchmarkGeneralization_HeldOut(b *testing.B) {
	truth, err := synth.Telemetry()
	if err != nil {
		b.Fatal(err)
	}
	full, err := truth.SampleTable(stats.NewRNG(71), 4000)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(72)
	train, test, err := baseline.TrainTestSplit(full, 0.5, rng.Float64)
	if err != nil {
		b.Fatal(err)
	}
	loss := func(b *testing.B, m baseline.JointModel) {
		l, err := baseline.HeldOutLogLoss(m, test)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsInf(l, 1) {
			l = 999 // render +Inf as a sentinel the bench output can carry
		}
		b.ReportMetric(l, "heldout_nats")
	}
	b.Run("mml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Discover(train, core.Options{MaxOrder: 2})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				loss(b, &baseline.MaxentModel{Label: "mml", M: res.Model})
			}
		}
	})
	b.Run("empirical_raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := baseline.NewEmpirical(train, 0)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				loss(b, m)
			}
		}
	})
	b.Run("empirical_laplace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := baseline.NewEmpirical(train, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				loss(b, m)
			}
		}
	})
}

// BenchmarkOrderSelection_CV (X10): cross-validated MaxOrder selection on
// third-order (XOR) data — the chosen order and the loss gap between
// orders 2 and 3 are the headline metrics.
func BenchmarkOrderSelection_CV(b *testing.B) {
	truth, err := synth.XOR3(3)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(17), 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, best, err := crossval.SelectMaxOrder(
			tab, 3, 4, stats.NewRNG(18), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(scores[best].MaxOrder), "chosen_order")
			b.ReportMetric(scores[0].MeanLoss-scores[1].MeanLoss, "loss_gap_nats")
		}
	}
}

// BenchmarkWideSchema_DiscoverSparse measures the wide-schema acquisition
// path end to end: 24 binary channels (dense space 16.7M cells — never
// allocated) tabulated sparsely, pairwise-screened, and discovered through
// the factored engine.
func BenchmarkWideSchema_DiscoverSparse(b *testing.B) {
	const r = 24
	attrs := make([]pka.Attribute, r)
	for i := range attrs {
		attrs[i] = pka.Attribute{
			Name:   fmt.Sprintf("CH%02d", i),
			Values: []string{"lo", "hi"},
		}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		b.Fatal(err)
	}
	sparse, err := pka.NewSparseTable(schema)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(77)
	cell := make([]int, r)
	for s := 0; s < 20_000; s++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.85 {
			cell[13] = cell[5]
		}
		if err := sparse.Observe(cell...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := pka.DiscoverSparse(sparse, schema, pka.Options{
			MaxOrder:    2,
			ScreenPairs: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(model.Screen().PairsKept), "pairs_kept")
			b.ReportMetric(float64(len(model.Findings())), "findings")
		}
	}
}

// ------------------------------------------------- Streaming ingest (PR 4)

// streamBenchRows draws correlated wide-schema rows for the incremental-
// refit benchmark.
func streamBenchRows(rng *stats.RNG, r, n int) []pka.Record {
	rows := make([]pka.Record, n)
	for s := range rows {
		cell := make(pka.Record, r)
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.85 {
			cell[13] = cell[5]
		}
		rows[s] = cell
	}
	return rows
}

// BenchmarkIncrementalRefit compares folding a 1%-of-N delta batch into a
// discovered model via Model.Update (in-place projection-cache updates,
// retarget + warm per-block refit, restricted re-scan) against the only
// pre-PR option: a full DiscoverSparse re-run over the grown data bank.
func BenchmarkIncrementalRefit(b *testing.B) {
	const r = 24
	const baseN = 20_000
	const deltaN = baseN / 100
	attrs := make([]pka.Attribute, r)
	for i := range attrs {
		attrs[i] = pka.Attribute{
			Name:   fmt.Sprintf("CH%02d", i),
			Values: []string{"lo", "hi"},
		}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		b.Fatal(err)
	}
	opts := pka.Options{MaxOrder: 2, ScreenPairs: true}
	base := streamBenchRows(stats.NewRNG(77), r, baseN)
	tabulate := func(rows []pka.Record) *pka.SparseTable {
		sparse, err := pka.NewSparseTable(schema)
		if err != nil {
			b.Fatal(err)
		}
		cells := make([][]int, len(rows))
		for i, row := range rows {
			cells[i] = row
		}
		if err := sparse.ObserveBatch(cells); err != nil {
			b.Fatal(err)
		}
		return sparse
	}

	b.Run("Update", func(b *testing.B) {
		model, err := pka.DiscoverSparse(tabulate(base), schema, opts)
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRNG(78)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			delta := streamBenchRows(rng, r, deltaN)
			b.StartTimer()
			rep, err := model.Update(delta)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(rep.Retargeted), "retargeted")
				b.ReportMetric(float64(rep.Sweeps), "sweeps")
			}
		}
	})

	b.Run("FullRediscover", func(b *testing.B) {
		// The data bank grows by one delta per iteration, exactly like the
		// Update sub-benchmark's table, so the two workloads stay
		// comparable at any iteration count.
		rng := stats.NewRNG(78)
		all := append([]pka.Record(nil), base...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			all = append(all, streamBenchRows(rng, r, deltaN)...)
			grown := tabulate(all)
			b.StartTimer()
			if _, err := pka.DiscoverSparse(grown, schema, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
