// Integration tests exercising full cross-module flows through the public
// API: ingest → tabulate → discover → query → rules → persist → reload, on
// the paper's data and on synthetic workloads with known ground truth.
package pka_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pka"
	"pka/internal/contingency"
	"pka/internal/paperdata"
	"pka/internal/stats"
	"pka/internal/synth"
)

// TestIntegrationPaperPipeline drives the complete memo scenario through
// CSV: records → CSV text → schema inference → discovery → queries → rules
// → save → load → identical queries.
func TestIntegrationPaperPipeline(t *testing.T) {
	// Render the paper's survey to CSV.
	var csvBuf bytes.Buffer
	if err := paperdata.Records().WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	csvText := csvBuf.String()

	// Infer a schema from the CSV alone (value order will differ from the
	// paper's — the pipeline must not care).
	schema, err := pka.InferSchema(strings.NewReader(csvText), 16)
	if err != nil {
		t.Fatal(err)
	}
	data, err := pka.ReadCSV(strings.NewReader(csvText), schema)
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != paperdata.TotalN {
		t.Fatalf("ingested %d records, want %d", data.Len(), paperdata.TotalN)
	}

	model, err := pka.Discover(data, pka.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The headline conditional must be label-order independent.
	cond, err := model.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-240.0/1290) > 5e-3 {
		t.Errorf("P(cancer|smoker) = %.4f, want ≈%.4f", cond, 240.0/1290)
	}

	// Round trip through persistence.
	var kbBuf bytes.Buffer
	if err := model.Save(&kbBuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := pka.Load(&kbBuf)
	if err != nil {
		t.Fatal(err)
	}
	cond2, err := loaded.Conditional(
		[]pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-cond2) > 1e-12 {
		t.Errorf("reloaded KB answers differently: %.9f vs %.9f", cond, cond2)
	}

	// Rules survive the round trip too.
	rs, err := loaded.Rules(pka.RuleOptions{MinLiftDistance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no rules from reloaded KB")
	}
}

// TestIntegrationXORThirdOrder verifies the memo's "repeated for the
// third-order N's" path end to end: XOR data has no second-order structure,
// so discovery must find third-order constraints and the model must predict
// the parity.
func TestIntegrationXORThirdOrder(t *testing.T) {
	truth, err := synth.XOR3(3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(99), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverTable(tab, truth.Schema(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	saw2, saw3 := 0, 0
	for _, f := range model.Findings() {
		switch f.Order {
		case 2:
			saw2++
		case 3:
			saw3++
		}
	}
	if saw3 == 0 {
		t.Fatalf("no third-order findings on XOR data: %s", model.Summary())
	}
	if saw2 > 1 {
		t.Errorf("%d second-order findings on pairwise-independent data", saw2)
	}
	// The fitted model must capture the parity: P(Z=1 | X=0, Y=1) high.
	p, err := model.Conditional(
		[]pka.Assignment{{Attr: "Z", Value: "1"}},
		[]pka.Assignment{{Attr: "X", Value: "0"}, {Attr: "Y", Value: "1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: s²/(s²+1/s²) with s=3 → 81/82... no: cells get s vs
	// 1/s, so P = s/(s+1/s) = 9/10.
	if math.Abs(p-0.9) > 0.03 {
		t.Errorf("P(Z=1|X=0,Y=1) = %.3f, truth 0.9", p)
	}
}

// TestIntegrationNoiseRobustness verifies discovery neither misses planted
// structure nor hallucinates under label noise.
func TestIntegrationNoiseRobustness(t *testing.T) {
	truth, err := synth.Survey(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(55), 30_000)
	if err != nil {
		t.Fatal(err)
	}
	// Inject 2% uniform corruption directly into the table.
	rng := stats.NewRNG(56)
	corrupt := int64(600)
	cells := tab.NumCells()
	cell := make([]int, tab.R())
	for i := int64(0); i < corrupt; i++ {
		off := rng.Intn(cells)
		if err := tab.Unflatten(off, cell); err != nil {
			t.Fatal(err)
		}
		if err := tab.Add(1, cell...); err != nil {
			t.Fatal(err)
		}
	}
	model, err := pka.DiscoverTable(tab, truth.Schema(), pka.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	planted := map[contingency.VarSet]bool{}
	for _, fam := range truth.Planted() {
		planted[fam] = true
	}
	hit := map[contingency.VarSet]bool{}
	for _, f := range model.Findings() {
		if planted[f.Test.Family] {
			hit[f.Test.Family] = true
		}
	}
	if len(hit) < len(planted) {
		t.Errorf("recovered %d/%d planted families under noise", len(hit), len(planted))
	}
}

// TestIntegrationDeterminismAcrossRuns pins full-pipeline determinism: two
// independent discoveries over the same seeded workload give bit-identical
// serialized knowledge bases.
func TestIntegrationDeterminismAcrossRuns(t *testing.T) {
	build := func() []byte {
		truth, err := synth.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		tab, err := truth.SampleTable(stats.NewRNG(123), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		model, err := pka.DiscoverTable(tab, truth.Schema(), pka.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build()
	b := build()
	if !bytes.Equal(a, b) {
		t.Error("two identical runs serialized differently")
	}
}

// TestIntegrationManyAttributes pushes a wider schema (8 attributes)
// through the full pipeline within test-time budget.
func TestIntegrationManyAttributes(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-schema integration skipped in -short")
	}
	truth, err := synth.Survey(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(77), 60_000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverTable(tab, truth.Schema(), pka.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Findings()) < 3 {
		t.Errorf("only %d findings on 8-attribute planted data", len(model.Findings()))
	}
	// Sanity on a deep conditional.
	p, err := model.Conditional(
		[]pka.Assignment{{Attr: "OUTCOME", Value: "severe"}},
		[]pka.Assignment{
			{Attr: "FACTOR1", Value: "yes"},
			{Attr: "FACTOR3", Value: "no"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Errorf("deep conditional = %g", p)
	}
}
