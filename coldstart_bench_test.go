package pka_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pka"
)

// wideColdStartModel reproduces the bench suite's 24-attribute sparse
// workload (same seeds, same couplings) so the committed BENCH numbers and
// `go test -bench ColdStart` measure the same model.
func wideColdStartModel(tb testing.TB) *pka.Model {
	attrs := make([]pka.Attribute, 24)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: fmt.Sprintf("W%d", i), Values: []string{"0", "1"}}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := pka.NewSparseTable(schema)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	cell := make([]int, 24)
	for n := 0; n < 8000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[23] = cell[0]
		}
		if rng.Float64() < 0.6 {
			cell[12] = cell[1]
		}
		if err := s.Observe(cell...); err != nil {
			tb.Fatal(err)
		}
	}
	m, err := pka.DiscoverSparse(s, schema, pka.Options{MaxOrder: 2, ScreenPairs: true})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// coldStartPayloads persists the wide model once in each format, through
// the same QueryModel so the payloads carry the identical schema+model.
func coldStartPayloads(tb testing.TB) (jsonBytes, snapBytes []byte) {
	m := wideColdStartModel(tb)
	var jsonBuf bytes.Buffer
	if err := m.Save(&jsonBuf); err != nil {
		tb.Fatal(err)
	}
	qm, err := pka.Load(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		tb.Fatal(err)
	}
	var snapBuf bytes.Buffer
	if err := qm.SaveSnapshot(&snapBuf); err != nil {
		tb.Fatal(err)
	}
	return jsonBuf.Bytes(), snapBuf.Bytes()
}

func coldStartQuery(tb testing.TB, m *pka.QueryModel) {
	p, err := m.Conditional(
		[]pka.Assignment{{Attr: "W1", Value: "1"}},
		[]pka.Assignment{{Attr: "W0", Value: "1"}},
	)
	if err != nil {
		tb.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		tb.Fatalf("cold-start query answered %g", p)
	}
}

// BenchmarkColdStartJSON measures load-to-first-query from the JSON
// interchange format: reflection decode plus full engine compilation.
func BenchmarkColdStartJSON(b *testing.B) {
	jsonBytes, _ := coldStartPayloads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := pka.Load(bytes.NewReader(jsonBytes))
		if err != nil {
			b.Fatal(err)
		}
		coldStartQuery(b, m)
	}
}

// BenchmarkColdStartSnapshot measures load-to-first-query from the PKAS
// binary snapshot: pure deserialization, the solve and per-block sums
// restored rather than recomputed.
func BenchmarkColdStartSnapshot(b *testing.B) {
	_, snapBytes := coldStartPayloads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := pka.LoadSnapshot(bytes.NewReader(snapBytes))
		if err != nil {
			b.Fatal(err)
		}
		coldStartQuery(b, m)
	}
}
