package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "count").Align(Left, Right)
	tb.Row("alpha", 5)
	tb.Row("b", 12345)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	// Right-aligned column: "5" must end at the same offset as "12345".
	if !strings.HasSuffix(lines[2], "    5") {
		t.Errorf("right alignment broken: %q", lines[2])
	}
	if !strings.HasPrefix(lines[2], "alpha") {
		t.Errorf("left alignment broken: %q", lines[2])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.Row(1) // short
	tb.AddRow("x", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "x  y  z") {
		t.Errorf("preformatted row mangled:\n%s", out)
	}
}

func TestTableWriteError(t *testing.T) {
	tb := NewTable("a").Row(1)
	w := &failWriter{}
	if err := tb.Write(w); err == nil {
		t.Error("write error swallowed")
	}
}

type failWriter struct{}

func (*failWriter) Write([]byte) (int, error) {
	return 0, errFail
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "fail" }

func TestFloatClamp(t *testing.T) {
	if got := Float(0.05, 1, 0.1); got != "<0.1" {
		t.Errorf("clamped = %q", got)
	}
	if got := Float(5.8, 1, 0.1); got != "5.8" {
		t.Errorf("unclamped = %q", got)
	}
	if got := Float(5.812, 2, 0); got != "5.81" {
		t.Errorf("no-clamp = %q", got)
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	Section(&buf, "Table 1")
	out := buf.String()
	if !strings.Contains(out, "Table 1\n=======") {
		t.Errorf("section format:\n%s", out)
	}
}
