// Package report renders aligned text tables for the reproduction binary
// and bench harness output — the presentation layer for Figures 1-2 and
// Tables 1-2.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and writes them with column alignment.
type Table struct {
	headers []string
	rows    [][]string
	align   []Alignment
}

// Alignment controls per-column text alignment.
type Alignment int

// Column alignments.
const (
	Left Alignment = iota
	Right
)

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	align := make([]Alignment, len(headers))
	return &Table{headers: headers, align: align}
}

// Align sets column alignments (variadic, one per column; missing columns
// keep Left).
func (t *Table) Align(a ...Alignment) *Table {
	copy(t.align, a)
	return t
}

// Row appends a row; cells beyond the header count are dropped, missing
// cells render empty. Values are formatted with %v; use AddRow for
// preformatted strings.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRow appends a preformatted row.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return t
}

// Write renders the table with a separator under the header.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := widths[i] - len([]rune(c))
			if t.align[i] == Right {
				parts[i] = strings.Repeat(" ", pad) + c
			} else {
				parts[i] = c + strings.Repeat(" ", pad)
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	seps := make([]string, len(t.headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	if _, err := fmt.Fprintln(w, line(seps)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

// Float formats a float at the given precision, rendering the memo's "<.1"
// style for tiny likelihood ratios when clamp is positive and the value is
// below it.
func Float(v float64, prec int, clamp float64) string {
	if clamp > 0 && v < clamp {
		return fmt.Sprintf("<%.*f", prec, clamp)
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Section writes an underlined heading.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len([]rune(title))))
}
