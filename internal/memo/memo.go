// Package memo is the serving-cache primitive: a sharded, byte-capacity-
// bounded LRU whose entries are keyed (canonical key, model version).
//
// The version is the invalidation mechanism. Every engine swap bumps the
// model's monotonic version, so a cached answer is valid exactly when its
// recorded version equals the version the caller read before answering.
// A Get with a newer version treats the stale entry as a miss and deletes
// it eagerly; stale versions that are never probed again simply age out
// under LRU pressure. No flush coordination, no epoch fences.
//
// Values stored in the cache are published to concurrent readers and must
// never be mutated after Put — return copies or treat them as frozen
// (enforced repo-wide by pkalint's memoimmut analyzer).
package memo

import (
	"sync"
)

// numShards spreads lock contention; keys are distributed by FNV-1a.
// Must be a power of two.
const numShards = 16

// entryOverhead approximates the bookkeeping bytes per entry (map cell,
// entry struct, interface header) so tiny values still count toward the
// byte budget.
const entryOverhead = 96

// Stats is a point-in-time snapshot of cache effectiveness counters,
// summed across shards.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
}

// entry is one cached value on an intrusive LRU list.
type entry struct {
	key        string
	version    int64
	value      any
	cost       int64
	prev, next *entry
}

// shard is one lock domain: a map for lookup plus a circular intrusive
// list rooted at root for recency order (root.next = most recent).
type shard struct {
	mu        sync.Mutex
	m         map[string]*entry
	root      entry
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

func (s *shard) init() {
	s.m = make(map[string]*entry)
	s.root.prev = &s.root
	s.root.next = &s.root
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard) pushFront(e *entry) {
	e.prev = &s.root
	e.next = s.root.next
	s.root.next.prev = e
	s.root.next = e
}

func (s *shard) remove(e *entry) {
	s.unlink(e)
	delete(s.m, e.key)
	s.bytes -= e.cost
}

// Cache is a sharded LRU bounded by total byte capacity. The zero value
// is not usable; construct with New. A nil *Cache is a valid "disabled"
// cache: Get always misses and Put is a no-op.
type Cache struct {
	capacity int64 // total budget; <=0 means unbounded
	perShard int64 // capacity/numShards; 0 when unbounded
	shards   [numShards]shard
}

// New returns a cache bounded to roughly capacityBytes across all shards
// (each shard holds capacity/numShards). capacityBytes <= 0 means
// unbounded — entries are only removed by version mismatch or Each.
func New(capacityBytes int64) *Cache {
	c := &Cache{capacity: capacityBytes}
	if capacityBytes > 0 {
		c.perShard = capacityBytes / numShards
		if c.perShard < 1 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

// shardFor picks the shard by FNV-1a over the key.
func (c *Cache) shardFor(key []byte) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return &c.shards[h&(numShards-1)]
}

// Get returns the value cached under key at exactly the given version.
// A key present at a different version is deleted on the spot (counted
// as an eviction) and reported as a miss: the engine it was computed
// against has been swapped out, so the bytes will never be valid again.
func (c *Cache) Get(key []byte, version int64) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[string(key)] // no-copy map probe
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	if e.version != version {
		s.remove(e)
		s.evictions++
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	s.hits++
	v := e.value
	s.mu.Unlock()
	return v, true
}

// Put caches value under (key, version). cost is the caller's estimate of
// the value's size in bytes; the key length and a fixed overhead are added
// on top. An existing entry for the key is overwritten (whatever its
// version). A value too large for one shard's budget is not cached at all.
func (c *Cache) Put(key []byte, version int64, value any, cost int64) {
	if c == nil {
		return
	}
	total := cost + int64(len(key)) + entryOverhead
	if c.perShard > 0 && total > c.perShard {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		s.bytes += total - e.cost
		e.cost = total
		e.version = version
		e.value = value
		s.unlink(e)
		s.pushFront(e)
	} else {
		e := &entry{key: string(key), version: version, value: value, cost: total}
		s.m[e.key] = e
		s.pushFront(e)
		s.bytes += total
	}
	for c.perShard > 0 && s.bytes > c.perShard {
		tail := s.root.prev
		if tail == &s.root {
			break
		}
		s.remove(tail)
		s.evictions++
	}
	s.mu.Unlock()
}

// Delete removes the entry for key if present, regardless of version.
func (c *Cache) Delete(key []byte) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		s.remove(e)
	}
	s.mu.Unlock()
}

// Each visits every live entry; returning false from fn deletes that
// entry (not counted as an eviction — the caller chose to drop it).
// Visit order is unspecified. fn runs with the entry's shard locked, so
// it must not call back into the cache.
func (c *Cache) Each(fn func(key string, value any) bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.root.next; e != &s.root; {
			next := e.next
			if !fn(e.key, e.value) {
				s.remove(e)
			}
			e = next
		}
		s.mu.Unlock()
	}
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var st Stats
	st.Capacity = c.capacity
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += int64(len(s.m))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Capacity reports the configured byte budget (<= 0 means unbounded).
func (c *Cache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}
