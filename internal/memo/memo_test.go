package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get([]byte("k"), 1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put([]byte("k"), 1, "value", 5)
	v, ok := c.Get([]byte("k"), 1)
	if !ok || v.(string) != "value" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != 5+1+entryOverhead {
		t.Errorf("bytes = %d, want %d", st.Bytes, 5+1+entryOverhead)
	}
}

// TestVersionMismatchEvicts: an entry probed at a newer version is a miss
// and is deleted on the spot — the engine it was computed against is gone.
func TestVersionMismatchEvicts(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), 1, "old", 3)
	if _, ok := c.Get([]byte("k"), 2); ok {
		t.Fatal("stale version reported a hit")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evictions != 1 || st.Misses != 1 {
		t.Errorf("after stale probe: %+v", st)
	}
	// The old version is gone too: the delete was eager, not lazy.
	if _, ok := c.Get([]byte("k"), 1); ok {
		t.Fatal("deleted entry resurfaced")
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), 1, "a", 100)
	c.Put([]byte("k"), 2, "b", 10)
	v, ok := c.Get([]byte("k"), 2)
	if !ok || v.(string) != "b" {
		t.Fatalf("Get after overwrite = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10+1+entryOverhead {
		t.Errorf("stats after overwrite = %+v", st)
	}
}

// TestLRUEviction: inserting past one shard's budget evicts from the cold
// end, never the hot end. All keys here land in a single shard only by
// coincidence of hashing, so instead the test gives the cache a budget
// small enough that per-shard pressure is inevitable, then checks the
// recently-touched key survives while total bytes respect the budget.
func TestLRUEviction(t *testing.T) {
	const cap = numShards * (entryOverhead + 8 + 4 + 2) * 3 // room for ~3 entries per shard
	c := New(cap)
	c.Put([]byte("hot"), 1, "v", 8)
	for i := 0; i < 256; i++ {
		c.Get([]byte("hot"), 1) // keep it at the front of its shard
		c.Put([]byte(fmt.Sprintf("k%03d", i)), 1, "v", 8)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.Bytes > cap {
		t.Errorf("bytes %d exceed capacity %d", st.Bytes, cap)
	}
	if _, ok := c.Get([]byte("hot"), 1); !ok {
		t.Error("recently-touched entry was evicted while cold entries churned")
	}
}

// TestOversizedValueSkipped: a value that alone exceeds one shard's budget
// is not cached — it would evict everything and still not fit.
func TestOversizedValueSkipped(t *testing.T) {
	c := New(numShards * 128)
	c.Put([]byte("big"), 1, "v", 1<<20)
	if _, ok := c.Get([]byte("big"), 1); ok {
		t.Fatal("oversized value was cached")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0)
	for i := 0; i < 1000; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), 1, i, 1<<12)
	}
	st := c.Stats()
	if st.Entries != 1000 || st.Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", st)
	}
	if st.Capacity != 0 {
		t.Errorf("capacity = %d, want 0", st.Capacity)
	}
}

func TestDelete(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), 1, "v", 1)
	c.Delete([]byte("k"))
	if _, ok := c.Get([]byte("k"), 1); ok {
		t.Fatal("deleted entry still present")
	}
	c.Delete([]byte("missing")) // no-op, no panic
}

func TestEach(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 10; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), 1, i, 1)
	}
	seen := 0
	c.Each(func(key string, v any) bool {
		seen++
		return v.(int)%2 == 0 // drop odd values
	})
	if seen != 10 {
		t.Errorf("Each visited %d entries, want 10", seen)
	}
	st := c.Stats()
	if st.Entries != 5 {
		t.Errorf("entries after Each = %d, want 5", st.Entries)
	}
	if _, ok := c.Get([]byte("k3"), 1); ok {
		t.Error("entry dropped by Each still present")
	}
	if _, ok := c.Get([]byte("k4"), 1); !ok {
		t.Error("entry kept by Each is gone")
	}
}

// TestNilCache: a nil *Cache is the disabled configuration — every method
// is a safe no-op so call sites need no branching.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get([]byte("k"), 1); ok {
		t.Fatal("nil cache hit")
	}
	c.Put([]byte("k"), 1, "v", 1)
	c.Delete([]byte("k"))
	c.Each(func(string, any) bool { return true })
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	if c.Capacity() != 0 {
		t.Error("nil capacity != 0")
	}
}

// TestConcurrentAccess hammers Get/Put/Each/Stats from many goroutines;
// run under -race this proves the shard locking covers every path.
func TestConcurrentAccess(t *testing.T) {
	c := New(numShards * 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := make([]byte, 0, 16)
			for i := 0; i < 500; i++ {
				key = append(key[:0], fmt.Sprintf("k%d", (g*31+i)%64)...)
				version := int64(i % 3)
				if v, ok := c.Get(key, version); ok {
					_ = v.(int)
				}
				c.Put(key, version, i, 16)
				if i%100 == 0 {
					c.Each(func(string, any) bool { return true })
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
