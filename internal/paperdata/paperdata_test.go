package paperdata

import (
	"testing"

	"pka/internal/contingency"
)

func TestTableTotals(t *testing.T) {
	tab := Table()
	if tab.Total() != TotalN {
		t.Fatalf("N = %d, want %d", tab.Total(), TotalN)
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Spot checks against Figure 1.
	if v := tab.MustAt(0, 0, 0); v != 130 {
		t.Errorf("N_111 = %d, want 130", v)
	}
	if v := tab.MustAt(2, 1, 1); v != 385 {
		t.Errorf("N_322 = %d, want 385", v)
	}
}

func TestRecordsMatchTable(t *testing.T) {
	d := Records()
	if d.Len() != TotalN {
		t.Fatalf("records = %d, want %d", d.Len(), TotalN)
	}
	tab, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(Table()) {
		t.Error("tabulated records differ from Figure 1 table")
	}
}

func TestSchemaMatchesTable(t *testing.T) {
	s := Schema()
	tab := Table()
	if s.R() != tab.R() {
		t.Fatalf("schema R=%d, table R=%d", s.R(), tab.R())
	}
	for i := 0; i < s.R(); i++ {
		if s.Attr(i).Card() != tab.Card(i) {
			t.Errorf("attribute %d cardinality mismatch", i)
		}
		if s.Attr(i).Name != tab.Name(i) {
			t.Errorf("attribute %d name mismatch", i)
		}
	}
}

func TestTable1RowsConsistent(t *testing.T) {
	rows := Table1()
	if len(rows) != 16 {
		t.Fatalf("Table 1 has %d rows, want 16", len(rows))
	}
	tab := Table()
	for _, r := range rows {
		obs, err := tab.MarginalCount(r.Family, r.Values[:])
		if err != nil {
			t.Fatal(err)
		}
		if obs != r.Observed {
			t.Errorf("row %v%v: table gives %d, fixture says %d",
				r.Family, r.Values, obs, r.Observed)
		}
	}
	// The memo's significant set: 7 negative deltas.
	neg := 0
	for _, r := range rows {
		if r.Delta < 0 {
			neg++
		}
	}
	if neg != 7 {
		t.Errorf("%d negative deltas, memo has 7", neg)
	}
}

func TestTable2Constraint(t *testing.T) {
	fam, values, target := Table2Constraint()
	if fam != contingency.NewVarSet(0, 2) {
		t.Errorf("family = %v", fam)
	}
	obs, err := Table().MarginalCount(fam, values)
	if err != nil {
		t.Fatal(err)
	}
	if obs != 750 {
		t.Errorf("observed = %d, want 750", obs)
	}
	if target < 0.2187 || target > 0.2189 {
		t.Errorf("target = %g, memo says .219", target)
	}
}
