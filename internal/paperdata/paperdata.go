// Package paperdata holds the memo's worked example as an exact fixture:
// the smoking/cancer questionnaire schema, the Figure 1 contingency table
// (N = 3428), a reconstruction of the raw survey records of Figure 5, and
// the memo's published Table 1 rows for paper-vs-measured reporting.
package paperdata

import (
	"pka/internal/contingency"
	"pka/internal/dataset"
)

// Attribute positions in the memo's schema.
const (
	PosSmoking = 0
	PosCancer  = 1
	PosFamily  = 2
)

// Schema returns the memo's questionnaire (problem-definition section).
func Schema() *dataset.Schema {
	return dataset.MustSchema([]dataset.Attribute{
		{Name: "SMOKING", Values: []string{
			"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
}

// counts[i][j][k] is N^ABC_(i+1)(j+1)(k+1) from Figure 1: i smoking,
// j cancer, k family history.
var counts = [3][2][2]int64{
	{{130, 110}, {410, 640}},
	{{62, 31}, {580, 460}},
	{{78, 22}, {520, 385}},
}

// TotalN is the memo's survey size.
const TotalN = 3428

// Table returns the Figure 1 contingency table.
func Table() *contingency.Table {
	t := contingency.MustNew(
		[]string{"SMOKING", "CANCER", "FAMILY HISTORY"}, []int{3, 2, 2})
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := t.Set(counts[i][j][k], i, j, k); err != nil {
					panic(err) // fixture counts are statically valid
				}
			}
		}
	}
	return t
}

// Records reconstructs a raw-sample dataset (Figure 5's "original data
// form") with exactly the Figure 1 counts: one record per surveyed
// individual, grouped deterministically. The discovery pipeline is
// count-based, so any ordering with these counts is equivalent to the
// memo's survey.
func Records() *dataset.Dataset {
	d := dataset.NewDataset(Schema())
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for n := int64(0); n < counts[i][j][k]; n++ {
					if err := d.Append(dataset.Record{i, j, k}); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return d
}

// Table1Row is one published row of the memo's Table 1.
type Table1Row struct {
	// Family is the attribute pair; Values the (0-based) cell.
	Family contingency.VarSet
	Values [2]int
	// Observed is the data count; Mean/Z/Delta are the memo's printed
	// figures (Mean < 0 marks an OCR-corrupted entry in the scan).
	Observed int64
	Mean     float64
	Z        float64
	Delta    float64
}

// Table1 returns the memo's published Table 1, in its print order.
func Table1() []Table1Row {
	ab := contingency.NewVarSet(PosSmoking, PosCancer)
	bc := contingency.NewVarSet(PosCancer, PosFamily)
	ac := contingency.NewVarSet(PosSmoking, PosFamily)
	return []Table1Row{
		{ab, [2]int{0, 0}, 240, 165, 6.03, -11.57},
		{ab, [2]int{0, 1}, 1050, 1128, -2.83, 1.75},
		{ab, [2]int{1, 0}, 93, 144, -4.34, -4.74},
		{ab, [2]int{1, 1}, 1040, 990, 1.86, 3.83},
		{ab, [2]int{2, 0}, 100, 127, -2.43, 2.44},
		{ab, [2]int{2, 1}, 905, 888, 1.07, 4.97},

		{bc, [2]int{0, 0}, 270, 223, 3.27, 0.59},
		{bc, [2]int{0, 1}, 163, 209, -3.29, -0.21},
		{bc, [2]int{1, 0}, 1510, 1556, -1.59, 4.77},
		{bc, [2]int{1, 1}, 1485, 1440, 1.56, 4.62},

		{ac, [2]int{0, 0}, 540, 668, -5.54, -10.54},
		{ac, [2]int{0, 1}, 750, 620, 5.75, -9.95},
		{ac, [2]int{1, 0}, 642, 590, 2.37, 2.87},
		{ac, [2]int{1, 1}, 491, 545, -2.52, 2.63},
		{ac, [2]int{2, 0}, 598, -1, 0, -0.64},
		{ac, [2]int{2, 1}, 407, 483, -3.75, -1.49},
	}
}

// Table2Constraint is the second-order constraint the memo's Table 2
// iterates on: N^AC_12, target probability 750/3428 ≈ .219.
func Table2Constraint() (family contingency.VarSet, values []int, target float64) {
	return contingency.NewVarSet(PosSmoking, PosFamily), []int{0, 1}, 750.0 / TotalN
}
