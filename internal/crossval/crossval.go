// Package crossval selects discovery hyperparameters by k-fold
// cross-validation — the modern answer to "how deep should the level-wise
// scan go?" that the memo leaves to the analyst. Folds are sampled at count
// level from the contingency table, models are discovered on k−1 folds and
// scored by held-out log loss on the remaining one.
package crossval

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/stats"
)

// OrderScore is the cross-validated loss of one MaxOrder candidate.
type OrderScore struct {
	MaxOrder int
	// MeanLoss is the average held-out log loss (nats/sample) across
	// folds; +Inf when any fold's model zeroes an occupied held-out cell.
	MeanLoss float64
	// FoldLosses holds the per-fold losses.
	FoldLosses []float64
	// MeanFindings is the average number of accepted constraints.
	MeanFindings float64
}

// SelectMaxOrder evaluates every MaxOrder in [2, maxOrder] with k-fold
// cross-validation and returns the scores (ascending order) plus the index
// of the winner (lowest mean loss; ties to the smaller order).
//
// The RNG drives the fold assignment; fixed seeds give reproducible splits.
func SelectMaxOrder(table *contingency.Table, maxOrder, folds int, rng *stats.RNG, opts core.Options) ([]OrderScore, int, error) {
	if table.Total() == 0 {
		return nil, 0, fmt.Errorf("crossval: empty table")
	}
	if maxOrder < 2 || maxOrder > table.R() {
		return nil, 0, fmt.Errorf("crossval: maxOrder %d outside [2,%d]", maxOrder, table.R())
	}
	if folds < 2 {
		return nil, 0, fmt.Errorf("crossval: need at least 2 folds, got %d", folds)
	}
	if int64(folds) > table.Total() {
		return nil, 0, fmt.Errorf("crossval: %d folds for %d samples", folds, table.Total())
	}
	if rng == nil {
		return nil, 0, fmt.Errorf("crossval: nil RNG")
	}
	foldTables, err := split(table, folds, rng)
	if err != nil {
		return nil, 0, err
	}
	var scores []OrderScore
	for order := 2; order <= maxOrder; order++ {
		sc := OrderScore{MaxOrder: order}
		sumLoss := 0.0
		sumFind := 0.0
		for heldIdx := range foldTables {
			train, err := contingency.New(table.Names(), table.Cards())
			if err != nil {
				return nil, 0, err
			}
			for fi, ft := range foldTables {
				if fi == heldIdx {
					continue
				}
				var addErr error
				ft.EachCell(func(cell []int, count int64) {
					if addErr != nil || count == 0 {
						return
					}
					addErr = train.Add(count, cell...)
				})
				if addErr != nil {
					return nil, 0, addErr
				}
			}
			o := opts
			o.MaxOrder = order
			res, err := core.Discover(train, o)
			if err != nil {
				return nil, 0, fmt.Errorf("crossval: order %d fold %d: %w", order, heldIdx, err)
			}
			loss, err := heldOutLoss(res, foldTables[heldIdx])
			if err != nil {
				return nil, 0, err
			}
			sc.FoldLosses = append(sc.FoldLosses, loss)
			sumLoss += loss
			sumFind += float64(len(res.Findings))
		}
		sc.MeanLoss = sumLoss / float64(folds)
		sc.MeanFindings = sumFind / float64(folds)
		scores = append(scores, sc)
	}
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i].MeanLoss < scores[best].MeanLoss {
			best = i
		}
	}
	return scores, best, nil
}

// split distributes the table's samples over k fold tables.
func split(table *contingency.Table, folds int, rng *stats.RNG) ([]*contingency.Table, error) {
	out := make([]*contingency.Table, folds)
	for i := range out {
		t, err := contingency.New(table.Names(), table.Cards())
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	var outer error
	table.EachCell(func(cell []int, count int64) {
		if outer != nil {
			return
		}
		for s := int64(0); s < count; s++ {
			f := rng.Intn(folds)
			if err := out[f].Add(1, cell...); err != nil {
				outer = err
				return
			}
		}
	})
	if outer != nil {
		return nil, outer
	}
	return out, nil
}

// heldOutLoss scores a discovery result on a held-out fold.
func heldOutLoss(res *core.Result, held *contingency.Table) (float64, error) {
	if held.Total() == 0 {
		// A degenerate tiny fold: contributes zero loss rather than NaN.
		return 0, nil
	}
	joint, err := res.Model.Joint()
	if err != nil {
		return 0, err
	}
	var loss float64
	for i, c := range held.Counts() {
		if c == 0 {
			continue
		}
		if joint[i] <= 0 {
			return math.Inf(1), nil
		}
		loss -= float64(c) * math.Log(joint[i])
	}
	return loss / float64(held.Total()), nil
}
