package crossval

import (
	"math"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/maxent"
	"pka/internal/stats"
)

func TestHeldOutLossEmptyFold(t *testing.T) {
	// A fold that happens to receive zero samples contributes zero loss
	// instead of NaN.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(50, 0, 0)
	tab.Set(50, 1, 1)
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	empty := contingency.MustNew(nil, []int{2, 2})
	loss, err := heldOutLoss(res, empty)
	if err != nil || loss != 0 {
		t.Errorf("empty fold loss = %g, err %v", loss, err)
	}
}

func TestHeldOutLossZeroSupport(t *testing.T) {
	// Held-out mass on a cell the model zeroes: +Inf.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(50, 0, 0)
	tab.Set(50, 1, 1)
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	held := contingency.MustNew(nil, []int{2, 2})
	held.Set(1, 0, 1)
	loss, err := heldOutLoss(res, held)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(loss, 1) {
		t.Errorf("loss = %g, want +Inf", loss)
	}
}

func TestSelectMaxOrderPropagatesOptions(t *testing.T) {
	// A solver option that cannot converge must surface as an error, not
	// be silently ignored.
	tab := contingency.MustNew(nil, []int{2, 2, 2})
	cell := make([]int, 3)
	rng := stats.NewRNG(3)
	for i := 0; i < 500; i++ {
		for j := range cell {
			cell[j] = rng.Intn(2)
		}
		if err := tab.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.Options{Solve: maxent.SolveOptions{MaxSweeps: 1, Tol: 1e-15}}
	if _, _, err := SelectMaxOrder(tab, 2, 2, stats.NewRNG(4), opts); err == nil {
		// With one sweep at 1e-15 tolerance the initial fit cannot
		// converge, so discovery must fail and crossval must report it.
		t.Error("non-converging solver options silently accepted")
	}
}
