package crossval

import (
	"math"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/stats"
	"pka/internal/synth"
)

func TestSelectMaxOrderValidation(t *testing.T) {
	tab := contingency.MustNew(nil, []int{2, 2, 2})
	tab.Set(100, 0, 0, 0)
	rng := stats.NewRNG(1)
	if _, _, err := SelectMaxOrder(tab, 1, 5, rng, core.Options{}); err == nil {
		t.Error("maxOrder 1 accepted")
	}
	if _, _, err := SelectMaxOrder(tab, 4, 5, rng, core.Options{}); err == nil {
		t.Error("maxOrder above R accepted")
	}
	if _, _, err := SelectMaxOrder(tab, 2, 1, rng, core.Options{}); err == nil {
		t.Error("1 fold accepted")
	}
	if _, _, err := SelectMaxOrder(tab, 2, 5, nil, core.Options{}); err == nil {
		t.Error("nil RNG accepted")
	}
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, _, err := SelectMaxOrder(empty, 2, 2, rng, core.Options{}); err == nil {
		t.Error("empty table accepted")
	}
	tiny := contingency.MustNew(nil, []int{2, 2})
	tiny.Set(3, 0, 0)
	if _, _, err := SelectMaxOrder(tiny, 2, 5, rng, core.Options{}); err == nil {
		t.Error("more folds than samples accepted")
	}
}

func TestSelectMaxOrderChoosesThirdOrderOnXOR(t *testing.T) {
	// XOR data has no pairwise structure: order-2 discovery leaves the
	// joint near-uniform while order-3 captures the parity. CV must prefer
	// order 3.
	truth, err := synth.XOR3(3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(17), 20000)
	if err != nil {
		t.Fatal(err)
	}
	scores, best, err := SelectMaxOrder(tab, 3, 4, stats.NewRNG(18), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %d, want orders 2 and 3", len(scores))
	}
	if scores[best].MaxOrder != 3 {
		t.Errorf("CV chose order %d; order 3 is the truth (losses: %v)",
			scores[best].MaxOrder, scores)
	}
	if scores[1].MeanLoss >= scores[0].MeanLoss {
		t.Errorf("order-3 loss %.4f not below order-2 loss %.4f",
			scores[1].MeanLoss, scores[0].MeanLoss)
	}
	// Order 3 should gain roughly the parity information ≈ MI(X,Y;Z).
	gain := scores[0].MeanLoss - scores[1].MeanLoss
	if gain < 0.05 {
		t.Errorf("CV gain %.4f suspiciously small for strength-3 XOR", gain)
	}
}

func TestSelectMaxOrderPairwiseDataIndifferent(t *testing.T) {
	// On purely pairwise data, order 3 adds nothing: CV losses must be
	// nearly identical (and never prefer order 3 by a large margin).
	truth, err := synth.Survey(2, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(23), 20000)
	if err != nil {
		t.Fatal(err)
	}
	scores, _, err := SelectMaxOrder(tab, 3, 4, stats.NewRNG(24), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(scores[0].MeanLoss - scores[1].MeanLoss)
	if diff > 0.01 {
		t.Errorf("orders differ by %.4f nats on pairwise-only data", diff)
	}
}

func TestSplitConservesSamples(t *testing.T) {
	truth, err := synth.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(31), 9999)
	if err != nil {
		t.Fatal(err)
	}
	foldTables, err := split(tab, 4, stats.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, ft := range foldTables {
		total += ft.Total()
		// Roughly balanced.
		if ft.Total() < 2200 || ft.Total() > 2800 {
			t.Errorf("fold size %d, want ≈2500", ft.Total())
		}
	}
	if total != tab.Total() {
		t.Errorf("folds total %d, want %d", total, tab.Total())
	}
}

func TestSelectMaxOrderDeterministic(t *testing.T) {
	truth, err := synth.Survey(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(41), 5000)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []OrderScore {
		scores, _, err := SelectMaxOrder(tab, 3, 3, stats.NewRNG(42), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return scores
	}
	a, b := run(), run()
	for i := range a {
		if a[i].MeanLoss != b[i].MeanLoss {
			t.Errorf("order %d: losses differ across identical runs", a[i].MaxOrder)
		}
	}
}
