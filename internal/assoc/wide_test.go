package assoc

import (
	"math/rand"
	"testing"

	"pka/internal/contingency"
)

// coupledSparse builds a seeded sparse table over r ternary attributes with
// two planted couplings, for comparing the two pairwise screening paths.
func coupledSparse(t *testing.T, r, rows int, seed int64) *contingency.Sparse {
	t.Helper()
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 3
	}
	s, err := contingency.NewSparse(nil, cards)
	if err != nil {
		t.Fatalf("NewSparse: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	cell := make([]int, r)
	for n := 0; n < rows; n++ {
		for i := range cell {
			cell[i] = rng.Intn(3)
		}
		if rng.Float64() < 0.7 {
			cell[1] = cell[0]
		}
		if rng.Float64() < 0.6 {
			cell[r-1] = cell[2]
		}
		if err := s.Observe(cell...); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return s
}

// TestPairwiseSparseBulkMatchesProjection pins the wide-path contract: the
// flattened bulk scorer must reproduce the projection-based path bit for
// bit, on any worker count.
func TestPairwiseSparseBulkMatchesProjection(t *testing.T) {
	s := coupledSparse(t, 8, 3000, 42)
	want, err := PairwiseSparseWorkers(s, 1)
	if err != nil {
		t.Fatalf("projection path: %v", err)
	}
	for _, workers := range []int{1, 4} {
		got, err := pairwiseSparseBulk(s, workers)
		if err != nil {
			t.Fatalf("bulk path (workers=%d): %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("bulk path returned %d pairs, want %d", len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("workers=%d pair %d: bulk %+v != projection %+v", workers, k, got[k], want[k])
			}
		}
	}
}

// TestPairwiseSparseWideDispatch checks that a 65-attribute table takes the
// bulk path and still produces a full, finite pair survey.
func TestPairwiseSparseWideDispatch(t *testing.T) {
	const r = bulkPairwiseMinR
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 2
	}
	s, err := contingency.NewSparse(nil, cards)
	if err != nil {
		t.Fatalf("NewSparse: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	cell := make([]int, r)
	for n := 0; n < 500; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[1] = cell[0]
		}
		if err := s.Observe(cell...); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	pairs, err := PairwiseSparseWorkers(s, 0)
	if err != nil {
		t.Fatalf("PairwiseSparseWorkers: %v", err)
	}
	if want := r * (r - 1) / 2; len(pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(pairs), want)
	}
	// The planted coupling must surface as the top pair by MI.
	if pairs[0].I != 0 || pairs[0].J != 1 {
		t.Errorf("top pair is (%d,%d), want the planted (0,1)", pairs[0].I, pairs[0].J)
	}
	if pairs[0].PValue > 1e-6 {
		t.Errorf("planted pair p-value %g, want overwhelming significance", pairs[0].PValue)
	}
}

// chainSparse samples X -> Y -> Z (each copies its parent with probability
// copy) into a 3-attribute binary sparse table.
func chainSparse(t *testing.T, rows int, copy float64, seed int64) *contingency.Sparse {
	t.Helper()
	s, err := contingency.NewSparse([]string{"X", "Y", "Z"}, []int{2, 2, 2})
	if err != nil {
		t.Fatalf("NewSparse: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	flip := func(parent int) int {
		if rng.Float64() < copy {
			return parent
		}
		return rng.Intn(2)
	}
	for n := 0; n < rows; n++ {
		x := rng.Intn(2)
		y := flip(x)
		z := flip(y)
		if err := s.Observe(x, y, z); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return s
}

// TestCondG2Chain checks the conditional-independence test on a known
// chain: X and Z are marginally dependent but independent given Y, while X
// and Y stay dependent given Z.
func TestCondG2Chain(t *testing.T) {
	s := chainSparse(t, 4000, 0.9, 11)
	flat, err := Flatten(s)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	g2, df, p := flat.CondG2(0, 2, 1)
	if df != 2 {
		t.Errorf("CondG2(X,Z|Y) df = %d, want 2", df)
	}
	if p < 0.01 {
		t.Errorf("CondG2(X,Z|Y) = %.2f (p=%g): chain should look independent given the mediator", g2, p)
	}
	if _, _, p := flat.CondG2(0, 1, 2); p > 1e-9 {
		t.Errorf("CondG2(X,Y|Z) p=%g: direct edge should stay significant", p)
	}
}

// TestFlattenDeterministic checks the flattened view: deterministic row
// order, counts matching the backend, total preserved.
func TestFlattenDeterministic(t *testing.T) {
	s := coupledSparse(t, 5, 800, 3)
	flat, err := Flatten(s)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if flat.Total != s.Total() {
		t.Fatalf("Total = %d, want %d", flat.Total, s.Total())
	}
	var sum int64
	for i := 0; i < flat.Len(); i++ {
		row := flat.Row(i)
		n, err := s.At(row...)
		if err != nil {
			t.Fatalf("At(%v): %v", row, err)
		}
		if n != flat.Counts[i] {
			t.Errorf("row %d count %d, backend has %d", i, flat.Counts[i], n)
		}
		sum += flat.Counts[i]
	}
	if sum != s.Total() {
		t.Errorf("counts sum to %d, want %d", sum, s.Total())
	}
	again, err := Flatten(s)
	if err != nil {
		t.Fatalf("Flatten again: %v", err)
	}
	for i := 0; i < flat.Len(); i++ {
		a, b := flat.Row(i), again.Row(i)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("row %d differs between flattens: %v vs %v", i, a, b)
			}
		}
	}
}
