package assoc

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/par"
	"pka/internal/stats"
)

// logRatio returns ln(num/den) for positive integer products.
func logRatio(num, den int64) float64 {
	return math.Log(float64(num) / float64(den))
}

// bulkPairwiseMinR is the attribute count at which PairwiseSparseWorkers
// switches from per-pair cached projections to the flattened bulk path.
// Below it (every schema the old single-word representation could hold)
// the projection cache stays warm across streaming re-screens; above it,
// caching O(R²) pair tables on the parent would cost more than it saves,
// and each projection's O(occupied × R) unpacking would dominate — the
// bulk path unpacks every occupied cell exactly once instead.
const bulkPairwiseMinR = 65

// FlatCells is a contingency backend's occupied cells materialized once,
// in deterministic (sorted for sparse, row-major for dense) order: row i
// of the matrix is the full-width coordinate tuple of one occupied cell,
// Counts[i] its count. Wide-schema screening builds this view once and
// reads two or three columns per test, instead of unpacking all R
// coordinates of every cell once per pair.
type FlatCells struct {
	Cards  []int
	Counts []int64
	Total  int64
	r      int
	data   []int
}

// Flatten materializes the occupied cells of any enumerable counts
// backend. Memory is O(occupied × R).
func Flatten(c contingency.Counts) (*FlatCells, error) {
	each, err := contingency.EachCellDeterministic(c)
	if err != nil {
		return nil, fmt.Errorf("assoc: flattening counts: %w", err)
	}
	r := c.R()
	cards := make([]int, r)
	for i := range cards {
		cards[i] = c.Card(i)
	}
	f := &FlatCells{Cards: cards, Total: c.Total(), r: r}
	each(func(cell []int, n int64) {
		f.data = append(f.data, cell...)
		f.Counts = append(f.Counts, n)
	})
	return f, nil
}

// Len returns the number of occupied cells.
func (f *FlatCells) Len() int { return len(f.Counts) }

// Row returns the coordinates of occupied cell i (read-only view).
func (f *FlatCells) Row(i int) []int { return f.data[i*f.r : (i+1)*f.r] }

// CondG2 runs the conditional-independence G² test of attributes i and j
// given k: the likelihood-ratio statistic of i ⊥ j within each slice of
// k, summed over slices, with df = (card_i-1)(card_j-1)·card_k. A high
// p-value means the data cannot distinguish the pair's association from
// one mediated entirely by k. Iteration over the dense triple array keeps
// the floating-point accumulation order deterministic.
func (f *FlatCells) CondG2(i, j, k int) (g2 float64, df int, pvalue float64) {
	ci, cj, ck := f.Cards[i], f.Cards[j], f.Cards[k]
	triple := make([]int64, ci*cj*ck)
	for ridx, n := range f.Counts {
		row := f.Row(ridx)
		triple[(row[i]*cj+row[j])*ck+row[k]] += n
	}
	nAC := make([]int64, ci*ck) // Σ_b n_abc
	nBC := make([]int64, cj*ck) // Σ_a n_abc
	nC := make([]int64, ck)     // Σ_ab n_abc
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			for c := 0; c < ck; c++ {
				n := triple[(a*cj+b)*ck+c]
				nAC[a*ck+c] += n
				nBC[b*ck+c] += n
				nC[c] += n
			}
		}
	}
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			for c := 0; c < ck; c++ {
				n := triple[(a*cj+b)*ck+c]
				if n == 0 {
					continue
				}
				g2 += 2 * float64(n) * logRatio(n*nC[c], nAC[a*ck+c]*nBC[b*ck+c])
			}
		}
	}
	df = (ci - 1) * (cj - 1) * ck
	return g2, df, stats.ChiSquareSF(g2, df)
}

// pairwiseSparseBulk scores every pair from one flattened pass over the
// occupied cells — the wide-schema arm of PairwiseSparseWorkers. It builds
// each pair's dense table from exact integer adds, so its statistics are
// bit-identical to the projection-based path.
func pairwiseSparseBulk(s *contingency.Sparse, workers int) ([]PairStats, error) {
	f, err := Flatten(s)
	if err != nil {
		return nil, err
	}
	n := float64(s.Total())
	names := s.Names()
	fams := contingency.Combinations(s.R(), 2)
	out := make([]PairStats, len(fams))
	err = par.Do(len(fams), workers, func(idx int) error {
		m := fams[idx].Members()
		i, j := m[0], m[1]
		ci, cj := f.Cards[i], f.Cards[j]
		obs := make([]int64, ci*cj)
		for ridx, c := range f.Counts {
			row := f.Row(ridx)
			obs[row[i]*cj+row[j]] += c
		}
		pair, err := contingency.New([]string{names[i], names[j]}, []int{ci, cj})
		if err != nil {
			return err
		}
		for a := 0; a < ci; a++ {
			for b := 0; b < cj; b++ {
				if v := obs[a*cj+b]; v != 0 {
					if err := pair.Set(v, a, b); err != nil {
						return err
					}
				}
			}
		}
		ps, err := scorePair(pair, i, j, n)
		if err != nil {
			return err
		}
		out[idx] = ps
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortByMI(out)
	return out, nil
}
