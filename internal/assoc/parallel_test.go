package assoc

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"pka/internal/contingency"
	"pka/internal/stats"
)

// wideSparseTable builds a 24-binary-attribute sparse table with a few
// planted couplings, the wide-schema screening workload.
func wideSparseTable(tb testing.TB, attrs, rows int, seed int64) *contingency.Sparse {
	tb.Helper()
	cards := make([]int, attrs)
	for i := range cards {
		cards[i] = 2
	}
	s, err := contingency.NewSparse(nil, cards)
	if err != nil {
		tb.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	cell := make([]int, attrs)
	for n := 0; n < rows; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[attrs-1] = cell[0]
		}
		if rng.Float64() < 0.6 {
			cell[attrs/2] = cell[1]
		}
		if err := s.Observe(cell...); err != nil {
			tb.Fatal(err)
		}
	}
	return s
}

// requireSamePairs fails unless the two results agree bitwise, ordering
// included.
func requireSamePairs(t *testing.T, want, got []PairStats, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs vs %d", label, len(got), len(want))
	}
	for k := range want {
		w, g := want[k], got[k]
		same := w.I == g.I && w.J == g.J && w.DF == g.DF &&
			math.Float64bits(w.MI) == math.Float64bits(g.MI) &&
			math.Float64bits(w.G2) == math.Float64bits(g.G2) &&
			math.Float64bits(w.PValue) == math.Float64bits(g.PValue) &&
			math.Float64bits(w.CramersV) == math.Float64bits(g.CramersV)
		if !same {
			t.Fatalf("%s: pair slot %d differs:\nserial   %+v\nparallel %+v", label, k, w, g)
		}
	}
}

// TestPairwiseParallelBitIdentical scores the dense pair grid serially and
// with several worker counts: identical PairStats values in identical
// order.
func TestPairwiseParallelBitIdentical(t *testing.T) {
	tab := memoTable(t)
	// A larger dense table too: 8 ternary attributes with structure.
	cards := []int{3, 3, 3, 3, 3, 3, 3, 3}
	wide := contingency.MustNew(nil, cards)
	rng := stats.NewRNG(5)
	cell := make([]int, len(cards))
	for n := 0; n < 5000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(3)
		}
		if rng.Float64() < 0.5 {
			cell[3] = cell[6]
		}
		if err := wide.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	for name, table := range map[string]*contingency.Table{"memo": tab, "wide": wide} {
		serial, err := PairwiseWorkers(table, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8} {
			par, err := PairwiseWorkers(table, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireSamePairs(t, serial, par, fmt.Sprintf("%s workers=%d", name, workers))
		}
	}
}

// TestPairwiseSparseParallelBitIdentical is the same contract over the
// sparse screening path, exercised twice per worker count: once against a
// cold projection cache (concurrent first touch) and once against the
// warm cache.
func TestPairwiseSparseParallelBitIdentical(t *testing.T) {
	serial, err := PairwiseSparseWorkers(wideSparseTable(t, 24, 8000, 11), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		s := wideSparseTable(t, 24, 8000, 11) // fresh table: cold cache
		cold, err := PairwiseSparseWorkers(s, workers)
		if err != nil {
			t.Fatal(err)
		}
		requireSamePairs(t, serial, cold, fmt.Sprintf("cold workers=%d", workers))
		warm, err := PairwiseSparseWorkers(s, workers)
		if err != nil {
			t.Fatal(err)
		}
		requireSamePairs(t, serial, warm, fmt.Sprintf("warm workers=%d", workers))
	}
}

// TestPairwiseSparseConcurrentScreens hammers one shared sparse table with
// many whole-screen goroutines at once — the concurrent first-touch case
// of the projection cache. Run under -race this is the guard the parallel
// screen's safety claim rests on.
func TestPairwiseSparseConcurrentScreens(t *testing.T) {
	s := wideSparseTable(t, 20, 4000, 23)
	serial, err := PairwiseSparseWorkers(s.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]PairStats, 8)
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = PairwiseSparseWorkers(s, 2)
		}(g)
	}
	wg.Wait()
	for g := range results {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		requireSamePairs(t, serial, results[g], fmt.Sprintf("goroutine %d", g))
	}
}

// BenchmarkPairwiseSparseParallel screens a 24-attribute sparse table from
// a cold projection cache per iteration — the discovery-time screening
// workload — at several worker counts. Values are bit-identical across
// counts; only wall time differs.
func BenchmarkPairwiseSparseParallel(b *testing.B) {
	master := wideSparseTable(b, 24, 20000, 7)
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := master.Clone()
				b.StartTimer()
				pairs, err := PairwiseSparseWorkers(s, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(pairs) != 276 {
					b.Fatalf("%d pairs, want C(24,2)=276", len(pairs))
				}
			}
		})
	}
}
