package assoc

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/stats"
	"pka/internal/synth"
)

// memoTable reconstructs the memo's Figure 1 data.
func memoTable(t testing.TB) *contingency.Table {
	t.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				tab.Set(data[i][j][k], i, j, k)
			}
		}
	}
	return tab
}

func TestPairwiseValidation(t *testing.T) {
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, err := Pairwise(empty); err == nil {
		t.Error("empty table accepted")
	}
	one := contingency.MustNew(nil, []int{4})
	one.Set(5, 0)
	if _, err := Pairwise(one); err == nil {
		t.Error("single attribute accepted")
	}
}

func TestPairwiseMemoOrdering(t *testing.T) {
	// On the memo's data the A×C association (smoking/family history) and
	// A×B (smoking/cancer) dominate B×C, consistent with Table 1's deltas.
	pairs, err := Pairwise(memoTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("%d pairs, want 3", len(pairs))
	}
	// Sorted by MI descending.
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].MI < pairs[i].MI {
			t.Error("pairs not sorted by MI")
		}
	}
	// The weakest pair must be B×C (cancer/family history barely couple).
	last := pairs[len(pairs)-1]
	if !(last.I == 1 && last.J == 2) {
		t.Errorf("weakest pair = (%d,%d), want B×C (1,2)", last.I, last.J)
	}
	// All significant pairs (the memo finds cells in every family, but
	// B×C is marginal): p-values for A×B and A×C must be tiny.
	for _, p := range pairs {
		if p.I == 0 && p.PValue > 1e-6 {
			t.Errorf("pair (%d,%d) p-value %g, want tiny", p.I, p.J, p.PValue)
		}
	}
}

func TestPairwiseIndependentData(t *testing.T) {
	truth, err := synth.IndependentUniform(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(13), 50000)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Pairwise(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.MI > 0.001 {
			t.Errorf("pair (%d,%d) MI %g on independent data", p.I, p.J, p.MI)
		}
		if p.CramersV > 0.05 {
			t.Errorf("pair (%d,%d) V %g on independent data", p.I, p.J, p.CramersV)
		}
	}
}

func TestPairwisePerfectAssociation(t *testing.T) {
	// X == Y deterministic: V = 1, MI = ln 2, p ≈ 0.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(500, 0, 0)
	tab.Set(500, 1, 1)
	pairs, err := Pairwise(tab)
	if err != nil {
		t.Fatal(err)
	}
	p := pairs[0]
	if math.Abs(p.MI-math.Log(2)) > 1e-9 {
		t.Errorf("MI = %g, want ln 2", p.MI)
	}
	if math.Abs(p.CramersV-1) > 1e-9 {
		t.Errorf("V = %g, want 1", p.CramersV)
	}
	if p.PValue > 1e-12 {
		t.Errorf("p-value = %g, want ~0", p.PValue)
	}
	if p.DF != 1 {
		t.Errorf("df = %d, want 1", p.DF)
	}
}

func TestPairwiseSparseMatchesDense(t *testing.T) {
	dense := memoTable(t)
	sparse, err := contingency.FromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Pairwise(dense)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PairwiseSparse(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("dense %d pairs, sparse %d", len(a), len(b))
	}
	for i := range a {
		if a[i].I != b[i].I || a[i].J != b[i].J {
			t.Errorf("pair %d identity differs: (%d,%d) vs (%d,%d)",
				i, a[i].I, a[i].J, b[i].I, b[i].J)
		}
		if math.Abs(a[i].MI-b[i].MI) > 1e-12 || math.Abs(a[i].G2-b[i].G2) > 1e-9 {
			t.Errorf("pair %d stats differ: MI %g vs %g", i, a[i].MI, b[i].MI)
		}
	}
}

func TestPairwiseSparseWideScreening(t *testing.T) {
	// 20 binary attributes, one planted coupling (4 ↔ 13): the sparse
	// screen must rank that pair first.
	cards := make([]int, 20)
	for i := range cards {
		cards[i] = 2
	}
	s, err := contingency.NewSparse(nil, cards)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	cell := make([]int, 20)
	for n := 0; n < 20000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[13] = cell[4]
		}
		if err := s.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := PairwiseSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 190 {
		t.Fatalf("%d pairs, want C(20,2)=190", len(pairs))
	}
	if pairs[0].I != 4 || pairs[0].J != 13 {
		t.Errorf("top pair = (%d,%d), planted (4,13)", pairs[0].I, pairs[0].J)
	}
	if pairs[0].MI < 10*pairs[1].MI {
		t.Errorf("planted pair MI %g not dominant over runner-up %g",
			pairs[0].MI, pairs[1].MI)
	}
}

func TestPairwiseSparseValidation(t *testing.T) {
	s, err := contingency.NewSparse(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PairwiseSparse(s); err == nil {
		t.Error("empty sparse table accepted")
	}
	one, err := contingency.NewSparse(nil, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	one.Observe(0)
	if _, err := PairwiseSparse(one); err == nil {
		t.Error("single attribute accepted")
	}
}

func TestRender(t *testing.T) {
	pairs, err := Pairwise(memoTable(t))
	if err != nil {
		t.Fatal(err)
	}
	out := Render([]string{"SMOKING", "CANCER", "FAMILY"}, pairs)
	for _, want := range []string{"SMOKING × CANCER", "Cramér's V", "p-value"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Missing names fall back to positions.
	out = Render(nil, pairs)
	if !strings.Contains(out, "v0 × v1") {
		t.Errorf("fallback names missing:\n%s", out)
	}
}
