// Package assoc computes pairwise association diagnostics over a
// contingency table: mutual information, Cramér's V, and the likelihood-
// ratio statistic with its p-value. The memo positions its output as
// "clues for discovering more causal explanations" — this package is that
// survey view, independent of the MML selection machinery, for analysts
// deciding where to look first.
package assoc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pka/internal/contingency"
	"pka/internal/par"
	"pka/internal/report"
	"pka/internal/stats"
)

// PairStats summarizes the association between two attributes.
type PairStats struct {
	// I, J are the attribute positions (I < J).
	I, J int
	// MI is the mutual information in nats of the empirical pair marginal.
	MI float64
	// G2 is the likelihood-ratio statistic against independence.
	G2 float64
	// DF is (card_I - 1)(card_J - 1).
	DF int
	// PValue is the chi-square tail probability of G2 at DF.
	PValue float64
	// CramersV is the [0,1] effect-size normalization of Pearson's X².
	CramersV float64
}

// scorePair computes the association statistics of one pair from its 2-D
// marginal table (axes 0 and 1 of pair, cardinalities ci × cj); i and j
// are the attribute positions reported, n the parent table's total.
func scorePair(pair *contingency.Table, i, j int, n float64) (PairStats, error) {
	ci, cj := pair.Card(0), pair.Card(1)
	joint := make([]float64, ci*cj)
	obs := make([]int64, ci*cj)
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			v, err := pair.At(a, b)
			if err != nil {
				return PairStats{}, err
			}
			joint[a*cj+b] = float64(v) / n
			obs[a*cj+b] = v
		}
	}
	mi, err := stats.MutualInformation(joint, ci, cj)
	if err != nil {
		return PairStats{}, err
	}
	// Expected counts under independence of the pair marginal.
	rowSums := make([]float64, ci)
	colSums := make([]float64, cj)
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			rowSums[a] += float64(obs[a*cj+b])
			colSums[b] += float64(obs[a*cj+b])
		}
	}
	expected := make([]float64, ci*cj)
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			expected[a*cj+b] = rowSums[a] * colSums[b] / n
		}
	}
	g2, err := stats.GStat(obs, expected)
	if err != nil {
		return PairStats{}, err
	}
	x2, err := stats.ChiSquareStat(obs, expected)
	if err != nil {
		return PairStats{}, err
	}
	df := (ci - 1) * (cj - 1)
	minDim := ci - 1
	if cj-1 < minDim {
		minDim = cj - 1
	}
	v := 0.0
	if minDim > 0 && x2 > 0 {
		v = sqrtClamp(x2 / (n * float64(minDim)))
	}
	return PairStats{
		I: i, J: j,
		MI:       mi,
		G2:       g2,
		DF:       df,
		PValue:   stats.ChiSquareSF(g2, df),
		CramersV: v,
	}, nil
}

// sortByMI orders pair results by descending mutual information, stably
// over the lexicographic pair enumeration they were scored in.
func sortByMI(out []PairStats) {
	sort.SliceStable(out, func(a, b int) bool { return out[a].MI > out[b].MI })
}

// Pairwise computes PairStats for every attribute pair, ordered by
// descending mutual information. It fans the O(R²) pair grid out over
// GOMAXPROCS workers; use PairwiseWorkers to pin the worker count.
func Pairwise(t *contingency.Table) ([]PairStats, error) {
	return PairwiseWorkers(t, 0)
}

// PairwiseWorkers is Pairwise with an explicit worker count: each pair's
// marginalization and statistics are independent read-only work over the
// shared table, so pairs are scored concurrently into indexed slots and
// sorted afterwards — the output (ordering included) is bit-identical to
// the sequential scan for any worker count. workers <= 0 uses GOMAXPROCS,
// 1 forces the sequential loop.
func PairwiseWorkers(t *contingency.Table, workers int) ([]PairStats, error) {
	if t.Total() == 0 {
		return nil, fmt.Errorf("assoc: empty table")
	}
	if t.R() < 2 {
		return nil, fmt.Errorf("assoc: need at least 2 attributes")
	}
	n := float64(t.Total())
	fams := contingency.Combinations(t.R(), 2)
	out := make([]PairStats, len(fams))
	err := par.Do(len(fams), workers, func(k int) error {
		fam := fams[k]
		m := fam.Members()
		pair, err := t.Marginalize(fam)
		if err != nil {
			return err
		}
		ps, err := scorePair(pair, m[0], m[1], n)
		if err != nil {
			return err
		}
		out[k] = ps
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortByMI(out)
	return out, nil
}

// PairwiseSparse is Pairwise over a sparse table: each pair's dense 2-D
// projection is extracted first, so the cost is O(pairs × occupied cells)
// regardless of the joint-space size. This is the screening step of the
// wide-schema workflow: survey all pairs sparsely, then project and run
// discovery on the attribute subsets that light up. Pairs are scored over
// GOMAXPROCS workers; use PairwiseSparseWorkers to pin the count.
func PairwiseSparse(s *contingency.Sparse) ([]PairStats, error) {
	return PairwiseSparseWorkers(s, 0)
}

// PairwiseSparseWorkers is PairwiseSparse with an explicit worker count
// (<= 0 GOMAXPROCS, 1 the sequential loop); results are bit-identical
// across worker counts.
//
// Concurrency: the pair projections come from Sparse.ProjectCached, whose
// projection cache is guarded by the table's internal lock — concurrent
// first-touch from several workers double-checks under the write lock and
// all workers share one cached table per pair, so scoring is safe against
// any number of concurrent readers. (Table mutation must still not
// overlap screening: the sparse table's mutation contract is unchanged.)
func PairwiseSparseWorkers(s *contingency.Sparse, workers int) ([]PairStats, error) {
	if s.Total() == 0 {
		return nil, fmt.Errorf("assoc: empty table")
	}
	if s.R() < 2 {
		return nil, fmt.Errorf("assoc: need at least 2 attributes")
	}
	if s.R() >= bulkPairwiseMinR {
		// Wide schemas flatten the occupied cells once instead of paying a
		// full-width unpack per pair and caching O(R²) projections; the
		// statistics are bit-identical to the projection path.
		return pairwiseSparseBulk(s, workers)
	}
	n := float64(s.Total())
	fams := contingency.Combinations(s.R(), 2)
	out := make([]PairStats, len(fams))
	err := par.Do(len(fams), workers, func(k int) error {
		// Cached projection: on long-lived tables under streaming ingest
		// the 2-D pair tables are maintained in place by every mutation,
		// so re-screening after a delta batch is O(pairs), not
		// O(pairs × occupied).
		fam := fams[k]
		proj, err := s.ProjectCached(fam)
		if err != nil {
			return err
		}
		m := fam.Members()
		ps, err := scorePair(proj, m[0], m[1], n)
		if err != nil {
			return err
		}
		out[k] = ps
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortByMI(out)
	return out, nil
}

func sqrtClamp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return math.Sqrt(x)
}

// Render writes the pairwise report with attribute names.
func Render(names []string, pairs []PairStats) string {
	t := report.NewTable("pair", "MI (nats)", "Cramér's V", "G²", "df", "p-value").
		Align(report.Left, report.Right, report.Right, report.Right, report.Right, report.Right)
	for _, p := range pairs {
		ni := fmt.Sprintf("v%d", p.I)
		nj := fmt.Sprintf("v%d", p.J)
		if p.I < len(names) {
			ni = names[p.I]
		}
		if p.J < len(names) {
			nj = names[p.J]
		}
		t.AddRow(
			ni+" × "+nj,
			fmt.Sprintf("%.5f", p.MI),
			fmt.Sprintf("%.4f", p.CramersV),
			fmt.Sprintf("%.1f", p.G2),
			fmt.Sprintf("%d", p.DF),
			formatP(p.PValue),
		)
	}
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

func formatP(p float64) string {
	if p < 1e-12 {
		return "<1e-12"
	}
	return fmt.Sprintf("%.2g", p)
}
