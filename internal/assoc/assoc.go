// Package assoc computes pairwise association diagnostics over a
// contingency table: mutual information, Cramér's V, and the likelihood-
// ratio statistic with its p-value. The memo positions its output as
// "clues for discovering more causal explanations" — this package is that
// survey view, independent of the MML selection machinery, for analysts
// deciding where to look first.
package assoc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pka/internal/contingency"
	"pka/internal/report"
	"pka/internal/stats"
)

// PairStats summarizes the association between two attributes.
type PairStats struct {
	// I, J are the attribute positions (I < J).
	I, J int
	// MI is the mutual information in nats of the empirical pair marginal.
	MI float64
	// G2 is the likelihood-ratio statistic against independence.
	G2 float64
	// DF is (card_I - 1)(card_J - 1).
	DF int
	// PValue is the chi-square tail probability of G2 at DF.
	PValue float64
	// CramersV is the [0,1] effect-size normalization of Pearson's X².
	CramersV float64
}

// Pairwise computes PairStats for every attribute pair, ordered by
// descending mutual information.
func Pairwise(t *contingency.Table) ([]PairStats, error) {
	if t.Total() == 0 {
		return nil, fmt.Errorf("assoc: empty table")
	}
	if t.R() < 2 {
		return nil, fmt.Errorf("assoc: need at least 2 attributes")
	}
	n := float64(t.Total())
	var out []PairStats
	for _, fam := range contingency.Combinations(t.R(), 2) {
		m := fam.Members()
		i, j := m[0], m[1]
		pair, err := t.Marginalize(fam)
		if err != nil {
			return nil, err
		}
		ci, cj := t.Card(i), t.Card(j)
		joint := make([]float64, ci*cj)
		obs := make([]int64, ci*cj)
		for a := 0; a < ci; a++ {
			for b := 0; b < cj; b++ {
				v, err := pair.At(a, b)
				if err != nil {
					return nil, err
				}
				joint[a*cj+b] = float64(v) / n
				obs[a*cj+b] = v
			}
		}
		mi, err := stats.MutualInformation(joint, ci, cj)
		if err != nil {
			return nil, err
		}
		// Expected counts under independence of the pair marginal.
		rowSums := make([]float64, ci)
		colSums := make([]float64, cj)
		for a := 0; a < ci; a++ {
			for b := 0; b < cj; b++ {
				rowSums[a] += float64(obs[a*cj+b])
				colSums[b] += float64(obs[a*cj+b])
			}
		}
		expected := make([]float64, ci*cj)
		for a := 0; a < ci; a++ {
			for b := 0; b < cj; b++ {
				expected[a*cj+b] = rowSums[a] * colSums[b] / n
			}
		}
		g2, err := stats.GStat(obs, expected)
		if err != nil {
			return nil, err
		}
		x2, err := stats.ChiSquareStat(obs, expected)
		if err != nil {
			return nil, err
		}
		df := (ci - 1) * (cj - 1)
		minDim := ci - 1
		if cj-1 < minDim {
			minDim = cj - 1
		}
		v := 0.0
		if minDim > 0 && x2 > 0 {
			v = sqrtClamp(x2 / (n * float64(minDim)))
		}
		out = append(out, PairStats{
			I: i, J: j,
			MI:       mi,
			G2:       g2,
			DF:       df,
			PValue:   stats.ChiSquareSF(g2, df),
			CramersV: v,
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].MI > out[b].MI })
	return out, nil
}

// PairwiseSparse is Pairwise over a sparse table: each pair's dense 2-D
// projection is extracted first, so the cost is O(pairs × occupied cells)
// regardless of the joint-space size. This is the screening step of the
// wide-schema workflow: survey all pairs sparsely, then project and run
// discovery on the attribute subsets that light up.
func PairwiseSparse(s *contingency.Sparse) ([]PairStats, error) {
	if s.Total() == 0 {
		return nil, fmt.Errorf("assoc: empty table")
	}
	if s.R() < 2 {
		return nil, fmt.Errorf("assoc: need at least 2 attributes")
	}
	var out []PairStats
	for _, fam := range contingency.Combinations(s.R(), 2) {
		// Cached projection: on long-lived tables under streaming ingest
		// the 2-D pair tables are maintained in place by every mutation,
		// so re-screening after a delta batch is O(pairs), not
		// O(pairs × occupied).
		proj, err := s.ProjectCached(fam)
		if err != nil {
			return nil, err
		}
		pairs, err := Pairwise(proj)
		if err != nil {
			return nil, err
		}
		// The projection has exactly one pair (its two axes); remap the
		// positions back to the wide schema.
		p := pairs[0]
		m := fam.Members()
		p.I, p.J = m[0], m[1]
		out = append(out, p)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].MI > out[b].MI })
	return out, nil
}

func sqrtClamp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return math.Sqrt(x)
}

// Render writes the pairwise report with attribute names.
func Render(names []string, pairs []PairStats) string {
	t := report.NewTable("pair", "MI (nats)", "Cramér's V", "G²", "df", "p-value").
		Align(report.Left, report.Right, report.Right, report.Right, report.Right, report.Right)
	for _, p := range pairs {
		ni := fmt.Sprintf("v%d", p.I)
		nj := fmt.Sprintf("v%d", p.J)
		if p.I < len(names) {
			ni = names[p.I]
		}
		if p.J < len(names) {
			nj = names[p.J]
		}
		t.AddRow(
			ni+" × "+nj,
			fmt.Sprintf("%.5f", p.MI),
			fmt.Sprintf("%.4f", p.CramersV),
			fmt.Sprintf("%.1f", p.G2),
			fmt.Sprintf("%d", p.DF),
			formatP(p.PValue),
		)
	}
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

func formatP(p float64) string {
	if p < 1e-12 {
		return "<1e-12"
	}
	return fmt.Sprintf("%.2g", p)
}
