package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadCSV ingests a CSV stream whose first row is a header of attribute
// names into a Dataset over the given schema. Columns are matched to schema
// attributes by header name (order in the file is free); extra columns are
// ignored; a missing schema attribute is an error, as is a header that
// names the same attribute twice (the ambiguity would silently drop all
// but one of the columns).
//
// Cell values are matched against value labels; unknown labels fall back to
// the attribute's "other" value when the schema has one.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	colOf := make([]int, schema.R())
	for i := range colOf {
		colOf[i] = -1
	}
	for col, h := range header {
		if p, err := schema.Position(strings.TrimSpace(h)); err == nil {
			if prev := colOf[p]; prev >= 0 {
				return nil, fmt.Errorf("dataset: CSV header names attribute %q twice (columns %d and %d)",
					schema.Attr(p).Name, prev+1, col+1)
			}
			colOf[p] = col
		}
	}
	for i, c := range colOf {
		if c < 0 {
			return nil, fmt.Errorf("dataset: CSV header missing attribute %q", schema.Attr(i).Name)
		}
	}
	d := NewDataset(schema)
	row := 1
	labels := make([]string, schema.R())
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row+1, err)
		}
		row++
		for i, col := range colOf {
			if col >= len(rec) {
				return nil, fmt.Errorf("dataset: CSV row %d short: no column %d", row, col)
			}
			labels[i] = strings.TrimSpace(rec[col])
		}
		if err := d.AppendLabeled(labels); err != nil {
			return nil, fmt.Errorf("dataset: CSV row %d: %w", row, err)
		}
	}
	return d, nil
}

// InferSchema scans a CSV stream and builds a schema whose attributes are
// the header columns and whose values are the distinct labels seen, sorted
// for determinism. It is the "just point it at the data" ingest path of the
// CLI. maxCard bounds the per-attribute distinct count to catch columns that
// are really continuous identifiers (0 means no bound).
func InferSchema(r io.Reader, maxCard int) (*Schema, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i, h := range header {
		header[i] = strings.TrimSpace(h)
	}
	sets := make([]map[string]bool, len(header))
	for i := range sets {
		sets[i] = make(map[string]bool)
	}
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row+1, err)
		}
		row++
		if len(rec) < len(header) {
			return nil, fmt.Errorf("dataset: CSV row %d has %d columns, header has %d",
				row, len(rec), len(header))
		}
		for i := range header {
			v := strings.TrimSpace(rec[i])
			sets[i][v] = true
			if maxCard > 0 && len(sets[i]) > maxCard {
				return nil, fmt.Errorf("dataset: column %q exceeds %d distinct values; discretize it first",
					header[i], maxCard)
			}
		}
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		vals := make([]string, 0, len(sets[i]))
		for v := range sets[i] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		attrs[i] = Attribute{Name: h, Values: vals}
	}
	return NewSchema(attrs)
}

// WriteCSV emits the dataset with a header row, decoding records to labels.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.schema.Names()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i := 0; i < d.Len(); i++ {
		if err := cw.Write(d.Labels(i)); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i+1, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
