package dataset

import (
	"fmt"
)

// MergeRareValues returns a copy of the dataset in which, per attribute,
// every value observed fewer than minCount times is collapsed into the
// attribute's OtherValue. This is the memo's range-completion convention
// applied defensively: rare categories produce near-empty contingency rows
// whose marginals destabilize chance-range arithmetic, and collapsing them
// is the standard remedy in contingency analysis.
//
// Attributes where no value is rare keep their schema unchanged. When
// collapsing leaves an attribute with a single value (everything rare),
// the attribute keeps its most frequent value plus OtherValue so the
// schema stays well-formed.
func (d *Dataset) MergeRareValues(minCount int64) (*Dataset, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("dataset: minCount %d must be >= 1", minCount)
	}
	counts := d.Counts()
	// Build the new schema and per-attribute index remapping.
	attrs := make([]Attribute, d.schema.R())
	remap := make([][]int, d.schema.R())
	for i := 0; i < d.schema.R(); i++ {
		a := d.schema.Attr(i)
		keep := make([]string, 0, a.Card())
		remap[i] = make([]int, a.Card())
		anyRare := false
		for v, label := range a.Values {
			if counts[i][v] >= minCount || label == OtherValue {
				remap[i][v] = len(keep)
				keep = append(keep, label)
			} else {
				remap[i][v] = -1 // provisional: goes to other
				anyRare = true
			}
		}
		if len(keep) == 0 {
			// Everything rare: retain the most frequent value.
			best := 0
			for v := range a.Values {
				if counts[i][v] > counts[i][best] {
					best = v
				}
			}
			remap[i][best] = 0
			keep = append(keep, a.Values[best])
		}
		if anyRare {
			// Ensure an OtherValue bucket exists and route rare values
			// into it.
			otherIdx := -1
			for ki, label := range keep {
				if label == OtherValue {
					otherIdx = ki
				}
			}
			if otherIdx < 0 {
				otherIdx = len(keep)
				keep = append(keep, OtherValue)
			}
			for v := range remap[i] {
				if remap[i][v] < 0 {
					remap[i][v] = otherIdx
				}
			}
		}
		attrs[i] = Attribute{Name: a.Name, Values: keep}
	}
	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("dataset: merging rare values: %w", err)
	}
	out := NewDataset(schema)
	rec := make(Record, schema.R())
	for _, r := range d.records {
		for i, v := range r {
			rec[i] = remap[i][v]
		}
		if err := out.Append(rec); err != nil {
			return nil, err
		}
	}
	return out, nil
}
