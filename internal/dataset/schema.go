package dataset

import (
	"fmt"
	"strings"
)

// OtherValue is the label appended when a schema is completed so that every
// attribute's value range is exhaustive, per the memo: "the range of values
// for each attribute is complete (made so by adding the value 'other', if
// necessary)".
const OtherValue = "other"

// Attribute is one categorical variable: a name plus its ordered value
// labels. Value indices (0-based) are what records store; labels are for
// ingest and presentation.
type Attribute struct {
	Name   string
	Values []string
}

// Card returns the number of values.
func (a Attribute) Card() int { return len(a.Values) }

// ValueIndex returns the index of label v, or -1 when absent.
func (a Attribute) ValueIndex(v string) int {
	for i, s := range a.Values {
		if s == v {
			return i
		}
	}
	return -1
}

// Schema is an ordered list of attributes — the R-tuple layout of Figure 6.
type Schema struct {
	attrs []Attribute
	index map[string]int // attribute name -> position
}

// NewSchema validates and builds a schema. Attribute names must be non-empty
// and unique; every attribute needs at least one value; value labels within
// an attribute must be non-empty and unique.
func NewSchema(attrs []Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	// The defensive value-label copies share one backing array — schema
	// construction sits on the snapshot-restore cold-start path.
	total := 0
	for _, a := range attrs {
		total += len(a.Values)
	}
	vbuf := make([]string, total)
	for i, a := range attrs {
		if strings.TrimSpace(a.Name) == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("dataset: attribute %q has no values", a.Name)
		}
		if err := checkValueLabels(a); err != nil {
			return nil, err
		}
		vals := vbuf[:len(a.Values):len(a.Values)]
		vbuf = vbuf[len(a.Values):]
		copy(vals, a.Values)
		s.attrs[i] = Attribute{Name: a.Name, Values: vals}
		s.index[a.Name] = i
	}
	return s, nil
}

// checkValueLabels rejects empty or duplicate value labels. Typical
// cardinalities are small, so duplicates are found by quadratic scan below
// a threshold — schema construction sits on the snapshot-restore cold-start
// path, where a per-attribute map shows up in profiles.
func checkValueLabels(a Attribute) error {
	for _, v := range a.Values {
		if strings.TrimSpace(v) == "" {
			return fmt.Errorf("dataset: attribute %q has empty value label", a.Name)
		}
	}
	if len(a.Values) <= 16 {
		for i, v := range a.Values {
			for _, u := range a.Values[:i] {
				if u == v {
					return fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
				}
			}
		}
		return nil
	}
	seen := make(map[string]bool, len(a.Values))
	for _, v := range a.Values {
		if seen[v] {
			return fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
		}
		seen[v] = true
	}
	return nil
}

// MustSchema is NewSchema for statically-valid fixtures.
func MustSchema(attrs []Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// R returns the number of attributes.
func (s *Schema) R() int { return len(s.attrs) }

// Attr returns attribute i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// AttrByName returns the attribute with the given name and its position.
func (s *Schema) AttrByName(name string) (Attribute, int, error) {
	i, ok := s.index[name]
	if !ok {
		return Attribute{}, 0, fmt.Errorf("dataset: no attribute named %q", name)
	}
	return s.attrs[i], i, nil
}

// Position returns the index of the named attribute, or an error.
func (s *Schema) Position(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("dataset: no attribute named %q", name)
	}
	return i, nil
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Cards returns the attribute cardinalities in order.
func (s *Schema) Cards() []int {
	out := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Card()
	}
	return out
}

// NumCells returns the product of cardinalities — the joint space size.
func (s *Schema) NumCells() int {
	n := 1
	for _, a := range s.attrs {
		n *= a.Card()
	}
	return n
}

// WithOther returns a copy of the schema in which every attribute listed in
// names gains a trailing OtherValue label (if not already present). Passing
// no names completes every attribute. This implements the memo's range
// completion so marginals always sum to N.
func (s *Schema) WithOther(names ...string) (*Schema, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := s.index[n]; !ok {
			return nil, fmt.Errorf("dataset: no attribute named %q", n)
		}
		want[n] = true
	}
	attrs := make([]Attribute, len(s.attrs))
	for i, a := range s.attrs {
		attrs[i] = Attribute{Name: a.Name, Values: append([]string(nil), a.Values...)}
		if (len(names) == 0 || want[a.Name]) && a.ValueIndex(OtherValue) < 0 {
			attrs[i].Values = append(attrs[i].Values, OtherValue)
		}
	}
	return NewSchema(attrs)
}

// Describe renders the schema in the questionnaire style of the memo's
// problem definition (A. SMOKING HISTORY / 1. Smoker ...).
func (s *Schema) Describe() string {
	var b strings.Builder
	for i, a := range s.attrs {
		fmt.Fprintf(&b, "%c. %s\n", 'A'+i%26, a.Name)
		for j, v := range a.Values {
			fmt.Fprintf(&b, "   %d. %s\n", j+1, v)
		}
	}
	return b.String()
}

// Equal reports whether two schemas have identical attributes and values.
func (s *Schema) Equal(o *Schema) bool {
	if s.R() != o.R() {
		return false
	}
	for i, a := range s.attrs {
		b := o.attrs[i]
		if a.Name != b.Name || len(a.Values) != len(b.Values) {
			return false
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				return false
			}
		}
	}
	return true
}
