package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEqualWidthBinner(t *testing.T) {
	b, err := NewEqualWidthBinner(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 interval bins plus the dedicated NaN catch-all.
	if b.Bins() != 6 {
		t.Fatalf("bins = %d", b.Bins())
	}
	cases := []struct {
		x    float64
		want int
	}{
		{-1, 0}, {0, 0}, {1.9, 0}, {2, 1}, {3.5, 1},
		{4, 2}, {5.99, 2}, {6, 3}, {8, 4}, {10, 4}, {99, 4},
	}
	for _, c := range cases {
		if got := b.Bin(c.x); got != c.want {
			t.Errorf("Bin(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestEqualWidthBinnerValidation(t *testing.T) {
	if _, err := NewEqualWidthBinner(0, 10, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := NewEqualWidthBinner(10, 0, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewEqualWidthBinner(0, math.Inf(1), 3); err == nil {
		t.Error("infinite range accepted")
	}
	if _, err := NewEqualWidthBinner(math.NaN(), 1, 3); err == nil {
		t.Error("NaN bound accepted")
	}
}

func TestQuantileBinnerBalances(t *testing.T) {
	sample := make([]float64, 1000)
	for i := range sample {
		x := float64(i) / 1000
		sample[i] = x * x * 100 // heavily skewed
	}
	b, err := NewQuantileBinner(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, b.Bins())
	for _, x := range sample {
		counts[b.Bin(x)]++
	}
	// Interval bins balance; the trailing catch-all receives no real value.
	for i, c := range counts[:b.Bins()-1] {
		if c < 200 || c > 300 {
			t.Errorf("quantile bin %d holds %d of 1000 (want ~250)", i, c)
		}
	}
	if counts[b.Bins()-1] != 0 {
		t.Errorf("catch-all bin holds %d real values", counts[b.Bins()-1])
	}
}

func TestQuantileBinnerValidation(t *testing.T) {
	if _, err := NewQuantileBinner([]float64{1, 2}, 5); err == nil {
		t.Error("too-small sample accepted")
	}
	if _, err := NewQuantileBinner([]float64{1, 2, 3}, 1); err == nil {
		t.Error("1 bin accepted")
	}
	// All-identical sample cannot define distinct edges.
	same := make([]float64, 100)
	if _, err := NewQuantileBinner(same, 4); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestBinnerNaNGoesToLastBin(t *testing.T) {
	b, err := NewEqualWidthBinner(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Bin(math.NaN()); got != b.Bins()-1 {
		t.Errorf("NaN binned to %d, want last bin %d", got, b.Bins()-1)
	}
}

func TestBinnerLabelsAndAttribute(t *testing.T) {
	b, err := NewEqualWidthBinner(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := b.Labels()
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	if labels[3] != OtherValue {
		t.Errorf("catch-all label = %q, want %q", labels[3], OtherValue)
	}
	a := b.Attribute("temp")
	if a.Name != "temp" || a.Card() != 4 {
		t.Errorf("attribute = %+v", a)
	}
	// Labels must be distinct so NewSchema accepts them.
	if _, err := NewSchema([]Attribute{a}); err != nil {
		t.Errorf("binner attribute rejected by schema: %v", err)
	}
}

func TestBinnerMonotoneProperty(t *testing.T) {
	b, err := NewEqualWidthBinner(-5, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return b.Bin(x) <= b.Bin(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBinnerNaNTelemetryPath is the telemetry-pipeline regression for the
// NaN catch-all: a sensor stream with dropouts (NaN readings) is binned,
// tabulated, and the dropouts must land in the dedicated catch-all bin —
// never in the top interval bin, which previously absorbed them and
// conflated "unreadable" with "large reading".
func TestBinnerNaNTelemetryPath(t *testing.T) {
	sample := make([]float64, 300)
	for i := range sample {
		sample[i] = 20 + float64(i%100)/10 // readings in [20, 30)
	}
	b, err := NewQuantileBinner(sample, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema([]Attribute{
		b.Attribute("BUS_VOLTAGE"),
		{Name: "ANOMALY", Values: []string{"none", "power"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDataset(schema)
	const dropouts = 25
	for i, x := range sample {
		if err := d.Append(Record{b.Bin(x), i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < dropouts; i++ {
		if err := d.Append(Record{b.Bin(math.NaN()), 0}); err != nil {
			t.Fatal(err)
		}
	}
	table, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	catchAll := b.Bins() - 1
	var inCatchAll, inTopInterval int64
	for v := 0; v < 2; v++ {
		c, err := table.At(catchAll, v)
		if err != nil {
			t.Fatal(err)
		}
		inCatchAll += c
		c, err = table.At(catchAll-1, v)
		if err != nil {
			t.Fatal(err)
		}
		inTopInterval += c
	}
	if inCatchAll != dropouts {
		t.Errorf("catch-all bin holds %d, want the %d dropouts", inCatchAll, dropouts)
	}
	// The top interval holds exactly the real large readings: the binner
	// must not have leaked dropouts into it.
	var wantTop int64
	for _, x := range sample {
		if b.Bin(x) == catchAll-1 {
			wantTop++
		}
	}
	if inTopInterval != wantTop {
		t.Errorf("top interval holds %d, want %d (NaN leaked in?)", inTopInterval, wantTop)
	}
	if b.Labels()[catchAll] != OtherValue {
		t.Errorf("catch-all labeled %q", b.Labels()[catchAll])
	}
}

// TestBinnerNearIdenticalEdgeLabels is the label-collision regression: the
// pre-fix %.4g formatting rendered numerically distinct edges (e.g.
// quantile edges 0.00012341 vs 0.00012342) identically, so the binner's
// labels contained duplicates and NewSchema rejected the attribute.
func TestBinnerNearIdenticalEdgeLabels(t *testing.T) {
	// Three interval bins with edges that collide at 4 significant digits.
	sample := []float64{
		0.0001234, 0.00012341, 0.00012341,
		0.00012342, 0.00012342, 0.00012343,
	}
	b, err := NewQuantileBinner(sample, 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := b.Labels()
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate bin label %q in %v", l, labels)
		}
		seen[l] = true
	}
	// The attribute the binner produces must be schema-legal.
	if _, err := NewSchema([]Attribute{b.Attribute("READING"), {Name: "OK", Values: []string{"y", "n"}}}); err != nil {
		t.Fatalf("NewSchema rejected binner attribute: %v", err)
	}
	// Values on either side of the near-identical edges still separate.
	if b.Bin(0.000123405) == b.Bin(0.000123425) {
		t.Error("near-identical edges no longer separate readings")
	}
}

// TestEqualWidthBinnerTinyWidthLabels: equal-width bins over a tiny range
// also need widened labels.
func TestEqualWidthBinnerTinyWidthLabels(t *testing.T) {
	b, err := NewEqualWidthBinner(1.0000001, 1.0000004, 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := b.Labels()
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate bin label %q in %v", l, labels)
		}
		seen[l] = true
	}
}

// TestQuantileBinnerSkewedSampleFewerBins documents the contract that the
// requested count is an upper bound: heavy ties collapse quantile edges
// and Bins() reports what was actually kept.
func TestQuantileBinnerSkewedSampleFewerBins(t *testing.T) {
	sample := []float64{0, 0, 0, 0, 0, 0, 1, 2, 3, 4}
	b, err := NewQuantileBinner(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() >= 4+1 {
		t.Fatalf("Bins() = %d; skewed sample should keep fewer than requested", b.Bins())
	}
	if b.Bins() != len(b.Labels()) {
		t.Errorf("Bins() %d != len(Labels()) %d", b.Bins(), len(b.Labels()))
	}
}
