package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"pka/internal/contingency"
)

// TabulateCSV counts CSV rows directly into a contingency table without
// materializing records — the ingest path for sample counts that dwarf
// memory (the memo's "mammoth NASA reserve data bank"). Header and value
// semantics match ReadCSV.
func TabulateCSV(r io.Reader, schema *Schema) (*contingency.Table, error) {
	table, err := contingency.New(schema.Names(), schema.Cards())
	if err != nil {
		return nil, err
	}
	err = streamCSV(r, schema, func(cell []int) error {
		return table.Observe(cell...)
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// tabulateChunkRows is how many decoded rows TabulateCSVSparse buffers
// before flushing one ObserveBatch — large enough to amortize the batched
// mutation's per-call work, small enough to keep ingest memory flat.
const tabulateChunkRows = 4096

// TabulateCSVSparse is TabulateCSV into a sparse table, for wide schemas
// whose dense joint space does not fit in memory. Rows are ingested through
// the batched mutation API in fixed-size chunks, so any cached marginal
// projections are maintained in place rather than invalidated per row.
func TabulateCSVSparse(r io.Reader, schema *Schema) (*contingency.Sparse, error) {
	table, err := contingency.NewSparse(schema.Names(), schema.Cards())
	if err != nil {
		return nil, err
	}
	chunk := make([][]int, 0, tabulateChunkRows)
	err = streamCSV(r, schema, func(cell []int) error {
		chunk = append(chunk, append([]int(nil), cell...))
		if len(chunk) == cap(chunk) {
			if err := table.ObserveBatch(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := table.ObserveBatch(chunk); err != nil {
		return nil, err
	}
	return table, nil
}

// streamCSV drives fn with the coded cell of each data row.
func streamCSV(r io.Reader, schema *Schema, fn func(cell []int) error) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	colOf := make([]int, schema.R())
	for i := range colOf {
		colOf[i] = -1
	}
	for col, h := range header {
		if p, err := schema.Position(strings.TrimSpace(h)); err == nil {
			if prev := colOf[p]; prev >= 0 {
				return fmt.Errorf("dataset: CSV header names attribute %q twice (columns %d and %d)",
					schema.Attr(p).Name, prev+1, col+1)
			}
			colOf[p] = col
		}
	}
	for i, c := range colOf {
		if c < 0 {
			return fmt.Errorf("dataset: CSV header missing attribute %q", schema.Attr(i).Name)
		}
	}
	cell := make([]int, schema.R())
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: reading CSV row %d: %w", row+1, err)
		}
		row++
		for i, col := range colOf {
			if col >= len(rec) {
				return fmt.Errorf("dataset: CSV row %d short: no column %d", row, col)
			}
			a := schema.Attr(i)
			label := strings.TrimSpace(rec[col])
			idx := a.ValueIndex(label)
			if idx < 0 {
				idx = a.ValueIndex(OtherValue)
				if idx < 0 {
					return fmt.Errorf("dataset: CSV row %d: attribute %q has no value %q and no %q fallback",
						row, a.Name, label, OtherValue)
				}
			}
			cell[i] = idx
		}
		if err := fn(cell); err != nil {
			return fmt.Errorf("dataset: CSV row %d: %w", row, err)
		}
	}
}

// TabulateSparse counts the dataset's records into a sparse table.
func (d *Dataset) TabulateSparse() (*contingency.Sparse, error) {
	t, err := contingency.NewSparse(d.schema.Names(), d.schema.Cards())
	if err != nil {
		return nil, err
	}
	for _, r := range d.records {
		if err := t.Observe(r...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
