package dataset

import (
	"testing"
	"testing/quick"

	"pka/internal/contingency"
)

func TestAppendValidation(t *testing.T) {
	d := NewDataset(memoSchema(t))
	if err := d.Append(Record{0, 1}); err == nil {
		t.Error("short record accepted")
	}
	if err := d.Append(Record{0, 1, 5}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if err := d.Append(Record{-1, 0, 0}); err == nil {
		t.Error("negative value accepted")
	}
	if err := d.Append(Record{2, 1, 0}); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestAppendCopies(t *testing.T) {
	d := NewDataset(memoSchema(t))
	r := Record{0, 0, 0}
	if err := d.Append(r); err != nil {
		t.Fatal(err)
	}
	r[0] = 2
	if d.Record(0)[0] != 0 {
		t.Error("Append retained caller's slice")
	}
}

func TestAppendLabeled(t *testing.T) {
	d := NewDataset(memoSchema(t))
	if err := d.AppendLabeled([]string{"Smoker", "No", "Yes"}); err != nil {
		t.Fatal(err)
	}
	got := d.Record(0)
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("coded record = %v", got)
	}
	labels := d.Labels(0)
	if labels[0] != "Smoker" || labels[1] != "No" || labels[2] != "Yes" {
		t.Errorf("decoded labels = %v", labels)
	}
	if err := d.AppendLabeled([]string{"Smoker", "No"}); err == nil {
		t.Error("short label row accepted")
	}
	if err := d.AppendLabeled([]string{"Vaper", "No", "Yes"}); err == nil {
		t.Error("unknown label without 'other' accepted")
	}
}

func TestAppendLabeledOtherFallback(t *testing.T) {
	s, err := memoSchema(t).WithOther("SMOKING")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDataset(s)
	if err := d.AppendLabeled([]string{"Vaper", "No", "Yes"}); err != nil {
		t.Fatalf("fallback to other failed: %v", err)
	}
	a := s.Attr(0)
	if d.Record(0)[0] != a.ValueIndex(OtherValue) {
		t.Errorf("unknown label coded to %d, want the 'other' index %d",
			d.Record(0)[0], a.ValueIndex(OtherValue))
	}
}

func TestTabulateMatchesManualCount(t *testing.T) {
	d := NewDataset(memoSchema(t))
	rows := []Record{
		{0, 0, 0}, {0, 0, 0}, {0, 1, 0},
		{1, 0, 1}, {2, 1, 1}, {2, 1, 1}, {2, 1, 1},
	}
	for _, r := range rows {
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total() != int64(len(rows)) {
		t.Errorf("total = %d, want %d", tab.Total(), len(rows))
	}
	if got := tab.MustAt(0, 0, 0); got != 2 {
		t.Errorf("cell(0,0,0) = %d, want 2", got)
	}
	if got := tab.MustAt(2, 1, 1); got != 3 {
		t.Errorf("cell(2,1,1) = %d, want 3", got)
	}
	if got := tab.MustAt(1, 1, 0); got != 0 {
		t.Errorf("cell(1,1,0) = %d, want 0", got)
	}
}

func TestTabulateSubsetMatchesMarginalization(t *testing.T) {
	// Tabulating a projection must equal marginalizing the full table —
	// the commuting square of Appendix A and Eqs. 1-5.
	d := NewDataset(memoSchema(t))
	rows := []Record{
		{0, 0, 0}, {1, 1, 1}, {2, 0, 1}, {1, 1, 0}, {1, 1, 1}, {0, 1, 1},
	}
	for _, r := range rows {
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.TabulateSubset([]string{"SMOKING", "FAMILY HISTORY"})
	if err != nil {
		t.Fatal(err)
	}
	marg, err := full.Marginalize(contingency.NewVarSet(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Equal(marg) {
		t.Error("TabulateSubset != Marginalize of full table")
	}
}

func TestTabulateSubsetErrors(t *testing.T) {
	d := NewDataset(memoSchema(t))
	if _, err := d.TabulateSubset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := d.TabulateSubset([]string{"nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCountsPerAttribute(t *testing.T) {
	d := NewDataset(memoSchema(t))
	d.Append(Record{0, 0, 0})
	d.Append(Record{0, 1, 1})
	d.Append(Record{1, 1, 1})
	counts := d.Counts()
	if counts[0][0] != 2 || counts[0][1] != 1 || counts[0][2] != 0 {
		t.Errorf("attr 0 counts = %v", counts[0])
	}
	if counts[1][1] != 2 {
		t.Errorf("attr 1 counts = %v", counts[1])
	}
}

func TestTabulateSubsetCommutesProperty(t *testing.T) {
	// For random small datasets the subset-tabulation/marginalization square
	// commutes for every pair of attributes.
	f := func(raw []uint8) bool {
		s := MustSchema([]Attribute{
			{Name: "X", Values: []string{"a", "b"}},
			{Name: "Y", Values: []string{"a", "b", "c"}},
			{Name: "Z", Values: []string{"a", "b"}},
		})
		d := NewDataset(s)
		for _, r := range raw {
			rec := Record{int(r) % 2, int(r/2) % 3, int(r/6) % 2}
			if err := d.Append(rec); err != nil {
				return false
			}
		}
		if d.Len() == 0 {
			return true
		}
		full, err := d.Tabulate()
		if err != nil {
			return false
		}
		sub, err := d.TabulateSubset([]string{"X", "Z"})
		if err != nil {
			return false
		}
		marg, err := full.Marginalize(contingency.NewVarSet(0, 2))
		if err != nil {
			return false
		}
		return sub.Equal(marg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
