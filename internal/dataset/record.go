package dataset

import (
	"fmt"

	"pka/internal/contingency"
)

// Record is one observation: value indices in schema attribute order —
// one row of the memo's Figure 6 triples form.
type Record []int

// Dataset is a schema plus its observed records ("original data form",
// Figure 5, already coded to indices).
type Dataset struct {
	schema  *Schema
	records []Record
}

// NewDataset creates an empty dataset over the schema.
func NewDataset(schema *Schema) *Dataset {
	return &Dataset{schema: schema}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *Schema { return d.schema }

// Len returns the number of records (N).
func (d *Dataset) Len() int { return len(d.records) }

// Record returns record i. The returned slice is live; do not modify.
func (d *Dataset) Record(i int) Record { return d.records[i] }

// Append validates and adds a record. The record is copied.
func (d *Dataset) Append(r Record) error {
	if len(r) != d.schema.R() {
		return fmt.Errorf("dataset: record has %d values, schema has %d attributes",
			len(r), d.schema.R())
	}
	for i, v := range r {
		if v < 0 || v >= d.schema.Attr(i).Card() {
			return fmt.Errorf("dataset: record value %d for attribute %q out of range [0,%d)",
				v, d.schema.Attr(i).Name, d.schema.Attr(i).Card())
		}
	}
	d.records = append(d.records, append(Record(nil), r...))
	return nil
}

// AppendLabeled adds a record given as value labels in attribute order,
// e.g. ["Smoker", "No", "Yes"]. Unknown labels map to the attribute's
// OtherValue if present, else produce an error — implementing the memo's
// range-completion convention.
func (d *Dataset) AppendLabeled(labels []string) error {
	if len(labels) != d.schema.R() {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes",
			len(labels), d.schema.R())
	}
	r := make(Record, len(labels))
	for i, lab := range labels {
		a := d.schema.Attr(i)
		idx := a.ValueIndex(lab)
		if idx < 0 {
			idx = a.ValueIndex(OtherValue)
			if idx < 0 {
				return fmt.Errorf("dataset: attribute %q has no value %q and no %q fallback",
					a.Name, lab, OtherValue)
			}
		}
		r[i] = idx
	}
	d.records = append(d.records, r)
	return nil
}

// Labels returns record i decoded back to value labels.
func (d *Dataset) Labels(i int) []string {
	r := d.records[i]
	out := make([]string, len(r))
	for j, v := range r {
		out[j] = d.schema.Attr(j).Values[v]
	}
	return out
}

// Tabulate counts the records into a contingency table over all attributes —
// the Appendix A pipeline: samples -> R-tuples -> N_ijk sums (Figure 6's
// bottom row equals Figure 1's cells).
func (d *Dataset) Tabulate() (*contingency.Table, error) {
	t, err := contingency.New(d.schema.Names(), d.schema.Cards())
	if err != nil {
		return nil, err
	}
	for _, r := range d.records {
		if err := t.Observe(r...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TabulateSubset counts the records into a table over only the named
// attributes (projection happens before counting, so memory stays
// proportional to the projected space).
func (d *Dataset) TabulateSubset(names []string) (*contingency.Table, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: TabulateSubset needs at least one attribute")
	}
	pos := make([]int, len(names))
	cards := make([]int, len(names))
	for i, n := range names {
		p, err := d.schema.Position(n)
		if err != nil {
			return nil, err
		}
		pos[i] = p
		cards[i] = d.schema.Attr(p).Card()
	}
	t, err := contingency.New(names, cards)
	if err != nil {
		return nil, err
	}
	cell := make([]int, len(pos))
	for _, r := range d.records {
		for i, p := range pos {
			cell[i] = r[p]
		}
		if err := t.Observe(cell...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Counts returns, per attribute, the value frequency vector — a quick
// integrity view used by ingest diagnostics.
func (d *Dataset) Counts() [][]int64 {
	out := make([][]int64, d.schema.R())
	for i := 0; i < d.schema.R(); i++ {
		out[i] = make([]int64, d.schema.Attr(i).Card())
	}
	for _, r := range d.records {
		for i, v := range r {
			out[i][v]++
		}
	}
	return out
}
