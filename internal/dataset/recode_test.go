package dataset

import (
	"testing"
)

func recodeFixture(t *testing.T) *Dataset {
	t.Helper()
	s := MustSchema([]Attribute{
		{Name: "COLOR", Values: []string{"red", "green", "blue", "mauve"}},
		{Name: "SIZE", Values: []string{"small", "large"}},
	})
	d := NewDataset(s)
	add := func(n int, r Record) {
		for i := 0; i < n; i++ {
			if err := d.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(50, Record{0, 0}) // red/small
	add(40, Record{1, 1}) // green/large
	add(8, Record{2, 0})  // blue: rare
	add(2, Record{3, 1})  // mauve: rarer
	return d
}

func TestMergeRareValuesBasics(t *testing.T) {
	d := recodeFixture(t)
	merged, err := d.MergeRareValues(10)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != d.Len() {
		t.Fatalf("record count changed: %d -> %d", d.Len(), merged.Len())
	}
	a := merged.Schema().Attr(0)
	// red, green kept; blue+mauve collapsed to other.
	if a.Card() != 3 {
		t.Fatalf("COLOR values = %v", a.Values)
	}
	if a.ValueIndex(OtherValue) < 0 {
		t.Fatalf("no other bucket: %v", a.Values)
	}
	counts := merged.Counts()
	if counts[0][a.ValueIndex(OtherValue)] != 10 {
		t.Errorf("other bucket holds %d, want 10", counts[0][a.ValueIndex(OtherValue)])
	}
	// SIZE untouched.
	if merged.Schema().Attr(1).Card() != 2 {
		t.Errorf("SIZE changed: %v", merged.Schema().Attr(1).Values)
	}
}

func TestMergeRareValuesNoRare(t *testing.T) {
	d := recodeFixture(t)
	merged, err := d.MergeRareValues(1)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Schema().Equal(d.Schema()) {
		t.Error("minCount=1 changed the schema")
	}
}

func TestMergeRareValuesValidation(t *testing.T) {
	d := recodeFixture(t)
	if _, err := d.MergeRareValues(0); err == nil {
		t.Error("minCount 0 accepted")
	}
}

func TestMergeRareValuesAllRare(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "X", Values: []string{"a", "b", "c"}},
	})
	d := NewDataset(s)
	d.Append(Record{0})
	d.Append(Record{1})
	d.Append(Record{1})
	merged, err := d.MergeRareValues(100)
	if err != nil {
		t.Fatal(err)
	}
	a := merged.Schema().Attr(0)
	// Most frequent value (b) retained, rest collapsed.
	if a.ValueIndex("b") < 0 || a.ValueIndex(OtherValue) < 0 {
		t.Errorf("all-rare schema = %v", a.Values)
	}
	counts := merged.Counts()
	if counts[0][a.ValueIndex("b")] != 2 || counts[0][a.ValueIndex(OtherValue)] != 1 {
		t.Errorf("all-rare counts = %v", counts[0])
	}
}

func TestMergeRareValuesExistingOther(t *testing.T) {
	// An attribute that already has an "other" value reuses it.
	s := MustSchema([]Attribute{
		{Name: "X", Values: []string{"a", "b", OtherValue}},
	})
	d := NewDataset(s)
	for i := 0; i < 20; i++ {
		d.Append(Record{0})
	}
	d.Append(Record{1}) // rare
	d.Append(Record{2}) // existing other
	merged, err := d.MergeRareValues(5)
	if err != nil {
		t.Fatal(err)
	}
	a := merged.Schema().Attr(0)
	if a.Card() != 2 {
		t.Fatalf("schema = %v", a.Values)
	}
	counts := merged.Counts()
	if counts[0][a.ValueIndex(OtherValue)] != 2 {
		t.Errorf("other holds %d, want rare+existing = 2", counts[0][a.ValueIndex(OtherValue)])
	}
}

func TestMergeRareValuesTabulates(t *testing.T) {
	// The merged dataset flows into the standard pipeline.
	d := recodeFixture(t)
	merged, err := d.MergeRareValues(10)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := merged.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total() != int64(d.Len()) {
		t.Errorf("tabulated %d, want %d", tab.Total(), d.Len())
	}
}
