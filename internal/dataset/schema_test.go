package dataset

import (
	"strings"
	"testing"
)

// memoSchema is the questionnaire of the memo's problem definition.
func memoSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"empty", nil},
		{"blank name", []Attribute{{Name: "  ", Values: []string{"a"}}}},
		{"dup name", []Attribute{
			{Name: "X", Values: []string{"a"}},
			{Name: "X", Values: []string{"b"}},
		}},
		{"no values", []Attribute{{Name: "X", Values: nil}}},
		{"blank value", []Attribute{{Name: "X", Values: []string{""}}}},
		{"dup value", []Attribute{{Name: "X", Values: []string{"a", "a"}}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.attrs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := memoSchema(t)
	if s.R() != 3 {
		t.Fatalf("R = %d", s.R())
	}
	if got := s.Cards(); got[0] != 3 || got[1] != 2 || got[2] != 2 {
		t.Errorf("cards = %v", got)
	}
	if s.NumCells() != 12 {
		t.Errorf("NumCells = %d, want 12", s.NumCells())
	}
	a, pos, err := s.AttrByName("CANCER")
	if err != nil || pos != 1 || a.Card() != 2 {
		t.Errorf("AttrByName: %v %d %v", a, pos, err)
	}
	if _, _, err := s.AttrByName("nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if p, err := s.Position("FAMILY HISTORY"); err != nil || p != 2 {
		t.Errorf("Position = %d, %v", p, err)
	}
	if _, err := s.Position("nope"); err == nil {
		t.Error("unknown position accepted")
	}
	if got := s.Attr(0).ValueIndex("Smoker"); got != 0 {
		t.Errorf("ValueIndex(Smoker) = %d", got)
	}
	if got := s.Attr(0).ValueIndex("nope"); got != -1 {
		t.Errorf("ValueIndex(nope) = %d", got)
	}
}

func TestWithOtherAll(t *testing.T) {
	s := memoSchema(t)
	c, err := s.WithOther()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.R(); i++ {
		a := c.Attr(i)
		if a.Values[a.Card()-1] != OtherValue {
			t.Errorf("attribute %q not completed: %v", a.Name, a.Values)
		}
	}
	// Original untouched.
	if s.Attr(0).Card() != 3 {
		t.Error("WithOther mutated the source schema")
	}
}

func TestWithOtherSelective(t *testing.T) {
	s := memoSchema(t)
	c, err := s.WithOther("CANCER")
	if err != nil {
		t.Fatal(err)
	}
	if c.Attr(1).Card() != 3 {
		t.Errorf("CANCER not completed: %v", c.Attr(1).Values)
	}
	if c.Attr(0).Card() != 3 {
		t.Errorf("SMOKING should be untouched: %v", c.Attr(0).Values)
	}
	if _, err := s.WithOther("nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestWithOtherIdempotent(t *testing.T) {
	s := memoSchema(t)
	c1, err := s.WithOther()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.WithOther()
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2) {
		t.Error("completing twice changed the schema")
	}
}

func TestDescribeQuestionnaire(t *testing.T) {
	s := memoSchema(t)
	d := s.Describe()
	for _, want := range []string{"A. SMOKING", "B. CANCER", "1. Smoker", "2. No"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := memoSchema(t)
	b := memoSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not equal")
	}
	c, _ := a.WithOther()
	if a.Equal(c) {
		t.Error("different schemas equal")
	}
	d := MustSchema([]Attribute{{Name: "X", Values: []string{"a"}}})
	if a.Equal(d) {
		t.Error("different arity schemas equal")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema on invalid input did not panic")
		}
	}()
	MustSchema(nil)
}
