package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Binner maps continuous readings to categorical bin indices, turning sensor
// streams into attributes the discovery engine can consume. Beyond the
// interval bins, every binner carries one dedicated catch-all bin (labeled
// with OtherValue) for unreadable values: NaN readings — sensor dropouts,
// failed parses — land there instead of being conflated with any interval.
type Binner struct {
	// edges[i] is the inclusive lower bound of bin i+1; values below
	// edges[0] go to bin 0. len(edges) = bins-1 interval bins; the
	// catch-all bin sits after them at index len(edges)+1.
	edges  []float64
	labels []string
}

// NewEqualWidthBinner splits [min, max] into bins equal-width intervals.
func NewEqualWidthBinner(min, max float64, bins int) (*Binner, error) {
	if bins < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 bins, got %d", bins)
	}
	if !(min < max) || math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		return nil, fmt.Errorf("dataset: invalid bin range [%g, %g]", min, max)
	}
	width := (max - min) / float64(bins)
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = min + width*float64(i+1)
	}
	return newBinner(edges)
}

// NewQuantileBinner chooses edges so each bin receives roughly the same
// number of the supplied sample values.
//
// On skewed samples the requested bin count is an upper bound, not a
// promise: quantile edges that repeat or fall at the sample minimum are
// dropped (an edge kept there would define an empty bin), so heavy ties —
// e.g. a sample that is mostly zeros — yield fewer interval bins than
// requested. Callers must size attributes with Bins(), which reports the
// interval bins actually kept plus the NaN catch-all, never with the
// requested count.
func NewQuantileBinner(sample []float64, bins int) (*Binner, error) {
	if bins < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 bins, got %d", bins)
	}
	if len(sample) < bins {
		return nil, fmt.Errorf("dataset: %d sample values cannot define %d quantile bins",
			len(sample), bins)
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		q := sorted[i*len(sorted)/bins]
		// An edge at or below the minimum would leave bin 0 empty; skip it.
		if q > sorted[0] && (len(edges) == 0 || q > edges[len(edges)-1]) {
			edges = append(edges, q)
		}
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("dataset: sample has too few distinct values for %d bins", bins)
	}
	return newBinner(edges)
}

func newBinner(edges []float64) (*Binner, error) {
	for i := 1; i < len(edges); i++ {
		if !(edges[i-1] < edges[i]) {
			return nil, fmt.Errorf("dataset: bin edges not strictly increasing at %d", i)
		}
	}
	b := &Binner{edges: edges}
	// Edge labels start at 4 significant digits and widen until every
	// rendered edge is distinct: near-identical edges (e.g. quantiles
	// 0.00012341 and 0.00012342) would otherwise format identically,
	// producing duplicate value labels that NewSchema rejects. 17
	// significant digits round-trip any float64, so the loop always
	// terminates with unique strings for strictly increasing edges.
	var rendered []string
	for prec := 4; ; prec++ {
		rendered = make([]string, len(edges))
		distinct := true
		for i, e := range edges {
			rendered[i] = fmt.Sprintf("%.*g", prec, e)
			if i > 0 && rendered[i] == rendered[i-1] {
				distinct = false
			}
		}
		if distinct || prec >= 17 {
			break
		}
	}
	b.labels = make([]string, len(edges)+2)
	for i := range b.labels {
		switch {
		case i == 0:
			b.labels[i] = fmt.Sprintf("(-inf,%s)", rendered[0])
		case i == len(edges):
			b.labels[i] = fmt.Sprintf("[%s,+inf)", rendered[i-1])
		case i == len(edges)+1:
			b.labels[i] = OtherValue
		default:
			b.labels[i] = fmt.Sprintf("[%s,%s)", rendered[i-1], rendered[i])
		}
	}
	return b, nil
}

// Bins returns the number of bins, the catch-all included.
func (b *Binner) Bins() int { return len(b.edges) + 2 }

// Bin returns the bin index of x. NaN maps to the dedicated catch-all bin
// (the last index, labeled OtherValue) — never to an interval bin, so
// unreadable sensor values are not conflated with large readings.
func (b *Binner) Bin(x float64) int {
	if math.IsNaN(x) {
		return len(b.edges) + 1
	}
	// Binary search for the first edge > x.
	lo, hi := 0, len(b.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.edges[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Labels returns human-readable interval labels for each bin, suitable for
// use as attribute values.
func (b *Binner) Labels() []string { return append([]string(nil), b.labels...) }

// Attribute builds a schema attribute from the binner.
func (b *Binner) Attribute(name string) Attribute {
	return Attribute{Name: name, Values: b.Labels()}
}
