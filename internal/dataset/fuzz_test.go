package dataset

import (
	"strings"
	"testing"
)

// FuzzCSVIngest feeds arbitrary bytes through the full ingest pipeline:
// schema inference must never panic, and whenever it succeeds, reading and
// tabulating with the inferred schema must also succeed and agree on the
// record count.
func FuzzCSVIngest(f *testing.F) {
	f.Add("A,B\nx,y\n")
	f.Add("SMOKING,CANCER\nSmoker,Yes\nNon smoker,No\n")
	f.Add("a\n\n")
	f.Add("h1,h2,h3\n1,2,3\n4,5,6\n")
	f.Add(",\n,\n")
	f.Add("x,x\na,b\n") // duplicate header
	f.Add("A;B\n1;2\n") // no commas at all
	f.Add("A,B\n\"q,uo\",z\n")
	f.Fuzz(func(t *testing.T, data string) {
		schema, err := InferSchema(strings.NewReader(data), 64)
		if err != nil {
			return // malformed input is allowed to error, not panic
		}
		d, err := ReadCSV(strings.NewReader(data), schema)
		if err != nil {
			t.Fatalf("InferSchema accepted but ReadCSV failed: %v\ninput: %q", err, data)
		}
		tab, err := TabulateCSV(strings.NewReader(data), schema)
		if err != nil {
			t.Fatalf("InferSchema accepted but TabulateCSV failed: %v\ninput: %q", err, data)
		}
		if tab.Total() != int64(d.Len()) {
			t.Fatalf("record count mismatch: tabulated %d, read %d\ninput: %q",
				tab.Total(), d.Len(), data)
		}
	})
}
