package dataset

import (
	"strings"
	"testing"
)

func TestTabulateCSVMatchesReadThenTabulate(t *testing.T) {
	schema := memoSchema(t)
	d, err := ReadCSV(strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	viaRecords, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := TabulateCSV(strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	if !viaRecords.Equal(streamed) {
		t.Error("streaming tabulation differs from record-based")
	}
}

func TestTabulateCSVSparseMatchesDense(t *testing.T) {
	schema := memoSchema(t)
	dense, err := TabulateCSV(strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := TabulateCSVSparse(strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sparse.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(back) {
		t.Error("sparse streaming tabulation differs from dense")
	}
}

func TestTabulateCSVErrors(t *testing.T) {
	schema := memoSchema(t)
	if _, err := TabulateCSV(strings.NewReader(""), schema); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := TabulateCSV(strings.NewReader("SMOKING,CANCER\nSmoker,Yes\n"), schema); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := TabulateCSV(strings.NewReader("SMOKING,CANCER,FAMILY HISTORY\nVape,Yes,No\n"), schema); err == nil {
		t.Error("unknown value without 'other' accepted")
	}
}

func TestTabulateCSVOtherFallback(t *testing.T) {
	schema, err := memoSchema(t).WithOther("SMOKING")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := TabulateCSV(strings.NewReader(
		"SMOKING,CANCER,FAMILY HISTORY\nVape,Yes,No\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	otherIdx := schema.Attr(0).ValueIndex(OtherValue)
	v, err := tab.At(otherIdx, 0, 1)
	if err != nil || v != 1 {
		t.Errorf("fallback cell = %d, %v", v, err)
	}
}

func TestTabulateSparseMatchesDense(t *testing.T) {
	d := NewDataset(memoSchema(t))
	rows := []Record{{0, 0, 0}, {1, 1, 1}, {2, 0, 1}, {1, 1, 1}}
	for _, r := range rows {
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	dense, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := d.TabulateSparse()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sparse.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(back) {
		t.Error("TabulateSparse differs from Tabulate")
	}
	if sparse.Occupied() != 3 {
		t.Errorf("occupied = %d, want 3 distinct rows", sparse.Occupied())
	}
}

func TestStreamCSVDuplicateHeaderColumn(t *testing.T) {
	// A header naming the same attribute twice used to silently keep the
	// last column; it must now be a named error.
	dup := "SMOKING,CANCER,SMOKING,FAMILY HISTORY\n" +
		"Smoker,Yes,Non smoker,Yes\n"
	schema := memoSchema(t)
	if _, err := TabulateCSV(strings.NewReader(dup), schema); err == nil {
		t.Error("duplicate header column accepted by TabulateCSV")
	} else if !strings.Contains(err.Error(), "SMOKING") || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate header error does not name the attribute: %v", err)
	}
	if _, err := TabulateCSVSparse(strings.NewReader(dup), schema); err == nil {
		t.Error("duplicate header column accepted by TabulateCSVSparse")
	}
}

// TestTabulateCSVSparseChunkBoundaries exercises the batched ingest path
// across chunk-flush boundaries: more rows than tabulateChunkRows, with a
// partial trailing chunk, must count exactly like per-row observation.
func TestTabulateCSVSparseChunkBoundaries(t *testing.T) {
	schema, err := NewSchema([]Attribute{
		{Name: "A", Values: []string{"x", "y"}},
		{Name: "B", Values: []string{"p", "q", "r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 2*tabulateChunkRows + tabulateChunkRows/2
	var b strings.Builder
	b.WriteString("A,B\n")
	for i := 0; i < n; i++ {
		b.WriteString([]string{"x", "y"}[i%2])
		b.WriteByte(',')
		b.WriteString([]string{"p", "q", "r"}[i%3])
		b.WriteByte('\n')
	}
	sparse, err := TabulateCSVSparse(strings.NewReader(b.String()), schema)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Total() != int64(n) {
		t.Fatalf("total = %d, want %d", sparse.Total(), n)
	}
	want := make(map[[2]int]int64)
	for i := 0; i < n; i++ {
		want[[2]int{i % 2, i % 3}]++
	}
	for cell, w := range want {
		got, err := sparse.At(cell[0], cell[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("cell %v = %d, want %d", cell, got, w)
		}
	}
}
