// Package dataset implements the memo's Appendix A substrate: attribute
// schemas with named values, raw sample records ("original data form",
// Figure 5), the R-tuple view (Figure 6), CSV ingest with automatic value
// coding, completion of attribute ranges with an "other" value, and
// tabulation into contingency tables.
//
// It also supplies discretization of continuous readings (equal-width and
// quantile binning), which the telemetry example uses to turn simulated
// sensor streams into categorical attributes — the closest executable
// analogue of the memo's "wind tunnel tests; spacecraft observations"
// motivation.
package dataset
