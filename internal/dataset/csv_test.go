package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `SMOKING,CANCER,FAMILY HISTORY
Smoker,Yes,Yes
Smoker,No,No
Non smoker,No,No
Non smoker married to a smoker,No,Yes
`

func TestReadCSV(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(sampleCSV), memoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("records = %d, want 4", d.Len())
	}
	if got := d.Record(0); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("row 1 coded = %v", got)
	}
	if got := d.Record(3); got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("row 4 coded = %v", got)
	}
}

func TestReadCSVColumnOrderFree(t *testing.T) {
	// Header order differs from schema order; extra column is ignored.
	csvText := "CANCER,NOTES,FAMILY HISTORY,SMOKING\nYes,xx,No,Smoker\n"
	d, err := ReadCSV(strings.NewReader(csvText), memoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	got := d.Record(0)
	if got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Errorf("reordered row coded = %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := memoSchema(t)
	if _, err := ReadCSV(strings.NewReader(""), s); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCSV(strings.NewReader("SMOKING,CANCER\nSmoker,Yes\n"), s); err == nil {
		t.Error("missing attribute column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("SMOKING,CANCER,FAMILY HISTORY\nMars bar,Yes,No\n"), s); err == nil {
		t.Error("unknown value without 'other' accepted")
	}
}

func TestReadCSVOtherFallback(t *testing.T) {
	s, err := memoSchema(t).WithOther("SMOKING")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadCSV(strings.NewReader("SMOKING,CANCER,FAMILY HISTORY\nPipe smoker,Yes,No\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Record(0)[0] != s.Attr(0).ValueIndex(OtherValue) {
		t.Error("unknown label did not fall back to 'other'")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(sampleCSV), memoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), memoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip changed length %d -> %d", d.Len(), back.Len())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.Record(i), back.Record(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d changed: %v -> %v", i, a, b)
			}
		}
	}
}

func TestInferSchema(t *testing.T) {
	s, err := InferSchema(strings.NewReader(sampleCSV), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.R() != 3 {
		t.Fatalf("inferred %d attributes", s.R())
	}
	a, _, err := s.AttrByName("SMOKING")
	if err != nil {
		t.Fatal(err)
	}
	if a.Card() != 3 {
		t.Errorf("SMOKING values = %v", a.Values)
	}
	// Values are sorted for determinism.
	if a.Values[0] > a.Values[1] {
		t.Errorf("values unsorted: %v", a.Values)
	}
}

func TestInferSchemaCardinalityGuard(t *testing.T) {
	var b strings.Builder
	b.WriteString("ID\n")
	for i := 0; i < 100; i++ {
		b.WriteString(strings.Repeat("x", i+1))
		b.WriteByte('\n')
	}
	if _, err := InferSchema(strings.NewReader(b.String()), 10); err == nil {
		t.Error("high-cardinality column accepted with maxCard=10")
	}
	if _, err := InferSchema(strings.NewReader(b.String()), 0); err != nil {
		t.Errorf("unbounded inference failed: %v", err)
	}
}

func TestInferSchemaErrors(t *testing.T) {
	if _, err := InferSchema(strings.NewReader(""), 0); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := InferSchema(strings.NewReader("A,B\nx\n"), 0); err == nil {
		t.Error("short row accepted")
	}
}

func TestInferThenReadPipeline(t *testing.T) {
	// The CLI's two-pass flow: infer a schema, then read with it.
	s, err := InferSchema(strings.NewReader(sampleCSV), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadCSV(strings.NewReader(sampleCSV), s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Errorf("pipeline produced %d records", d.Len())
	}
	tab, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total() != 4 {
		t.Errorf("tabulated N = %d", tab.Total())
	}
}

func TestReadCSVDuplicateHeaderColumn(t *testing.T) {
	dup := "CANCER,SMOKING,FAMILY HISTORY,CANCER\n" +
		"Yes,Smoker,Yes,No\n"
	if _, err := ReadCSV(strings.NewReader(dup), memoSchema(t)); err == nil {
		t.Error("duplicate header column accepted by ReadCSV")
	} else if !strings.Contains(err.Error(), "CANCER") || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate header error does not name the attribute: %v", err)
	}
}
