package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func benchSchema(b *testing.B) *Schema {
	b.Helper()
	return MustSchema([]Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
}

// benchCSV builds a CSV body with n data rows cycling through values.
func benchCSV(b *testing.B, n int) string {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("SMOKING,CANCER,FAMILY HISTORY\n")
	rows := []string{
		"Smoker,Yes,Yes\n",
		"Non smoker,No,No\n",
		"Non smoker married to a smoker,No,Yes\n",
		"Smoker,No,No\n",
	}
	for i := 0; i < n; i++ {
		sb.WriteString(rows[i%len(rows)])
	}
	return sb.String()
}

func BenchmarkReadCSV(b *testing.B) {
	schema := benchSchema(b)
	text := benchCSV(b, 10000)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(strings.NewReader(text), schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTabulateCSVStreaming(b *testing.B) {
	schema := benchSchema(b)
	text := benchCSV(b, 10000)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TabulateCSV(strings.NewReader(text), schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferSchema(b *testing.B) {
	text := benchCSV(b, 10000)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InferSchema(strings.NewReader(text), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendLabeled(b *testing.B) {
	schema := benchSchema(b)
	d := NewDataset(schema)
	row := []string{"Smoker", "Yes", "No"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.AppendLabeled(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	schema := benchSchema(b)
	d := NewDataset(schema)
	for i := 0; i < 10000; i++ {
		d.Append(Record{i % 3, i % 2, (i / 2) % 2})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinnerBin(b *testing.B) {
	bin, err := NewEqualWidthBinner(-10, 10, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = bin.Bin(float64(i%200)/10 - 10)
	}
}
