package wire

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var w Writer
	w.Byte(0xAB)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 17)
	w.Int(42)
	w.Uint64(math.MaxUint64)
	w.Float64(-0.0)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	w.String("")
	w.String("hello, wire")
	w.Ints(nil)
	w.Ints([]int{3, 1, 4, 1, 5})
	w.Floats([]float64{1.5, -2.25})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+17 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Float64(); math.Float64bits(got) != math.Float64bits(-0.0) {
		t.Errorf("Float64 lost the -0 bit pattern: %v", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %v, want -Inf", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "hello, wire" {
		t.Errorf("String = %q", got)
	}
	if got := r.Ints(); got != nil {
		t.Errorf("Ints(nil) = %v", got)
	}
	ints := r.Ints()
	if len(ints) != 5 || ints[0] != 3 || ints[4] != 5 {
		t.Errorf("Ints = %v", ints)
	}
	floats := r.Floats()
	if len(floats) != 2 || floats[0] != 1.5 || floats[1] != -2.25 {
		t.Errorf("Floats = %v", floats)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

// TestStickyTruncation checks the error model: the first read past the end
// fails with ErrTruncated, and every later read returns zero values
// without clearing it.
func TestStickyTruncation(t *testing.T) {
	var w Writer
	w.Uvarint(7)
	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uint64(); got != 0 {
		t.Errorf("read past end returned %d", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", r.Err())
	}
	if got := r.Byte(); got != 0 {
		t.Errorf("read after failure returned %#x", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String after failure = %q", got)
	}
}

// TestCorruptLengthPrefix checks a corrupt count fails cleanly instead of
// attempting a huge allocation: the count is validated against the
// remaining input before anything is allocated.
func TestCorruptLengthPrefix(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 40) // claims a trillion elements follow
	for _, read := range []func(r *Reader){
		func(r *Reader) { r.Ints() },
		func(r *Reader) { r.Floats() },
		func(r *Reader) { _ = r.String() },
		func(r *Reader) { var a IntArena; r.IntsArena(&a) },
		func(r *Reader) { var a FloatArena; r.FloatsArena(&a) },
	} {
		r := NewReader(w.Bytes())
		read(r)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("corrupt count: Err = %v, want ErrTruncated", r.Err())
		}
	}
}

// TestArenaReads checks the arena variants decode the same values as the
// plain readers and hand out full (len == cap) slices that stay stable as
// the arena keeps carving — including across a chunk refill.
func TestArenaReads(t *testing.T) {
	var w Writer
	slices := [][]int{{1, 2, 3}, {}, {10}, make([]int, 300)} // 300 forces a fresh chunk
	for i := range slices[3] {
		slices[3][i] = i
	}
	for _, s := range slices {
		w.Ints(s)
	}
	w.Floats([]float64{0.5, 1.5})
	w.Floats([]float64{2.5})

	r := NewReader(w.Bytes())
	var ia IntArena
	var got [][]int
	for range slices {
		got = append(got, r.IntsArena(&ia))
	}
	var fa FloatArena
	f1 := r.FloatsArena(&fa)
	f2 := r.FloatsArena(&fa)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for i, want := range slices {
		g := got[i]
		if len(want) == 0 {
			if g != nil {
				t.Errorf("slice %d: empty input decoded to %v", i, g)
			}
			continue
		}
		if len(g) != len(want) || cap(g) != len(want) {
			t.Errorf("slice %d: len/cap = %d/%d, want %d/%d", i, len(g), cap(g), len(want), len(want))
		}
		for j := range want {
			if g[j] != want[j] {
				t.Errorf("slice %d[%d] = %d, want %d", i, j, g[j], want[j])
			}
		}
	}
	if len(f1) != 2 || f1[0] != 0.5 || f1[1] != 1.5 || cap(f1) != 2 {
		t.Errorf("FloatsArena = %v (cap %d)", f1, cap(f1))
	}
	if len(f2) != 1 || f2[0] != 2.5 {
		t.Errorf("FloatsArena = %v", f2)
	}
	// Appending to one arena slice must not clobber its neighbor.
	_ = append(got[0], 99)
	if got[2][0] != 10 {
		t.Error("append to one arena slice stomped another")
	}
}
