// Package wire provides the little-endian primitive codec shared by the
// binary snapshot format: an appending Writer and a sticky-error Reader
// over byte slices. Integers use unsigned varints, floats travel as their
// exact IEEE-754 bit patterns (so coefficients round-trip bit for bit),
// and strings and arrays are length-prefixed. The framing above these
// primitives (magic, version, sections, checksum) belongs to
// internal/snapshot.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports a read past the end of the input — the decoder's
// uniform "file cut short or length field corrupted" failure.
var ErrTruncated = errors.New("wire: truncated input")

// maxSliceLen bounds decoded element counts so a corrupt length prefix
// fails cleanly instead of attempting a multi-gigabyte allocation. Every
// length-prefixed read checks its remaining bytes too; this is the cap for
// counts whose elements are at least one byte.
const maxSliceLen = 1 << 31

// Writer accumulates an encoded payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload. The slice aliases the writer's
// buffer; further writes may reallocate it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Raw appends bytes verbatim, with no length prefix.
func (w *Writer) Raw(p []byte) { w.buf = append(w.buf, p...) }

// Uvarint appends v in unsigned-varint encoding.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a non-negative int as a uvarint.
func (w *Writer) Int(v int) { w.Uvarint(uint64(v)) }

// Uint64 appends v as 8 fixed little-endian bytes.
func (w *Writer) Uint64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Float64 appends the exact IEEE-754 bits of f, little-endian.
func (w *Writer) Float64(f float64) { w.Uint64(math.Float64bits(f)) }

// String appends a uvarint length prefix followed by the raw bytes.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Ints appends a uvarint count followed by each element as a uvarint.
// Elements must be non-negative.
func (w *Writer) Ints(v []int) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.Uvarint(uint64(x))
	}
}

// Floats appends a uvarint count followed by each element's raw bits.
func (w *Writer) Floats(v []float64) {
	w.Uvarint(uint64(len(v)))
	for _, f := range v {
		w.Float64(f)
	}
}

// Reader decodes a payload produced by Writer. Errors are sticky: after
// the first failure every read returns zero values and Err() reports the
// failure, so decoders can read a whole structure linearly and check once.
type Reader struct {
	data []byte
	off  int
	err  error
	// str mirrors data as one immutable string, converted lazily on the
	// first String() call: every decoded string is then a zero-allocation
	// substring of the single conversion instead of its own copy.
	str string
}

// NewReader wraps data for decoding. The reader does not copy: the caller
// must keep data alive and unmodified while reading.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.data) {
		r.fail()
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint-encoded non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt {
		r.fail()
		return 0
	}
	return int(v)
}

// Uint64 reads 8 fixed little-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// Float64 reads an IEEE-754 bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// String reads a length-prefixed string. Decoded strings alias one shared
// conversion of the reader's buffer, so callers may retain them freely —
// at worst they pin that one copy alive.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail()
		return ""
	}
	if r.str == "" && len(r.data) > 0 {
		r.str = string(r.data)
	}
	s := r.str[r.off : r.off+int(n)]
	r.off += int(n)
	return s
}

// sliceLen validates a decoded element count against the remaining input
// (each element occupies at least minBytes bytes).
func (r *Reader) sliceLen(minBytes int) (int, bool) {
	n := r.Uvarint()
	if r.err != nil {
		return 0, false
	}
	if n > maxSliceLen || n*uint64(minBytes) > uint64(r.Remaining()) {
		r.fail()
		return 0, false
	}
	return int(n), true
}

// Ints reads a count-prefixed int slice (nil when the count is zero).
func (r *Reader) Ints() []int {
	n, ok := r.sliceLen(1)
	if !ok || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// IntArena carves small int slices out of chunked backing arrays, so a
// decoder reading hundreds of tiny length-prefixed slices pays a handful
// of heap allocations instead of one each. Returned slices have len ==
// cap, so appends copy out rather than stomping a neighbor, and a chunk
// is never reallocated — handing out a new slice never moves slices
// already handed out. The zero value is ready to use.
type IntArena struct {
	free []int
}

func (a *IntArena) take(n int) []int {
	if n == 0 {
		return nil
	}
	if len(a.free) < n {
		size := 256
		if n > size {
			size = n
		}
		a.free = make([]int, size)
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

// IntsArena is Ints with the result carved from the caller's arena.
func (r *Reader) IntsArena(a *IntArena) []int {
	n, ok := r.sliceLen(1)
	if !ok || n == 0 {
		return nil
	}
	out := a.take(n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// FloatArena is IntArena for float64 slices.
type FloatArena struct {
	free []float64
}

func (a *FloatArena) take(n int) []float64 {
	if n == 0 {
		return nil
	}
	if len(a.free) < n {
		size := 256
		if n > size {
			size = n
		}
		a.free = make([]float64, size)
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

// FloatsArena is Floats with the result carved from the caller's arena.
func (r *Reader) FloatsArena(a *FloatArena) []float64 {
	n, ok := r.sliceLen(8)
	if !ok || n == 0 {
		return nil
	}
	out := a.take(n)
	for i := range out {
		out[i] = r.Float64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Floats reads a count-prefixed float64 slice (nil when the count is zero).
func (r *Reader) Floats() []float64 {
	n, ok := r.sliceLen(8)
	if !ok || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	if r.err != nil {
		return nil
	}
	return out
}
