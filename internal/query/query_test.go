package query

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/dataset"
	"pka/internal/kb"
	"pka/internal/rules"
)

func TestValidate(t *testing.T) {
	target := []kb.Assignment{{Attr: "CANCER", Value: "Yes"}}
	given := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	valid := []Query{
		{Kind: KindProbability, Target: target},
		{Kind: KindConditional, Target: target},
		{Kind: KindConditional, Target: target, Given: given},
		{Kind: KindDistribution, Attr: "CANCER"},
		{Kind: KindMostLikely, Attr: "CANCER", Given: given},
		{Kind: KindLift, Target: target, Given: given},
		{Kind: KindMPE},
		{Kind: KindMPE, Given: given},
	}
	for _, q := range valid {
		if err := q.Validate(); err != nil {
			t.Errorf("valid %+v rejected: %v", q, err)
		}
	}
	invalid := []Query{
		{},
		{Kind: "bogus"},
		{Kind: KindProbability},
		{Kind: KindProbability, Target: target, Given: given},
		{Kind: KindConditional},
		{Kind: KindConditional, Target: target, Attr: "CANCER"},
		{Kind: KindDistribution},
		{Kind: KindDistribution, Attr: "CANCER", Target: target},
		{Kind: KindMostLikely},
		{Kind: KindLift},
		{Kind: KindLift, Target: append(target, given...)},
		{Kind: KindMPE, Target: target},
		{Kind: KindMPE, Attr: "CANCER"},
	}
	for _, q := range invalid {
		if err := q.Validate(); err == nil {
			t.Errorf("invalid %+v accepted", q)
		}
	}
}

// wireFixtures is the frozen wire format: one Query/Result pair per kind.
// Changing the encoding of any of these is a breaking protocol change and
// must fail TestWireFormatGolden.
func wireFixtures() ([]Query, []Result) {
	queries := []Query{
		{Kind: KindProbability, Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}}},
		{Kind: KindConditional,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}},
		{Kind: KindDistribution, Attr: "CANCER", Given: []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindMostLikely, Attr: "CANCER"},
		{Kind: KindLift,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindMPE, Given: []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
	}
	results := []Result{
		{Kind: KindProbability, Probability: 0.126313},
		{Kind: KindConditional, Probability: 0.240741},
		{Kind: KindDistribution, Distribution: map[string]float64{"Yes": 0.186047, "No": 0.813953}},
		{Kind: KindMostLikely, Value: "No", Probability: 0.873687},
		{Kind: KindLift, Lift: 1.473},
		{Kind: KindMPE, Probability: 0.186629, Assignments: []kb.Assignment{
			{Attr: "SMOKING", Value: "Smoker"},
			{Attr: "CANCER", Value: "No"},
			{Attr: "FAMILY HISTORY", Value: "No"}}},
		// A computed zero is encoded ("probability":0), never dropped —
		// clients must be able to tell it from an absent answer.
		{Kind: KindConditional, Probability: 0},
		{Kind: KindLift, Lift: 0},
		// Failed queries carry kind + error and no numeric answer; a
		// request rejected before its kind was known carries error only.
		{Kind: KindConditional, Error: `kb: attribute "CANCER" has no value "Maybe"`},
		{Error: "server: decoding request: unexpected EOF"},
	}
	return queries, results
}

// TestWireFormatGolden pins the JSON wire format byte for byte against
// testdata/wire.golden and round-trips every fixture through decode.
func TestWireFormatGolden(t *testing.T) {
	queries, results := wireFixtures()
	var buf bytes.Buffer
	buf.WriteString("# queries\n")
	for _, q := range queries {
		data, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	buf.WriteString("# results\n")
	for _, r := range results {
		if err := EncodeResult(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	golden := filepath.Join("testdata", "wire.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wire format drifted from %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	// Round trip: decode every line back and compare structurally.
	for _, q := range queries {
		data, _ := json.Marshal(q)
		var back Query
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decode query: %v", err)
		}
		if !queryEqual(q, back) {
			t.Errorf("query round trip: %+v != %+v", back, q)
		}
	}
	for _, r := range results {
		data, _ := json.Marshal(r)
		var back Result
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decode result: %v", err)
		}
		if !resultEqual(r, back) {
			t.Errorf("result round trip: %+v != %+v", back, r)
		}
	}
}

func queryEqual(a, b Query) bool {
	if a.Kind != b.Kind || a.Attr != b.Attr ||
		len(a.Target) != len(b.Target) || len(a.Given) != len(b.Given) {
		return false
	}
	for i := range a.Target {
		if a.Target[i] != b.Target[i] {
			return false
		}
	}
	for i := range a.Given {
		if a.Given[i] != b.Given[i] {
			return false
		}
	}
	return true
}

func resultEqual(a, b Result) bool {
	if a.Kind != b.Kind || a.Probability != b.Probability || a.Lift != b.Lift ||
		a.Value != b.Value || a.Error != b.Error ||
		len(a.Distribution) != len(b.Distribution) || len(a.Assignments) != len(b.Assignments) {
		return false
	}
	for k, v := range a.Distribution {
		if b.Distribution[k] != v {
			return false
		}
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			return false
		}
	}
	return true
}

// memoQuerier is a minimal Querier over the memo model, standing in for
// the public package's shared core (which cannot be imported from here).
type memoQuerier struct {
	k *kb.KnowledgeBase
}

func (m *memoQuerier) Schema() *dataset.Schema { return m.k.Schema() }
func (m *memoQuerier) Probability(assigns ...kb.Assignment) (float64, error) {
	return m.k.Probability(assigns...)
}
func (m *memoQuerier) Conditional(target, given []kb.Assignment) (float64, error) {
	return m.k.Conditional(target, given)
}
func (m *memoQuerier) Distribution(attr string, given ...kb.Assignment) (map[string]float64, error) {
	return m.k.Distribution(attr, given...)
}
func (m *memoQuerier) MostLikely(attr string, given ...kb.Assignment) (string, float64, error) {
	return m.k.MostLikely(attr, given...)
}
func (m *memoQuerier) Lift(target kb.Assignment, given ...kb.Assignment) (float64, error) {
	return m.k.Lift(target, given...)
}
func (m *memoQuerier) MostProbableExplanation(given ...kb.Assignment) (kb.Explanation, error) {
	return m.k.MostProbableExplanation(given...)
}
func (m *memoQuerier) Rules(opts rules.Options) ([]rules.Rule, error) {
	return rules.FromKnowledgeBase(m.k, opts)
}
func (m *memoQuerier) Explain() string { return m.k.Explain() }
func (m *memoQuerier) LogLoss(counts contingency.Counts) (float64, error) {
	return m.k.LogLoss(counts)
}
func (m *memoQuerier) KnowledgeBase() *kb.KnowledgeBase { return m.k }

// plainQuerier hides the knowledge base, forcing AnswerBatch's per-query
// fallback for external Querier implementations.
type plainQuerier struct{ *memoQuerier }

func (p plainQuerier) KnowledgeBase() {} // shadows the provider method with a non-matching shape

func memoModel(t testing.TB) *memoQuerier {
	t.Helper()
	tab := contingency.MustNew(
		[]string{"SMOKING", "CANCER", "FAMILY HISTORY"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	return &memoQuerier{k: k}
}

// TestAnswerDispatch: every kind routes to the matching Querier method.
func TestAnswerDispatch(t *testing.T) {
	m := memoModel(t)
	target := []kb.Assignment{{Attr: "CANCER", Value: "Yes"}}
	given := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}

	res, err := Answer(m, Query{Kind: KindProbability, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Probability(target...); res.Probability != want {
		t.Errorf("probability = %x, want %x", res.Probability, want)
	}
	res, err = Answer(m, Query{Kind: KindConditional, Target: target, Given: given})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Conditional(target, given); res.Probability != want {
		t.Errorf("conditional = %x, want %x", res.Probability, want)
	}
	res, err = Answer(m, Query{Kind: KindDistribution, Attr: "CANCER", Given: given})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Distribution("CANCER", given...); res.Distribution["Yes"] != want["Yes"] {
		t.Errorf("distribution = %v, want %v", res.Distribution, want)
	}
	res, err = Answer(m, Query{Kind: KindMostLikely, Attr: "CANCER", Given: given})
	if err != nil {
		t.Fatal(err)
	}
	if v, p, _ := m.MostLikely("CANCER", given...); res.Value != v || res.Probability != p {
		t.Errorf("most_likely = %s/%x, want %s/%x", res.Value, res.Probability, v, p)
	}
	res, err = Answer(m, Query{Kind: KindLift, Target: target, Given: given})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Lift(target[0], given...); res.Lift != want {
		t.Errorf("lift = %x, want %x", res.Lift, want)
	}
	res, err = Answer(m, Query{Kind: KindMPE, Given: given})
	if err != nil {
		t.Fatal(err)
	}
	if exp, _ := m.MostProbableExplanation(given...); res.Probability != exp.Probability {
		t.Errorf("mpe = %x, want %x", res.Probability, exp.Probability)
	}
	if _, err := Answer(nil, Query{Kind: KindMPE}); err == nil {
		t.Error("nil querier accepted")
	}
	if _, err := Answer(m, Query{Kind: "bogus"}); err == nil {
		t.Error("invalid query accepted")
	}
}

// TestAnswerBatchMatchesAnswer: batch execution is bit-identical to
// per-query Answer on both the kb fast path and the generic fallback, and
// failed queries surface per-slot without sinking the batch.
func TestAnswerBatchMatchesAnswer(t *testing.T) {
	m := memoModel(t)
	queries := []Query{
		{Kind: KindProbability, Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}}},
		{Kind: KindConditional,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindConditional,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "No"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindConditional,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "Maybe"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindDistribution, Attr: "FAMILY HISTORY",
			Given: []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindLift,
			Target: []kb.Assignment{{Attr: "CANCER", Value: "Yes"}},
			Given:  []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: KindMPE, Given: []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}},
		{Kind: "bogus"},
	}
	for name, querier := range map[string]Querier{"kb-fast-path": m, "generic-fallback": plainQuerier{m}} {
		got, err := AnswerBatch(querier, queries)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(queries) {
			t.Fatalf("%s: %d results for %d queries", name, len(got), len(queries))
		}
		for i, qu := range queries {
			want, werr := Answer(m, qu)
			if werr != nil {
				if got[i].Error != werr.Error() {
					t.Errorf("%s: query %d error = %q, want %q", name, i, got[i].Error, werr)
				}
				continue
			}
			if got[i].Error != "" {
				t.Errorf("%s: query %d unexpectedly failed: %s", name, i, got[i].Error)
				continue
			}
			if !resultEqual(got[i], want) {
				t.Errorf("%s: query %d = %+v, want %+v", name, i, got[i], want)
			}
		}
	}
	if _, err := AnswerBatch(nil, queries); err == nil {
		t.Error("nil querier accepted")
	}
}

// TestEncodeResultNewlineDelimited: the shared encoder emits exactly one
// line per result, so CLI and server output stream identically.
func TestEncodeResultNewlineDelimited(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, Result{Kind: KindProbability, Probability: 0.5}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasSuffix(s, "}\n") || strings.Count(s, "\n") != 1 {
		t.Errorf("encoder output not newline-delimited JSON: %q", s)
	}
}
