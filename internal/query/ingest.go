package query

import "errors"

// ErrRejectedRows marks an ingest failure caused by the submitted rows
// themselves (wrong width, unknown label, bad coordinate) rather than by
// server-side state: the batch was rejected before or rolled back after
// touching the counts. The HTTP layer maps errors wrapping it to 400 and
// everything else on the ingest path to 500.
var ErrRejectedRows = errors.New("rows rejected")

// IngestReport is the wire answer to one streaming-ingest request: what
// the incremental refit behind POST /v1/observe actually did. The zero
// Refit value marks a no-op batch (net delta zero) served without touching
// the compiled engine.
type IngestReport struct {
	// Rows is how many observation rows the batch carried.
	Rows int `json:"rows"`
	// Retargeted counts stored constraints whose probability targets were
	// recomputed because the batch moved their family marginals.
	Retargeted int `json:"retargeted"`
	// NewConstraints counts newly significant joint probabilities the
	// incremental re-scan promoted.
	NewConstraints int `json:"new_constraints"`
	// Rediscovered reports that a structural change forced a full
	// from-scratch rediscovery instead of the incremental path.
	Rediscovered bool `json:"rediscovered"`
	// Refit reports whether any solve ran; false for net-zero batches.
	Refit bool `json:"refit"`
	// Sweeps is the warm refit's solver sweep count.
	Sweeps int `json:"sweeps"`
	// TotalSamples is N after the batch — the data-bank size queries are
	// now answered against.
	TotalSamples int64 `json:"total_samples"`
}

// Ingestor is the optional streaming-ingest surface of a served model: a
// Querier that can also fold new observation rows into its knowledge base,
// atomically swapping the compiled engine under concurrent queries. Rows
// carry one value label per schema attribute, in schema order — the wire
// format of POST /v1/observe. Models loaded from a saved file do not carry
// their discovery counts and therefore do not implement it.
type Ingestor interface {
	ObserveLabeled(rows [][]string) (IngestReport, error)
}
