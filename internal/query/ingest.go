package query

import (
	"errors"

	"pka/internal/memo"
)

// ErrRejectedRows marks an ingest failure caused by the submitted rows
// themselves (wrong width, unknown label, bad coordinate) rather than by
// server-side state: the batch was rejected before or rolled back after
// touching the counts. The HTTP layer maps errors wrapping it to 400 and
// everything else on the ingest path to 500.
var ErrRejectedRows = errors.New("rows rejected")

// IngestReport is the wire answer to one streaming-ingest request: what
// the incremental refit behind POST /v1/observe actually did. The zero
// Refit value marks a no-op batch (net delta zero) served without touching
// the compiled engine.
type IngestReport struct {
	// Rows is how many observation rows the batch carried.
	Rows int `json:"rows"`
	// Retargeted counts stored constraints whose probability targets were
	// recomputed because the batch moved their family marginals.
	Retargeted int `json:"retargeted"`
	// NewConstraints counts newly significant joint probabilities the
	// incremental re-scan promoted.
	NewConstraints int `json:"new_constraints"`
	// Rediscovered reports that a structural change forced a full
	// from-scratch rediscovery instead of the incremental path.
	Rediscovered bool `json:"rediscovered"`
	// Refit reports whether any solve ran; false for net-zero batches.
	Refit bool `json:"refit"`
	// Sweeps is the warm refit's solver sweep count.
	Sweeps int `json:"sweeps"`
	// TotalSamples is N after the batch — the data-bank size queries are
	// now answered against.
	TotalSamples int64 `json:"total_samples"`
	// Version is the monotonic model version after the batch applied. On a
	// replicated primary it equals the batch's log offset + 1, so a client
	// holding it can poll a replica's readiness or schema endpoint until
	// the replica's version catches up — read-your-writes across the fleet.
	Version int64 `json:"version"`
}

// Ingestor is the optional streaming-ingest surface of a served model: a
// Querier that can also fold new observation rows into its knowledge base,
// atomically swapping the compiled engine under concurrent queries. Rows
// carry one value label per schema attribute, in schema order — the wire
// format of POST /v1/observe. Models loaded from a saved file do not carry
// their discovery counts and therefore do not implement it.
type Ingestor interface {
	ObserveLabeled(rows [][]string) (IngestReport, error)
}

// Versioned is the optional model-version surface of a served Querier. The
// version is a monotonic count of applied observe batches (0 for a model
// that has only ever been loaded), comparable across a replication fleet:
// a primary's version after a batch equals the replica version at which
// that batch is visible.
type Versioned interface {
	Version() int64
}

// Readiness is the GET /readyz answer: whether this process should receive
// traffic, and where it stands in the replication stream.
type Readiness struct {
	// Ready reports the process is serving a loaded, caught-up model.
	Ready bool `json:"ready"`
	// Role names the process's cluster role: "standalone", "primary",
	// "replica", "shard", or "coordinator".
	Role string `json:"role"`
	// Version is the monotonic model version (applied log offset).
	Version int64 `json:"version"`
	// Target is the latest known primary offset (replicas only).
	Target int64 `json:"target,omitempty"`
	// Lag is Target - Version: how many observe batches behind the primary
	// this replica is serving (replicas only).
	Lag int64 `json:"lag,omitempty"`
	// Error carries the fault that marked an unready process broken, if
	// any.
	Error string `json:"error,omitempty"`
}

// ReadyReporter is the optional readiness surface of a served Querier.
// Queriers that do not implement it are ready as soon as they exist — the
// model loaded before serving started.
type ReadyReporter interface {
	Readiness() Readiness
}

// CacheTierStats is one cache tier's counters in the GET /v1/stats wire
// format: the tier name ("wire", "engine", "cluster") plus the memo
// counters inlined.
type CacheTierStats struct {
	Tier string `json:"tier"`
	memo.Stats
}

// CacheStatsReporter is the optional cache-observability surface of a
// served Querier: the tiers it carries beyond the server's own wire tier
// (the engine-tier memo, a coordinator's remote-eval memo). A nil slice
// means caching is off.
type CacheStatsReporter interface {
	CacheStats() []CacheTierStats
}
