package query

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pka/internal/kb"
)

// mixedBatch builds a workload spanning every query kind, several
// distinct evidence sets (including re-orderings of the same set), and
// deliberately failing queries.
func mixedBatch() []Query {
	smoker := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	non := []kb.Assignment{{Attr: "SMOKING", Value: "Non smoker"}}
	both := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}
	bothRev := []kb.Assignment{{Attr: "FAMILY HISTORY", Value: "Yes"}, {Attr: "SMOKING", Value: "Smoker"}}
	cancerYes := []kb.Assignment{{Attr: "CANCER", Value: "Yes"}}
	cancerNo := []kb.Assignment{{Attr: "CANCER", Value: "No"}}
	var out []Query
	for i := 0; i < 4; i++ {
		out = append(out,
			Query{Kind: KindProbability, Target: cancerYes},
			Query{Kind: KindConditional, Target: cancerYes, Given: smoker},
			Query{Kind: KindConditional, Target: cancerNo, Given: smoker},
			Query{Kind: KindConditional, Target: cancerYes, Given: non},
			Query{Kind: KindConditional, Target: cancerYes, Given: both},
			Query{Kind: KindConditional, Target: cancerYes, Given: bothRev},
			Query{Kind: KindDistribution, Attr: "CANCER", Given: smoker},
			Query{Kind: KindDistribution, Attr: "SMOKING"},
			Query{Kind: KindMostLikely, Attr: "CANCER", Given: both},
			Query{Kind: KindLift, Target: cancerYes, Given: smoker},
			Query{Kind: KindMPE, Given: smoker},
			Query{Kind: KindMPE, Given: non},
			// Failures: unknown attribute, unknown value, invalid shape.
			Query{Kind: KindConditional, Target: []kb.Assignment{{Attr: "NOPE", Value: "x"}}, Given: smoker},
			Query{Kind: KindProbability, Target: []kb.Assignment{{Attr: "CANCER", Value: "Maybe"}}},
			Query{Kind: KindDistribution},
		)
	}
	return out
}

// wireBytes marshals every result exactly as the server and CLI would.
func wireBytes(t *testing.T, results []Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestAnswerBatchParallelBitIdentical executes the mixed workload — and a
// seeded shuffle of it — serially and at several worker counts, and
// demands byte-identical wire encodings slot for slot.
func TestAnswerBatchParallelBitIdentical(t *testing.T) {
	m := memoModel(t)
	base := mixedBatch()
	for _, shuffleSeed := range []int64{0, 9, 41} {
		queries := base
		if shuffleSeed != 0 {
			queries = append([]Query(nil), base...)
			rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(queries), func(i, j int) {
				queries[i], queries[j] = queries[j], queries[i]
			})
		}
		serial, err := AnswerBatchWorkers(m, queries, 1)
		if err != nil {
			t.Fatal(err)
		}
		serialWire := wireBytes(t, serial)
		// The serial batch must itself match per-query answers.
		for i, qu := range queries {
			res, err := Answer(m, qu)
			if err != nil {
				res = Result{Kind: qu.Kind, Error: err.Error()}
			}
			b, merr := json.Marshal(res)
			if merr != nil {
				t.Fatal(merr)
			}
			if string(b) != serialWire[i] {
				t.Fatalf("shuffle %d: serial batch slot %d %s != per-query %s",
					shuffleSeed, i, serialWire[i], b)
			}
		}
		for _, workers := range []int{0, 2, 3, 16} {
			par, err := AnswerBatchWorkers(m, queries, workers)
			if err != nil {
				t.Fatal(err)
			}
			parWire := wireBytes(t, par)
			for i := range serialWire {
				if parWire[i] != serialWire[i] {
					t.Fatalf("shuffle=%d workers=%d: slot %d\nparallel %s\nserial   %s",
						shuffleSeed, workers, i, parWire[i], serialWire[i])
				}
			}
		}
	}
}

// TestAnswerBatchWorkersPlainQuerier: implementations without a knowledge
// base still answer per query, any worker count.
func TestAnswerBatchWorkersPlainQuerier(t *testing.T) {
	m := memoModel(t)
	queries := mixedBatch()
	serial, err := AnswerBatchWorkers(plainQuerier{m}, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnswerBatchWorkers(plainQuerier{m}, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	serialWire, parWire := wireBytes(t, serial), wireBytes(t, par)
	for i := range serialWire {
		if serialWire[i] != parWire[i] {
			t.Fatalf("slot %d: %s != %s", i, parWire[i], serialWire[i])
		}
	}
}

// TestAnswerBatchWorkersEmpty keeps the degenerate shapes stable.
func TestAnswerBatchWorkersEmpty(t *testing.T) {
	m := memoModel(t)
	for _, workers := range []int{1, 4} {
		out, err := AnswerBatchWorkers(m, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("workers=%d: %d results for empty batch", workers, len(out))
		}
	}
	if _, err := AnswerBatchWorkers(nil, mixedBatch(), 4); err == nil {
		t.Fatal("nil querier accepted")
	}
}

// TestEvidenceGroupKey pins the grouping invariant: same set in any
// order → same key; different sets → different keys; quoting prevents
// collisions between crafted names.
func TestEvidenceGroupKey(t *testing.T) {
	a := []kb.Assignment{{Attr: "A", Value: "x"}, {Attr: "B", Value: "y"}}
	b := []kb.Assignment{{Attr: "B", Value: "y"}, {Attr: "A", Value: "x"}}
	if evidenceGroupKey(a) != evidenceGroupKey(b) {
		t.Error("orderings of one evidence set keyed differently")
	}
	c := []kb.Assignment{{Attr: "A", Value: "x"}}
	if evidenceGroupKey(a) == evidenceGroupKey(c) {
		t.Error("distinct evidence sets share a key")
	}
	// A crafted value embedding the separator must not collide.
	d := []kb.Assignment{{Attr: "A", Value: `x","B"="y`}}
	if evidenceGroupKey(a) == evidenceGroupKey(d) {
		t.Error("crafted value collides with a two-assignment set")
	}
	if evidenceGroupKey(nil) != "" {
		t.Error("empty evidence key not empty")
	}
	if fmt.Sprint(evidenceGroupKey(c)) == "" {
		t.Error("non-empty evidence keyed empty")
	}
}

// TestCountEvidenceGroups pins the width estimator the server's worker
// budget keys on.
func TestCountEvidenceGroups(t *testing.T) {
	smoker := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	both := []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}
	bothRev := []kb.Assignment{{Attr: "FAMILY HISTORY", Value: "Yes"}, {Attr: "SMOKING", Value: "Smoker"}}
	if got := CountEvidenceGroups(nil); got != 0 {
		t.Errorf("empty batch: %d groups, want 0", got)
	}
	queries := []Query{
		{Kind: KindProbability, Target: smoker},          // no evidence
		{Kind: KindConditional, Target: smoker},          // no evidence: same group
		{Kind: KindMPE, Given: smoker},                   // group 2
		{Kind: KindDistribution, Attr: "X", Given: both}, // group 3
		{Kind: KindMPE, Given: bothRev},                  // same set as group 3
	}
	if got := CountEvidenceGroups(queries); got != 3 {
		t.Errorf("%d groups, want 3", got)
	}
}
