// Package query defines the unified query surface of the knowledge-base
// serving layer: the canonical Querier interface every queryable model
// implements, the first-class Query value (typed kind plus target and
// evidence assignments, JSON-serializable), and the Answer/AnswerBatch
// executors that route a Query to the right Querier method. The CLI's
// machine-readable output and the HTTP server share this package's types
// and encoder, so there is exactly one wire format.
package query

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/kb"
	"pka/internal/par"
	"pka/internal/rules"
)

// Querier is the canonical query method set of a probabilistic knowledge
// base. Both the freshly-discovered model and a loaded query-only model
// implement it through one shared core, so anything built against Querier —
// the batch executor, the HTTP server, downstream expert systems — serves
// either interchangeably.
type Querier interface {
	// Schema returns the attribute layout queries are expressed against.
	Schema() *dataset.Schema
	// Probability returns the joint probability of the assignments.
	Probability(assigns ...kb.Assignment) (float64, error)
	// Conditional returns P(target | given), the memo's ratio of joints.
	Conditional(target, given []kb.Assignment) (float64, error)
	// Distribution returns the conditional distribution of attr given the
	// evidence: one probability per value label, summing to 1.
	Distribution(attr string, given ...kb.Assignment) (map[string]float64, error)
	// MostLikely returns attr's most probable value given the evidence.
	MostLikely(attr string, given ...kb.Assignment) (string, float64, error)
	// Lift returns P(target|given)/P(target).
	Lift(target kb.Assignment, given ...kb.Assignment) (float64, error)
	// MostProbableExplanation returns the most likely full completion of
	// the evidence (MPE/MAP inference).
	MostProbableExplanation(given ...kb.Assignment) (kb.Explanation, error)
	// Rules extracts IF-THEN rules from the stored constraints.
	Rules(opts rules.Options) ([]rules.Rule, error)
	// Explain renders the stored probability formula with value labels.
	Explain() string
	// LogLoss returns the average negative log-likelihood (nats/sample)
	// on validation counts of the same shape (dense or sparse).
	LogLoss(counts contingency.Counts) (float64, error)
}

// Kind discriminates what a Query asks for.
type Kind string

// The query kinds, one per probabilistic Querier method.
const (
	KindProbability  Kind = "probability"
	KindConditional  Kind = "conditional"
	KindDistribution Kind = "distribution"
	KindMostLikely   Kind = "most_likely"
	KindLift         Kind = "lift"
	KindMPE          Kind = "mpe"
)

// Query is one probabilistic question as a value: routable, loggable,
// batchable, and JSON-serializable. Target carries the queried
// assignments (probability, conditional, lift), Attr the queried
// attribute (distribution, most_likely), and Given the evidence.
type Query struct {
	Kind   Kind            `json:"kind"`
	Target []kb.Assignment `json:"target,omitempty"`
	Attr   string          `json:"attr,omitempty"`
	Given  []kb.Assignment `json:"given,omitempty"`
}

// Validate checks the query's shape against its kind, before any model
// sees it. Attribute and value names are checked later, by the model.
func (q Query) Validate() error {
	switch q.Kind {
	case KindProbability:
		if len(q.Target) == 0 {
			return fmt.Errorf("query: %s needs at least one target assignment", q.Kind)
		}
		if len(q.Given) > 0 {
			return fmt.Errorf("query: %s takes no evidence (use %q)", q.Kind, KindConditional)
		}
	case KindConditional:
		if len(q.Target) == 0 {
			return fmt.Errorf("query: %s needs at least one target assignment", q.Kind)
		}
	case KindLift:
		if len(q.Target) != 1 {
			return fmt.Errorf("query: %s needs exactly one target assignment", q.Kind)
		}
	case KindDistribution, KindMostLikely:
		if q.Attr == "" {
			return fmt.Errorf("query: %s needs attr", q.Kind)
		}
		if len(q.Target) > 0 {
			return fmt.Errorf("query: %s queries attr, not target assignments", q.Kind)
		}
	case KindMPE:
		if len(q.Target) > 0 || q.Attr != "" {
			return fmt.Errorf("query: %s takes only evidence", q.Kind)
		}
	case "":
		return fmt.Errorf("query: missing kind")
	default:
		return fmt.Errorf("query: unknown kind %q", q.Kind)
	}
	if q.Attr != "" && (q.Kind != KindDistribution && q.Kind != KindMostLikely) {
		return fmt.Errorf("query: %s does not take attr", q.Kind)
	}
	return nil
}

// Result is the answer to one Query, in the shared wire format.
// Probability carries the numeric answer of probability, conditional,
// most_likely (the winning value's probability), and mpe (the completion's
// joint probability) queries; Lift the ratio of lift queries; Value the
// winning label of most_likely; Distribution the per-value map of
// distribution queries; Assignments the completion of mpe queries. In a
// batch, Error marks a query that failed while the rest were answered.
type Result struct {
	Kind         Kind               `json:"kind"`
	Probability  float64            `json:"probability"`
	Lift         float64            `json:"lift"`
	Value        string             `json:"value,omitempty"`
	Distribution map[string]float64 `json:"distribution,omitempty"`
	Assignments  []kb.Assignment    `json:"assignments,omitempty"`
	Error        string             `json:"error,omitempty"`
}

// MarshalJSON emits exactly the fields meaningful for the result's kind:
// probability for probability/conditional/most_likely/mpe answers, lift
// for lift answers, neither on a failed query. A zero on the wire
// therefore always means a computed zero, never an absent answer, and a
// kindless error body (a request rejected before its kind was known)
// carries only the error.
func (r Result) MarshalJSON() ([]byte, error) {
	type wire struct {
		Kind         Kind               `json:"kind,omitempty"`
		Probability  *float64           `json:"probability,omitempty"`
		Lift         *float64           `json:"lift,omitempty"`
		Value        string             `json:"value,omitempty"`
		Distribution map[string]float64 `json:"distribution,omitempty"`
		Assignments  []kb.Assignment    `json:"assignments,omitempty"`
		Error        string             `json:"error,omitempty"`
	}
	w := wire{
		Kind:         r.Kind,
		Value:        r.Value,
		Distribution: r.Distribution,
		Assignments:  r.Assignments,
		Error:        r.Error,
	}
	if r.Error == "" {
		switch r.Kind {
		case KindProbability, KindConditional, KindMostLikely, KindMPE:
			w.Probability = &r.Probability
		case KindLift:
			w.Lift = &r.Lift
		}
	}
	return json.Marshal(w)
}

// EncodeResult writes the result in the wire format shared by the HTTP
// server and the CLI's -json output: one JSON object, trailing newline.
func EncodeResult(w io.Writer, res Result) error {
	return json.NewEncoder(w).Encode(res)
}

// Answer executes one query against the model. The error return carries
// validation and model failures; Result.Error stays empty on this path
// (it is filled by AnswerBatch, which must report per-query failures).
func Answer(q Querier, qu Query) (Result, error) {
	if q == nil {
		return Result{}, fmt.Errorf("query: nil querier")
	}
	if err := qu.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Kind: qu.Kind}
	switch qu.Kind {
	case KindProbability:
		p, err := q.Probability(qu.Target...)
		if err != nil {
			return Result{}, err
		}
		res.Probability = p
	case KindConditional:
		p, err := q.Conditional(qu.Target, qu.Given)
		if err != nil {
			return Result{}, err
		}
		res.Probability = p
	case KindDistribution:
		d, err := q.Distribution(qu.Attr, qu.Given...)
		if err != nil {
			return Result{}, err
		}
		res.Distribution = d
	case KindMostLikely:
		v, p, err := q.MostLikely(qu.Attr, qu.Given...)
		if err != nil {
			return Result{}, err
		}
		res.Value, res.Probability = v, p
	case KindLift:
		l, err := q.Lift(qu.Target[0], qu.Given...)
		if err != nil {
			return Result{}, err
		}
		res.Lift = l
	case KindMPE:
		exp, err := q.MostProbableExplanation(qu.Given...)
		if err != nil {
			return Result{}, err
		}
		res.Assignments, res.Probability = exp.Assignments, exp.Probability
	}
	return res, nil
}

// kbProvider is the seam the batch fast path keys on: queriers backed by a
// compiled knowledge base expose it, and their queries are served through
// a kb.Batch session — evidence validated and priced once per distinct
// set, same-evidence conditionals answered from one batch sweep.
type kbProvider interface {
	KnowledgeBase() *kb.KnowledgeBase
}

// batchQuerier overlays a kb.Batch session on a Querier: the six
// probabilistic methods go through the session's shared caches, everything
// else delegates.
type batchQuerier struct {
	Querier
	b *kb.Batch
}

func (s batchQuerier) Probability(assigns ...kb.Assignment) (float64, error) {
	return s.b.Probability(assigns...)
}

func (s batchQuerier) Conditional(target, given []kb.Assignment) (float64, error) {
	return s.b.Conditional(target, given)
}

func (s batchQuerier) Distribution(attr string, given ...kb.Assignment) (map[string]float64, error) {
	return s.b.Distribution(attr, given...)
}

func (s batchQuerier) MostLikely(attr string, given ...kb.Assignment) (string, float64, error) {
	return s.b.MostLikely(attr, given...)
}

func (s batchQuerier) Lift(target kb.Assignment, given ...kb.Assignment) (float64, error) {
	return s.b.Lift(target, given...)
}

func (s batchQuerier) MostProbableExplanation(given ...kb.Assignment) (kb.Explanation, error) {
	return s.b.MostProbableExplanation(given...)
}

// AnswerBatch executes a group of queries against the model, sharing the
// engine work queries have in common instead of issuing len(queries)
// independent calls. Every probability returned is bit-identical to the
// per-query Answer result. One failed query does not sink the batch: its
// slot carries Result.Error and the rest are answered; the error return is
// reserved for a nil querier.
//
// Queriers backed by a compiled knowledge base get the full batch path
// (per-evidence-set validation and denominators, grouped conditional-slice
// sweeps), with the per-evidence-set groups executed concurrently over
// GOMAXPROCS workers — use AnswerBatchWorkers to pin the count; other
// Querier implementations are served per query on the calling goroutine.
func AnswerBatch(q Querier, queries []Query) ([]Result, error) {
	return AnswerBatchWorkers(q, queries, 0)
}

// AnswerBatchWorkers is AnswerBatch with an explicit worker count.
// workers <= 0 uses GOMAXPROCS; 1 forces the sequential single-session
// path (exactly the historical execution). With more workers, queries are
// grouped by their evidence set and each group runs on its own batch
// session over the shared immutable engine: within a group the evidence
// is validated once, its denominator priced once, and same-evidence
// conditionals served from one conditional-slice sweep — the full batch
// fast path — while distinct evidence sets proceed concurrently. Each
// query's Result (wire bytes included) is bit-identical for any worker
// count: the per-query values never depend on which session computed
// them, only the amount of shared work does.
func AnswerBatchWorkers(q Querier, queries []Query, workers int) ([]Result, error) {
	if q == nil {
		return nil, fmt.Errorf("query: nil querier")
	}
	var kbase *kb.KnowledgeBase
	if p, ok := q.(kbProvider); ok {
		kbase = p.KnowledgeBase()
	}
	out := make([]Result, len(queries))
	answerRange := func(exec Querier, idx []int) {
		for _, i := range idx {
			res, err := Answer(exec, queries[i])
			if err != nil {
				out[i] = Result{Kind: queries[i].Kind, Error: err.Error()}
				continue
			}
			out[i] = res
		}
	}
	all := make([]int, len(queries))
	for i := range all {
		all[i] = i
	}
	if kbase == nil {
		// Arbitrary Querier implementations carry no concurrency contract
		// and no session to share: serve per query, in order.
		answerRange(q, all)
		return out, nil
	}
	if par.Workers(workers, len(queries)) == 1 {
		answerRange(batchQuerier{Querier: q, b: kb.NewBatch(kbase)}, all)
		return out, nil
	}
	// Group query indices by evidence set (first-appearance order): each
	// group shares one session — denominators, sweeps, and MPE completions
	// are computed once per group — and groups are independent, so they
	// fan out over the pool. Result slots are written by original index.
	groupOf := make(map[string]int)
	var groups [][]int
	for i, qu := range queries {
		key := evidenceGroupKey(qu.Given)
		g, ok := groupOf[key]
		if !ok {
			g = len(groups)
			groupOf[key] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	_ = par.Do(len(groups), workers, func(g int) error {
		answerRange(batchQuerier{Querier: q, b: kb.NewBatch(kbase)}, groups[g])
		return nil // per-query failures land in their Result slot
	})
	return out, nil
}

// CountEvidenceGroups returns how many distinct evidence sets the batch
// spans — the batch's parallelizable width (AnswerBatchWorkers runs one
// session per group). Callers budgeting worker goroutines across many
// concurrent batches use it to avoid reserving parallelism a batch cannot
// spend: a single-group batch executes sequentially no matter how many
// workers it is offered.
func CountEvidenceGroups(queries []Query) int {
	seen := make(map[string]struct{}, len(queries))
	for _, qu := range queries {
		seen[evidenceGroupKey(qu.Given)] = struct{}{}
	}
	return len(seen)
}

// evidenceGroupKey renders a query's evidence as an order-insensitive
// grouping key, so every ordering of the same evidence set lands in one
// batch session. Unresolvable names still key consistently — their
// queries fail identically whichever session sees them.
func evidenceGroupKey(given []kb.Assignment) string {
	if len(given) == 0 {
		return ""
	}
	parts := make([]string, len(given))
	for i, a := range given {
		parts[i] = strconv.Quote(a.Attr) + "=" + strconv.Quote(a.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
