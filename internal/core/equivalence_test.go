package core

import (
	"testing"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/mml"
	"pka/internal/paperdata"
	"pka/internal/stats"
	"pka/internal/synth"
)

// perCellPredictor reproduces the pre-refactor scan evaluation exactly: one
// Model.Prob call per candidate cell instead of a batch marginal per family.
func perCellPredictor(m *maxent.Model) mml.Predictor {
	return mml.PerCell(m.Cards(), func(fam contingency.VarSet, values []int) (float64, error) {
		return m.Prob(fam, values)
	})
}

// discoverBothPaths runs Discover twice on the same table — once with the
// compiled batch-marginal predictor, once with the legacy per-cell
// predictor — and requires bit-identical output: same constraints in the
// same order, same float64 targets and scores, same fitted joint.
func discoverBothPaths(t *testing.T, tab *contingency.Table, opts Options) *Result {
	t.Helper()
	batch, err := Discover(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.predictor = perCellPredictor
	legacy, err := Discover(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Findings) != len(legacy.Findings) {
		t.Fatalf("batch path found %d constraints, per-cell path %d",
			len(batch.Findings), len(legacy.Findings))
	}
	for i := range batch.Findings {
		b, l := batch.Findings[i], legacy.Findings[i]
		if b.Constraint.Family != l.Constraint.Family {
			t.Errorf("finding %d: family %v vs %v", i, b.Constraint.Family, l.Constraint.Family)
		}
		for j := range b.Constraint.Values {
			if b.Constraint.Values[j] != l.Constraint.Values[j] {
				t.Errorf("finding %d: values %v vs %v", i, b.Constraint.Values, l.Constraint.Values)
			}
		}
		// Float fields must agree bit for bit — the scans saw the same
		// predictions, so the scores and tie-breaks are identical.
		if b.Constraint.Target != l.Constraint.Target {
			t.Errorf("finding %d: target %x vs %x", i, b.Constraint.Target, l.Constraint.Target)
		}
		if b.Test.Predicted != l.Test.Predicted || b.Test.Delta != l.Test.Delta ||
			b.Test.M1 != l.Test.M1 || b.Test.M2 != l.Test.M2 {
			t.Errorf("finding %d: scores differ (predicted %x vs %x, delta %x vs %x)",
				i, b.Test.Predicted, l.Test.Predicted, b.Test.Delta, l.Test.Delta)
		}
		if b.FitSweeps != l.FitSweeps {
			t.Errorf("finding %d: %d fit sweeps vs %d", i, b.FitSweeps, l.FitSweeps)
		}
	}
	bj, err := batch.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	lj, err := legacy.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range bj {
		if bj[i] != lj[i] {
			t.Fatalf("joint cell %d: %x vs %x", i, bj[i], lj[i])
		}
	}
	return batch
}

// TestDiscoverBatchPathBitIdenticalMemo: the memo's Table 1 reproduction is
// unchanged by the compiled batch-marginal scan.
func TestDiscoverBatchPathBitIdenticalMemo(t *testing.T) {
	res := discoverBothPaths(t, paperdata.Table(), Options{RecordScans: true})
	if len(res.Findings) == 0 {
		t.Fatal("memo discovery found nothing")
	}
}

// TestDiscoverBatchPathBitIdenticalSynthetic covers wider synthetic suites,
// parallel scanning included (parallel scans must match too — the predictor
// is shared across workers).
func TestDiscoverBatchPathBitIdenticalSynthetic(t *testing.T) {
	suites := []struct {
		name string
		gen  func() (*synth.GroundTruth, error)
		n    int64
		opts Options
	}{
		{"survey", func() (*synth.GroundTruth, error) { return synth.Survey(4, 2.5) }, 20_000, Options{MaxOrder: 2}},
		{"xor3", func() (*synth.GroundTruth, error) { return synth.XOR3(3) }, 10_000, Options{}},
		{"telemetry", synth.Telemetry, 15_000, Options{MaxOrder: 2, Workers: 4}},
	}
	for _, s := range suites {
		t.Run(s.name, func(t *testing.T) {
			truth, err := s.gen()
			if err != nil {
				t.Fatal(err)
			}
			tab, err := truth.SampleTable(stats.NewRNG(99), s.n)
			if err != nil {
				t.Fatal(err)
			}
			discoverBothPaths(t, tab, s.opts)
		})
	}
}
