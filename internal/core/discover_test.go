package core

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
)

// memoTable reconstructs the memo's Figure 1 data.
func memoTable(t testing.TB) *contingency.Table {
	t.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tab
}

func TestDiscoverValidation(t *testing.T) {
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, err := Discover(empty, Options{}); err == nil {
		t.Error("empty table accepted")
	}
	one := contingency.MustNew(nil, []int{4})
	one.Set(5, 0)
	if _, err := Discover(one, Options{}); err == nil {
		t.Error("single-attribute table accepted")
	}
	tab := memoTable(t)
	if _, err := Discover(tab, Options{MaxOrder: 1}); err == nil {
		t.Error("MaxOrder 1 accepted")
	}
	if _, err := Discover(tab, Options{MaxOrder: 9}); err == nil {
		t.Error("MaxOrder above R accepted")
	}
	if _, err := Discover(tab, Options{MaxConstraints: -1}); err == nil {
		t.Error("negative MaxConstraints accepted")
	}
}

func TestDiscoverMemoFirstSelection(t *testing.T) {
	// The memo's Table 1 scan: N^AB_11 (delta -11.57) must be promoted
	// first.
	res, err := Discover(memoTable(t), Options{RecordScans: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings on the memo data")
	}
	first := res.Findings[0]
	if first.Test.Family != contingency.NewVarSet(0, 1) ||
		first.Test.Values[0] != 0 || first.Test.Values[1] != 0 {
		t.Errorf("first finding = %v%v, memo's most significant is N^AB_11",
			first.Test.Family, first.Test.Values)
	}
	if first.Order != 2 || first.Step != 1 {
		t.Errorf("first finding order/step = %d/%d", first.Order, first.Step)
	}
	// The first recorded scan must be the full 16-cell Table 1.
	if len(res.Scans) == 0 || res.Scans[0].Pass != 1 || len(res.Scans[0].Tests) != 16 {
		t.Errorf("first scan not Table 1-shaped: %+v", res.Scans[0])
	}
}

func TestDiscoverMemoModelQuality(t *testing.T) {
	tab := memoTable(t)
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every found constraint is satisfied by the final model within the
	// count-scale solver tolerance (0.01 expected counts).
	tol := 0.01 / float64(tab.Total())
	for _, f := range res.Findings {
		got, err := res.Model.Prob(f.Test.Family, f.Test.Values)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-f.Constraint.Target) > tol {
			t.Errorf("finding %d: model gives %.8f, target %.8f",
				f.Step, got, f.Constraint.Target)
		}
	}
	// The fitted model must beat the independence model in KL to the
	// empirical distribution.
	emp, err := tab.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := res.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	indep, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := indep.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	if _, err := indep.Fit(maxent.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	indepJoint, err := indep.Joint()
	if err != nil {
		t.Fatal(err)
	}
	klFit, err := stats.KLDivergence(emp, fitted)
	if err != nil {
		t.Fatal(err)
	}
	klInd, err := stats.KLDivergence(emp, indepJoint)
	if err != nil {
		t.Fatal(err)
	}
	if klFit >= klInd {
		t.Errorf("KL(emp‖fitted) = %.6f not better than KL(emp‖indep) = %.6f", klFit, klInd)
	}
	if klFit > 0.01 {
		t.Errorf("KL(emp‖fitted) = %.6f, expected near-complete capture on 12 cells", klFit)
	}
}

func TestDiscoverMemoLevels(t *testing.T) {
	res, err := Discover(memoTable(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d, want orders 2 and 3", len(res.Levels))
	}
	if res.Levels[0].Order != 2 || res.Levels[1].Order != 3 {
		t.Errorf("level orders = %d, %d", res.Levels[0].Order, res.Levels[1].Order)
	}
	if res.Levels[0].Candidates != 16 {
		t.Errorf("order-2 candidates = %d, want 16", res.Levels[0].Candidates)
	}
	if res.Levels[0].Accepted == 0 {
		t.Error("memo data must yield order-2 findings")
	}
	// Findings appear in non-decreasing order.
	last := 0
	for _, f := range res.Findings {
		if f.Order < last {
			t.Errorf("finding %d at order %d after order %d", f.Step, f.Order, last)
		}
		last = f.Order
	}
	// Steps are 1..n.
	for i, f := range res.Findings {
		if f.Step != i+1 {
			t.Errorf("finding %d has step %d", i, f.Step)
		}
	}
}

func TestDiscoverIndependentDataFindsNothing(t *testing.T) {
	// A large sample from a genuinely independent distribution: the scan
	// must accept no constraints (the memo's null case).
	rng := stats.NewRNG(7)
	tab := contingency.MustNew([]string{"X", "Y", "Z"}, []int{3, 2, 2})
	px := []float64{0.5, 0.3, 0.2}
	py := []float64{0.6, 0.4}
	pz := []float64{0.7, 0.3}
	const n = 20000
	for s := 0; s < n; s++ {
		i, _ := rng.Categorical(px)
		j, _ := rng.Categorical(py)
		k, _ := rng.Categorical(pz)
		if err := tab.Observe(i, j, k); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("independent data produced %d findings: %s",
			len(res.Findings), res.Summary())
	}
}

func TestDiscoverRecoversPlantedCorrelation(t *testing.T) {
	// Plant a strong X↔Y dependence with Z independent; discovery must
	// find XY cells and no XZ/YZ cells.
	rng := stats.NewRNG(11)
	tab := contingency.MustNew([]string{"X", "Y", "Z"}, []int{2, 2, 2})
	const n = 20000
	for s := 0; s < n; s++ {
		i := rng.Intn(2)
		j := i // copy dependence
		if rng.Float64() < 0.1 {
			j = 1 - i
		}
		k := rng.Intn(2)
		if err := tab.Observe(i, j, k); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("planted correlation not found")
	}
	xy := contingency.NewVarSet(0, 1)
	sawXY := false
	for _, f := range res.Findings {
		if f.Order != 2 {
			continue
		}
		switch f.Test.Family {
		case xy:
			sawXY = true
		default:
			t.Errorf("spurious second-order finding in %v (delta %.2f)",
				f.Test.Family, f.Test.Delta)
		}
	}
	if !sawXY {
		t.Error("no XY finding despite planted dependence")
	}
	// Model must reproduce the dependence: P(Y=1|X=1) ≈ 0.9.
	pxy, _ := res.Model.Prob(xy, []int{0, 0})
	px, _ := res.Model.Prob(contingency.NewVarSet(0), []int{0})
	if cond := pxy / px; math.Abs(cond-0.9) > 0.02 {
		t.Errorf("P(Y=1|X=1) = %.3f, planted 0.9", cond)
	}
}

func TestDiscoverMaxOrderRespected(t *testing.T) {
	res, err := Discover(memoTable(t), Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Order > 2 {
			t.Errorf("finding at order %d with MaxOrder 2", f.Order)
		}
	}
	if len(res.Levels) != 1 {
		t.Errorf("levels = %d, want 1", len(res.Levels))
	}
}

func TestDiscoverMaxConstraintsCap(t *testing.T) {
	res, err := Discover(memoTable(t), Options{MaxConstraints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Errorf("findings = %d with cap 1", len(res.Findings))
	}
}

func TestDiscoverSeedConstraints(t *testing.T) {
	// Seeding N^AB_11 reproduces the "originally given as significant"
	// path: the seeded cell is never re-discovered.
	tab := memoTable(t)
	seed := maxent.Constraint{
		Family: contingency.NewVarSet(0, 1),
		Values: []int{0, 0},
		Target: 240.0 / 3428,
	}
	res, err := Discover(tab, Options{Seed: []maxent.Constraint{seed}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Test.Family == seed.Family &&
			f.Test.Values[0] == 0 && f.Test.Values[1] == 0 {
			t.Error("seeded cell re-discovered")
		}
	}
	// Seeds of order < 2 are rejected.
	bad := maxent.Constraint{Family: contingency.NewVarSet(0), Values: []int{0}, Target: 0.3}
	if _, err := Discover(tab, Options{Seed: []maxent.Constraint{bad}}); err == nil {
		t.Error("first-order seed accepted")
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	a, err := Discover(memoTable(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(memoTable(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("runs differ in finding count: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		fa, fb := a.Findings[i], b.Findings[i]
		if fa.Test.Family != fb.Test.Family || fa.Test.Delta != fb.Test.Delta {
			t.Errorf("finding %d differs between runs", i)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Discover(memoTable(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	at2 := res.FindingsAtOrder(2)
	at3 := res.FindingsAtOrder(3)
	if len(at2)+len(at3) != len(res.Findings) {
		t.Error("FindingsAtOrder loses findings")
	}
	s := res.Summary()
	for _, want := range []string{"N=3428", "order 2", "N^{A,B}_{1,1}"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestDiscoverFourthOrderStructure(t *testing.T) {
	// Four binary attributes with a pure 4-way parity interaction: no
	// order-2 or order-3 structure exists, so the level-wise loop must
	// walk through empty levels and find the constraint only at order 4 —
	// the memo's "and so on" path beyond its own example.
	tab := contingency.MustNew(nil, []int{2, 2, 2, 2})
	cell := make([]int, 4)
	for off := 0; off < 16; off++ {
		tab.Unflatten(off, cell)
		parity := (cell[0] + cell[1] + cell[2] + cell[3]) % 2
		count := int64(300)
		if parity == 0 {
			count = 1200
		}
		if err := tab.Set(count, cell...); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, f := range res.Findings {
		counts[f.Order]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Errorf("parity data produced lower-order findings: %v", counts)
	}
	if counts[4] == 0 {
		t.Fatalf("4-way parity not found: %s", res.Summary())
	}
	// The fitted model must reproduce the parity skew.
	p0000, err := res.Model.CellProb([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1200.0 / float64(tab.Total())
	if math.Abs(p0000-want) > 1e-3 {
		t.Errorf("p(0000) = %.5f, want %.5f", p0000, want)
	}
}

func TestDiscoverSparseTable(t *testing.T) {
	// Heavily sparse table (many zero cells) must not break fitting or
	// scanning.
	tab := contingency.MustNew(nil, []int{4, 4, 2})
	tab.Set(50, 0, 0, 0)
	tab.Set(50, 1, 1, 1)
	tab.Set(50, 2, 2, 0)
	tab.Set(50, 3, 3, 1)
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The diagonal structure is a strong dependence; it must be detected.
	if len(res.Findings) == 0 {
		t.Error("deterministic diagonal structure not detected")
	}
	joint, err := res.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range joint {
		if p < -1e-15 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("joint sums to %g", sum)
	}
}
