package core

import (
	"fmt"
	"strings"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/mml"
)

// Finding is one accepted constraint: a significant joint probability, in
// the order discovered.
type Finding struct {
	// Step numbers findings from 1 in acceptance order.
	Step int
	// Order is the attribute-family order (2 for pairwise, ...).
	Order int
	// Test carries the full Table 1-style statistics at acceptance time.
	Test mml.CellTest
	// Constraint is what was added to the model (target = observed/N).
	Constraint maxent.Constraint
	// ImpliedZeros lists zero-target constraints added alongside this
	// finding because it exhausted a marginal (see impliedZeros).
	ImpliedZeros []maxent.Constraint
	// FitSweeps is how many solver sweeps the refit took (Table 2's scale).
	FitSweeps int
}

// Scan records one full pass over an order's candidate cells.
type Scan struct {
	Order int
	// Pass numbers scans within the order from 1 (the first pass of the
	// memo's example is exactly Table 1).
	Pass int
	// Tests holds the scored candidates in deterministic scan order.
	Tests []mml.CellTest
	// Selected is the index into Tests of the accepted cell, or -1 when
	// the pass found nothing significant (ending the order).
	Selected int
}

// LevelReport summarizes one order of the level-wise loop.
type LevelReport struct {
	Order      int
	Candidates int // cells scanned on the first pass
	Accepted   int // constraints promoted at this order
}

// Result is the outcome of a discovery run.
type Result struct {
	// Model is the fitted product-form model over all found constraints —
	// the memo's succinct formula (Eq. 12).
	Model *maxent.Model
	// Findings lists accepted constraints in discovery order.
	Findings []Finding
	// Levels summarizes each scanned order.
	Levels []LevelReport
	// Scans holds every recorded pass (only when Options.RecordScans).
	Scans []Scan
	// TotalSamples is N of the input table.
	TotalSamples int64
	// Screen summarizes the association screen (nil when screening off).
	Screen *ScreenReport
}

// FindingsAtOrder filters findings by order.
func (r *Result) FindingsAtOrder(order int) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Order == order {
			out = append(out, f)
		}
	}
	return out
}

// Summary renders a human-readable digest of the run.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "discovery over N=%d samples: %d significant constraints\n",
		r.TotalSamples, len(r.Findings))
	for _, lv := range r.Levels {
		fmt.Fprintf(&b, "  order %d: %d candidates, %d accepted\n",
			lv.Order, lv.Candidates, lv.Accepted)
	}
	names := r.Model.Names()
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  #%d %s: observed %d, target %.4f, Δ(m2-m1) = %.2f\n",
			f.Step, describeCell(names, f.Test.Family, f.Test.Values),
			f.Test.Observed, f.Constraint.Target, f.Test.Delta)
	}
	return b.String()
}

// describeCell renders N^{AC}_{1,2}-style cell names with 1-based values.
func describeCell(names []string, family contingency.VarSet, values []int) string {
	sup := make([]string, 0, family.Len())
	sub := make([]string, 0, family.Len())
	for i, p := range family.Members() {
		if p < len(names) {
			sup = append(sup, names[p])
		} else {
			sup = append(sup, fmt.Sprintf("v%d", p))
		}
		sub = append(sub, fmt.Sprintf("%d", values[i]+1))
	}
	return fmt.Sprintf("N^{%s}_{%s}", strings.Join(sup, ","), strings.Join(sub, ","))
}
