package core

import (
	"fmt"
	"testing"

	"pka/internal/stats"
	"pka/internal/synth"
)

func BenchmarkDiscoverMemo(b *testing.B) {
	tab := memoTable(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(tab, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverOrder2Only(b *testing.B) {
	tab := memoTable(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(tab, Options{MaxOrder: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverWithScans(b *testing.B) {
	tab := memoTable(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(tab, Options{RecordScans: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverPlantedDensity(b *testing.B) {
	// Vary planted coupling strength: weak structure means fewer accepted
	// constraints and fewer refits.
	for _, s := range []float64{1.2, 2, 4} {
		truth, err := synth.Survey(4, s)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := truth.SampleTable(stats.NewRNG(5), 30000)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("strength=%.1f", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Discover(tab, Options{MaxOrder: 2})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(res.Findings)), "findings")
				}
			}
		})
	}
}
