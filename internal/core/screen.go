package core

import (
	"fmt"

	"pka/internal/assoc"
	"pka/internal/contingency"
	"pka/internal/par"
)

// ScreenReport summarizes an association screen: how many attribute pairs
// were surveyed, how many passed, and the threshold applied.
type ScreenReport struct {
	// Alpha is the G² p-value threshold actually used (after the
	// Bonferroni default is resolved).
	Alpha float64
	// PairsTotal is the number of attribute pairs surveyed: R(R-1)/2.
	PairsTotal int
	// PairsKept is how many pairs passed the screen (after the CI pass,
	// when enabled).
	PairsKept int
	// CIAlpha is the conditional-independence threshold applied, zero when
	// the CI pass was off.
	CIAlpha float64
	// CITriplesTested counts the per-triple conditional G² tests run.
	CITriplesTested int
	// CIEdgesDropped counts pairwise-passing edges the CI pass removed.
	CIEdgesDropped int
}

// buildScreen surveys every attribute pair of the counts backend and
// returns the pass/fail adjacency plus the report. SPIRIT-style network
// learners bound structure search the same way: cheap pairwise statistics
// gate the expensive family scan. workers fans the pair grid out over the
// shared pool (Options.Workers semantics: 0 = GOMAXPROCS, 1 = serial);
// the screen is bit-identical for any worker count.
func buildScreen(table contingency.Counts, alpha float64, workers int) ([][]bool, *ScreenReport, error) {
	var pairs []assoc.PairStats
	var err error
	switch tt := table.(type) {
	case *contingency.Sparse:
		pairs, err = assoc.PairwiseSparseWorkers(tt, workers)
	case *contingency.Table:
		pairs, err = assoc.PairwiseWorkers(tt, workers)
	default:
		return nil, nil, fmt.Errorf("core: ScreenPairs needs a dense or sparse contingency backend, got %T", table)
	}
	if err != nil {
		return nil, nil, err
	}
	if alpha == 0 {
		alpha = 0.05 / float64(len(pairs))
	}
	r := table.R()
	adj := make([][]bool, r)
	for i := range adj {
		adj[i] = make([]bool, r)
	}
	rep := &ScreenReport{Alpha: alpha, PairsTotal: len(pairs)}
	for _, p := range pairs {
		if p.PValue <= alpha {
			adj[p.I][p.J] = true
			adj[p.J][p.I] = true
			rep.PairsKept++
		}
	}
	return adj, rep, nil
}

// applyCIScreen refines a pairwise adjacency in place with order-1
// conditional-independence tests (the PC-algorithm step): for each edge
// (i,j) that passed the marginal screen, every common neighbor k is tried
// in ascending order as a separator via assoc's per-slice G² test, and the
// edge is dropped at the first k whose test fails to reject independence
// (p > alpha). Edges are tested concurrently over the shared pool, but
// every decision reads the ORIGINAL adjacency and removals are applied
// after the parallel pass — so the result is deterministic and
// bit-identical for any worker count. alpha == 0 applies the 0.05 default.
func applyCIScreen(table contingency.Counts, adj [][]bool, alpha float64, workers int, rep *ScreenReport) error {
	if alpha == 0 {
		alpha = 0.05
	}
	flat, err := assoc.Flatten(table)
	if err != nil {
		return err
	}
	r := table.R()
	type edge struct{ i, j int }
	var edges []edge
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			if adj[i][j] {
				edges = append(edges, edge{i, j})
			}
		}
	}
	drop := make([]bool, len(edges))
	tested := make([]int, len(edges))
	if err := par.Do(len(edges), workers, func(e int) error {
		i, j := edges[e].i, edges[e].j
		for k := 0; k < r; k++ {
			if k == i || k == j || !adj[i][k] || !adj[j][k] {
				continue
			}
			_, _, p := flat.CondG2(i, j, k)
			tested[e]++
			if p > alpha {
				drop[e] = true
				break
			}
		}
		return nil
	}); err != nil {
		return err
	}
	rep.CIAlpha = alpha
	for e := range edges {
		rep.CITriplesTested += tested[e]
		if drop[e] {
			adj[edges[e].i][edges[e].j] = false
			adj[edges[e].j][edges[e].i] = false
			rep.CIEdgesDropped++
			rep.PairsKept--
		}
	}
	return nil
}

// screenedFamilies returns the order-r attribute families eligible under
// the screen: the r-cliques of the passing-pair graph, enumerated in
// lexicographic member order (a deterministic subset of the order the
// unscreened scan uses), followed by any seeded families of that order
// that the screen alone would have excluded — accepted constraints must
// stay inside the candidate universe for the memo's M bookkeeping.
func screenedFamilies(r, order int, adj [][]bool, seeds []contingency.VarSet) []contingency.VarSet {
	var out []contingency.VarSet
	members := make([]int, 0, order)
	var extend func(next int)
	extend = func(next int) {
		if len(members) == order {
			out = append(out, contingency.NewVarSet(members...))
			return
		}
		// Prune: not enough attributes left to complete the clique.
		for v := next; v <= r-(order-len(members)); v++ {
			ok := true
			for _, m := range members {
				if !adj[m][v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			members = append(members, v)
			extend(v + 1)
			members = members[:len(members)-1]
		}
	}
	extend(0)
	have := make(map[contingency.VarSet]bool, len(out))
	for _, f := range out {
		have[f] = true
	}
	for _, s := range seeds {
		if s.Len() == order && !have[s] {
			have[s] = true
			out = append(out, s)
		}
	}
	return out
}
