package core

import (
	"fmt"

	"pka/internal/maxent"
	"pka/internal/mml"
)

// Options tunes a discovery run. The zero value requests the memo's
// defaults: scan every order up to R, p(H2') = 0.5, Gauss–Seidel solving at
// library precision.
type Options struct {
	// MaxOrder caps the highest attribute-family order scanned; 0 means
	// the table's full order R. The memo scans second order, then third,
	// and so on (Figure 3's r loop).
	MaxOrder int
	// MML configures the significance test (prior, forced-cell policy).
	// The zero value is patched to mml.DefaultConfig().
	MML mml.Config
	// Solve configures the per-refit maxent solver.
	Solve maxent.SolveOptions
	// MaxConstraints aborts a runaway run after this many accepted
	// higher-order constraints; 0 means no cap.
	MaxConstraints int
	// RecordScans stores every full scan's CellTest rows in the result —
	// needed to regenerate Table 1; costs memory on large spaces.
	RecordScans bool
	// Workers fans the run's parallel stages out over a goroutine pool:
	// candidate scoring (per-family scans), the pairwise association
	// screen, and — unless Solve.Workers pins it separately — the factored
	// solver's per-block fits. 0 uses GOMAXPROCS, 1 forces the sequential
	// loops. Results are bit-identical either way.
	Workers int
	// Seed constraints: cells (with their observed-frequency targets) that
	// are "originally given as significant" per the memo. They are added
	// to the model and the significance bookkeeping before scanning.
	Seed []maxent.Constraint
	// ScreenPairs enables association-based candidate screening: before
	// scanning, every attribute pair's association is surveyed (one dense
	// 2-D projection per pair), and order >= 2 scans visit only families
	// whose member pairs all pass the screen — the combinatorial bound
	// that makes wide-schema discovery tractable. Screening changes which
	// candidates are priced (and so the Eq. 45 cells-at-order term); with
	// it off, discovery over a sparse backend is bit-identical to the
	// dense run on the same counts.
	ScreenPairs bool
	// ScreenAlpha is the pairwise G² p-value a pair must beat to pass the
	// screen. 0 means the Bonferroni default 0.05 / (number of pairs).
	ScreenAlpha float64
	// ScreenCI adds a conditional-independence pass on top of the pairwise
	// screen (requires ScreenPairs): for every surviving pair, each common
	// neighbor k is tried as a separator with a per-slice G² test of
	// i ⊥ j | k, and pairs some k renders independent are dropped from the
	// adjacency before order >= 2 families are enumerated. This is the
	// PC-algorithm order-1 refinement: on wide schemas it prunes the
	// transitive edges a marginal-only screen keeps, shrinking the clique
	// universe the family scan walks.
	ScreenCI bool
	// ScreenCIAlpha is the p-value above which a conditional test counts
	// as "independent given k" (larger drops more edges). 0 means 0.05.
	ScreenCIAlpha float64

	// predictor builds the scan predictor for a model. It defaults to the
	// model itself — Model.Marginal satisfies mml.Predictor, serving one
	// batch elimination sweep per family from the compiled engine — and is
	// unexported so only the equivalence test can swap in the legacy
	// per-cell path and assert bit-identical discovery results.
	predictor func(m *maxent.Model) mml.Predictor
}

func (o Options) withDefaults(r int) (Options, error) {
	if o.MaxOrder == 0 {
		o.MaxOrder = r
	}
	if o.predictor == nil {
		o.predictor = func(m *maxent.Model) mml.Predictor { return m }
	}
	if o.MaxOrder < 2 || o.MaxOrder > r {
		return o, fmt.Errorf("core: MaxOrder %d outside [2,%d]", o.MaxOrder, r)
	}
	if o.MML.PriorH2 == 0 {
		o.MML.PriorH2 = mml.DefaultConfig().PriorH2
	}
	if o.Solve.Workers == 0 {
		// The scan knob doubles as the solver knob unless pinned: one
		// -workers flag tunes the whole discovery pipeline.
		o.Solve.Workers = o.Workers
	}
	if o.MaxConstraints < 0 {
		return o, fmt.Errorf("core: negative MaxConstraints %d", o.MaxConstraints)
	}
	if o.ScreenAlpha < 0 || o.ScreenAlpha >= 1 {
		return o, fmt.Errorf("core: ScreenAlpha %g outside [0,1)", o.ScreenAlpha)
	}
	if o.ScreenCI && !o.ScreenPairs {
		return o, fmt.Errorf("core: ScreenCI refines the pairwise adjacency and requires ScreenPairs")
	}
	if o.ScreenCIAlpha < 0 || o.ScreenCIAlpha >= 1 {
		return o, fmt.Errorf("core: ScreenCIAlpha %g outside [0,1)", o.ScreenCIAlpha)
	}
	return o, nil
}
