// Package core implements the memo's overall discovery procedure (Figure 3):
// starting from the first-order maximum-entropy model, scan each order's
// cells for the most significant deviation (minimum-message-length test),
// promote it to a constraint, re-fit the model (Figure 4), and repeat within
// the order until nothing significant remains; then move to the next order.
//
// The output is a Result: the fitted product-form model — the memo's
// "general formula for calculating any probability relation associated with
// the data" — plus the ordered list of findings with their full Table 1-style
// statistics and the per-level scan reports, from which the repro binary
// regenerates the memo's tables.
package core
