package core

import (
	"fmt"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
)

// Fit summarizes how well a fitted model explains a contingency table.
type Fit struct {
	// G2 is the likelihood-ratio (deviance) statistic 2 Σ obs ln(obs/exp).
	G2 float64
	// X2 is Pearson's statistic Σ (obs-exp)²/exp.
	X2 float64
	// DF is the residual degrees of freedom: cells − 1 − free parameters.
	DF int
	// PValue is the chi-square tail of G2 at DF (1 when DF <= 0).
	PValue float64
}

// GoodnessOfFit scores a model against observed data with the classical
// large-sample statistics. Free parameters are counted as Σ(card−1) for the
// first-order constraints (one value per attribute is implied by the rest)
// plus one per higher-order constraint; the count is approximate when
// higher-order constraints carry their own redundancies (e.g. implied
// zeros), which makes the test conservative.
func GoodnessOfFit(table *contingency.Table, model *maxent.Model) (Fit, error) {
	if table.Total() == 0 {
		return Fit{}, fmt.Errorf("core: empty table")
	}
	if table.R() != model.R() {
		return Fit{}, fmt.Errorf("core: table has %d attributes, model %d", table.R(), model.R())
	}
	joint, err := model.Joint()
	if err != nil {
		return Fit{}, err
	}
	if len(joint) != table.NumCells() {
		return Fit{}, fmt.Errorf("core: model space %d cells, table %d", len(joint), table.NumCells())
	}
	n := float64(table.Total())
	expected := make([]float64, len(joint))
	for i, p := range joint {
		expected[i] = p * n
	}
	obs := table.Counts()
	g2, err := stats.GStat(obs, expected)
	if err != nil {
		return Fit{}, err
	}
	x2, err := stats.ChiSquareStat(obs, expected)
	if err != nil {
		return Fit{}, err
	}
	free := 0
	for _, c := range model.Cards() {
		free += c - 1
	}
	for _, con := range model.Constraints() {
		if con.Order() >= 2 {
			free++
		}
	}
	df := table.NumCells() - 1 - free
	f := Fit{G2: g2, X2: x2, DF: df, PValue: 1}
	if df > 0 {
		f.PValue = stats.ChiSquareSF(g2, df)
	}
	return f, nil
}
