package core

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
)

// Fit summarizes how well a fitted model explains a contingency table.
type Fit struct {
	// G2 is the likelihood-ratio (deviance) statistic 2 Σ obs ln(obs/exp).
	G2 float64
	// X2 is Pearson's statistic Σ (obs-exp)²/exp.
	X2 float64
	// DF is the residual degrees of freedom: cells − 1 − free parameters
	// (saturated at MaxInt for joint spaces too wide to count).
	DF int
	// PValue is the chi-square tail of G2 at DF (1 when DF <= 0).
	PValue float64
}

// GoodnessOfFit scores a model against observed data with the classical
// large-sample statistics. Free parameters are counted as Σ(card−1) for the
// first-order constraints (one value per attribute is implied by the rest)
// plus one per higher-order constraint; the count is approximate when
// higher-order constraints carry their own redundancies (e.g. implied
// zeros), which makes the test conservative.
//
// Dense tables score against the materialized model joint; any other
// counts backend (a wide sparse table) scores over its occupied cells
// only, using the algebraic identities G2 = 2 Σ_occ obs ln(obs/exp) and
// X2 = Σ_occ obs²/exp − N, so no joint space is ever materialized.
func GoodnessOfFit(table contingency.Counts, model *maxent.Model) (Fit, error) {
	if table.Total() == 0 {
		return Fit{}, fmt.Errorf("core: empty table")
	}
	if table.R() != model.R() {
		return Fit{}, fmt.Errorf("core: table has %d attributes, model %d", table.R(), model.R())
	}
	compiled, err := model.Compile()
	if err != nil {
		return Fit{}, err
	}
	// The dense full-joint walk needs both a dense table AND a dense
	// engine: a wide (factored) model cannot materialize its joint even
	// when the observations happen to be densely tabulated.
	if dense, ok := table.(*contingency.Table); ok && !compiled.Factored() {
		return goodnessOfFitDense(dense, model)
	}
	return goodnessOfFitOccupied(table, compiled, model)
}

// goodnessOfFitDense is the original full-joint scoring path.
func goodnessOfFitDense(table *contingency.Table, model *maxent.Model) (Fit, error) {
	joint, err := model.Joint()
	if err != nil {
		return Fit{}, err
	}
	if len(joint) != table.NumCells() {
		return Fit{}, fmt.Errorf("core: model space %d cells, table %d", len(joint), table.NumCells())
	}
	n := float64(table.Total())
	expected := make([]float64, len(joint))
	for i, p := range joint {
		expected[i] = p * n
	}
	obs := table.Counts()
	g2, err := stats.GStat(obs, expected)
	if err != nil {
		return Fit{}, err
	}
	x2, err := stats.ChiSquareStat(obs, expected)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{G2: g2, X2: x2, DF: residualDF(table.NumCells(), model), PValue: 1}
	if f.DF > 0 {
		f.PValue = stats.ChiSquareSF(g2, f.DF)
	}
	return f, nil
}

// goodnessOfFitOccupied scores over the backend's occupied cells only,
// pricing each against the compiled model's cell probability.
func goodnessOfFitOccupied(table contingency.Counts, compiled *maxent.Compiled, model *maxent.Model) (Fit, error) {
	visit, err := contingency.EachCellDeterministic(table)
	if err != nil {
		return Fit{}, fmt.Errorf("core: %w", err)
	}
	n := float64(table.Total())
	var g2, x2 float64
	var ruledOut bool
	var visitErr error
	visit(func(cell []int, c int64) {
		if c == 0 || ruledOut || visitErr != nil {
			return
		}
		p, err := compiled.CellProb(cell)
		if err != nil {
			visitErr = err
			return
		}
		exp := p * n
		if exp <= 0 {
			ruledOut = true // model rules out an occupied cell
			return
		}
		o := float64(c)
		g2 += o * math.Log(o/exp)
		x2 += o * o / exp
	})
	if visitErr != nil {
		return Fit{}, visitErr
	}
	f := Fit{DF: residualDF(jointCells(table), model)}
	if ruledOut {
		f.G2, f.X2, f.PValue = math.Inf(1), math.Inf(1), 0
		return f, nil
	}
	f.G2 = 2 * g2
	f.X2 = x2 - n
	f.PValue = 1
	if f.DF > 0 {
		f.PValue = stats.ChiSquareSF(f.G2, f.DF)
	}
	return f, nil
}

// jointCells counts the backend's joint space, saturating at MaxInt.
func jointCells(table contingency.Counts) int {
	size := 1
	for i := 0; i < table.R(); i++ {
		c := table.Card(i)
		if size > math.MaxInt/c {
			return math.MaxInt
		}
		size *= c
	}
	return size
}

// residualDF computes cells − 1 − free parameters, saturating alongside
// the cell count.
func residualDF(cells int, model *maxent.Model) int {
	free := 0
	for _, c := range model.Cards() {
		free += c - 1
	}
	for _, con := range model.Constraints() {
		if con.Order() >= 2 {
			free++
		}
	}
	if cells == math.MaxInt {
		return math.MaxInt
	}
	return cells - 1 - free
}
