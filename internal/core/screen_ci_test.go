package core

import (
	"math/rand"
	"strings"
	"testing"

	"pka/internal/contingency"
)

// ciChainTable samples X -> Y -> Z (each copies its parent with probability
// 0.9) into a binary sparse table: X and Z are strongly dependent
// marginally but conditionally independent given Y.
func ciChainTable(t *testing.T, rows int, seed int64) *contingency.Sparse {
	t.Helper()
	s, err := contingency.NewSparse([]string{"X", "Y", "Z"}, []int{2, 2, 2})
	if err != nil {
		t.Fatalf("NewSparse: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	flip := func(parent int) int {
		if rng.Float64() < 0.9 {
			return parent
		}
		return rng.Intn(2)
	}
	for n := 0; n < rows; n++ {
		x := rng.Intn(2)
		y := flip(x)
		z := flip(y)
		if err := s.Observe(x, y, z); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return s
}

// TestApplyCIScreenDropsMediatedEdge: on a chain the pairwise screen keeps
// all three edges, and the conditional pass removes exactly the mediated
// one.
func TestApplyCIScreenDropsMediatedEdge(t *testing.T) {
	table := ciChainTable(t, 4000, 5)
	adj, rep, err := buildScreen(table, 0, 1)
	if err != nil {
		t.Fatalf("buildScreen: %v", err)
	}
	if !adj[0][2] {
		t.Fatalf("marginal screen should keep the X-Z edge on a 0.9 chain")
	}
	if err := applyCIScreen(table, adj, 0, 1, rep); err != nil {
		t.Fatalf("applyCIScreen: %v", err)
	}
	if adj[0][2] || adj[2][0] {
		t.Errorf("CI screen kept the mediated X-Z edge")
	}
	if !adj[0][1] || !adj[1][2] {
		t.Errorf("CI screen dropped a direct chain edge: adj=%v", adj)
	}
	if rep.CIAlpha != 0.05 {
		t.Errorf("CIAlpha = %g, want the 0.05 default", rep.CIAlpha)
	}
	if rep.CIEdgesDropped != 1 {
		t.Errorf("CIEdgesDropped = %d, want 1", rep.CIEdgesDropped)
	}
	if rep.CITriplesTested < 1 {
		t.Errorf("CITriplesTested = %d, want >= 1", rep.CITriplesTested)
	}
	if rep.PairsKept != 2 {
		t.Errorf("PairsKept = %d after the CI pass, want 2", rep.PairsKept)
	}
}

// TestApplyCIScreenWorkerInvariance: the CI pass must be bit-identical for
// any worker count — decisions read the original adjacency, removals apply
// after the parallel pass.
func TestApplyCIScreenWorkerInvariance(t *testing.T) {
	run := func(workers int) ([][]bool, ScreenReport) {
		table := ciChainTable(t, 4000, 5)
		adj, rep, err := buildScreen(table, 0, workers)
		if err != nil {
			t.Fatalf("buildScreen: %v", err)
		}
		if err := applyCIScreen(table, adj, 0, workers, rep); err != nil {
			t.Fatalf("applyCIScreen: %v", err)
		}
		return adj, *rep
	}
	adj1, rep1 := run(1)
	adj4, rep4 := run(4)
	if rep1 != rep4 {
		t.Errorf("reports differ across worker counts: %+v vs %+v", rep1, rep4)
	}
	for i := range adj1 {
		for j := range adj1[i] {
			if adj1[i][j] != adj4[i][j] {
				t.Errorf("adjacency (%d,%d) differs across worker counts", i, j)
			}
		}
	}
}

// TestDiscoverScreenCIGatesFamilies: with the CI pass on, discovery over
// the chain never promotes an X-Z constraint, and the report records the
// drop.
func TestDiscoverScreenCIGatesFamilies(t *testing.T) {
	table := ciChainTable(t, 4000, 5)
	res, err := DiscoverCounts(table, Options{
		MaxOrder:    2,
		ScreenPairs: true,
		ScreenCI:    true,
		Workers:     1,
	})
	if err != nil {
		t.Fatalf("DiscoverCounts: %v", err)
	}
	if res.Screen == nil {
		t.Fatalf("no screen report")
	}
	if res.Screen.CIEdgesDropped != 1 {
		t.Errorf("CIEdgesDropped = %d, want 1", res.Screen.CIEdgesDropped)
	}
	xz := contingency.NewVarSet(0, 2)
	for _, f := range res.Findings {
		if f.Constraint.Family == xz {
			t.Errorf("discovery promoted the CI-screened X-Z family: %+v", f.Constraint)
		}
	}
}

// TestScreenCIRequiresScreenPairs: the CI refinement has nothing to refine
// without the pairwise screen.
func TestScreenCIRequiresScreenPairs(t *testing.T) {
	table := ciChainTable(t, 100, 1)
	_, err := DiscoverCounts(table, Options{MaxOrder: 2, ScreenCI: true, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "ScreenPairs") {
		t.Fatalf("ScreenCI without ScreenPairs: got err %v, want a ScreenPairs requirement", err)
	}
}
