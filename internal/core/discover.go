package core

import (
	"fmt"
	"sort"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/mml"
)

// Discover runs the memo's Figure 3 procedure over a dense contingency
// table and returns the fitted model with every significant joint
// probability found.
//
// The table is treated as read-only. Determinism: identical inputs produce
// identical results, including tie-breaks.
func Discover(table *contingency.Table, opts Options) (*Result, error) {
	return DiscoverCounts(table, opts)
}

// DiscoverCounts is Discover over any counts backend — dense *Table or
// wide *Sparse. The procedure consumes only the Counts marginals, so with
// screening off a sparse run is bit-identical to the dense run on the same
// counts; on wide schemas the model is fit and queried through the
// factored engine and the joint space is never materialized.
func DiscoverCounts(table contingency.Counts, opts Options) (*Result, error) {
	if ck, ok := table.(interface{ CheckConsistency() error }); ok {
		if err := ck.CheckConsistency(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if table.Total() == 0 {
		return nil, fmt.Errorf("core: empty contingency table")
	}
	if table.R() < 2 {
		return nil, fmt.Errorf("core: discovery needs at least 2 attributes, table has %d", table.R())
	}
	opts, err := opts.withDefaults(table.R())
	if err != nil {
		return nil, err
	}
	if opts.Solve.Tol == 0 {
		opts.Solve.Tol = countScaleTol(table.Total())
	}

	// Figure 3, first box: the model starts from the first-order marginals.
	model, err := maxent.NewModel(table.Names(), contingency.CardsOf(table))
	if err != nil {
		return nil, err
	}
	if err := model.AddFirstOrderConstraints(table); err != nil {
		return nil, err
	}

	tester, err := mml.NewTester(table, opts.MML)
	if err != nil {
		return nil, err
	}

	res := &Result{Model: model, TotalSamples: table.Total()}

	// Association screen: bound the order >= 2 candidate universe to
	// families whose attribute pairs all pass the pairwise survey.
	if opts.ScreenPairs {
		adj, rep, err := buildScreen(table, opts.ScreenAlpha, opts.Workers)
		if err != nil {
			return nil, err
		}
		if opts.ScreenCI {
			if err := applyCIScreen(table, adj, opts.ScreenCIAlpha, opts.Workers, rep); err != nil {
				return nil, err
			}
		}
		seedFams := make([]contingency.VarSet, 0, len(opts.Seed))
		for _, c := range opts.Seed {
			seedFams = append(seedFams, c.Family)
		}
		r := table.R()
		tester.RestrictFamilies(func(order int) []contingency.VarSet {
			return screenedFamilies(r, order, adj, seedFams)
		})
		res.Screen = rep
	}

	// Seed constraints ("originally given as significant").
	for _, c := range opts.Seed {
		if c.Order() < 2 {
			return nil, fmt.Errorf("core: seed constraint %v must be order >= 2", c.Family)
		}
		if err := model.AddConstraint(c); err != nil {
			return nil, err
		}
		if err := tester.MarkSignificant(c.Family, c.Values); err != nil {
			return nil, err
		}
	}

	rep, err := model.Fit(opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: initial fit: %w", err)
	}
	if !rep.Converged {
		return nil, fmt.Errorf("core: initial fit did not converge (residual %g after %d sweeps)",
			rep.Residual, rep.Sweeps)
	}

	// accepted tracks the promoted cells per family (seeds included) for
	// the implied-zero check below.
	accepted := make(map[contingency.VarSet][]acceptedCell)
	for _, c := range opts.Seed {
		n, err := table.MarginalCount(c.Family, c.Values)
		if err != nil {
			return nil, err
		}
		accepted[c.Family] = append(accepted[c.Family], acceptedCell{values: c.Values, count: n})
	}

	st := &scanState{
		table:    table,
		model:    model,
		tester:   tester,
		opts:     opts,
		res:      res,
		accepted: accepted,
	}
	if err := st.run(); err != nil {
		return nil, err
	}
	return res, nil
}

// scanState bundles the moving parts of the greedy level-wise acquisition
// loop (Figure 3's r loop), shared by scratch discovery and the
// incremental Update path — the latter seeds it with the previous run's
// accepted constraints and a restricted candidate universe.
type scanState struct {
	table    contingency.Counts
	model    *maxent.Model
	tester   *mml.Tester
	opts     Options // defaulted
	res      *Result
	accepted map[contingency.VarSet][]acceptedCell
	// step numbers findings across runs: Update continues from the
	// previous result's count so MaxConstraints bounds the lifetime total.
	step int
}

// run scans order 2..MaxOrder, promoting the most significant cell per
// pass, pinning implied zeros, and refitting (warm, from the previous
// a-values) after each acceptance, until no candidate is significant.
func (st *scanState) run() error {
	// Scans price each candidate family with one batch marginal from the
	// model's compiled engine. Every refit rebuilds the compiled snapshot
	// (maxent.Model.Fit does so on success), so the predictor always serves
	// the coefficients of the latest accepted constraint set.
	predict := st.opts.predictor(st.model)
	for order := 2; order <= st.opts.MaxOrder; order++ {
		level := LevelReport{Order: order}
		for pass := 1; ; pass++ {
			var tests []mml.CellTest
			var err error
			if st.opts.Workers == 1 {
				tests, err = st.tester.ScanOrder(order, predict)
			} else {
				tests, err = st.tester.ScanOrderParallel(order, predict, st.opts.Workers)
			}
			if err != nil {
				return err
			}
			if pass == 1 {
				level.Candidates = len(tests)
			}
			selected := mml.MostSignificant(tests)
			if st.opts.RecordScans {
				st.res.Scans = append(st.res.Scans, Scan{
					Order:    order,
					Pass:     pass,
					Tests:    tests,
					Selected: selected,
				})
			}
			if selected < 0 {
				break
			}
			ct := tests[selected]
			st.step++
			c := maxent.Constraint{
				Family: ct.Family,
				Values: ct.Values,
				Target: float64(ct.Observed) / float64(st.table.Total()),
			}
			if err := st.model.AddConstraint(c); err != nil {
				return err
			}
			st.accepted[ct.Family] = append(st.accepted[ct.Family],
				acceptedCell{values: ct.Values, count: ct.Observed})
			// When the accepted cells exhaust one of the family's known
			// marginals, the remaining sibling cells under that marginal
			// are exactly zero. Pin them with zero-target constraints:
			// otherwise the maximum-entropy solution lies on the boundary
			// of the exponential family and iterative scaling converges
			// only sublinearly.
			implied, err := impliedZeros(st.table, st.model, ct.Family, st.accepted[ct.Family])
			if err != nil {
				return err
			}
			for _, z := range implied {
				if err := st.model.AddConstraint(z); err != nil {
					return err
				}
			}
			// Figure 4: re-solve starting from the previous a-values.
			rep, err := st.model.Fit(st.opts.Solve)
			if err != nil {
				return fmt.Errorf("core: refit after %s: %w", c.Label(st.model.Names()), err)
			}
			if !rep.Converged {
				return fmt.Errorf("core: refit after %s did not converge (residual %g)",
					c.Label(st.model.Names()), rep.Residual)
			}
			if err := st.tester.MarkSignificant(ct.Family, ct.Values); err != nil {
				return err
			}
			st.res.Findings = append(st.res.Findings, Finding{
				Step:         st.step,
				Order:        order,
				Test:         ct,
				Constraint:   c,
				ImpliedZeros: implied,
				FitSweeps:    rep.Sweeps,
			})
			level.Accepted++
			if st.opts.MaxConstraints > 0 && st.step >= st.opts.MaxConstraints {
				st.res.Levels = append(st.res.Levels, level)
				return nil
			}
		}
		st.res.Levels = append(st.res.Levels, level)
	}
	return nil
}

// acceptedCell is one promoted cell of a family with its observed count.
type acceptedCell struct {
	values []int
	count  int64
}

// countScaleTol is the default solver tolerance at sample size N, as in
// standard log-linear fitters: residuals below ~0.01 expected counts are
// statistically meaningless, and boundary solutions (deterministic
// structure in the data) are only approached at O(1/sweeps), so demanding
// 1e-9 there would never finish.
func countScaleTol(total int64) float64 {
	tol := 0.01 / float64(total)
	if tol < 1e-9 {
		tol = 1e-9
	}
	return tol
}

// impliedZeros finds sibling cells of the family that are exactly zero by
// arithmetic: for each first-order marginal of the just-extended family, if
// the accepted cells consume the whole marginal count, every unconstrained
// sibling cell agreeing on that marginal has observed count zero and gets a
// zero-target constraint.
func impliedZeros(table contingency.Counts, model *maxent.Model, family contingency.VarSet, cells []acceptedCell) ([]maxent.Constraint, error) {
	members := family.Members()
	var out []maxent.Constraint
	for mi, pos := range members {
		// Group the accepted cells by their value on this member.
		sums := make(map[int]int64)
		for _, c := range cells {
			sums[c.values[mi]] += c.count
		}
		// Constraint order feeds block construction and therefore the
		// fit: visit member values in sorted order, never map order.
		vals := make([]int, 0, len(sums))
		for val := range sums {
			vals = append(vals, val)
		}
		sort.Ints(vals)
		for _, val := range vals {
			sum := sums[val]
			margin, err := table.MarginalCount(contingency.NewVarSet(pos), []int{val})
			if err != nil {
				return nil, err
			}
			if sum != margin {
				continue
			}
			// Margin exhausted: every other cell of the family with this
			// member value is zero.
			siblings := enumerateFamilyCells(table, members, mi, val)
			for _, sib := range siblings {
				if model.HasConstraint(family, sib) {
					continue
				}
				out = append(out, maxent.Constraint{
					Family: family,
					Values: append([]int(nil), sib...),
					Target: 0,
				})
			}
		}
	}
	return out, nil
}

// enumerateFamilyCells lists the family's value tuples whose mi-th member is
// pinned to val.
func enumerateFamilyCells(table contingency.Counts, members []int, mi, val int) [][]int {
	var out [][]int
	values := make([]int, len(members))
	values[mi] = val
	for {
		cp := append([]int(nil), values...)
		out = append(out, cp)
		// Odometer over all members except mi.
		i := len(members) - 1
		for i >= 0 {
			if i == mi {
				i--
				continue
			}
			values[i]++
			if values[i] < table.Card(members[i]) {
				break
			}
			values[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return out
}
