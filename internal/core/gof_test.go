package core

import (
	"math"
	"math/rand"
	"testing"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
	"pka/internal/synth"
)

func TestGoodnessOfFitValidation(t *testing.T) {
	tab := memoTable(t)
	m, _ := maxent.NewModel(nil, []int{2, 2})
	if _, err := GoodnessOfFit(tab, m); err == nil {
		t.Error("shape mismatch accepted")
	}
	empty := contingency.MustNew(nil, []int{3, 2, 2})
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GoodnessOfFit(empty, res.Model); err == nil {
		t.Error("empty table accepted")
	}
}

func TestGoodnessOfFitImprovesWithDiscovery(t *testing.T) {
	tab := memoTable(t)
	// Independence-only model.
	indep, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := indep.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	if _, err := indep.Fit(maxent.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	fitIndep, err := GoodnessOfFit(tab, indep)
	if err != nil {
		t.Fatal(err)
	}
	// Discovered model.
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fitDisc, err := GoodnessOfFit(tab, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if fitDisc.G2 >= fitIndep.G2 {
		t.Errorf("discovery did not reduce deviance: %.2f -> %.2f", fitIndep.G2, fitDisc.G2)
	}
	// The independence model must be rejected on the memo's data
	// (G2 ≈ 2·N·KL ≈ 2·3428·0.028 ≈ 192 at 7 df).
	if fitIndep.PValue > 1e-6 {
		t.Errorf("independence not rejected: p = %g", fitIndep.PValue)
	}
	// The discovered model must be acceptable.
	if fitDisc.PValue < 0.01 {
		t.Errorf("discovered model rejected: p = %g (G2 %.2f at %d df)",
			fitDisc.PValue, fitDisc.G2, fitDisc.DF)
	}
	// Deviance identity: G2 = 2·N·KL(emp ‖ model).
	emp, _ := tab.Probabilities()
	joint, _ := res.Model.Joint()
	kl, err := stats.KLDivergence(emp, joint)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * float64(tab.Total()) * kl; math.Abs(fitDisc.G2-want) > 1e-6*want+1e-9 {
		t.Errorf("G2 = %.6f, 2·N·KL = %.6f", fitDisc.G2, want)
	}
}

func TestGoodnessOfFitDFAccounting(t *testing.T) {
	tab := memoTable(t)
	res, err := Discover(tab, Options{MaxConstraints: 1})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := GoodnessOfFit(tab, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	// 12 cells − 1 − [(3-1)+(2-1)+(2-1)] first-order − 1 higher-order = 6.
	if fit.DF != 6 {
		t.Errorf("df = %d, want 6", fit.DF)
	}
}

func TestGoodnessOfFitSaturated(t *testing.T) {
	// A model with df <= 0 reports PValue 1 and (near) zero deviance when
	// it reproduces the data exactly.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(10, 0, 0)
	tab.Set(20, 0, 1)
	tab.Set(30, 1, 0)
	tab.Set(40, 1, 1)
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := GoodnessOfFit(tab, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PValue != 1 && fit.DF > 0 {
		// Either saturated (df<=0, p=1) or fitting well.
		if fit.PValue < 0.01 {
			t.Errorf("well-fitting model rejected: %+v", fit)
		}
	}
}

func TestGoodnessOfFitOnTruthScale(t *testing.T) {
	// Sampling from a known model: the discovered fit should be accepted
	// at conventional levels most of the time; seed fixed so this is
	// deterministic.
	truth, err := synth.Survey(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleTable(stats.NewRNG(3), 30000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := GoodnessOfFit(tab, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PValue < 1e-4 {
		t.Errorf("fit rejected on its own generating family: %+v", fit)
	}
}

// TestGoodnessOfFitDenseTableWideModel: a dense table whose joint space
// exceeds the dense-engine threshold fits through the factored engine —
// goodness-of-fit must then score over occupied cells instead of failing
// on the unmaterializable joint, and agree with the sparse backend.
func TestGoodnessOfFitDenseTableWideModel(t *testing.T) {
	const r = 21 // 2^21 cells, above the 2^20 dense-engine cap
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 2
	}
	table := contingency.MustNew(nil, cards)
	rng := rand.New(rand.NewSource(3))
	cell := make([]int, r)
	for n := 0; n < 2000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if err := table.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	model, err := maxent.NewModel(nil, cards)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.AddFirstOrderConstraints(table); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Fit(maxent.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	fit, err := GoodnessOfFit(table, model)
	if err != nil {
		t.Fatalf("dense table over wide model rejected: %v", err)
	}
	sp, err := contingency.FromDense(table)
	if err != nil {
		t.Fatal(err)
	}
	fitSp, err := GoodnessOfFit(sp, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.G2-fitSp.G2) > 1e-6*math.Abs(fit.G2) ||
		math.Abs(fit.X2-fitSp.X2) > 1e-6*math.Abs(fit.X2) {
		t.Errorf("dense backend fit %+v, sparse backend %+v", fit, fitSp)
	}
	if want := 1<<21 - 1 - r; fit.DF != want {
		t.Errorf("DF = %d, want %d", fit.DF, want)
	}
}
