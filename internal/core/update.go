package core

import (
	"fmt"

	"pka/internal/contingency"
	"pka/internal/mml"
)

// UpdateOutcome reports what an incremental Update did, for observability
// and for the serving layer's ingest responses.
type UpdateOutcome struct {
	// Result is the updated discovery result: the refitted model plus the
	// cumulative findings. On a no-op delta it is the previous result,
	// untouched (same pointer).
	Result *Result
	// Retargeted counts constraints whose targets were recomputed because
	// their family marginal moved.
	Retargeted int
	// Added counts newly significant constraints promoted by the re-scan.
	Added int
	// Rediscovered reports that a structural invalidation (an implied-zero
	// cell gaining support, or a non-converging warm refit) forced a full
	// from-scratch rediscovery instead of the incremental path.
	Rediscovered bool
	// Refit reports whether any solve ran at all: false exactly when the
	// delta left every marginal unchanged, in which case the previous
	// model keeps serving bit-identically.
	Refit bool
	// FitSweeps is the warm refit's sweep count (worst block on the
	// factored path).
	FitSweeps int
	// BlocksFit and BlocksSkipped mirror the maxent report: how many
	// constraint blocks the warm refit re-solved versus kept (factored
	// engines only).
	BlocksFit     int
	BlocksSkipped int
}

// Update folds a count delta into a previous discovery result without
// re-deriving the knowledge base from scratch. The delta must ALREADY be
// applied to table (via Sparse.ApplyBatch/ObserveBatch or dense Adds);
// deltas describes what changed so Update can tell which marginals moved.
//
// The incremental pipeline: constraints whose family marginals moved are
// retargeted in place (maxent.SetTarget), the model warm-refits from the
// previous coefficient vector (per-block on factored engines — unmoved
// blocks keep their converged solution), and the level-wise significance
// scan re-tests only families whose marginals moved, promoting any newly
// significant cells exactly as scratch discovery would.
//
// Update never demotes a constraint: previously significant structure is
// retargeted, not re-judged. Structural invalidations it cannot absorb —
// an implied-zero cell gaining support, or a warm refit that fails to
// converge — fall back to a full DiscoverCounts run on the updated table
// (Rediscovered reports this). A delta whose net effect on every marginal
// is zero returns the previous result untouched.
func Update(prev *Result, table contingency.Counts, deltas []contingency.CellDelta, opts Options) (*UpdateOutcome, error) {
	if prev == nil || prev.Model == nil {
		return nil, fmt.Errorf("core: Update needs a previous discovery result")
	}
	if table == nil {
		return nil, fmt.Errorf("core: Update needs the updated counts")
	}
	if table.R() != prev.Model.R() {
		return nil, fmt.Errorf("core: table has %d attributes, model has %d",
			table.R(), prev.Model.R())
	}
	if table.Total() == 0 {
		return nil, fmt.Errorf("core: empty contingency table after delta")
	}
	opts, err := opts.withDefaults(table.R())
	if err != nil {
		return nil, err
	}
	if opts.Solve.Tol == 0 {
		opts.Solve.Tol = countScaleTol(table.Total())
	}
	opts.Solve.Incremental = true

	net, err := aggregateDeltas(deltas, contingency.CardsOf(table))
	if err != nil {
		return nil, err
	}
	if len(net) == 0 {
		// Every cell's net delta is zero: no marginal moved, the previous
		// model still answers every query bit-identically.
		return &UpdateOutcome{Result: prev}, nil
	}
	moved := newMovedIndex(net)

	model := prev.Model.Clone()
	out := &UpdateOutcome{Refit: true}

	// Retarget moved constraints; a previously-implied zero gaining support
	// is a structural change the incremental path cannot absorb.
	for _, c := range model.Constraints() {
		if !moved.moved(c.Family) {
			continue
		}
		n, err := table.MarginalCount(c.Family, c.Values)
		if err != nil {
			return nil, err
		}
		if c.Target == 0 {
			if n > 0 {
				return rediscover(table, opts)
			}
			continue
		}
		target := float64(n) / float64(table.Total())
		if target == c.Target {
			continue
		}
		if err := model.SetTarget(c.Family, c.Values, target); err != nil {
			return nil, err
		}
		out.Retargeted++
	}

	// Warm refit from the previous coefficient vector: the factored solver
	// re-solves only blocks whose families were retargeted.
	rep, err := model.Fit(opts.Solve)
	if err != nil || !rep.Converged {
		return rediscover(table, opts)
	}
	out.FitSweeps = rep.Sweeps
	out.BlocksFit = rep.BlocksFit
	out.BlocksSkipped = rep.BlocksSkipped

	// Re-scan for newly significant cells, restricted to families whose
	// marginals moved (the only families whose tests can change outcome by
	// counts; N-driven shifts move every family anyway).
	tester, err := mml.NewTester(table, opts.MML)
	if err != nil {
		return nil, err
	}
	accepted := make(map[contingency.VarSet][]acceptedCell)
	var kept []contingency.VarSet
	for _, c := range model.Constraints() {
		if c.Order() < 2 || c.Target == 0 {
			continue
		}
		if err := tester.MarkSignificant(c.Family, c.Values); err != nil {
			return nil, err
		}
		n, err := table.MarginalCount(c.Family, c.Values)
		if err != nil {
			return nil, err
		}
		accepted[c.Family] = append(accepted[c.Family], acceptedCell{values: c.Values, count: n})
		kept = append(kept, c.Family)
	}
	var adj [][]bool
	res := &Result{
		Model:        model,
		Findings:     append([]Finding(nil), prev.Findings...),
		TotalSamples: table.Total(),
		Screen:       prev.Screen,
	}
	if opts.ScreenPairs {
		var rep *ScreenReport
		adj, rep, err = buildScreen(table, opts.ScreenAlpha, opts.Workers)
		if err != nil {
			return nil, err
		}
		if opts.ScreenCI {
			if err := applyCIScreen(table, adj, opts.ScreenCIAlpha, opts.Workers, rep); err != nil {
				return nil, err
			}
		}
		res.Screen = rep
	}
	r := table.R()
	tester.RestrictFamilies(func(order int) []contingency.VarSet {
		base := contingency.Combinations(r, order)
		if adj != nil {
			base = screenedFamilies(r, order, adj, kept)
		}
		out := base[:0:0]
		for _, vs := range base {
			if moved.moved(vs) || hasFamily(kept, vs) {
				out = append(out, vs)
			}
		}
		return out
	})

	st := &scanState{
		table:    table,
		model:    model,
		tester:   tester,
		opts:     opts,
		res:      res,
		accepted: accepted,
		step:     len(prev.Findings),
	}
	if err := st.run(); err != nil {
		// The incremental scan can fail to refit when the warm coefficients
		// sit badly for a new constraint; scratch discovery is the safe
		// fallback, exactly as for non-convergence above.
		return rediscover(table, opts)
	}
	out.Added = len(res.Findings) - len(prev.Findings)
	out.Result = res
	return out, nil
}

// rediscover is the structural-change fallback: a full scratch run over the
// updated table.
func rediscover(table contingency.Counts, opts Options) (*UpdateOutcome, error) {
	res, err := DiscoverCounts(table, opts)
	if err != nil {
		return nil, err
	}
	return &UpdateOutcome{Result: res, Rediscovered: true, Refit: true}, nil
}

// netCell is one aggregated cell delta.
type netCell struct {
	cell  []int
	delta int64
}

// aggregateDeltas validates coordinates and folds duplicate cells, dropping
// cells whose deltas cancel.
func aggregateDeltas(deltas []contingency.CellDelta, cards []int) ([]netCell, error) {
	type slot struct{ idx int }
	seen := make(map[string]slot, len(deltas))
	var out []netCell
	var key []byte
	for i, d := range deltas {
		if len(d.Cell) != len(cards) {
			return nil, fmt.Errorf("core: delta %d has %d coordinates, want %d",
				i, len(d.Cell), len(cards))
		}
		for p, v := range d.Cell {
			if v < 0 || v >= cards[p] {
				return nil, fmt.Errorf("core: delta %d coordinate %d out of range [0,%d)",
					i, v, cards[p])
			}
		}
		key = appendCellKey(key[:0], d.Cell)
		if s, ok := seen[string(key)]; ok {
			out[s.idx].delta += d.Delta
			continue
		}
		seen[string(key)] = slot{idx: len(out)}
		out = append(out, netCell{cell: append([]int(nil), d.Cell...), delta: d.Delta})
	}
	nz := out[:0]
	for _, nc := range out {
		if nc.delta != 0 {
			nz = append(nz, nc)
		}
	}
	return nz, nil
}

// movedIndex answers "did this family's marginal move under the delta?"
// by projecting the aggregated cell deltas onto the family, memoized per
// family. A family moves iff some projected cell's net delta is nonzero.
type movedIndex struct {
	net  []netCell
	memo map[contingency.VarSet]bool
}

func newMovedIndex(net []netCell) *movedIndex {
	return &movedIndex{net: net, memo: make(map[contingency.VarSet]bool)}
}

func (mi *movedIndex) moved(vs contingency.VarSet) bool {
	if m, ok := mi.memo[vs]; ok {
		return m
	}
	members := vs.Members()
	sums := make(map[string]int64, len(mi.net))
	var key []byte
	for _, nc := range mi.net {
		key = key[:0]
		for _, p := range members {
			key = appendValueKey(key, nc.cell[p])
		}
		sums[string(key)] += nc.delta
	}
	m := false
	for _, s := range sums {
		if s != 0 {
			m = true
			break
		}
	}
	mi.memo[vs] = m
	return m
}

// appendValueKey appends one cell coordinate to a map key, full width:
// attribute cardinalities are bounded only by the counts backend (a single
// sparse-table attribute may hold up to 2^64 values), so truncating the
// encoding would alias distinct cells.
func appendValueKey(key []byte, v int) []byte {
	u := uint64(v)
	return append(key,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// appendCellKey encodes a full cell as a map key.
func appendCellKey(key []byte, cell []int) []byte {
	for _, v := range cell {
		key = appendValueKey(key, v)
	}
	return key
}

// hasFamily reports membership of vs in the kept-constraint family list.
func hasFamily(fams []contingency.VarSet, vs contingency.VarSet) bool {
	for _, f := range fams {
		if f == vs {
			return true
		}
	}
	return false
}
