package core

import (
	"testing"

	"pka/internal/maxent"
	"pka/internal/mml"
)

func TestDiscoverWithJacobiSolver(t *testing.T) {
	// The solver choice flows through Options.Solve and reaches the same
	// findings (the selection sequence depends only on fitted predictions,
	// which are solver-independent at convergence).
	tab := memoTable(t)
	gs, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := Discover(tab, Options{
		Solve: maxent.SolveOptions{Method: maxent.Jacobi, MaxSweeps: 200000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Findings) != len(jc.Findings) {
		t.Fatalf("GS found %d, Jacobi %d", len(gs.Findings), len(jc.Findings))
	}
	for i := range gs.Findings {
		if gs.Findings[i].Test.Family != jc.Findings[i].Test.Family {
			t.Errorf("finding %d differs between solvers", i)
		}
	}
}

func TestDiscoverWithStricterPrior(t *testing.T) {
	// A higher p(H2') makes significance easier (m2 shrinks), so findings
	// can only grow.
	tab := memoTable(t)
	base, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Discover(tab, Options{MML: mml.Config{PriorH2: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(eager.Findings) < len(base.Findings) {
		t.Errorf("eager prior found %d < default %d", len(eager.Findings), len(base.Findings))
	}
	// A very skeptical prior can only shrink the set.
	skeptic, err := Discover(tab, Options{MML: mml.Config{PriorH2: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if len(skeptic.Findings) > len(base.Findings) {
		t.Errorf("skeptical prior found %d > default %d", len(skeptic.Findings), len(base.Findings))
	}
}

func TestDiscoverIncludeForcedMode(t *testing.T) {
	// The literal-memo mode accepts forced cells; it must still terminate
	// and satisfy all its constraints.
	tab := memoTable(t)
	res, err := Discover(tab, Options{MML: mml.Config{PriorH2: 0.5, IncludeForced: true}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Discover(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) < len(def.Findings) {
		t.Errorf("forced mode found %d < default %d", len(res.Findings), len(def.Findings))
	}
	resid, err := res.Model.Residual()
	if err != nil {
		t.Fatal(err)
	}
	if resid > 0.01/float64(tab.Total())+1e-9 {
		t.Errorf("forced-mode residual %g", resid)
	}
}

func TestDiscoverParallelMatchesSequential(t *testing.T) {
	tab := memoTable(t)
	seq, err := Discover(tab, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := Discover(tab, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Findings) != len(seq.Findings) {
			t.Fatalf("workers=%d: %d findings vs %d sequential",
				workers, len(par.Findings), len(seq.Findings))
		}
		for i := range seq.Findings {
			a, b := seq.Findings[i], par.Findings[i]
			if a.Test.Family != b.Test.Family || a.Test.Delta != b.Test.Delta {
				t.Errorf("workers=%d: finding %d differs", workers, i)
			}
		}
	}
}

func TestOptionsDefaultsValidation(t *testing.T) {
	if _, err := (Options{MaxOrder: 1}).withDefaults(3); err == nil {
		t.Error("MaxOrder 1 accepted")
	}
	if _, err := (Options{MaxOrder: 4}).withDefaults(3); err == nil {
		t.Error("MaxOrder above R accepted")
	}
	o, err := (Options{}).withDefaults(3)
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxOrder != 3 || o.MML.PriorH2 != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
}
