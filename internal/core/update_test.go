package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pka/internal/contingency"
	"pka/internal/maxent"
)

// corrRow draws one row over [3,2,2,3] with the block-structured
// correlations the factored tests use: attr 1 tracks attr 0, attr 3 tracks
// attr 2.
func corrRow(rng *rand.Rand, cell []int) {
	cell[0] = rng.Intn(3)
	cell[1] = cell[0] % 2
	if rng.Float64() < 0.3 {
		cell[1] = rng.Intn(2)
	}
	cell[2] = rng.Intn(2)
	cell[3] = cell[2]
	if rng.Float64() < 0.25 {
		cell[3] = rng.Intn(3)
	}
}

func corrRows(rng *rand.Rand, n int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, 4)
		corrRow(rng, rows[i])
	}
	return rows
}

func sparseFrom(t *testing.T, rows [][]int) *contingency.Sparse {
	t.Helper()
	s, err := contingency.NewSparse(nil, []int{3, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch(rows); err != nil {
		t.Fatal(err)
	}
	return s
}

func asDeltas(rows [][]int) []contingency.CellDelta {
	out := make([]contingency.CellDelta, len(rows))
	for i, r := range rows {
		out[i] = contingency.CellDelta{Cell: r, Delta: 1}
	}
	return out
}

// constraintKey identifies a constraint up to its target.
func constraintKey(c maxent.Constraint) string {
	return fmt.Sprintf("%v:%v", c.Family, c.Values)
}

// TestUpdateMatchesScratch drives K incremental batches through Update and
// checks the running model against a scratch DiscoverCounts on the full
// data after every batch: every joint cell probability within tolerance,
// and — whenever the constraint sets coincide — targets bit-identical.
func TestUpdateMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := corrRows(rng, 4000)
	table := sparseFrom(t, base)
	opts := Options{MaxOrder: 2}
	res, err := DiscoverCounts(table, opts)
	if err != nil {
		t.Fatal(err)
	}
	all := append([][]int(nil), base...)

	for batch := 0; batch < 4; batch++ {
		delta := corrRows(rng, 40)
		all = append(all, delta...)
		if err := table.ObserveBatch(delta); err != nil {
			t.Fatal(err)
		}
		out, err := Update(res, table, asDeltas(delta), opts)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !out.Refit {
			t.Fatalf("batch %d: a row batch must refit", batch)
		}
		res = out.Result

		scratch, err := DiscoverCounts(sparseFrom(t, all), opts)
		if err != nil {
			t.Fatal(err)
		}

		// Constraint-set comparison.
		upd := make(map[string]float64)
		for _, c := range res.Model.Constraints() {
			upd[constraintKey(c)] = c.Target
		}
		same := len(upd) == scratch.Model.NumConstraints()
		for _, c := range scratch.Model.Constraints() {
			target, ok := upd[constraintKey(c)]
			if !ok {
				same = false
				continue
			}
			if same && target != c.Target {
				t.Errorf("batch %d: constraint %s target %g (update) vs %g (scratch)",
					batch, c.Label(res.Model.Names()), target, c.Target)
			}
		}
		if !same {
			t.Logf("batch %d: constraint sets diverged (update %d, scratch %d) — tolerance check only",
				batch, len(upd), scratch.Model.NumConstraints())
		}

		ju, err := res.Model.Joint()
		if err != nil {
			t.Fatal(err)
		}
		js, err := scratch.Model.Joint()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ju {
			if math.Abs(ju[i]-js[i]) > 1e-3 {
				t.Fatalf("batch %d: joint cell %d: update %.8f vs scratch %.8f",
					batch, i, ju[i], js[i])
			}
		}
	}
}

// TestUpdateNoOpDeltaKeepsResult: a delta whose net effect is zero must
// return the previous result untouched — the bit-identity half of the
// incremental contract.
func TestUpdateNoOpDeltaKeepsResult(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table := sparseFrom(t, corrRows(rng, 2000))
	res, err := DiscoverCounts(table, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []contingency.CellDelta{
		{Cell: []int{0, 0, 0, 0}, Delta: 3},
		{Cell: []int{0, 0, 0, 0}, Delta: -3},
	}
	// Net-zero: nothing applied to the table either.
	out, err := Update(res, table, deltas, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Refit || out.Rediscovered || out.Retargeted != 0 || out.Added != 0 {
		t.Errorf("no-op delta produced work: %+v", out)
	}
	if out.Result != res {
		t.Error("no-op delta must return the previous result pointer")
	}
}

// TestUpdateImpliedZeroGainingSupportRediscovers: observing a cell the
// model pinned to zero is a structural change; Update must fall back to a
// full rediscovery and end up equivalent to scratch.
func TestUpdateImpliedZeroGainingSupportRediscovers(t *testing.T) {
	// Two perfectly correlated binary attributes: discovery pins the
	// off-diagonal cells to zero.
	tab, err := contingency.NewSparse(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]int
	for i := 0; i < 120; i++ {
		rows = append(rows, []int{i % 2, i % 2})
	}
	if err := tab.ObserveBatch(rows); err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverCounts(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, c := range res.Model.Constraints() {
		if c.Target == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("setup: expected implied-zero constraints on perfectly correlated data")
	}

	delta := [][]int{{0, 1}}
	if err := tab.ObserveBatch(delta); err != nil {
		t.Fatal(err)
	}
	out, err := Update(res, tab, asDeltas(delta), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rediscovered {
		t.Error("implied-zero cell gaining support must force rediscovery")
	}
	scratch, err := DiscoverCounts(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ju, err := out.Result.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	js, err := scratch.Model.Joint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ju {
		if ju[i] != js[i] {
			t.Errorf("rediscovered joint cell %d = %g, scratch %g", i, ju[i], js[i])
		}
	}
}

// TestUpdateRejectsBadDeltas: coordinate validation happens before any
// model work.
func TestUpdateRejectsBadDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	table := sparseFrom(t, corrRows(rng, 1000))
	res, err := DiscoverCounts(table, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Update(res, table, []contingency.CellDelta{{Cell: []int{9, 0, 0, 0}, Delta: 1}}, Options{}); err == nil {
		t.Error("out-of-range delta accepted")
	}
	if _, err := Update(res, table, []contingency.CellDelta{{Cell: []int{0, 0}, Delta: 1}}, Options{}); err == nil {
		t.Error("short delta cell accepted")
	}
	if _, err := Update(nil, table, nil, Options{}); err == nil {
		t.Error("nil previous result accepted")
	}
}
