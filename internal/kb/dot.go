package kb

import (
	"fmt"
	"sort"
	"strings"
)

// DependencyDOT renders the discovered dependency structure as a Graphviz
// graph: attributes are nodes; every order-2 constraint family becomes an
// edge labeled with the number of significant cells; order-3+ families
// become a diamond hyper-node connected to their members.
//
// The output is deterministic and renders with `dot -Tsvg`.
func (k *KnowledgeBase) DependencyDOT() string {
	type famInfo struct {
		members []int
		cells   int
	}
	fams := make(map[string]*famInfo)
	for _, c := range k.model.Constraints() {
		if c.Order() < 2 {
			continue
		}
		members := c.Family.Members()
		key := fmt.Sprint(members)
		fi, ok := fams[key]
		if !ok {
			fi = &famInfo{members: members}
			fams[key] = fi
		}
		fi.cells++
	}
	keys := make([]string, 0, len(fams))
	for key := range fams {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	var b strings.Builder
	b.WriteString("graph dependencies {\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for i := 0; i < k.schema.R(); i++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, k.schema.Attr(i).Name)
	}
	hyper := 0
	for _, key := range keys {
		fi := fams[key]
		if len(fi.members) == 2 {
			fmt.Fprintf(&b, "  n%d -- n%d [label=\"%d\"];\n",
				fi.members[0], fi.members[1], fi.cells)
			continue
		}
		fmt.Fprintf(&b, "  h%d [shape=diamond, label=\"%d\"];\n", hyper, fi.cells)
		for _, m := range fi.members {
			fmt.Fprintf(&b, "  h%d -- n%d;\n", hyper, m)
		}
		hyper++
	}
	b.WriteString("}\n")
	return b.String()
}
