package kb

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pka/internal/snapshot"
)

// TestLoadInvalidFormat drives malformed JSON-path inputs through Load
// and checks each fails with the named ErrInvalidFormat, so callers can
// branch with errors.Is instead of matching message text.
func TestLoadInvalidFormat(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"truncated json", "{"},
		{"not json", "this is not a knowledge base"},
		{"binary garbage", "\x00\x01\x02\x03\x04"},
		{"wrong version", `{"version": 99, "attributes": [], "model": {}}`},
		{"missing version", `{"attributes": [], "model": {}}`},
		{"bad schema", `{"version": 1, "attributes": [{"name": "", "values": ["a"]}], "model": {}}`},
		{"bad model", `{"version": 1, "attributes": [{"name": "A", "values": ["a", "b"]}], "model": "nope"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.input))
			if !errors.Is(err, ErrInvalidFormat) {
				t.Errorf("got %v, want errors.Is(err, ErrInvalidFormat)", err)
			}
		})
	}
}

// TestBinaryRoundTrip checks SaveBinary/LoadBinary preserve the engine:
// the restored KB explains and answers like the original, and the binary
// path surfaces the snapshot package's named errors rather than
// ErrInvalidFormat.
func TestBinaryRoundTrip(t *testing.T) {
	k := memoKB(t)
	var buf bytes.Buffer
	if err := k.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !k2.Schema().Equal(k.Schema()) {
		t.Error("restored schema differs")
	}
	p1, err := k.Probability(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k2.Probability(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("restored probability %v differs from live %v", p2, p1)
	}

	if _, err := LoadBinary(strings.NewReader("not a snapshot")); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Errorf("binary-path error = %v, want snapshot.ErrBadMagic", err)
	}
}

// TestLoadAnyDispatch checks the format sniffing: JSON and PKAS inputs
// both load through LoadAny, and each format's own named error survives
// the dispatch.
func TestLoadAnyDispatch(t *testing.T) {
	k := memoKB(t)
	var jsonBuf, binBuf bytes.Buffer
	if err := k.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := k.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(bytes.NewReader(jsonBuf.Bytes())); err != nil {
		t.Errorf("LoadAny(json): %v", err)
	}
	if _, err := LoadAny(bytes.NewReader(binBuf.Bytes())); err != nil {
		t.Errorf("LoadAny(binary): %v", err)
	}
	if _, err := LoadAny(strings.NewReader("{garbage")); !errors.Is(err, ErrInvalidFormat) {
		t.Errorf("LoadAny(bad json) = %v, want ErrInvalidFormat", err)
	}
	if _, err := LoadAny(bytes.NewReader(append([]byte(snapshot.Magic), 0x00))); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("LoadAny(truncated snapshot) = %v, want snapshot.ErrTruncated", err)
	}
}
