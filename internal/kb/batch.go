package kb

import (
	"fmt"
	"strconv"

	"pka/internal/contingency"
)

// Batch answers a group of related queries against one knowledge base while
// sharing the engine work they have in common. Queries are grouped by their
// resolved evidence set: each distinct set is validated and resolved once,
// its probability (the shared conditional denominator) is evaluated once,
// and — on dense engines — every single-target conditional over the same
// (evidence, attribute) pair is served from one batch conditional-slice
// sweep (the engine's MarginalGiven path) instead of one pinned sum per
// query. Joint probabilities, distributions, and MPE completions are
// likewise deduplicated by canonical key.
//
// Every float64 a Batch returns is bit-identical to the corresponding
// KnowledgeBase method: cache hits replay values the per-query path would
// recompute, and the dense batch sweep is bit-identical to the pinned sum
// per cell (see sumprod.Compiled). On factored engines the conditional
// fast path is disabled — block combination order differs between the
// sweep and the pinned product — so only denominator and result reuse
// apply there.
//
// A Batch is not safe for concurrent use; create one per query group. The
// knowledge base underneath may be shared freely.
type Batch struct {
	k     *KnowledgeBase
	evals int

	raw   map[string]*batchEvidence // rendered given slice -> resolved evidence
	canon map[string]*batchEvidence // canonical (vars, values) key -> shared state
	probs map[string]float64        // canonical key -> eng.Prob value
	dists map[string][]float64      // canonical key + attr pos -> slice numerators
	mpes  map[string]Explanation    // canonical key -> MPE completion
	// keyBuf is the reusable scratch every cache key is rendered into: map
	// lookups go through the compiler's no-copy string(keyBuf) conversion,
	// so the serving hot path allocates a key string only when inserting a
	// genuinely new entry. (A Batch is single-goroutine by contract, so one
	// buffer suffices.)
	keyBuf []byte
}

// batchEvidence is one resolved evidence set shared by all queries that
// name it (in any assignment order).
type batchEvidence struct {
	vs     contingency.VarSet
	values []int
	key    string
	fixed  []int // lazily built full-width clamp vector for sweep calls
}

// NewBatch creates an empty batch session over the knowledge base.
func NewBatch(k *KnowledgeBase) *Batch {
	return &Batch{
		k:     k,
		raw:   make(map[string]*batchEvidence),
		canon: make(map[string]*batchEvidence),
		probs: make(map[string]float64),
		dists: make(map[string][]float64),
		mpes:  make(map[string]Explanation),
	}
}

// Evals returns the number of engine evaluations (pinned sums, batch
// marginal sweeps, and MPE argmax passes) performed so far — the measure
// batching drives down versus one-query-at-a-time serving.
func (b *Batch) Evals() int { return b.evals }

// canonKey renders a resolved assignment canonically into the batch's key
// scratch; the returned slice is valid until the next key rendering.
func (b *Batch) canonKey(vs contingency.VarSet, values []int) []byte {
	dst := vs.AppendKey(b.keyBuf[:0])
	for _, v := range values {
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	b.keyBuf = dst
	return dst
}

// rawKey renders an assignment slice order-sensitively into the key
// scratch, for the resolution memo (quoting keeps distinct slices from
// colliding). Valid until the next key rendering.
func (b *Batch) rawKey(assigns []Assignment) []byte {
	dst := b.keyBuf[:0]
	for _, a := range assigns {
		dst = strconv.AppendQuote(dst, a.Attr)
		dst = append(dst, '=')
		dst = strconv.AppendQuote(dst, a.Value)
		dst = append(dst, ',')
	}
	b.keyBuf = dst
	return dst
}

// evidenceFor resolves an evidence slice once per distinct ordering and
// shares the canonical state across orderings of the same set.
func (b *Batch) evidenceFor(given []Assignment) (*batchEvidence, error) {
	rk := b.rawKey(given)
	if ev, ok := b.raw[string(rk)]; ok { // no-copy lookup
		return ev, nil
	}
	rkStr := string(rk) // materialize before the scratch is reused below
	vs, values, err := b.k.resolve(given)
	if err != nil {
		return nil, err
	}
	ck := b.canonKey(vs, values)
	ev, ok := b.canon[string(ck)]
	if !ok {
		ev = &batchEvidence{vs: vs, values: values, key: string(ck)}
		b.canon[ev.key] = ev
	}
	b.raw[rkStr] = ev
	return ev, nil
}

// prob evaluates eng.Prob once per canonical assignment, consulting the
// knowledge base's cross-request cache before touching the engine (a
// cross-request hit does not count as an engine eval).
func (b *Batch) prob(vs contingency.VarSet, values []int) (float64, error) {
	key := b.canonKey(vs, values)
	if p, ok := b.probs[string(key)]; ok { // no-copy lookup
		return p, nil
	}
	p, hit, err := b.k.cachedProb(vs, values)
	if err != nil {
		return 0, err
	}
	if !hit {
		b.evals++
	}
	b.probs[string(key)] = p
	return p, nil
}

// clampVector returns the evidence's full-width fixed slice, built once.
func (b *Batch) clampVector(ev *batchEvidence) []int {
	if ev.fixed == nil {
		ev.fixed = make([]int, b.k.schema.R())
		for i := range ev.fixed {
			ev.fixed[i] = -1
		}
		for i, p := range ev.vs.Members() {
			ev.fixed[p] = ev.values[i]
		}
	}
	return ev.fixed
}

// distNums returns the conditional-slice numerators of attribute pos under
// the evidence — one batch sweep per (evidence, attribute) pair.
func (b *Batch) distNums(ev *batchEvidence, pos int) ([]float64, error) {
	key := append(b.keyBuf[:0], ev.key...)
	key = append(key, '|')
	key = strconv.AppendInt(key, int64(pos), 10)
	b.keyBuf = key
	if nums, ok := b.dists[string(key)]; ok { // no-copy lookup
		return nums, nil
	}
	nums, hit, err := b.k.cachedMarginal(ev.vs, ev.values, pos, func() []int { return b.clampVector(ev) })
	if err != nil {
		return nil, err
	}
	if !hit {
		b.evals++
	}
	b.dists[string(key)] = nums
	return nums, nil
}

// Probability is KnowledgeBase.Probability with joint deduplication.
func (b *Batch) Probability(assigns ...Assignment) (float64, error) {
	if len(assigns) == 0 {
		return 1, nil
	}
	vs, values, err := b.k.resolve(assigns)
	if err != nil {
		return 0, err
	}
	return b.prob(vs, values)
}

// Conditional is KnowledgeBase.Conditional with the denominator shared per
// evidence set and — on dense engines — single-target numerators served
// from the batch conditional-slice sweep.
func (b *Batch) Conditional(target, given []Assignment) (float64, error) {
	if len(target) == 0 {
		return 1, nil
	}
	ev, err := b.evidenceFor(given)
	if err != nil {
		return 0, err
	}
	denom := 1.0
	if len(given) > 0 {
		if denom, err = b.prob(ev.vs, ev.values); err != nil {
			return 0, err
		}
	}
	if denom == 0 {
		return 0, errZeroEvidence(given)
	}
	if len(target) == 1 && !b.k.eng.Factored() {
		if a, pos, aerr := b.k.schema.AttrByName(target[0].Attr); aerr == nil && !ev.vs.Has(pos) {
			vi := a.ValueIndex(target[0].Value)
			if vi < 0 {
				return 0, fmt.Errorf("kb: attribute %q has no value %q", target[0].Attr, target[0].Value)
			}
			nums, err := b.distNums(ev, pos)
			if err != nil {
				return 0, err
			}
			return nums[vi] / denom, nil
		}
		// Unknown attributes fall through so the joint path reports the
		// same error the per-query method would; targets overlapping the
		// evidence fall through to its duplicate/contradiction handling.
	}
	both := make([]Assignment, 0, len(target)+len(given))
	both = append(both, target...)
	both = append(both, given...)
	num, err := b.Probability(both...)
	if err != nil {
		return 0, err
	}
	return num / denom, nil
}

// Distribution is KnowledgeBase.Distribution with the denominator and the
// numerator sweep shared across the batch.
func (b *Batch) Distribution(attr string, given ...Assignment) (map[string]float64, error) {
	a, pos, err := b.k.schema.AttrByName(attr)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	for _, g := range given {
		if g.Attr == attr {
			return nil, fmt.Errorf("kb: cannot condition %q on itself", attr)
		}
	}
	ev, err := b.evidenceFor(given)
	if err != nil {
		return nil, err
	}
	denom := 1.0
	if len(given) > 0 {
		if denom, err = b.prob(ev.vs, ev.values); err != nil {
			return nil, err
		}
		if denom == 0 {
			return nil, errZeroEvidence(given)
		}
	}
	nums, err := b.distNums(ev, pos)
	if err != nil {
		return nil, err
	}
	return buildDistribution(a, nums, denom)
}

// MostLikely is KnowledgeBase.MostLikely over the batch's shared sweeps.
func (b *Batch) MostLikely(attr string, given ...Assignment) (string, float64, error) {
	a, _, err := b.k.schema.AttrByName(attr)
	if err != nil {
		return "", 0, fmt.Errorf("kb: %w", err)
	}
	dist, err := b.Distribution(attr, given...)
	if err != nil {
		return "", 0, err
	}
	best, bestP := mostLikelyFrom(a, dist)
	return best, bestP, nil
}

// Lift is KnowledgeBase.Lift with the base rate and the conditional's
// denominator both cached across the batch.
func (b *Batch) Lift(target Assignment, given ...Assignment) (float64, error) {
	base, err := b.Probability(target)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, fmt.Errorf("kb: target %v has zero base probability", target)
	}
	cond, err := b.Conditional([]Assignment{target}, given)
	if err != nil {
		return 0, err
	}
	return cond / base, nil
}

// MostProbableExplanation is KnowledgeBase.MostProbableExplanation with the
// full completion cached per evidence set.
func (b *Batch) MostProbableExplanation(given ...Assignment) (Explanation, error) {
	ev, err := b.evidenceFor(given)
	if err != nil {
		return Explanation{}, err
	}
	if exp, ok := b.mpes[ev.key]; ok {
		return copyExplanation(exp), nil
	}
	// Mirrors the per-query method: the evidence probability comes from the
	// engine even when the evidence is empty (where it is the model total).
	pEvidence, err := b.prob(ev.vs, ev.values)
	if err != nil {
		return Explanation{}, err
	}
	if pEvidence == 0 {
		return Explanation{}, fmt.Errorf("kb: evidence %v has zero probability", given)
	}
	exp, hit, err := b.k.cachedMPE(ev.vs, ev.values, func() []int { return b.clampVector(ev) })
	if err != nil {
		return Explanation{}, err
	}
	if !hit {
		b.evals++
	}
	b.mpes[ev.key] = exp
	return copyExplanation(exp), nil
}

// copyExplanation guards the cached completion from caller mutation.
func copyExplanation(e Explanation) Explanation {
	return Explanation{
		Assignments: append([]Assignment(nil), e.Assignments...),
		Probability: e.Probability,
	}
}
