package kb

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/dataset"
	"pka/internal/maxent"
)

// memoSchema mirrors the memo's questionnaire.
func memoSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema([]dataset.Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
}

// memoKB runs full discovery on the memo data and wraps it in a KB.
func memoKB(t testing.TB) *KnowledgeBase {
	t.Helper()
	tab := contingency.MustNew(
		[]string{"SMOKING", "CANCER", "FAMILY HISTORY"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(memoSchema(t), res.Model)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	schema := memoSchema(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	m, _ := maxent.NewModel(nil, []int{3, 2})
	if _, err := New(schema, m); err == nil {
		t.Error("arity mismatch accepted")
	}
	m2, _ := maxent.NewModel(nil, []int{3, 2, 3})
	if _, err := New(schema, m2); err == nil {
		t.Error("cardinality mismatch accepted")
	}
}

func TestProbabilityMatchesEmpiricalMarginals(t *testing.T) {
	k := memoKB(t)
	// First-order marginals are constraints, so they are exact.
	cases := []struct {
		a    Assignment
		want float64
	}{
		{Assignment{"SMOKING", "Smoker"}, 1290.0 / 3428},
		{Assignment{"CANCER", "Yes"}, 433.0 / 3428},
		{Assignment{"FAMILY HISTORY", "No"}, 1648.0 / 3428},
	}
	for _, c := range cases {
		got, err := k.Probability(c.a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-5 {
			t.Errorf("P(%v) = %.6f, want %.6f", c.a, got, c.want)
		}
	}
	// Empty query is certain.
	if p, err := k.Probability(); err != nil || p != 1 {
		t.Errorf("P() = %g, %v", p, err)
	}
}

func TestProbabilityErrors(t *testing.T) {
	k := memoKB(t)
	if _, err := k.Probability(Assignment{"NOPE", "x"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := k.Probability(Assignment{"CANCER", "Maybe"}); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := k.Probability(
		Assignment{"CANCER", "Yes"}, Assignment{"CANCER", "No"}); err == nil {
		t.Error("contradictory assignments accepted")
	}
	// Repeated consistent assignment is fine.
	if _, err := k.Probability(
		Assignment{"CANCER", "Yes"}, Assignment{"CANCER", "Yes"}); err != nil {
		t.Errorf("consistent duplicate rejected: %v", err)
	}
}

func TestConditionalIsRatioOfJoints(t *testing.T) {
	k := memoKB(t)
	target := []Assignment{{"CANCER", "Yes"}}
	given := []Assignment{{"SMOKING", "Smoker"}, {"FAMILY HISTORY", "Yes"}}
	cond, err := k.Conditional(target, given)
	if err != nil {
		t.Fatal(err)
	}
	num, err := k.Probability(append(append([]Assignment{}, target...), given...)...)
	if err != nil {
		t.Fatal(err)
	}
	den, err := k.Probability(given...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-num/den) > 1e-12 {
		t.Errorf("conditional %.9f != ratio %.9f", cond, num/den)
	}
	// Empty target is certain.
	if p, err := k.Conditional(nil, given); err != nil || p != 1 {
		t.Errorf("P(∅|...) = %g, %v", p, err)
	}
}

func TestMemoHeadlineQuery(t *testing.T) {
	// The memo's motivating relationship: smoking raises cancer risk.
	// Empirically P(cancer|smoker) = 240/1290 = .186 vs base rate
	// 433/3428 = .126. The discovered model must capture it because
	// N^AB_11 is the most significant constraint.
	k := memoKB(t)
	cond, err := k.Conditional(
		[]Assignment{{"CANCER", "Yes"}},
		[]Assignment{{"SMOKING", "Smoker"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-240.0/1290) > 5e-4 {
		t.Errorf("P(cancer|smoker) = %.4f, empirical %.4f", cond, 240.0/1290)
	}
	lift, err := k.Lift(Assignment{"CANCER", "Yes"}, Assignment{"SMOKING", "Smoker"})
	if err != nil {
		t.Fatal(err)
	}
	if lift < 1.3 || lift > 1.6 {
		t.Errorf("lift = %.3f, want ≈1.47", lift)
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	k := memoKB(t)
	dist, err := k.Distribution("SMOKING", Assignment{"CANCER", "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 3 {
		t.Fatalf("distribution has %d entries", len(dist))
	}
	sum := 0.0
	for _, p := range dist {
		if p < 0 {
			t.Errorf("negative conditional %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g", sum)
	}
	if _, err := k.Distribution("CANCER", Assignment{"CANCER", "Yes"}); err == nil {
		t.Error("conditioning on self accepted")
	}
	if _, err := k.Distribution("NOPE"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestMostLikely(t *testing.T) {
	k := memoKB(t)
	v, p, err := k.MostLikely("CANCER", Assignment{"SMOKING", "Smoker"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "No" {
		t.Errorf("most likely cancer status for a smoker = %q (p=%.3f), want No", v, p)
	}
	if p < 0.5 {
		t.Errorf("winner probability %.3f suspiciously low", p)
	}
	if _, _, err := k.MostLikely("NOPE"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestConditionalZeroEvidence(t *testing.T) {
	// Build a KB whose model has a structural zero, then condition on it.
	tab := contingency.MustNew([]string{"X", "Y"}, []int{2, 2})
	tab.Set(50, 0, 0)
	tab.Set(50, 1, 1)
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"a", "b"}},
		{Name: "Y", Values: []string{"a", "b"}},
	})
	k, err := New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	// P(X=a, Y=b) is structurally zero.
	if _, err := k.Conditional(
		[]Assignment{{"Y", "a"}},
		[]Assignment{{"X", "a"}, {"Y", "b"}}); err == nil {
		t.Error("conditioning on zero-probability evidence accepted")
	}
}

func TestChainRuleProperty(t *testing.T) {
	// P(a,b) = P(a|b)·P(b) for random assignment pairs.
	k := memoKB(t)
	f := func(ai, vi, bi, wi uint8) bool {
		a := k.Schema().Attr(int(ai) % 3)
		b := k.Schema().Attr(int(bi) % 3)
		if a.Name == b.Name {
			return true
		}
		x := Assignment{a.Name, a.Values[int(vi)%a.Card()]}
		y := Assignment{b.Name, b.Values[int(wi)%b.Card()]}
		pxy, err := k.Probability(x, y)
		if err != nil {
			return false
		}
		py, err := k.Probability(y)
		if err != nil {
			return false
		}
		if py == 0 {
			return true
		}
		cond, err := k.Conditional([]Assignment{x}, []Assignment{y})
		if err != nil {
			return false
		}
		return math.Abs(pxy-cond*py) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbabilityOrderIndependentProperty(t *testing.T) {
	// P(a, b) == P(b, a): assignment order must not matter.
	k := memoKB(t)
	f := func(ai, vi, bi, wi uint8) bool {
		a := k.Schema().Attr(int(ai) % 3)
		b := k.Schema().Attr(int(bi) % 3)
		x := Assignment{a.Name, a.Values[int(vi)%a.Card()]}
		y := Assignment{b.Name, b.Values[int(wi)%b.Card()]}
		if a.Name == b.Name && x.Value != y.Value {
			return true // contradictory; both orders must error equally
		}
		p1, err1 := k.Probability(x, y)
		p2, err2 := k.Probability(y, x)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || p1 == p2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExplainMentionsLabels(t *testing.T) {
	k := memoKB(t)
	e := k.Explain()
	for _, want := range []string{"SMOKING=Smoker", "CANCER", "a0", "constraints"} {
		if !strings.Contains(e, want) {
			t.Errorf("Explain missing %q:\n%s", want, e)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := memoKB(t)
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical query answers.
	queries := [][]Assignment{
		{{Attr: "CANCER", Value: "Yes"}},
		{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "CANCER", Value: "Yes"}},
		{{Attr: "SMOKING", Value: "Non smoker"}, {Attr: "FAMILY HISTORY", Value: "No"}},
	}
	for _, q := range queries {
		want, err := k.Probability(q...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Probability(q...)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("query %v: %.12f after reload, want %.12f", q, got, want)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"version":99,"attributes":[],"model":{}}`,
		`{"version":1,"attributes":[{"name":"","values":["x"]}],"model":{}}`,
		`{"version":1,"attributes":[{"name":"A","values":["x","y"]}],"model":{"names":["A"],"cards":[3],"a0":1}}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt KB accepted: %s", c)
		}
	}
}
