package kb

import (
	"fmt"
	"sort"
	"strings"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/maxent"
	"pka/internal/memo"
)

// KnowledgeBase is a queryable probabilistic model bound to a schema. It
// serves every query from an immutable compiled inference engine built at
// construction time, so any number of goroutines may query one knowledge
// base concurrently with no locking and near-zero allocation.
type KnowledgeBase struct {
	schema *dataset.Schema
	model  *maxent.Model
	eng    *maxent.Compiled
	// cache, when non-nil, memoizes engine primitives across requests
	// under cacheVersion — see WithCache in cache.go. Both fields are set
	// only at construction of a view; a KnowledgeBase never mutates.
	cache        *memo.Cache
	cacheVersion int64
}

// New binds a fitted model to its schema and compiles the model's inference
// engine. The schema's attribute order and cardinalities must match the
// model's. The knowledge base snapshots the model's coefficients: mutating
// the model afterwards (AddConstraint/Fit) is not reflected — build a new
// knowledge base from the refitted model instead.
func New(schema *dataset.Schema, model *maxent.Model) (*KnowledgeBase, error) {
	if schema == nil || model == nil {
		return nil, fmt.Errorf("kb: nil schema or model")
	}
	if schema.R() != model.R() {
		return nil, fmt.Errorf("kb: schema has %d attributes, model has %d",
			schema.R(), model.R())
	}
	cards := model.Cards()
	for i := 0; i < schema.R(); i++ {
		if schema.Attr(i).Card() != cards[i] {
			return nil, fmt.Errorf("kb: attribute %q has %d values in schema, %d in model",
				schema.Attr(i).Name, schema.Attr(i).Card(), cards[i])
		}
	}
	eng, err := model.Compile()
	if err != nil {
		return nil, fmt.Errorf("kb: compiling model: %w", err)
	}
	return &KnowledgeBase{schema: schema, model: model, eng: eng}, nil
}

// NewWithEngine binds schema and model to an externally assembled compiled
// engine instead of compiling the model in-process — the entry point for a
// shard coordinator serving a maxent.NewDistributed engine whose blocks
// evaluate on remote processes. The engine must cover the same attribute
// space as the schema; every query method then runs the identical
// combination code as an in-process knowledge base.
func NewWithEngine(schema *dataset.Schema, model *maxent.Model, eng *maxent.Compiled) (*KnowledgeBase, error) {
	if schema == nil || model == nil || eng == nil {
		return nil, fmt.Errorf("kb: nil schema, model, or engine")
	}
	if schema.R() != eng.R() {
		return nil, fmt.Errorf("kb: schema has %d attributes, engine has %d",
			schema.R(), eng.R())
	}
	cards := eng.Cards()
	for i := 0; i < schema.R(); i++ {
		if schema.Attr(i).Card() != cards[i] {
			return nil, fmt.Errorf("kb: attribute %q has %d values in schema, %d in engine",
				schema.Attr(i).Name, schema.Attr(i).Card(), cards[i])
		}
	}
	return &KnowledgeBase{schema: schema, model: model, eng: eng}, nil
}

// Schema returns the bound schema.
func (k *KnowledgeBase) Schema() *dataset.Schema { return k.schema }

// Model returns the underlying product-form model.
func (k *KnowledgeBase) Model() *maxent.Model { return k.model }

// Assignment names one attribute value, by label. The JSON form is the
// serving wire format's building block: {"attr": "CANCER", "value": "Yes"}.
type Assignment struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// String renders "CANCER=Yes".
func (a Assignment) String() string { return a.Attr + "=" + a.Value }

// resolve converts label assignments to (VarSet, ascending values), checking
// for unknown names, unknown values, and contradictory duplicates. Positions
// are bounded by the schema width, so a stack array stands in for a per-call
// map on narrow schemas (wider ones size a slice to the schema) — the values
// slice is the query hot path's only allocation here.
func (k *KnowledgeBase) resolve(assigns []Assignment) (contingency.VarSet, []int, error) {
	var vs contingency.VarSet
	var stack [64]int
	byPos := stack[:]
	if r := k.schema.R(); r > len(byPos) {
		byPos = make([]int, r)
	}
	for _, a := range assigns {
		attr, pos, err := k.schema.AttrByName(a.Attr)
		if err != nil {
			return contingency.VarSet{}, nil, fmt.Errorf("kb: %w", err)
		}
		vi := attr.ValueIndex(a.Value)
		if vi < 0 {
			return contingency.VarSet{}, nil, fmt.Errorf("kb: attribute %q has no value %q", a.Attr, a.Value)
		}
		if vs.Has(pos) {
			if byPos[pos] != vi {
				return contingency.VarSet{}, nil, fmt.Errorf("kb: contradictory assignments for %q", a.Attr)
			}
			continue
		}
		byPos[pos] = vi
		vs = vs.Add(pos)
	}
	members := vs.Members()
	values := make([]int, len(members))
	for i, p := range members {
		values[i] = byPos[p]
	}
	return vs, values, nil
}

// Probability returns the joint probability of the given assignments.
// With no assignments it returns 1 (the empty event is certain).
func (k *KnowledgeBase) Probability(assigns ...Assignment) (float64, error) {
	if len(assigns) == 0 {
		return 1, nil
	}
	vs, values, err := k.resolve(assigns)
	if err != nil {
		return 0, err
	}
	p, _, err := k.cachedProb(vs, values)
	return p, err
}

// errZeroEvidence is the one rendering of the zero-probability-evidence
// failure, shared by the per-query and batch paths.
func errZeroEvidence(given []Assignment) error {
	return fmt.Errorf("kb: conditioning on zero-probability evidence %v", given)
}

// Conditional returns P(target | given) = P(target, given) / P(given),
// the memo's ratio of joint probabilities. It errors when the evidence has
// zero probability or when target and evidence contradict each other.
func (k *KnowledgeBase) Conditional(target []Assignment, given []Assignment) (float64, error) {
	if len(target) == 0 {
		return 1, nil
	}
	denom, err := k.Probability(given...)
	if err != nil {
		return 0, err
	}
	if denom == 0 {
		return 0, errZeroEvidence(given)
	}
	both := make([]Assignment, 0, len(target)+len(given))
	both = append(both, target...)
	both = append(both, given...)
	num, err := k.Probability(both...)
	if err != nil {
		return 0, err
	}
	return num / denom, nil
}

// Distribution returns the full conditional distribution of attr given the
// evidence: one probability per value label, summing to 1. The numerators
// of every value are computed in a single batch elimination sweep.
func (k *KnowledgeBase) Distribution(attr string, given ...Assignment) (map[string]float64, error) {
	a, pos, err := k.schema.AttrByName(attr)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	for _, g := range given {
		if g.Attr == attr {
			return nil, fmt.Errorf("kb: cannot condition %q on itself", attr)
		}
	}
	gvs, gvals, err := k.resolve(given)
	if err != nil {
		return nil, err
	}
	denom := 1.0
	if len(given) > 0 {
		denom, _, err = k.cachedProb(gvs, gvals)
		if err != nil {
			return nil, err
		}
		if denom == 0 {
			return nil, errZeroEvidence(given)
		}
	}
	nums, _, err := k.cachedMarginal(gvs, gvals, pos, func() []int {
		fixed := make([]int, k.schema.R())
		for i := range fixed {
			fixed[i] = -1
		}
		for i, p := range gvs.Members() {
			fixed[p] = gvals[i]
		}
		return fixed
	})
	if err != nil {
		return nil, err
	}
	return buildDistribution(a, nums, denom)
}

// buildDistribution assembles a conditional distribution from slice
// numerators and the evidence denominator, guarding that an exhaustive
// range sums to 1 — the one body behind the per-query and batch paths.
func buildDistribution(a dataset.Attribute, nums []float64, denom float64) (map[string]float64, error) {
	out := make(map[string]float64, a.Card())
	total := 0.0
	for i, v := range a.Values {
		p := nums[i] / denom
		out[v] = p
		total += p
	}
	if total < 0.999999 || total > 1.000001 {
		return nil, fmt.Errorf("kb: conditional distribution of %q sums to %g", a.Name, total)
	}
	return out, nil
}

// mostLikelyFrom picks the distribution's argmax in value-label order
// (ties break toward the earlier label).
func mostLikelyFrom(a dataset.Attribute, dist map[string]float64) (string, float64) {
	best, bestP := "", -1.0
	for _, v := range a.Values {
		if dist[v] > bestP {
			best, bestP = v, dist[v]
		}
	}
	return best, bestP
}

// MostLikely returns the most probable value of attr given the evidence and
// its probability; ties break toward the earlier value label.
func (k *KnowledgeBase) MostLikely(attr string, given ...Assignment) (string, float64, error) {
	a, _, err := k.schema.AttrByName(attr)
	if err != nil {
		return "", 0, fmt.Errorf("kb: %w", err)
	}
	dist, err := k.Distribution(attr, given...)
	if err != nil {
		return "", 0, err
	}
	best, bestP := mostLikelyFrom(a, dist)
	return best, bestP, nil
}

// Lift returns P(target | given) / P(target): how much the evidence moves
// the target relative to its base rate. Lift > 1 means positive association.
func (k *KnowledgeBase) Lift(target Assignment, given ...Assignment) (float64, error) {
	base, err := k.Probability(target)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, fmt.Errorf("kb: target %v has zero base probability", target)
	}
	cond, err := k.Conditional([]Assignment{target}, given)
	if err != nil {
		return 0, err
	}
	return cond / base, nil
}

// Explain renders the stored formula constraint by constraint in the memo's
// notation, most significant families first, value labels spelled out.
func (k *KnowledgeBase) Explain() string {
	var b strings.Builder
	cons := k.model.Constraints()
	sort.SliceStable(cons, func(i, j int) bool {
		if cons[i].Order() != cons[j].Order() {
			return cons[i].Order() < cons[j].Order()
		}
		return cons[i].Family.Less(cons[j].Family)
	})
	fmt.Fprintf(&b, "p(cell) = a0 · Π a_constraint   (%d constraints)\n", len(cons))
	for _, c := range cons {
		members := c.Family.Members()
		parts := make([]string, len(members))
		for i, p := range members {
			attr := k.schema.Attr(p)
			parts[i] = fmt.Sprintf("%s=%s", attr.Name, attr.Values[c.Values[i]])
		}
		fmt.Fprintf(&b, "  P(%s) = %.6f\n", strings.Join(parts, ", "), c.Target)
	}
	return b.String()
}
