package kb

import (
	"encoding/json"
	"fmt"
	"io"

	"pka/internal/dataset"
	"pka/internal/maxent"
)

// kbJSON is the persisted knowledge base: schema plus fitted model.
type kbJSON struct {
	// Version guards the on-disk format.
	Version int             `json:"version"`
	Attrs   []attrJSON      `json:"attributes"`
	Model   json.RawMessage `json:"model"`
}

type attrJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// formatVersion is bumped on incompatible changes to the wire format.
const formatVersion = 1

// Save writes the knowledge base as JSON.
func (k *KnowledgeBase) Save(w io.Writer) error {
	modelData, err := json.Marshal(k.model)
	if err != nil {
		return fmt.Errorf("kb: encoding model: %w", err)
	}
	doc := kbJSON{Version: formatVersion, Model: modelData}
	for i := 0; i < k.schema.R(); i++ {
		a := k.schema.Attr(i)
		doc.Attrs = append(doc.Attrs, attrJSON{Name: a.Name, Values: a.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("kb: writing knowledge base: %w", err)
	}
	return nil
}

// Load reads a knowledge base saved by Save, validating schema/model
// agreement.
func Load(r io.Reader) (*KnowledgeBase, error) {
	var doc kbJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("kb: decoding knowledge base: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("kb: unsupported format version %d (want %d)",
			doc.Version, formatVersion)
	}
	attrs := make([]dataset.Attribute, len(doc.Attrs))
	for i, a := range doc.Attrs {
		attrs[i] = dataset.Attribute{Name: a.Name, Values: a.Values}
	}
	schema, err := dataset.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("kb: decoding knowledge base: %w", err)
	}
	var model maxent.Model
	if err := json.Unmarshal(doc.Model, &model); err != nil {
		return nil, fmt.Errorf("kb: decoding knowledge base: %w", err)
	}
	return New(schema, &model)
}
