package kb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pka/internal/dataset"
	"pka/internal/maxent"
	"pka/internal/snapshot"
)

// kbJSON is the persisted knowledge base: schema plus fitted model.
type kbJSON struct {
	// Version guards the on-disk format.
	Version int             `json:"version"`
	Attrs   []attrJSON      `json:"attributes"`
	Model   json.RawMessage `json:"model"`
}

type attrJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// formatVersion is bumped on incompatible changes to the wire format.
const formatVersion = 1

// ErrInvalidFormat marks input that is not a knowledge base in the
// expected format — truncated files, non-JSON bytes, a corrupt model
// section. Callers branch on it with errors.Is; the wrapped message
// carries the specific decode failure. Binary snapshot loads surface the
// snapshot package's own named errors (ErrBadMagic, ErrChecksum, ...)
// instead, since those say more than "invalid".
var ErrInvalidFormat = errors.New("kb: input is not a valid knowledge base")

// Save writes the knowledge base as JSON — the interchange format: stable,
// diffable, readable by anything. For fast process restarts use
// SaveBinary, which additionally carries the compiled engine state.
func (k *KnowledgeBase) Save(w io.Writer) error {
	modelData, err := json.Marshal(k.model)
	if err != nil {
		return fmt.Errorf("kb: encoding model: %w", err)
	}
	doc := kbJSON{Version: formatVersion, Model: modelData}
	for i := 0; i < k.schema.R(); i++ {
		a := k.schema.Attr(i)
		doc.Attrs = append(doc.Attrs, attrJSON{Name: a.Name, Values: a.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("kb: writing knowledge base: %w", err)
	}
	return nil
}

// Load reads a knowledge base saved by Save, validating schema/model
// agreement. Malformed input — non-JSON bytes, a truncated document, a
// corrupt schema or model — fails with an error wrapping ErrInvalidFormat.
func Load(r io.Reader) (*KnowledgeBase, error) {
	var doc kbJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrInvalidFormat, err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)",
			ErrInvalidFormat, doc.Version, formatVersion)
	}
	attrs := make([]dataset.Attribute, len(doc.Attrs))
	for i, a := range doc.Attrs {
		attrs[i] = dataset.Attribute{Name: a.Name, Values: a.Values}
	}
	schema, err := dataset.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidFormat, err)
	}
	var model maxent.Model
	if err := json.Unmarshal(doc.Model, &model); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidFormat, err)
	}
	return New(schema, &model)
}

// SaveBinary writes the knowledge base as a PKAS binary snapshot: schema,
// constraints, and the already-solved coefficients with their compiled
// per-block state, so LoadBinary restores to a queryable engine without
// refitting. Counts do not travel through this path — save from the public
// Model.SaveSnapshot to include them.
func (k *KnowledgeBase) SaveBinary(w io.Writer) error {
	return snapshot.Write(w, &snapshot.Snapshot{Schema: k.schema, Model: k.model})
}

// LoadBinary reads a PKAS binary snapshot into a queryable knowledge base.
// The model's compiled engine is reconstructed directly from the stored
// coefficients and block sums — no solve — so load-to-first-query is pure
// deserialization. Bad magic, an unsupported version, or a checksum
// mismatch fail with the snapshot package's named errors.
func LoadBinary(r io.Reader) (*KnowledgeBase, error) {
	s, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return New(s.Schema, s.Model)
}

// LoadAny reads a knowledge base in either format, sniffing the PKAS magic
// bytes to dispatch: binary snapshots go through LoadBinary, anything else
// through the JSON Load.
func LoadAny(r io.Reader) (*KnowledgeBase, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(snapshot.Magic))
	if err == nil && snapshot.IsSnapshot(prefix) {
		return LoadBinary(br)
	}
	// Too short for the magic or not a snapshot: let the JSON path produce
	// the diagnostic (wrapping ErrInvalidFormat).
	return Load(br)
}
