package kb

import (
	"strconv"
	"sync"

	"pka/internal/contingency"
	"pka/internal/memo"
)

// The engine-tier (L2) cache: a knowledge base optionally carries a
// version-keyed memo.Cache and serves its engine primitives — joint
// probabilities (the shared conditional denominators), conditional-slice
// sweeps, and MPE argmax passes — from it across requests. This promotes
// the intra-batch reuse of Batch to cross-request scope: the same cache
// feeds single queries and every Batch created on the view.
//
// Cached values are immutable once inserted (pkalint's memoimmut rule):
// float64s copy by value, numerator slices are returned to callers as
// read-only views, and Explanations are copied on every hit.

// keyScratchPool pools the byte buffers cache keys render into: a
// knowledge base is queried from many goroutines at once (unlike Batch,
// which owns a single scratch), so each rendering borrows a buffer.
var keyScratchPool = sync.Pool{New: func() any { return new(cacheKeyBuf) }}

type cacheKeyBuf struct{ buf []byte }

// WithCache returns a view of the knowledge base that memoizes engine
// primitives in c, keyed under the given model version. The receiver is
// not modified; the view shares schema, model, and compiled engine, so it
// answers bit-identically — hits replay exactly the float64s a cold call
// would compute.
func (k *KnowledgeBase) WithCache(c *memo.Cache, version int64) *KnowledgeBase {
	view := *k
	view.cache = c
	view.cacheVersion = version
	return &view
}

// Cache returns the attached memoization cache (nil when off) — the
// serving layer reads its Stats for GET /v1/stats.
func (k *KnowledgeBase) Cache() *memo.Cache { return k.cache }

// appendAssignKey renders a resolved assignment canonically — the same
// (VarSet key, ascending values) form Batch.canonKey uses, so one evidence
// set hits the same entry no matter which surface asked.
func appendAssignKey(dst []byte, vs contingency.VarSet, values []int) []byte {
	dst = vs.AppendKey(dst)
	for _, v := range values {
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// cachedProb is eng.Prob behind the cache: key "p|" + canonical
// assignment. The hit flag lets Batch keep its Evals counter honest.
func (k *KnowledgeBase) cachedProb(vs contingency.VarSet, values []int) (float64, bool, error) {
	if k.cache == nil {
		p, err := k.eng.Prob(vs, values)
		return p, false, err
	}
	ks := keyScratchPool.Get().(*cacheKeyBuf)
	key := append(ks.buf[:0], 'p', '|')
	key = appendAssignKey(key, vs, values)
	ks.buf = key
	if v, ok := k.cache.Get(key, k.cacheVersion); ok {
		keyScratchPool.Put(ks)
		return v.(float64), true, nil
	}
	p, err := k.eng.Prob(vs, values)
	if err == nil {
		k.cache.Put(key, k.cacheVersion, p, 8)
	}
	keyScratchPool.Put(ks)
	return p, false, err
}

// cachedMarginal is eng.MarginalGiven behind the cache: the conditional-
// slice numerators of attribute pos under the resolved evidence, keyed
// "m|" + canonical evidence + "|" + pos. fixed supplies the full-width
// clamp vector and is only invoked on a miss, so hits skip building it.
// The returned slice is the published cache value: callers must treat it
// as read-only.
func (k *KnowledgeBase) cachedMarginal(vs contingency.VarSet, values []int, pos int, fixed func() []int) ([]float64, bool, error) {
	if k.cache == nil {
		nums, err := k.eng.MarginalGiven(contingency.NewVarSet(pos), fixed())
		return nums, false, err
	}
	ks := keyScratchPool.Get().(*cacheKeyBuf)
	key := append(ks.buf[:0], 'm', '|')
	key = appendAssignKey(key, vs, values)
	key = append(key, '|')
	key = strconv.AppendInt(key, int64(pos), 10)
	ks.buf = key
	if v, ok := k.cache.Get(key, k.cacheVersion); ok {
		keyScratchPool.Put(ks)
		return v.([]float64), true, nil
	}
	nums, err := k.eng.MarginalGiven(contingency.NewVarSet(pos), fixed())
	if err == nil {
		k.cache.Put(key, k.cacheVersion, nums, int64(8*len(nums)))
	}
	keyScratchPool.Put(ks)
	return nums, false, err
}

// cachedMPE is eng.MaxCell + labeling behind the cache, keyed "x|" +
// canonical evidence. Hits return a fresh copy so callers may keep or
// mutate their Explanation freely; the cached value stays frozen.
func (k *KnowledgeBase) cachedMPE(vs contingency.VarSet, values []int, fixed func() []int) (Explanation, bool, error) {
	if k.cache == nil {
		best, bestP, err := k.eng.MaxCell(fixed())
		if err != nil {
			return Explanation{}, false, err
		}
		return k.explanationFrom(best, bestP), false, nil
	}
	ks := keyScratchPool.Get().(*cacheKeyBuf)
	key := append(ks.buf[:0], 'x', '|')
	key = appendAssignKey(key, vs, values)
	ks.buf = key
	if v, ok := k.cache.Get(key, k.cacheVersion); ok {
		keyScratchPool.Put(ks)
		return copyExplanation(v.(Explanation)), true, nil
	}
	best, bestP, err := k.eng.MaxCell(fixed())
	if err != nil {
		keyScratchPool.Put(ks)
		return Explanation{}, false, err
	}
	exp := k.explanationFrom(best, bestP)
	k.cache.Put(key, k.cacheVersion, exp, explanationCost(exp))
	keyScratchPool.Put(ks)
	return copyExplanation(exp), false, nil
}

// explanationCost estimates an Explanation's resident bytes for the
// cache's budget accounting.
func explanationCost(e Explanation) int64 {
	cost := int64(16) // probability + slice header
	for _, a := range e.Assignments {
		cost += int64(32 + len(a.Attr) + len(a.Value))
	}
	return cost
}
