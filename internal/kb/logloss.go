package kb

import (
	"fmt"
	"math"

	"pka/internal/contingency"
)

// LogLoss returns the average negative log-likelihood (nats per sample) the
// knowledge base assigns to observed data — the deployment-time validation
// measure. Cells the model rules out while the data occupies them give
// +Inf. The validation counts may be dense or sparse: only occupied cells
// contribute, so a wide sparse holdout scores in O(occupied) cell
// evaluations without materializing the joint.
func (k *KnowledgeBase) LogLoss(t contingency.Counts) (float64, error) {
	if t.Total() == 0 {
		return 0, fmt.Errorf("kb: empty validation table")
	}
	if t.R() != k.model.R() {
		return 0, fmt.Errorf("kb: table has %d attributes, model %d", t.R(), k.model.R())
	}
	cards := k.model.Cards()
	for i := 0; i < t.R(); i++ {
		if t.Card(i) != cards[i] {
			return 0, fmt.Errorf("kb: axis %d has %d values in table, %d in model", i, t.Card(i), cards[i])
		}
	}
	// The dense full-joint walk needs both a dense table AND a dense
	// engine (wide factored models cannot materialize their joint); it is
	// kept bit-compatible with prior releases.
	if dense, ok := t.(*contingency.Table); ok && !k.eng.Factored() {
		joint, err := k.eng.Joint()
		if err != nil {
			return 0, err
		}
		var loss float64
		for i, c := range dense.Counts() {
			if c == 0 {
				continue
			}
			if joint[i] <= 0 {
				return math.Inf(1), nil
			}
			loss -= float64(c) * math.Log(joint[i])
		}
		return loss / float64(t.Total()), nil
	}
	visit, err := contingency.EachCellDeterministic(t)
	if err != nil {
		return 0, fmt.Errorf("kb: %w", err)
	}
	var loss float64
	var ruledOut bool
	var visitErr error
	visit(func(cell []int, c int64) {
		if c == 0 || ruledOut || visitErr != nil {
			return
		}
		p, err := k.eng.CellProb(cell)
		if err != nil {
			visitErr = err
			return
		}
		if p <= 0 {
			ruledOut = true
			return
		}
		loss -= float64(c) * math.Log(p)
	})
	if visitErr != nil {
		return 0, visitErr
	}
	if ruledOut {
		return math.Inf(1), nil
	}
	return loss / float64(t.Total()), nil
}
