package kb

import (
	"fmt"
	"math"

	"pka/internal/contingency"
)

// LogLoss returns the average negative log-likelihood (nats per sample) the
// knowledge base assigns to observed data — the deployment-time validation
// measure. Cells the model rules out while the data occupies them give
// +Inf.
func (k *KnowledgeBase) LogLoss(t *contingency.Table) (float64, error) {
	if t.Total() == 0 {
		return 0, fmt.Errorf("kb: empty validation table")
	}
	if t.R() != k.model.R() {
		return 0, fmt.Errorf("kb: table has %d attributes, model %d", t.R(), k.model.R())
	}
	joint := k.eng.Joint()
	if len(joint) != t.NumCells() {
		return 0, fmt.Errorf("kb: table space %d cells, model %d", t.NumCells(), len(joint))
	}
	var loss float64
	for i, c := range t.Counts() {
		if c == 0 {
			continue
		}
		if joint[i] <= 0 {
			return math.Inf(1), nil
		}
		loss -= float64(c) * math.Log(joint[i])
	}
	return loss / float64(t.Total()), nil
}
