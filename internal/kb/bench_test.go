package kb

import (
	"bytes"
	"testing"
)

func benchKB(b *testing.B) *KnowledgeBase {
	b.Helper()
	return memoKB(b)
}

func BenchmarkProbability(b *testing.B) {
	k := benchKB(b)
	q := []Assignment{
		{Attr: "SMOKING", Value: "Smoker"},
		{Attr: "CANCER", Value: "Yes"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Probability(q...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConditional(b *testing.B) {
	k := benchKB(b)
	target := []Assignment{{Attr: "CANCER", Value: "Yes"}}
	given := []Assignment{
		{Attr: "SMOKING", Value: "Smoker"},
		{Attr: "FAMILY HISTORY", Value: "Yes"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Conditional(target, given); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKBDistribution(b *testing.B) {
	k := benchKB(b)
	given := []Assignment{{Attr: "CANCER", Value: "Yes"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Distribution("SMOKING", given...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMostProbableExplanation(b *testing.B) {
	k := benchKB(b)
	given := []Assignment{{Attr: "CANCER", Value: "Yes"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.MostProbableExplanation(given...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	k := benchKB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := k.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
