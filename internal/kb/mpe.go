package kb

import (
	"fmt"
)

// Explanation is a full assignment of every attribute with its joint
// probability — the output of MostProbableExplanation.
type Explanation struct {
	Assignments []Assignment
	Probability float64
}

// MostProbableExplanation returns the highest-probability completion of the
// evidence over all remaining attributes (MPE / MAP inference): the single
// world state the knowledge base considers most likely given what is known.
//
// The search enumerates the free attributes' joint space, which matches the
// dense-model regime the discovery engine operates in. Ties break toward
// lower value indices for determinism. Evidence with zero probability is an
// error, mirroring Conditional.
func (k *KnowledgeBase) MostProbableExplanation(given ...Assignment) (Explanation, error) {
	vs, values, err := k.resolve(given)
	if err != nil {
		return Explanation{}, err
	}
	pEvidence, err := k.eng.Prob(vs, values)
	if err != nil {
		return Explanation{}, err
	}
	if pEvidence == 0 {
		return Explanation{}, fmt.Errorf("kb: evidence %v has zero probability", given)
	}
	r := k.schema.R()
	cell := make([]int, r)
	free := make([]int, 0, r)
	members := vs.Members()
	mi := 0
	for pos := 0; pos < r; pos++ {
		if mi < len(members) && members[mi] == pos {
			cell[pos] = values[mi]
			mi++
			continue
		}
		free = append(free, pos)
	}
	bestP := -1.0
	best := make([]int, r)
	for {
		p, err := k.eng.CellProb(cell)
		if err != nil {
			return Explanation{}, err
		}
		if p > bestP {
			bestP = p
			copy(best, cell)
		}
		// Odometer over free attributes.
		i := len(free) - 1
		for i >= 0 {
			cell[free[i]]++
			if cell[free[i]] < k.schema.Attr(free[i]).Card() {
				break
			}
			cell[free[i]] = 0
			i--
		}
		if i < 0 || len(free) == 0 {
			break
		}
	}
	out := Explanation{Probability: bestP}
	for pos := 0; pos < r; pos++ {
		a := k.schema.Attr(pos)
		out.Assignments = append(out.Assignments, Assignment{
			Attr:  a.Name,
			Value: a.Values[best[pos]],
		})
	}
	return out, nil
}
