package kb

import (
	"fmt"
)

// Explanation is a full assignment of every attribute with its joint
// probability — the output of MostProbableExplanation.
type Explanation struct {
	Assignments []Assignment
	Probability float64
}

// MostProbableExplanation returns the highest-probability completion of the
// evidence over all remaining attributes (MPE / MAP inference): the single
// world state the knowledge base considers most likely given what is known.
//
// Dense models enumerate the free attributes' joint space; wide factored
// models take the exact argmax independently per constraint block, so MPE
// stays affordable on schemas whose joint space cannot be enumerated. Ties
// break toward lower value indices for determinism. Evidence with zero
// probability is an error, mirroring Conditional.
func (k *KnowledgeBase) MostProbableExplanation(given ...Assignment) (Explanation, error) {
	vs, values, err := k.resolve(given)
	if err != nil {
		return Explanation{}, err
	}
	pEvidence, _, err := k.cachedProb(vs, values)
	if err != nil {
		return Explanation{}, err
	}
	if pEvidence == 0 {
		return Explanation{}, fmt.Errorf("kb: evidence %v has zero probability", given)
	}
	exp, _, err := k.cachedMPE(vs, values, func() []int {
		fixed := make([]int, k.schema.R())
		for i := range fixed {
			fixed[i] = -1
		}
		for mi, pos := range vs.Members() {
			fixed[pos] = values[mi]
		}
		return fixed
	})
	return exp, err
}

// explanationFrom labels a full cell as an Explanation — shared by the
// per-query and batch MPE paths.
func (k *KnowledgeBase) explanationFrom(best []int, p float64) Explanation {
	out := Explanation{Probability: p}
	for pos := 0; pos < k.schema.R(); pos++ {
		a := k.schema.Attr(pos)
		out.Assignments = append(out.Assignments, Assignment{
			Attr:  a.Name,
			Value: a.Values[best[pos]],
		})
	}
	return out
}
