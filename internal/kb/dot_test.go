package kb

import (
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/dataset"
)

func TestDependencyDOTMemo(t *testing.T) {
	k := memoKB(t)
	dot := k.DependencyDOT()
	for _, want := range []string{
		"graph dependencies {",
		`n0 [label="SMOKING"]`,
		`n1 [label="CANCER"]`,
		"n0 -- n1", // the smoking↔cancer edge
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != k.DependencyDOT() {
		t.Error("DOT not deterministic")
	}
}

func TestDependencyDOTHyperEdge(t *testing.T) {
	// XOR data yields a third-order family → a diamond hyper-node.
	tab := contingency.MustNew([]string{"X", "Y", "Z"}, []int{2, 2, 2})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			xor := i ^ j
			tab.Set(900, i, j, xor)
			tab.Set(100, i, j, 1-xor)
		}
	}
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"0", "1"}},
		{Name: "Y", Values: []string{"0", "1"}},
		{Name: "Z", Values: []string{"0", "1"}},
	})
	k, err := New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	dot := k.DependencyDOT()
	if !strings.Contains(dot, "shape=diamond") {
		t.Errorf("no hyper-node for third-order family:\n%s", dot)
	}
	if !strings.Contains(dot, "h0 -- n2") {
		t.Errorf("hyper-node not connected:\n%s", dot)
	}
}

func TestDependencyDOTNoFindings(t *testing.T) {
	// A model with only first-order constraints renders nodes, no edges.
	tab := contingency.MustNew([]string{"X", "Y"}, []int{2, 2})
	tab.Set(25, 0, 0)
	tab.Set(25, 0, 1)
	tab.Set(25, 1, 0)
	tab.Set(25, 1, 1)
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"a", "b"}},
		{Name: "Y", Values: []string{"a", "b"}},
	})
	k, err := New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	dot := k.DependencyDOT()
	if strings.Contains(dot, "--") {
		t.Errorf("independent data produced edges:\n%s", dot)
	}
	if !strings.Contains(dot, `n0 [label="X"]`) {
		t.Errorf("nodes missing:\n%s", dot)
	}
}
