package kb

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentQueries hammers one knowledge base from many goroutines
// with a mix of every query type (run with -race). Queries must be
// deterministic: each goroutine compares its answers against values
// computed before the fan-out.
func TestConcurrentQueries(t *testing.T) {
	k := memoKB(t)
	smoker := Assignment{Attr: "SMOKING", Value: "Smoker"}
	cancer := Assignment{Attr: "CANCER", Value: "Yes"}

	wantProb, err := k.Probability(smoker, cancer)
	if err != nil {
		t.Fatal(err)
	}
	wantCond, err := k.Conditional([]Assignment{cancer}, []Assignment{smoker})
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := k.Distribution("SMOKING", cancer)
	if err != nil {
		t.Fatal(err)
	}
	wantMPE, err := k.MostProbableExplanation(cancer)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 150
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					p, err := k.Probability(smoker, cancer)
					if err != nil || p != wantProb {
						errs <- "Probability diverged under concurrency"
						return
					}
				case 1:
					c, err := k.Conditional([]Assignment{cancer}, []Assignment{smoker})
					if err != nil || c != wantCond {
						errs <- "Conditional diverged under concurrency"
						return
					}
				case 2:
					d, err := k.Distribution("SMOKING", cancer)
					if err != nil {
						errs <- err.Error()
						return
					}
					for v, p := range wantDist {
						if d[v] != p {
							errs <- "Distribution diverged under concurrency"
							return
						}
					}
				default:
					e, err := k.MostProbableExplanation(cancer)
					if err != nil || e.Probability != wantMPE.Probability {
						errs <- "MPE diverged under concurrency"
						return
					}
					for j, a := range e.Assignments {
						if a != wantMPE.Assignments[j] {
							errs <- "MPE assignment diverged under concurrency"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestConcurrentQueriesOnLoadedKB repeats the hammer on a knowledge base
// round-tripped through Save/Load — the deployment path compiles too.
func TestConcurrentQueriesOnLoadedKB(t *testing.T) {
	var buf bytes.Buffer
	if err := memoKB(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	k, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cancer := Assignment{Attr: "CANCER", Value: "Yes"}
	want, err := k.Distribution("SMOKING", cancer)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d, err := k.Distribution("SMOKING", cancer)
				if err != nil {
					errs <- err.Error()
					return
				}
				for v, p := range want {
					if d[v] != p {
						errs <- "loaded KB diverged under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
