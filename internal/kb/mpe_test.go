package kb

import (
	"math"
	"testing"
)

func TestMPENoEvidenceIsModalCell(t *testing.T) {
	k := memoKB(t)
	exp, err := k.MostProbableExplanation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Assignments) != 3 {
		t.Fatalf("explanation covers %d attributes", len(exp.Assignments))
	}
	// Brute-force the modal cell through Probability.
	best := -1.0
	schema := k.Schema()
	var bestAssign []Assignment
	var walk func(pos int, acc []Assignment)
	walk = func(pos int, acc []Assignment) {
		if pos == schema.R() {
			p, err := k.Probability(acc...)
			if err != nil {
				t.Fatal(err)
			}
			if p > best {
				best = p
				bestAssign = append([]Assignment(nil), acc...)
			}
			return
		}
		a := schema.Attr(pos)
		for _, v := range a.Values {
			walk(pos+1, append(acc, Assignment{Attr: a.Name, Value: v}))
		}
	}
	walk(0, nil)
	if math.Abs(exp.Probability-best) > 1e-12 {
		t.Errorf("MPE probability %.9f, brute force %.9f (%v)", exp.Probability, best, bestAssign)
	}
	for i, a := range exp.Assignments {
		if a != bestAssign[i] {
			t.Errorf("MPE assignment %d = %v, brute force %v", i, a, bestAssign[i])
		}
	}
}

func TestMPERespectsEvidence(t *testing.T) {
	k := memoKB(t)
	exp, err := k.MostProbableExplanation(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range exp.Assignments {
		if a.Attr == "CANCER" {
			found = true
			if a.Value != "Yes" {
				t.Errorf("evidence overridden: CANCER=%s", a.Value)
			}
		}
	}
	if !found {
		t.Error("evidence attribute missing from explanation")
	}
	// The explanation's probability must equal Probability of its own
	// assignments.
	p, err := k.Probability(exp.Assignments...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-exp.Probability) > 1e-12 {
		t.Errorf("explanation probability %.9f vs joint %.9f", exp.Probability, p)
	}
}

func TestMPEErrors(t *testing.T) {
	k := memoKB(t)
	if _, err := k.MostProbableExplanation(Assignment{Attr: "NOPE", Value: "x"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := k.MostProbableExplanation(
		Assignment{Attr: "CANCER", Value: "Yes"},
		Assignment{Attr: "CANCER", Value: "No"}); err == nil {
		t.Error("contradictory evidence accepted")
	}
}

func TestMPEFullEvidenceIsIdentity(t *testing.T) {
	k := memoKB(t)
	given := []Assignment{
		{Attr: "SMOKING", Value: "Smoker"},
		{Attr: "CANCER", Value: "No"},
		{Attr: "FAMILY HISTORY", Value: "Yes"},
	}
	exp, err := k.MostProbableExplanation(given...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := k.Probability(given...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Probability-want) > 1e-12 {
		t.Errorf("fully-specified MPE %.9f, joint %.9f", exp.Probability, want)
	}
}
