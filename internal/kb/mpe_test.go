package kb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/maxent"
)

func TestMPENoEvidenceIsModalCell(t *testing.T) {
	k := memoKB(t)
	exp, err := k.MostProbableExplanation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Assignments) != 3 {
		t.Fatalf("explanation covers %d attributes", len(exp.Assignments))
	}
	// Brute-force the modal cell through Probability.
	best := -1.0
	schema := k.Schema()
	var bestAssign []Assignment
	var walk func(pos int, acc []Assignment)
	walk = func(pos int, acc []Assignment) {
		if pos == schema.R() {
			p, err := k.Probability(acc...)
			if err != nil {
				t.Fatal(err)
			}
			if p > best {
				best = p
				bestAssign = append([]Assignment(nil), acc...)
			}
			return
		}
		a := schema.Attr(pos)
		for _, v := range a.Values {
			walk(pos+1, append(acc, Assignment{Attr: a.Name, Value: v}))
		}
	}
	walk(0, nil)
	if math.Abs(exp.Probability-best) > 1e-12 {
		t.Errorf("MPE probability %.9f, brute force %.9f (%v)", exp.Probability, best, bestAssign)
	}
	for i, a := range exp.Assignments {
		if a != bestAssign[i] {
			t.Errorf("MPE assignment %d = %v, brute force %v", i, a, bestAssign[i])
		}
	}
}

func TestMPERespectsEvidence(t *testing.T) {
	k := memoKB(t)
	exp, err := k.MostProbableExplanation(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range exp.Assignments {
		if a.Attr == "CANCER" {
			found = true
			if a.Value != "Yes" {
				t.Errorf("evidence overridden: CANCER=%s", a.Value)
			}
		}
	}
	if !found {
		t.Error("evidence attribute missing from explanation")
	}
	// The explanation's probability must equal Probability of its own
	// assignments.
	p, err := k.Probability(exp.Assignments...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-exp.Probability) > 1e-12 {
		t.Errorf("explanation probability %.9f vs joint %.9f", exp.Probability, p)
	}
}

func TestMPEErrors(t *testing.T) {
	k := memoKB(t)
	if _, err := k.MostProbableExplanation(Assignment{Attr: "NOPE", Value: "x"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := k.MostProbableExplanation(
		Assignment{Attr: "CANCER", Value: "Yes"},
		Assignment{Attr: "CANCER", Value: "No"}); err == nil {
		t.Error("contradictory evidence accepted")
	}
}

func TestMPEFullEvidenceIsIdentity(t *testing.T) {
	k := memoKB(t)
	given := []Assignment{
		{Attr: "SMOKING", Value: "Smoker"},
		{Attr: "CANCER", Value: "No"},
		{Attr: "FAMILY HISTORY", Value: "Yes"},
	}
	exp, err := k.MostProbableExplanation(given...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := k.Probability(given...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Probability-want) > 1e-12 {
		t.Errorf("fully-specified MPE %.9f, joint %.9f", exp.Probability, want)
	}
}

// wideKB builds a knowledge base over r binary attributes whose joint
// space exceeds the dense-engine cap, with attribute 1 biased and a strong
// 2↔5 coupling constraint — the factored regime.
func wideKB(t *testing.T, r int) *KnowledgeBase {
	t.Helper()
	attrs := make([]dataset.Attribute, r)
	for i := range attrs {
		attrs[i] = dataset.Attribute{
			Name:   fmt.Sprintf("CH%02d", i),
			Values: []string{"lo", "hi"},
		}
	}
	schema := dataset.MustSchema(attrs)
	tab, err := contingency.NewSparse(schema.Names(), schema.Cards())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	cell := make([]int, r)
	for n := 0; n < 5000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[1] = 1
		}
		if rng.Float64() < 0.9 {
			cell[5] = cell[2]
		}
		if err := tab.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	model, err := maxent.NewModel(schema.Names(), schema.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(2, 5)
	n, err := tab.MarginalCount(fam, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.AddConstraint(maxent.Constraint{
		Family: fam,
		Values: []int{1, 1},
		Target: float64(n) / float64(tab.Total()),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Fit(maxent.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	k, err := New(schema, model)
	if err != nil {
		t.Fatal(err)
	}
	if !k.eng.Factored() {
		t.Fatal("wide model compiled dense")
	}
	return k
}

// TestMPEWideFactoredModel: MPE on a 24-attribute model must not enumerate
// the 2^24 joint space — it answers via per-block argmax, consistently
// with the model's own cell probability.
func TestMPEWideFactoredModel(t *testing.T) {
	k := wideKB(t, 24)
	exp, err := k.MostProbableExplanation(Assignment{Attr: "CH02", Value: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Assignments) != 24 {
		t.Fatalf("explanation covers %d attributes", len(exp.Assignments))
	}
	byName := map[string]string{}
	for _, a := range exp.Assignments {
		byName[a.Attr] = a.Value
	}
	// Evidence is respected, the biased attribute picks its mode, and the
	// coupled channel follows the evidence.
	if byName["CH02"] != "hi" {
		t.Errorf("evidence overridden: CH02 = %q", byName["CH02"])
	}
	if byName["CH01"] != "hi" {
		t.Errorf("biased channel: CH01 = %q, want its 90%% mode", byName["CH01"])
	}
	if byName["CH05"] != "hi" {
		t.Errorf("coupled channel: CH05 = %q, want to follow CH02=hi", byName["CH05"])
	}
	// The reported probability is the model's own probability of the
	// returned cell.
	p, err := k.Probability(exp.Assignments...)
	if err != nil {
		t.Fatal(err)
	}
	if p != exp.Probability {
		t.Errorf("MPE probability %v, Probability(assignments) %v", exp.Probability, p)
	}
}

// TestLogLossDenseTableWideModel: a dense validation table scored against
// a factored model must take the occupied-cells path (the joint cannot be
// materialized) and agree with the sparse backend on the same counts.
func TestLogLossDenseTableWideModel(t *testing.T) {
	const r = 21
	k := wideKB(t, r)
	dense := contingency.MustNew(k.Schema().Names(), k.Schema().Cards())
	sparse, err := contingency.NewSparse(k.Schema().Names(), k.Schema().Cards())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	cell := make([]int, r)
	for n := 0; n < 500; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if err := dense.Observe(cell...); err != nil {
			t.Fatal(err)
		}
		if err := sparse.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	ld, err := k.LogLoss(dense)
	if err != nil {
		t.Fatalf("dense holdout over wide model rejected: %v", err)
	}
	ls, err := k.LogLoss(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld-ls) > 1e-9*math.Abs(ls) {
		t.Errorf("dense backend loss %v, sparse backend %v", ld, ls)
	}
}
