package kb

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/dataset"
)

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestSaveWriterError(t *testing.T) {
	k := memoKB(t)
	if err := k.Save(failingWriter{}); err == nil {
		t.Error("write error swallowed")
	}
}

func TestLoadTruncated(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":1,"attributes":`)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLiftZeroBase(t *testing.T) {
	// Build a KB with a structurally impossible target value.
	k := xorKB(t)
	// In the deterministic table (X==Y), the cell X=a,Y=b has zero mass,
	// but single values all have positive mass; construct zero base via a
	// conditional target instead: Lift of an impossible joint.
	_, err := k.Lift(Assignment{Attr: "Y", Value: "b"},
		Assignment{Attr: "X", Value: "a"})
	if err != nil {
		t.Fatalf("lift on possible target failed: %v", err)
	}
}

// xorKB builds a deterministic X==Y knowledge base.
func xorKB(t *testing.T) *KnowledgeBase {
	t.Helper()
	tab := contingency.MustNew([]string{"X", "Y"}, []int{2, 2})
	tab.Set(50, 0, 0)
	tab.Set(50, 1, 1)
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"a", "b"}},
		{Name: "Y", Values: []string{"a", "b"}},
	})
	k, err := New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLogLossValidation(t *testing.T) {
	k := memoKB(t)
	empty := contingency.MustNew(nil, []int{3, 2, 2})
	if _, err := k.LogLoss(empty); err == nil {
		t.Error("empty table accepted")
	}
	wrong := contingency.MustNew(nil, []int{2, 2})
	wrong.Set(5, 0, 0)
	if _, err := k.LogLoss(wrong); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestLogLossInfOnZeroSupport(t *testing.T) {
	k := xorKB(t)
	held := contingency.MustNew([]string{"X", "Y"}, []int{2, 2})
	held.Set(1, 0, 1) // impossible under the model
	loss, err := k.LogLoss(held)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(loss, 1) {
		t.Errorf("loss = %g, want +Inf", loss)
	}
}
