// Package kb turns a discovery result into the memo's end product: a
// probabilistic knowledge base for an expert system. It stores the fitted
// product-form model together with the attribute schema, answers arbitrary
// joint/marginal/conditional probability queries by the ratio rule
//
//	P(A | B, C) = P(A, B, C) / P(B, C)
//
// (the memo's introduction), computes full conditional distributions over an
// attribute given evidence, explains the stored formula in the memo's
// a-notation, and persists to JSON so a knowledge base built once can be
// shipped without the raw data.
package kb
