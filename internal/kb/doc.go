// Package kb turns a discovery result into the memo's end product: a
// probabilistic knowledge base for an expert system. It stores the fitted
// product-form model together with the attribute schema, answers arbitrary
// joint/marginal/conditional probability queries by the ratio rule
//
//	P(A | B, C) = P(A, B, C) / P(B, C)
//
// (the memo's introduction), computes full conditional distributions over an
// attribute given evidence, explains the stored formula in the memo's
// a-notation, and persists to JSON so a knowledge base built once can be
// shipped without the raw data.
//
// # Compile once, query many
//
// Following the architecture of maximum-entropy shells like SPIRIT, the
// knowledge base separates fitting from serving: New (and Load) compile the
// model's coefficients into an immutable inference engine once, and every
// query — Probability, Conditional, Distribution, MostLikely, Lift,
// MostProbableExplanation, LogLoss — runs against that snapshot with pooled
// scratch memory. Distribution prices all values of the target attribute in
// a single batch elimination sweep rather than one recursion per value.
//
// # Thread safety
//
// A KnowledgeBase is immutable after construction and safe for concurrent
// use by any number of goroutines with no external locking. The one
// contract: the engine snapshots the model at New/Load time, so callers
// that keep mutating the underlying maxent.Model must build a fresh
// KnowledgeBase from the refitted model to see the new coefficients.
package kb
