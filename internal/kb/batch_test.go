package kb

import (
	"testing"
)

// batchCases enumerates a mixed workload over the memo's schema: joint
// probabilities, conditionals (single- and multi-target, overlapping
// evidence), distributions, and lifts, several sharing one evidence set.
func batchEvidenceSets() [][]Assignment {
	return [][]Assignment{
		nil,
		{{Attr: "SMOKING", Value: "Smoker"}},
		{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}},
		// Same set, opposite order: must resolve to the same group.
		{{Attr: "FAMILY HISTORY", Value: "Yes"}, {Attr: "SMOKING", Value: "Smoker"}},
	}
}

// TestBatchBitIdenticalToPerQuery drives every Batch method next to its
// KnowledgeBase counterpart and requires exact (==) agreement, on both the
// dense memo model and a wide factored model.
func TestBatchBitIdenticalToPerQuery(t *testing.T) {
	t.Run("dense", func(t *testing.T) {
		k := memoKB(t)
		assertBatchMatches(t, k, "CANCER", "Yes", batchEvidenceSets())
	})
	t.Run("factored", func(t *testing.T) {
		k := wideKB(t, 24)
		evidence := [][]Assignment{
			nil,
			{{Attr: "CH02", Value: "hi"}},
			{{Attr: "CH02", Value: "hi"}, {Attr: "CH01", Value: "lo"}},
		}
		assertBatchMatches(t, k, "CH05", "hi", evidence)
	})
}

func assertBatchMatches(t *testing.T, k *KnowledgeBase, targetAttr, targetVal string, evidence [][]Assignment) {
	t.Helper()
	b := NewBatch(k)
	target := Assignment{Attr: targetAttr, Value: targetVal}
	for _, ev := range evidence {
		wantP, errP := k.Probability(ev...)
		gotP, gerrP := b.Probability(ev...)
		if (errP == nil) != (gerrP == nil) || gotP != wantP {
			t.Errorf("Probability(%v): batch %x (%v), per-query %x (%v)", ev, gotP, gerrP, wantP, errP)
		}
		wantC, errC := k.Conditional([]Assignment{target}, ev)
		gotC, gerrC := b.Conditional([]Assignment{target}, ev)
		if (errC == nil) != (gerrC == nil) || gotC != wantC {
			t.Errorf("Conditional(%v|%v): batch %x (%v), per-query %x (%v)", target, ev, gotC, gerrC, wantC, errC)
		}
		wantD, errD := k.Distribution(targetAttr, ev...)
		gotD, gerrD := b.Distribution(targetAttr, ev...)
		if (errD == nil) != (gerrD == nil) || len(gotD) != len(wantD) {
			t.Fatalf("Distribution(%s|%v): batch %v (%v), per-query %v (%v)", targetAttr, ev, gotD, gerrD, wantD, errD)
		}
		for v, want := range wantD {
			if gotD[v] != want {
				t.Errorf("Distribution(%s|%v)[%s]: batch %x, per-query %x", targetAttr, ev, v, gotD[v], want)
			}
		}
		wantV, wantMP, errM := k.MostLikely(targetAttr, ev...)
		gotV, gotMP, gerrM := b.MostLikely(targetAttr, ev...)
		if (errM == nil) != (gerrM == nil) || gotV != wantV || gotMP != wantMP {
			t.Errorf("MostLikely(%s|%v): batch %s/%x, per-query %s/%x", targetAttr, ev, gotV, gotMP, wantV, wantMP)
		}
		wantL, errL := k.Lift(target, ev...)
		gotL, gerrL := b.Lift(target, ev...)
		if (errL == nil) != (gerrL == nil) || gotL != wantL {
			t.Errorf("Lift(%v|%v): batch %x (%v), per-query %x (%v)", target, ev, gotL, gerrL, wantL, errL)
		}
		wantE, errE := k.MostProbableExplanation(ev...)
		gotE, gerrE := b.MostProbableExplanation(ev...)
		if (errE == nil) != (gerrE == nil) || gotE.Probability != wantE.Probability {
			t.Fatalf("MPE(%v): batch %x (%v), per-query %x (%v)", ev, gotE.Probability, gerrE, wantE.Probability, errE)
		}
		for i := range wantE.Assignments {
			if gotE.Assignments[i] != wantE.Assignments[i] {
				t.Errorf("MPE(%v)[%d]: batch %v, per-query %v", ev, i, gotE.Assignments[i], wantE.Assignments[i])
			}
		}
	}
	// Multi-target conditionals and targets overlapping the evidence take
	// the joint fallback path.
	multi := []Assignment{target, {Attr: evidence[1][0].Attr, Value: evidence[1][0].Value}}
	wantC, errC := k.Conditional(multi, evidence[1])
	gotC, gerrC := b.Conditional(multi, evidence[1])
	if (errC == nil) != (gerrC == nil) || gotC != wantC {
		t.Errorf("Conditional(multi): batch %x (%v), per-query %x (%v)", gotC, gerrC, wantC, errC)
	}
}

// TestBatchGroupsEvidence: a same-evidence group of single-target
// conditionals must cost one denominator and one conditional-slice sweep
// per attribute — not two pinned sums per query like the per-query path.
func TestBatchGroupsEvidence(t *testing.T) {
	k := memoKB(t)
	b := NewBatch(k)
	evidence := []Assignment{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}
	reordered := []Assignment{{Attr: "FAMILY HISTORY", Value: "Yes"}, {Attr: "SMOKING", Value: "Smoker"}}
	queries := 0
	for _, ev := range [][]Assignment{evidence, reordered} {
		for _, v := range []string{"Yes", "No"} {
			if _, err := b.Conditional([]Assignment{{Attr: "CANCER", Value: v}}, ev); err != nil {
				t.Fatal(err)
			}
			queries++
		}
	}
	// Per-query serving costs 2 engine evaluations per conditional (the
	// denominator pin and the numerator pin); the batch pays 1 denominator
	// + 1 sweep for the whole group, across both evidence orderings.
	sequential := 2 * queries
	if got, want := b.Evals(), 2; got != want {
		t.Errorf("batch evals = %d, want %d (sequential path would use %d)", got, want, sequential)
	}
	// A distribution over the same (evidence, attribute) pair rides the
	// same cached sweep; MPE adds exactly one argmax pass.
	if _, err := b.Distribution("CANCER", evidence...); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Evals(), 2; got != want {
		t.Errorf("evals after cached distribution = %d, want %d", got, want)
	}
	if _, err := b.MostProbableExplanation(evidence...); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Evals(), 3; got != want {
		t.Errorf("evals after MPE = %d, want %d", got, want)
	}
}

// TestBatchErrorParity: validation failures must match the per-query
// messages exactly, so batch serving is indistinguishable to clients.
func TestBatchErrorParity(t *testing.T) {
	k := memoKB(t)
	b := NewBatch(k)
	cases := []struct {
		name string
		per  func() error
		bat  func() error
	}{
		{"unknown evidence attr",
			func() error {
				_, err := k.Conditional([]Assignment{{Attr: "CANCER", Value: "Yes"}}, []Assignment{{Attr: "NOPE", Value: "x"}})
				return err
			},
			func() error {
				_, err := b.Conditional([]Assignment{{Attr: "CANCER", Value: "Yes"}}, []Assignment{{Attr: "NOPE", Value: "x"}})
				return err
			}},
		{"unknown target value",
			func() error { _, err := k.Conditional([]Assignment{{Attr: "CANCER", Value: "Maybe"}}, nil); return err },
			func() error { _, err := b.Conditional([]Assignment{{Attr: "CANCER", Value: "Maybe"}}, nil); return err }},
		{"contradictory evidence",
			func() error {
				_, err := k.Probability(Assignment{Attr: "CANCER", Value: "Yes"}, Assignment{Attr: "CANCER", Value: "No"})
				return err
			},
			func() error {
				_, err := b.Probability(Assignment{Attr: "CANCER", Value: "Yes"}, Assignment{Attr: "CANCER", Value: "No"})
				return err
			}},
		{"self-conditioning",
			func() error { _, err := k.Distribution("CANCER", Assignment{Attr: "CANCER", Value: "Yes"}); return err },
			func() error { _, err := b.Distribution("CANCER", Assignment{Attr: "CANCER", Value: "Yes"}); return err }},
		{"unknown distribution attr",
			func() error { _, err := k.Distribution("NOPE"); return err },
			func() error { _, err := b.Distribution("NOPE"); return err }},
	}
	for _, tc := range cases {
		perErr, batErr := tc.per(), tc.bat()
		if perErr == nil || batErr == nil {
			t.Fatalf("%s: expected errors, got per-query %v, batch %v", tc.name, perErr, batErr)
		}
		if perErr.Error() != batErr.Error() {
			t.Errorf("%s: per-query %q, batch %q", tc.name, perErr, batErr)
		}
	}
}

// TestBatchCacheHitAllocs pins the alloc ceiling of the serving hot path:
// once a batch session is warm, repeated conditionals over a cached
// evidence set must not allocate key strings — the reusable key scratch
// plus the compiler's no-copy map lookups keep steady-state allocations to
// the per-call resolution scratch only.
func TestBatchCacheHitAllocs(t *testing.T) {
	k := memoKB(t)
	b := NewBatch(k)
	target := []Assignment{{Attr: "CANCER", Value: "Yes"}}
	given := []Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	warm := func() {
		if _, err := b.Conditional(target, given); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Probability(given...); err != nil {
			t.Fatal(err)
		}
	}
	warm() // populate every cache the steady state reads
	avg := testing.AllocsPerRun(200, warm)
	// The warm path still resolves names (one VarSet/values pair per call);
	// what it must NOT do is rebuild key strings per lookup. The pre-change
	// string-concat keys cost 6+ allocations per warm pair of calls; the
	// scratch-buffer keys cost at most the resolution's own 2.
	if avg > 2 {
		t.Errorf("warm batch pair of calls allocates %.1f times, want <= 2", avg)
	}
}
