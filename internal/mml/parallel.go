package mml

import (
	"fmt"
	"runtime"
	"sync"

	"pka/internal/contingency"
)

// candidate is one (family, cell) pair of a scan, in deterministic order.
type candidate struct {
	family contingency.VarSet
	values []int
}

// ScanOrderParallel is ScanOrder with the candidate scoring fanned out over
// a worker pool. Results are identical to the sequential scan (same order,
// same values); only wall time changes. workers <= 0 uses GOMAXPROCS.
//
// Scoring is read-only on the tester and the predict callback must be safe
// for concurrent use — model predictions are, because they only read the
// fitted coefficients.
func (t *Tester) ScanOrderParallel(r int, predict func(family contingency.VarSet, values []int) (float64, error), workers int) ([]CellTest, error) {
	if r < 2 || r > t.table.R() {
		return nil, fmt.Errorf("mml: scan order %d outside [2,%d]", r, t.table.R())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Enumerate candidates deterministically, skipping significant cells —
	// the same walk the sequential scan performs.
	var cands []candidate
	for _, fam := range contingency.Combinations(t.table.R(), r) {
		members := fam.Members()
		values := make([]int, len(members))
		for {
			if !t.IsSignificant(fam, values) {
				cands = append(cands, candidate{
					family: fam,
					values: append([]int(nil), values...),
				})
			}
			i := len(members) - 1
			for i >= 0 {
				values[i]++
				if values[i] < t.table.Card(members[i]) {
					break
				}
				values[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	out := make([]CellTest, len(cands))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := cands[i]
				p, err := predict(c.family, c.values)
				if err != nil {
					errs[w] = err
					return
				}
				ct, err := t.Test(c.family, c.values, p)
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = ct
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
