package mml

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ScanOrderParallel is ScanOrder with the family pricing fanned out over a
// worker pool: each family costs one batch marginal sweep plus its cell
// tests, so families are the natural unit of parallel work. Results are
// identical to the sequential scan (same order, same values); only wall
// time changes. workers <= 0 uses GOMAXPROCS.
//
// Scoring is read-only on the tester, and the predictor must be safe for
// concurrent use — compiled model engines are.
func (t *Tester) ScanOrderParallel(r int, pred Predictor, workers int) ([]CellTest, error) {
	if r < 2 || r > t.table.R() {
		return nil, fmt.Errorf("mml: scan order %d outside [2,%d]", r, t.table.R())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	families := t.familiesAtOrder(r)
	if workers > len(families) {
		workers = len(families)
	}
	results := make([][]CellTest, len(families))
	errs := make([]error, len(families))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(families) {
					return
				}
				results[i], errs[i] = t.scanFamily(families[i], pred)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: first failing family wins.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []CellTest
	for _, tests := range results {
		out = append(out, tests...)
	}
	return out, nil
}
