package mml

import (
	"fmt"

	"pka/internal/par"
)

// ScanOrderParallel is ScanOrder with the family pricing fanned out over
// the shared worker pool (par.Do): each family costs one batch marginal
// sweep plus its cell tests, so families are the natural unit of parallel
// work. Results are identical to the sequential scan (same order, same
// values); only wall time changes. workers <= 0 uses GOMAXPROCS; 1 runs
// the families sequentially on the calling goroutine.
//
// Scoring is read-only on the tester, and the predictor must be safe for
// concurrent use — compiled model engines are.
func (t *Tester) ScanOrderParallel(r int, pred Predictor, workers int) ([]CellTest, error) {
	if r < 2 || r > t.table.R() {
		return nil, fmt.Errorf("mml: scan order %d outside [2,%d]", r, t.table.R())
	}
	families := t.familiesAtOrder(r)
	results := make([][]CellTest, len(families))
	if err := par.Do(len(families), workers, func(i int) error {
		var err error
		results[i], err = t.scanFamily(families[i], pred)
		return err
	}); err != nil {
		return nil, err
	}
	var out []CellTest
	for _, tests := range results {
		out = append(out, tests...)
	}
	return out, nil
}
