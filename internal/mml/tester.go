package mml

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"pka/internal/contingency"
)

// Config tunes the significance test.
type Config struct {
	// PriorH2 is p(H2'), the prior probability that at least one more
	// significant constraint exists. The memo assumes 0.5 (Eq. 63), making
	// the prior terms cancel; 0.6 and 0.8 shift m2-m1 by -0.40 and -1.39,
	// which the memo works out and the tests verify. Must be in (0, 1).
	PriorH2 float64
	// IncludeForced keeps the memo's literal Eq. 41 ELSE branch: a cell
	// whose value is fully determined by the known marginals encodes for
	// free under H2 (p(D|H2) = 1) and therefore always tests significant.
	// Such cells carry no new information — their constraint is already
	// implied — so by default they are never selected; set IncludeForced
	// to reproduce the raw behaviour.
	IncludeForced bool
}

// DefaultConfig returns the memo's defaults (with forced cells excluded
// from selection; see Config.IncludeForced).
func DefaultConfig() Config { return Config{PriorH2: 0.5} }

func (c Config) validate() error {
	if !(c.PriorH2 > 0 && c.PriorH2 < 1) {
		return fmt.Errorf("mml: PriorH2 %g outside (0,1)", c.PriorH2)
	}
	return nil
}

// SignificantCell records one constraint already accepted: an attribute
// family, a cell of it, and the observed marginal count.
type SignificantCell struct {
	Family contingency.VarSet
	Values []int
	Count  int64
}

// Tester evaluates candidate cells against the observed contingency counts,
// tracking which cells have been marked significant so far (the memo's
// "significant(N...s)" bookkeeping in Eq. 41). The counts backend may be
// dense or sparse — scoring consumes only the Counts marginals.
type Tester struct {
	table contingency.Counts
	cfg   Config
	// sig holds accepted cells grouped by family.
	sig map[contingency.VarSet][]SignificantCell
	// sigKeys dedupes accepted cells across families.
	sigKeys map[string]bool
	// sigPerOrder counts accepted cells per order r (the memo's M).
	sigPerOrder map[int]int
	// familyGen enumerates the candidate attribute families of one order;
	// nil means the full Combinations(R, r) universe. Set by
	// RestrictFamilies for screened wide-schema scans.
	familyGen func(order int) []contingency.VarSet
	// cellsMemo caches CellsAtOrder per order (the table is read-only, so
	// the count never changes for a given family universe). cellsMu
	// guards it: ScanOrderParallel workers score concurrently, and every
	// Test consults CellsAtOrder.
	cellsMu   sync.RWMutex
	cellsMemo map[int]int
}

// NewTester validates inputs and builds a tester over the counts backend
// (dense *contingency.Table or *contingency.Sparse).
func NewTester(table contingency.Counts, cfg Config) (*Tester, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if table.Total() == 0 {
		return nil, fmt.Errorf("mml: empty contingency table")
	}
	if ck, ok := table.(interface{ CheckConsistency() error }); ok {
		if err := ck.CheckConsistency(); err != nil {
			return nil, fmt.Errorf("mml: %w", err)
		}
	}
	return &Tester{
		table:       table,
		cfg:         cfg,
		sig:         make(map[contingency.VarSet][]SignificantCell),
		sigKeys:     make(map[string]bool),
		sigPerOrder: make(map[int]int),
		cellsMemo:   make(map[int]int),
	}, nil
}

// Table returns the observed counts the tester scores against.
func (t *Tester) Table() contingency.Counts { return t.table }

// RestrictFamilies narrows the candidate universe of order >= 2 attribute
// families: gen(r) must deterministically enumerate the families eligible
// at order r (a subset of Combinations(R, r)). Scans visit only those
// families, and CellsAtOrder — the memo's "no. of cells at this order" term
// of Eq. 45 — counts only their cells, so the message-length comparison
// prices candidates against the screened universe. nil restores the full
// enumeration. Association screening in the discovery engine is the
// intended caller; switching generators mid-run invalidates the cached
// cell counts and is not supported.
func (t *Tester) RestrictFamilies(gen func(order int) []contingency.VarSet) {
	t.familyGen = gen
	t.cellsMu.Lock()
	t.cellsMemo = make(map[int]int)
	t.cellsMu.Unlock()
}

// familiesAtOrder enumerates the candidate families of one order.
func (t *Tester) familiesAtOrder(r int) []contingency.VarSet {
	if t.familyGen != nil {
		return t.familyGen(r)
	}
	return contingency.Combinations(t.table.R(), r)
}

func cellKey(family contingency.VarSet, values []int) string {
	b := family.AppendKey(make([]byte, 0, 24+4*len(values)))
	b = append(b, ':')
	for _, v := range values {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

// MarkSignificant records a cell as an accepted constraint (the discovery
// loop calls this after each selection; callers may also seed it with
// "originally given" constraints, per the memo).
func (t *Tester) MarkSignificant(family contingency.VarSet, values []int) error {
	count, err := t.table.MarginalCount(family, values)
	if err != nil {
		return fmt.Errorf("mml: marking significant cell: %w", err)
	}
	k := cellKey(family, values)
	if t.sigKeys[k] {
		return fmt.Errorf("mml: cell %v%v already marked significant", family, values)
	}
	t.sigKeys[k] = true
	t.sig[family] = append(t.sig[family], SignificantCell{
		Family: family,
		Values: append([]int(nil), values...),
		Count:  count,
	})
	t.sigPerOrder[family.Len()]++
	return nil
}

// IsSignificant reports whether the exact family cell has been marked.
func (t *Tester) IsSignificant(family contingency.VarSet, values []int) bool {
	return t.sigKeys[cellKey(family, values)]
}

// SignificantAtOrder returns M, the number of accepted order-r cells.
func (t *Tester) SignificantAtOrder(r int) int { return t.sigPerOrder[r] }

// CellsAtOrder returns the total number of cells across the order-r
// candidate attribute families — the memo's "no. of cells at this order"
// (16 for the example's second order). With a restricted family universe
// (RestrictFamilies) only the eligible families' cells are counted.
func (t *Tester) CellsAtOrder(r int) int {
	t.cellsMu.RLock()
	n, ok := t.cellsMemo[r]
	t.cellsMu.RUnlock()
	if ok {
		return n
	}
	total := 0
	for _, fam := range t.familiesAtOrder(r) {
		size := 1
		for _, p := range fam.Members() {
			size *= t.table.Card(p)
		}
		total += size
	}
	// Racing scorers compute the same total; last store is idempotent.
	t.cellsMu.Lock()
	t.cellsMemo[r] = total
	t.cellsMu.Unlock()
	return total
}

// chanceRange implements the generalized Eq. 41. It returns:
//
//	forced — true when some known marginal leaves the cell no freedom
//	         (≤1 free cell on that margin), so its value is determined and
//	         p(D|H2) = 1;
//	rangeMax — otherwise, the largest value the cell could take by chance:
//	         the minimum slack over known marginals after subtracting
//	         significant sibling cells.
func (t *Tester) chanceRange(family contingency.VarSet, values []int) (forced bool, rangeMax int64, err error) {
	members := family.Members()
	pos := make(map[int]int, len(members)) // attribute -> index into values
	for i, p := range members {
		pos[p] = i
	}
	siblings := t.sig[family]
	rangeMax = math.MaxInt64
	sawKnown := false
	for _, sub := range family.ProperSubsets() {
		subMembers := sub.Members()
		restriction := make([]int, len(subMembers))
		for i, p := range subMembers {
			restriction[i] = values[pos[p]]
		}
		known := sub.Len() == 1 || t.IsSignificant(sub, restriction)
		if !known {
			continue
		}
		sawKnown = true
		marginVal, merr := t.table.MarginalCount(sub, restriction)
		if merr != nil {
			return false, 0, merr
		}
		// Cells of this family consistent with the restriction.
		avail := int64(1)
		for _, p := range members {
			if !sub.Has(p) {
				avail *= int64(t.table.Card(p))
			}
		}
		var sibSum int64
		var sibCount int64
		for _, s := range siblings {
			if agreesOn(s.Values, values, members, sub) {
				// The candidate itself is never in siblings: callers test
				// only unmarked cells.
				sibSum += s.Count
				sibCount++
			}
		}
		if avail-sibCount <= 1 {
			return true, 0, nil
		}
		if slack := marginVal - sibSum; slack < rangeMax {
			rangeMax = slack
		}
	}
	if !sawKnown {
		// Cannot happen for order >= 2 (first-order marginals are always
		// known), but guard the degenerate call.
		return false, t.table.Total(), nil
	}
	if rangeMax < 0 {
		return false, 0, fmt.Errorf("mml: negative chance range for %v%v", family, values)
	}
	return false, rangeMax, nil
}

// agreesOn reports whether a sibling cell's values match the candidate's on
// the attributes of sub. members lists the family's attributes ascending;
// both value slices are in that order.
func agreesOn(sibling, candidate []int, members []int, sub contingency.VarSet) bool {
	for i, p := range members {
		if sub.Has(p) && sibling[i] != candidate[i] {
			return false
		}
	}
	return true
}
