// Package mml implements the memo's minimum-message-length significance
// test (Eqs. 35-47): deciding whether an observed cell count N_ijk... is
// statistically significant relative to the current maximum-entropy model.
//
// Two hypotheses are encoded and their message lengths compared:
//
//	H1: the model already explains the cell — its count is binomial with
//	    the model-predicted probability (Eq. 32); message length m1 (Eq. 46).
//	H2: the cell is the next significant constraint — under chance its
//	    count is uniform over the feasible integer range allowed by the
//	    known marginals (Eq. 41); message length m2 (Eq. 45).
//
// The cell is significant when m2 - m1 < 0 (Eq. 47): the chance encoding is
// cheaper, meaning the model's prediction is too surprised by the data.
//
// The feasible-range computation generalizes the memo's third-order Eq. 41
// to any order: for every *known* constraining marginal of the cell (every
// first-order marginal, plus any higher-order marginal itself found
// significant), the cell can neither exceed the marginal's remaining slack
// after earlier significant siblings are subtracted, nor occupy a margin
// whose other cells are all already determined.
package mml
