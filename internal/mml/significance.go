package mml

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/stats"
)

// CellTest is the full scored comparison of one candidate cell — one row of
// the memo's Table 1.
type CellTest struct {
	Family contingency.VarSet
	Values []int

	Observed  int64   // N_ij... from the data
	Predicted float64 // model-predicted cell probability
	Mean      float64 // Eq. 33
	SD        float64 // Eq. 34
	Z         float64 // "No. of sd's"

	M1    float64 // message length under H1 (Eq. 46)
	M2    float64 // message length under H2 (Eq. 45)
	Delta float64 // m2 - m1; negative means significant (Eq. 47)
	// LikelihoodRatio is p(H1|D)/p(H2|D) = exp(Delta), the memo's last
	// Table 1 column.
	LikelihoodRatio float64

	Significant bool
	// Forced marks cells whose value is fully determined by the known
	// marginals (the memo's ELSE branch of Eq. 41): p(D|H2) = 1.
	Forced bool
	// Range is the chance range maximum when not forced.
	Range int64
}

// Test scores one candidate cell given the model-predicted probability of
// that cell. The candidate must not already be marked significant, and
// there must be remaining capacity at its order (cells at order > M).
func (t *Tester) Test(family contingency.VarSet, values []int, predicted float64) (CellTest, error) {
	r := family.Len()
	if r < 2 {
		return CellTest{}, fmt.Errorf("mml: significance testing starts at order 2, got %v", family)
	}
	if r > t.table.R() {
		return CellTest{}, fmt.Errorf("mml: family %v exceeds table order %d", family, t.table.R())
	}
	if predicted < 0 || predicted > 1 || math.IsNaN(predicted) {
		return CellTest{}, fmt.Errorf("mml: predicted probability %g outside [0,1]", predicted)
	}
	if t.IsSignificant(family, values) {
		return CellTest{}, fmt.Errorf("mml: cell %v%v already significant", family, values)
	}
	observed, err := t.table.MarginalCount(family, values)
	if err != nil {
		return CellTest{}, err
	}
	remaining := t.CellsAtOrder(r) - t.SignificantAtOrder(r)
	if remaining <= 0 {
		return CellTest{}, fmt.Errorf("mml: no remaining cells at order %d", r)
	}

	ct := CellTest{
		Family:    family,
		Values:    append([]int(nil), values...),
		Observed:  observed,
		Predicted: predicted,
	}
	n := t.table.Total()
	b := stats.Binomial{N: n, P: predicted}
	ct.Mean = b.Mean()
	ct.SD = b.SD()
	ct.Z = b.ZScore(observed)

	// m1 = -ln p(H1) - ln pmf (Eq. 46).
	logPMF := b.LogPMF(observed)
	ct.M1 = -math.Log(1-t.cfg.PriorH2) - logPMF

	// m2 = -ln p(H2') + ln(cells at order - M) [+ ln(range+1)] (Eq. 45).
	forced, rangeMax, err := t.chanceRange(family, values)
	if err != nil {
		return CellTest{}, err
	}
	ct.Forced = forced
	ct.Range = rangeMax
	ct.M2 = -math.Log(t.cfg.PriorH2) + math.Log(float64(remaining))
	if !forced {
		ct.M2 += math.Log(float64(rangeMax) + 1)
	}

	ct.Delta = ct.M2 - ct.M1
	ct.LikelihoodRatio = math.Exp(ct.Delta)
	ct.Significant = ct.Delta < 0 && (!forced || t.cfg.IncludeForced)
	return ct, nil
}

// ScanOrder scores every not-yet-significant cell of every order-r family
// using the predict callback to obtain model probabilities, returning the
// tests in deterministic (family, cell) order — one full scan of the memo's
// Figure 3 inner loop.
func (t *Tester) ScanOrder(r int, predict func(family contingency.VarSet, values []int) (float64, error)) ([]CellTest, error) {
	if r < 2 || r > t.table.R() {
		return nil, fmt.Errorf("mml: scan order %d outside [2,%d]", r, t.table.R())
	}
	var out []CellTest
	for _, fam := range contingency.Combinations(t.table.R(), r) {
		members := fam.Members()
		values := make([]int, len(members))
		for {
			if !t.IsSignificant(fam, values) {
				p, err := predict(fam, values)
				if err != nil {
					return nil, err
				}
				ct, err := t.Test(fam, values, p)
				if err != nil {
					return nil, err
				}
				out = append(out, ct)
			}
			// Odometer over the family's value space.
			i := len(members) - 1
			for i >= 0 {
				values[i]++
				if values[i] < t.table.Card(members[i]) {
					break
				}
				values[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	return out, nil
}

// MostSignificant returns the index of the most significant test (smallest
// Delta) among those with Significant set, or -1 when none qualify. Ties
// break toward the earlier (deterministic scan-order) entry.
func MostSignificant(tests []CellTest) int {
	best := -1
	for i, ct := range tests {
		if !ct.Significant {
			continue
		}
		if best < 0 || ct.Delta < tests[best].Delta {
			best = i
		}
	}
	return best
}
