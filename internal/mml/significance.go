package mml

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/stats"
)

// CellTest is the full scored comparison of one candidate cell — one row of
// the memo's Table 1.
type CellTest struct {
	Family contingency.VarSet
	Values []int

	Observed  int64   // N_ij... from the data
	Predicted float64 // model-predicted cell probability
	Mean      float64 // Eq. 33
	SD        float64 // Eq. 34
	Z         float64 // "No. of sd's"

	M1    float64 // message length under H1 (Eq. 46)
	M2    float64 // message length under H2 (Eq. 45)
	Delta float64 // m2 - m1; negative means significant (Eq. 47)
	// LikelihoodRatio is p(H1|D)/p(H2|D) = exp(Delta), the memo's last
	// Table 1 column.
	LikelihoodRatio float64

	Significant bool
	// Forced marks cells whose value is fully determined by the known
	// marginals (the memo's ELSE branch of Eq. 41): p(D|H2) = 1.
	Forced bool
	// Range is the chance range maximum when not forced.
	Range int64
}

// Test scores one candidate cell given the model-predicted probability of
// that cell. The candidate must not already be marked significant, and
// there must be remaining capacity at its order (cells at order > M).
func (t *Tester) Test(family contingency.VarSet, values []int, predicted float64) (CellTest, error) {
	r := family.Len()
	if r < 2 {
		return CellTest{}, fmt.Errorf("mml: significance testing starts at order 2, got %v", family)
	}
	if r > t.table.R() {
		return CellTest{}, fmt.Errorf("mml: family %v exceeds table order %d", family, t.table.R())
	}
	if predicted < 0 || predicted > 1 || math.IsNaN(predicted) {
		return CellTest{}, fmt.Errorf("mml: predicted probability %g outside [0,1]", predicted)
	}
	if t.IsSignificant(family, values) {
		return CellTest{}, fmt.Errorf("mml: cell %v%v already significant", family, values)
	}
	observed, err := t.table.MarginalCount(family, values)
	if err != nil {
		return CellTest{}, err
	}
	remaining := t.CellsAtOrder(r) - t.SignificantAtOrder(r)
	if remaining <= 0 {
		return CellTest{}, fmt.Errorf("mml: no remaining cells at order %d", r)
	}

	ct := CellTest{
		Family:    family,
		Values:    append([]int(nil), values...),
		Observed:  observed,
		Predicted: predicted,
	}
	n := t.table.Total()
	b := stats.Binomial{N: n, P: predicted}
	ct.Mean = b.Mean()
	ct.SD = b.SD()
	ct.Z = b.ZScore(observed)

	// m1 = -ln p(H1) - ln pmf (Eq. 46).
	logPMF := b.LogPMF(observed)
	ct.M1 = -math.Log(1-t.cfg.PriorH2) - logPMF

	// m2 = -ln p(H2') + ln(cells at order - M) [+ ln(range+1)] (Eq. 45).
	forced, rangeMax, err := t.chanceRange(family, values)
	if err != nil {
		return CellTest{}, err
	}
	ct.Forced = forced
	ct.Range = rangeMax
	ct.M2 = -math.Log(t.cfg.PriorH2) + math.Log(float64(remaining))
	if !forced {
		ct.M2 += math.Log(float64(rangeMax) + 1)
	}

	ct.Delta = ct.M2 - ct.M1
	ct.LikelihoodRatio = math.Exp(ct.Delta)
	ct.Significant = ct.Delta < 0 && (!forced || t.cfg.IncludeForced)
	return ct, nil
}

// Predictor supplies model-predicted marginals for scan scoring. The
// discovery engine backs it with a compiled inference engine so one batch
// elimination sweep prices a whole family; PerCell adapts legacy per-cell
// callbacks. Implementations must be safe for concurrent use — the parallel
// scan prices families from many goroutines.
type Predictor interface {
	// Marginal returns the predicted probability of every cell of the
	// family, dense row-major over the members ascending (first member
	// slowest) — the same order an odometer over the family's value space
	// visits cells.
	Marginal(family contingency.VarSet) ([]float64, error)
}

// perCell adapts a per-cell probability callback to the batch Predictor
// interface by evaluating every family cell individually — the original
// scan evaluation strategy, retained for callers without a compiled model
// and as the reference path in equivalence tests.
type perCell struct {
	cards   []int
	predict func(family contingency.VarSet, values []int) (float64, error)
}

// PerCell wraps a per-cell prediction callback as a Predictor over the
// given attribute cardinalities. Note the batch contract: predict is called
// for every cell of a scanned family, including cells already marked
// significant (whose predictions the scan then ignores).
func PerCell(cards []int, predict func(family contingency.VarSet, values []int) (float64, error)) Predictor {
	return perCell{cards: append([]int(nil), cards...), predict: predict}
}

func (p perCell) Marginal(family contingency.VarSet) ([]float64, error) {
	members := family.Members()
	size := 1
	for _, pos := range members {
		if pos >= len(p.cards) {
			return nil, fmt.Errorf("mml: family %v exceeds %d attributes", family, len(p.cards))
		}
		size *= p.cards[pos]
	}
	out := make([]float64, 0, size)
	values := make([]int, len(members))
	for {
		v, err := p.predict(family, values)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		i := len(members) - 1
		for i >= 0 {
			values[i]++
			if values[i] < p.cards[members[i]] {
				break
			}
			values[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// scanFamily prices one family: a single batch marginal from the predictor,
// then one significance test per not-yet-significant cell, in deterministic
// odometer order.
func (t *Tester) scanFamily(fam contingency.VarSet, pred Predictor) ([]CellTest, error) {
	members := fam.Members()
	size := 1
	for _, pos := range members {
		size *= t.table.Card(pos)
	}
	// A fully-promoted family has nothing left to test: skip it before
	// paying for a marginal sweep (repeat passes at one order hit this).
	if len(t.sig[fam]) == size {
		return nil, nil
	}
	marg, err := pred.Marginal(fam)
	if err != nil {
		return nil, err
	}
	if len(marg) != size {
		return nil, fmt.Errorf("mml: predictor returned %d probabilities for family %v (%d cells)",
			len(marg), fam, size)
	}
	var out []CellTest
	values := make([]int, len(members))
	for idx := 0; ; idx++ {
		if !t.IsSignificant(fam, values) {
			ct, err := t.Test(fam, values, marg[idx])
			if err != nil {
				return nil, err
			}
			out = append(out, ct)
		}
		// Odometer over the family's value space.
		i := len(members) - 1
		for i >= 0 {
			values[i]++
			if values[i] < t.table.Card(members[i]) {
				break
			}
			values[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// ScanOrder scores every not-yet-significant cell of every order-r family,
// drawing model probabilities one batch marginal per family, and returns
// the tests in deterministic (family, cell) order — one full scan of the
// memo's Figure 3 inner loop.
func (t *Tester) ScanOrder(r int, pred Predictor) ([]CellTest, error) {
	if r < 2 || r > t.table.R() {
		return nil, fmt.Errorf("mml: scan order %d outside [2,%d]", r, t.table.R())
	}
	var out []CellTest
	for _, fam := range t.familiesAtOrder(r) {
		tests, err := t.scanFamily(fam, pred)
		if err != nil {
			return nil, err
		}
		out = append(out, tests...)
	}
	return out, nil
}

// MostSignificant returns the index of the most significant test (smallest
// Delta) among those with Significant set, or -1 when none qualify. Ties
// break toward the earlier (deterministic scan-order) entry.
func MostSignificant(tests []CellTest) int {
	best := -1
	for i, ct := range tests {
		if !ct.Significant {
			continue
		}
		if best < 0 || ct.Delta < tests[best].Delta {
			best = i
		}
	}
	return best
}
