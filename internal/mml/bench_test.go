package mml

import (
	"testing"

	"pka/internal/contingency"
	"pka/internal/maxent"
)

func benchPredictor(b *testing.B, tab *contingency.Table) Predictor {
	b.Helper()
	first, err := tab.FirstOrderProbabilities()
	if err != nil {
		b.Fatal(err)
	}
	return PerCell(tab.Cards(), func(fam contingency.VarSet, values []int) (float64, error) {
		p := 1.0
		for i, pos := range fam.Members() {
			p *= first[pos][values[i]]
		}
		return p, nil
	})
}

func benchMemoTable(b *testing.B) *contingency.Table {
	b.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				tab.Set(data[i][j][k], i, j, k)
			}
		}
	}
	return tab
}

func BenchmarkCellTest(b *testing.B) {
	tab := benchMemoTable(b)
	tester, err := NewTester(tab, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	values := []int{0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tester.Test(fam, values, 0.048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanOrder2(b *testing.B) {
	tab := benchMemoTable(b)
	predict := benchPredictor(b, tab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tester, err := NewTester(tab, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tester.ScanOrder(2, predict); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanOrder3(b *testing.B) {
	tab := benchMemoTable(b)
	predict := benchPredictor(b, tab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tester, err := NewTester(tab, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tester.ScanOrder(3, predict); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanParallel compares sequential and parallel candidate scoring
// on a 10-attribute binary table (180 order-2 cells) with an artificially
// costly predictor, the regime wide scans live in. Speedup tracks available
// cores (GOMAXPROCS); on a single-CPU host the three variants tie.
func BenchmarkScanParallel(b *testing.B) {
	cards := make([]int, 10)
	for i := range cards {
		cards[i] = 2
	}
	tab := contingency.MustNew(nil, cards)
	cell := make([]int, 10)
	for off := 0; off < tab.NumCells(); off++ {
		tab.Unflatten(off, cell)
		tab.Set(int64(off%7)+1, cell...)
	}
	first, err := tab.FirstOrderProbabilities()
	if err != nil {
		b.Fatal(err)
	}
	predict := PerCell(tab.Cards(), func(fam contingency.VarSet, values []int) (float64, error) {
		// Simulate model-prediction cost with a small busy loop on top of
		// the product; real predictions run the Appendix B recursion.
		p := 1.0
		for spin := 0; spin < 50; spin++ {
			p = 1.0
			for i, pos := range fam.Members() {
				p *= first[pos][values[i]]
			}
		}
		return p, nil
	})
	for _, workers := range []int{1, 4, 0} {
		name := "seq"
		switch workers {
		case 4:
			name = "par4"
		case 0:
			name = "parMax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tester, err := NewTester(tab, DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if workers == 1 {
					if _, err := tester.ScanOrder(2, predict); err != nil {
						b.Fatal(err)
					}
				} else if _, err := tester.ScanOrderParallel(2, predict, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanOrderCompiled prices a full second-order scan against a
// fitted maximum-entropy model — the discovery engine's actual inner loop —
// comparing the legacy per-cell prediction path (one elimination recursion
// per cell via PerCell + Model.Prob) with the compiled batch-marginal
// predictor (one sweep per family via Model.Marginal). The 8-attribute
// ternary space (28 families × 9 cells = 252 candidates over 6561 joint
// cells) is the regime real scans live in.
func BenchmarkScanOrderCompiled(b *testing.B) {
	r, card := 8, 3
	cards := make([]int, r)
	for i := range cards {
		cards[i] = card
	}
	tab := contingency.MustNew(nil, cards)
	cell := make([]int, r)
	for off := 0; off < tab.NumCells(); off++ {
		tab.Unflatten(off, cell)
		if err := tab.Set(int64(off%11)+1, cell...); err != nil {
			b.Fatal(err)
		}
	}
	model, err := maxent.NewModel(tab.Names(), tab.Cards())
	if err != nil {
		b.Fatal(err)
	}
	if err := model.AddFirstOrderConstraints(tab); err != nil {
		b.Fatal(err)
	}
	if _, err := model.Fit(maxent.SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	wantTests := r * (r - 1) / 2 * card * card
	run := func(b *testing.B, pred Predictor) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tester, err := NewTester(tab, DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			tests, err := tester.ScanOrder(2, pred)
			if err != nil {
				b.Fatal(err)
			}
			if len(tests) != wantTests {
				b.Fatalf("scan produced %d tests, want %d", len(tests), wantTests)
			}
		}
	}
	b.Run("percell", func(b *testing.B) {
		run(b, PerCell(tab.Cards(), model.Prob))
	})
	b.Run("batch", func(b *testing.B) {
		run(b, model) // *maxent.Model satisfies Predictor via Marginal
	})
}

func BenchmarkChanceRangeWithSiblings(b *testing.B) {
	tab := benchMemoTable(b)
	tester, err := NewTester(tab, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	if err := tester.MarkSignificant(fam, []int{1, 0}); err != nil {
		b.Fatal(err)
	}
	if err := tester.MarkSignificant(fam, []int{2, 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tester.chanceRange(fam, []int{0, 0}); err != nil {
			b.Fatal(err)
		}
	}
}
