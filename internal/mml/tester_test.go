package mml

import (
	"math"
	"testing"

	"pka/internal/contingency"
)

// memoTable reconstructs the memo's Figure 1 data.
func memoTable(t testing.TB) *contingency.Table {
	t.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tab
}

// independencePredictor returns the product-of-marginals prediction
// (Eq. 62) — the model state before any second-order constraint is found.
func independencePredictor(t testing.TB, tab *contingency.Table) func(contingency.VarSet, []int) (float64, error) {
	t.Helper()
	firstOrder, err := tab.FirstOrderProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	return func(fam contingency.VarSet, values []int) (float64, error) {
		p := 1.0
		for i, pos := range fam.Members() {
			p *= firstOrder[pos][values[i]]
		}
		return p, nil
	}
}

func TestNewTesterValidation(t *testing.T) {
	if _, err := NewTester(memoTable(t), Config{PriorH2: 0}); err == nil {
		t.Error("PriorH2=0 accepted")
	}
	if _, err := NewTester(memoTable(t), Config{PriorH2: 1}); err == nil {
		t.Error("PriorH2=1 accepted")
	}
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, err := NewTester(empty, DefaultConfig()); err == nil {
		t.Error("empty table accepted")
	}
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tt.Table().Total() != 3428 {
		t.Error("Table accessor wrong")
	}
}

func TestCellsAtOrderMatchesMemo(t *testing.T) {
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The memo: "there are 16 second order cells".
	if got := tt.CellsAtOrder(2); got != 16 {
		t.Errorf("CellsAtOrder(2) = %d, memo says 16", got)
	}
	// Third order: the full 3×2×2 = 12 cells.
	if got := tt.CellsAtOrder(3); got != 12 {
		t.Errorf("CellsAtOrder(3) = %d, want 12", got)
	}
}

func TestMarkSignificantBookkeeping(t *testing.T) {
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 2)
	if tt.IsSignificant(fam, []int{0, 1}) {
		t.Error("fresh tester reports significance")
	}
	if err := tt.MarkSignificant(fam, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if !tt.IsSignificant(fam, []int{0, 1}) {
		t.Error("marked cell not reported")
	}
	if tt.SignificantAtOrder(2) != 1 {
		t.Errorf("M = %d, want 1", tt.SignificantAtOrder(2))
	}
	if err := tt.MarkSignificant(fam, []int{0, 1}); err == nil {
		t.Error("double mark accepted")
	}
	if err := tt.MarkSignificant(fam, []int{9, 9}); err == nil {
		t.Error("out-of-range mark accepted")
	}
}

func TestChanceRangeSecondOrderNoSiblings(t *testing.T) {
	// Before any significant cells, the range of an AB cell is
	// min(N_i^A, N_j^B): for AB11 that is min(1290, 433) = 433.
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	forced, rng, err := tt.chanceRange(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if forced {
		t.Fatal("unconstrained cell reported forced")
	}
	if rng != 433 {
		t.Errorf("range = %d, want min(1290,433) = 433", rng)
	}
	// AB12: min(1290, 2995) = 1290.
	_, rng, err = tt.chanceRange(contingency.NewVarSet(0, 1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rng != 1290 {
		t.Errorf("range = %d, want 1290", rng)
	}
}

func TestChanceRangeSubtractsSiblings(t *testing.T) {
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	// Mark AB21 (count 93). Candidate AB11 shares margin B=1
	// (N^B_1 = 433): slack = 433 - 93 = 340; margin A=1 slack stays 1290.
	if err := tt.MarkSignificant(fam, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	forced, rng, err := tt.chanceRange(fam, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if forced {
		t.Fatal("cell with two free siblings reported forced")
	}
	if rng != 340 {
		t.Errorf("range = %d, want 433-93 = 340", rng)
	}
}

func TestChanceRangeForcedCell(t *testing.T) {
	// Once N^AB_11 is significant, N^AB_12 is determined by N^A_1:
	// the A=1 margin has only one free cell left.
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	if err := tt.MarkSignificant(fam, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	forced, _, err := tt.chanceRange(fam, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !forced {
		t.Error("determined cell not reported forced")
	}
}

func TestChanceRangeThirdOrderUsesSignificantSecondOrder(t *testing.T) {
	// A significant second-order marginal becomes a known constraint for
	// third-order cells (the memo's "significant N^AB_ij" terms in Eq. 41).
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := contingency.NewVarSet(0, 1, 2)
	// Without second-order knowledge: range of ABC cell (1,1,1) is
	// min(N^A_1, N^B_1, N^C_1) = min(1290, 433, 1780) = 433.
	_, rng, err := tt.chanceRange(full, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rng != 433 {
		t.Errorf("range = %d, want 433", rng)
	}
	// Mark N^AB_11 = 240 significant: now the AB marginal of (1,1,*) is
	// known and tighter: 240 < 433.
	if err := tt.MarkSignificant(contingency.NewVarSet(0, 1), []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	_, rng, err = tt.chanceRange(full, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rng != 240 {
		t.Errorf("range = %d, want the significant N^AB_11 = 240", rng)
	}
}

func TestTestValidation(t *testing.T) {
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Test(contingency.NewVarSet(0), []int{0}, 0.5); err == nil {
		t.Error("first-order test accepted")
	}
	if _, err := tt.Test(contingency.NewVarSet(0, 1), []int{0, 0}, -0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := tt.Test(contingency.NewVarSet(0, 1), []int{0, 0}, math.NaN()); err == nil {
		t.Error("NaN probability accepted")
	}
	fam := contingency.NewVarSet(0, 1)
	if err := tt.MarkSignificant(fam, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Test(fam, []int{0, 0}, 0.1); err == nil {
		t.Error("already-significant cell accepted")
	}
}

func TestPriorShiftMatchesMemo(t *testing.T) {
	// Memo: p(H2')=0.6 shifts m2-m1 by -0.40; 0.8 shifts it by -1.39.
	tab := memoTable(t)
	pred := independencePredictor(t, tab)
	fam := contingency.NewVarSet(0, 1)
	cell := []int{0, 1}
	p, _ := pred(fam, cell)

	base, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ct0, err := base.Test(fam, cell, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		prior float64
		shift float64
	}{{0.6, -0.40}, {0.8, -1.39}} {
		tt, err := NewTester(tab, Config{PriorH2: tc.prior})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := tt.Test(fam, cell, p)
		if err != nil {
			t.Fatal(err)
		}
		got := ct.Delta - ct0.Delta
		if math.Abs(got-tc.shift) > 0.01 {
			t.Errorf("prior %g shifts delta by %.3f, memo says %.2f", tc.prior, got, tc.shift)
		}
	}
}
