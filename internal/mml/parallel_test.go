package mml

import (
	"sync"
	"testing"

	"pka/internal/contingency"
)

func TestScanOrderParallelMatchesSequential(t *testing.T) {
	tab := memoTable(t)
	predict := PerCell(tab.Cards(), independencePredictor(t, tab))
	for _, workers := range []int{0, 1, 2, 7, 64} {
		seqT, err := NewTester(tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		seq, err := seqT.ScanOrder(2, predict)
		if err != nil {
			t.Fatal(err)
		}
		parT, err := NewTester(tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		par, err := parT.ScanOrderParallel(2, predict, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("workers=%d: %d vs %d tests", workers, len(par), len(seq))
		}
		for i := range seq {
			if seq[i].Family != par[i].Family || seq[i].Delta != par[i].Delta ||
				seq[i].Observed != par[i].Observed {
				t.Errorf("workers=%d: test %d differs", workers, i)
			}
		}
	}
}

func TestScanOrderParallelSkipsSignificant(t *testing.T) {
	tab := memoTable(t)
	predict := PerCell(tab.Cards(), independencePredictor(t, tab))
	tester, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tester.MarkSignificant(contingency.NewVarSet(0, 1), []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	tests, err := tester.ScanOrderParallel(2, predict, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 15 {
		t.Errorf("parallel scan returned %d tests after one mark, want 15", len(tests))
	}
}

func TestScanOrderParallelValidation(t *testing.T) {
	tab := memoTable(t)
	predict := PerCell(tab.Cards(), independencePredictor(t, tab))
	tester, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tester.ScanOrderParallel(1, predict, 4); err == nil {
		t.Error("order 1 accepted")
	}
	if _, err := tester.ScanOrderParallel(9, predict, 4); err == nil {
		t.Error("order above R accepted")
	}
}

func TestScanOrderParallelPropagatesErrors(t *testing.T) {
	tab := memoTable(t)
	tester, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := func(contingency.VarSet, []int) (float64, error) {
		return 0, errPredict
	}
	if _, err := tester.ScanOrderParallel(2, PerCell(tab.Cards(), bad), 4); err == nil {
		t.Error("predictor error swallowed")
	}
}

var errPredict = &predictError{}

type predictError struct{}

func (*predictError) Error() string { return "predict failed" }

// TestCellsAtOrderConcurrent hammers the CellsAtOrder memo from many
// goroutines (the access pattern of ScanOrderParallel workers, which all
// consult it on a cold cache) — run under -race this pins the memo's
// synchronization.
func TestCellsAtOrderConcurrent(t *testing.T) {
	tab := memoTable(t)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want2, want3 := tt.CellsAtOrder(2), tt.CellsAtOrder(3)
	for _, restrict := range []bool{false, true} {
		fresh, err := NewTester(tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if restrict {
			// A restricted universe exercises the generator path too.
			fresh.RestrictFamilies(func(order int) []contingency.VarSet {
				return contingency.Combinations(tab.R(), order)
			})
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if got := fresh.CellsAtOrder(2); got != want2 {
						t.Errorf("CellsAtOrder(2) = %d, want %d", got, want2)
						return
					}
					if got := fresh.CellsAtOrder(3); got != want3 {
						t.Errorf("CellsAtOrder(3) = %d, want %d", got, want3)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
