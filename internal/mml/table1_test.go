package mml

import (
	"math"
	"testing"

	"pka/internal/contingency"
)

// table1Row is one golden row of the memo's Table 1.
type table1Row struct {
	family   contingency.VarSet
	values   []int
	observed int64
	memoMean float64 // memo's rounded predicted mean
	memoZ    float64 // memo's "No. of sd's"
	memoD    float64 // memo's m2 - m1
	// tol is our tolerance on Delta; rows where the memo's own 3-digit
	// rounding of p dominates (|z| > 4.5) get band checks instead.
	tol float64
}

// memoTable1 transcribes the memo's Table 1. Families: AB = {0,1},
// BC = {1,2}, AC = {0,2}. Two mean cells in the scanned AC block are
// OCR-corrupted (they disagree with N·p by far more than rounding); those
// carry memoMean = -1 and are skipped for the mean check but their Delta is
// still validated.
var memoTable1 = []table1Row{
	{contingency.NewVarSet(0, 1), []int{0, 0}, 240, 165, 6.03, -11.57, 0},
	{contingency.NewVarSet(0, 1), []int{0, 1}, 1050, 1128, -2.83, 1.75, 0.35},
	{contingency.NewVarSet(0, 1), []int{1, 0}, 93, 144, -4.34, -4.74, 1.2},
	{contingency.NewVarSet(0, 1), []int{1, 1}, 1040, 990, 1.86, 3.83, 0.5},
	{contingency.NewVarSet(0, 1), []int{2, 0}, 100, 127, -2.43, 2.44, 0.5},
	{contingency.NewVarSet(0, 1), []int{2, 1}, 905, 888, 1.07, 4.97, 0.6},

	{contingency.NewVarSet(1, 2), []int{0, 0}, 270, 223, 3.27, 0.59, 0.8},
	{contingency.NewVarSet(1, 2), []int{0, 1}, 163, 209, -3.29, -0.21, 0.8},
	{contingency.NewVarSet(1, 2), []int{1, 0}, 1510, 1556, -1.59, 4.77, 0.6},
	{contingency.NewVarSet(1, 2), []int{1, 1}, 1485, 1440, 1.56, 4.62, 0.6},

	{contingency.NewVarSet(0, 2), []int{0, 0}, 540, 668, -5.54, -10.54, 0},
	{contingency.NewVarSet(0, 2), []int{0, 1}, 750, 620, 5.75, -9.95, 0},
	{contingency.NewVarSet(0, 2), []int{1, 0}, 642, 590, 2.37, 2.87, 0.6},
	{contingency.NewVarSet(0, 2), []int{1, 1}, 491, 545, -2.52, 2.63, 0.6},
	{contingency.NewVarSet(0, 2), []int{2, 0}, 598, -1, 0, -0.64, 1.6},
	{contingency.NewVarSet(0, 2), []int{2, 1}, 407, 483, -3.75, -1.49, 1.0},
}

// TestTable1GoldenReproduction recomputes every row of the memo's Table 1
// from scratch (independence predictions, MML scoring) and compares.
func TestTable1GoldenReproduction(t *testing.T) {
	tab := memoTable(t)
	pred := independencePredictor(t, tab)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range memoTable1 {
		p, err := pred(row.family, row.values)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := tt.Test(row.family, row.values, p)
		if err != nil {
			t.Fatalf("%v%v: %v", row.family, row.values, err)
		}
		name := ct.Family.String() + "_" + itoa(row.values)
		if ct.Observed != row.observed {
			t.Errorf("%s: observed %d, memo %d", name, ct.Observed, row.observed)
		}
		// Mean and z tolerances absorb the memo's 3-digit rounding of the
		// independence probabilities (its p column drives both).
		if row.memoMean > 0 && math.Abs(ct.Mean-row.memoMean) > 12 {
			t.Errorf("%s: mean %.1f, memo %.0f", name, ct.Mean, row.memoMean)
		}
		if row.memoMean > 0 && math.Abs(ct.Z-row.memoZ) > 0.2 {
			t.Errorf("%s: z %.2f, memo %.2f", name, ct.Z, row.memoZ)
		}
		// Sign agreement: the significance decision is the headline result.
		if (ct.Delta < 0) != (row.memoD < 0) {
			t.Errorf("%s: delta %.2f disagrees in sign with memo %.2f", name, ct.Delta, row.memoD)
		}
		if row.tol > 0 && math.Abs(ct.Delta-row.memoD) > row.tol {
			t.Errorf("%s: delta %.2f, memo %.2f (tol %.2f)", name, ct.Delta, row.memoD, row.tol)
		}
		// Extreme rows: the memo's 3-digit p rounding dominates; require
		// the same order of magnitude.
		if row.tol == 0 {
			if ct.Delta > row.memoD+3.5 || ct.Delta < row.memoD-3.5 {
				t.Errorf("%s: delta %.2f outside ±3.5 of memo %.2f", name, ct.Delta, row.memoD)
			}
		}
		// Likelihood ratio column: exp(delta).
		if math.Abs(ct.LikelihoodRatio-math.Exp(ct.Delta)) > 1e-9*ct.LikelihoodRatio {
			t.Errorf("%s: likelihood ratio %.3f != exp(delta) %.3f",
				name, ct.LikelihoodRatio, math.Exp(ct.Delta))
		}
	}
}

func itoa(values []int) string {
	s := ""
	for _, v := range values {
		s += string(rune('1' + v))
	}
	return s
}

// TestTable1MostSignificantCell verifies the scan identifies N^AB_11 as the
// single most significant second-order cell (delta -11.57, the smallest in
// the memo's table).
func TestTable1MostSignificantCell(t *testing.T) {
	tab := memoTable(t)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tests, err := tt.ScanOrder(2, PerCell(tab.Cards(), independencePredictor(t, tab)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 16 {
		t.Fatalf("scan produced %d tests, want 16", len(tests))
	}
	best := MostSignificant(tests)
	if best < 0 {
		t.Fatal("no significant cell found")
	}
	ct := tests[best]
	if ct.Family != contingency.NewVarSet(0, 1) || ct.Values[0] != 0 || ct.Values[1] != 0 {
		t.Errorf("most significant = %v%v (delta %.2f), memo's table says N^AB_11",
			ct.Family, ct.Values, ct.Delta)
	}
}

// TestTable1SignificantSet checks the full set of memo-significant cells.
func TestTable1SignificantSet(t *testing.T) {
	tab := memoTable(t)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tests, err := tt.ScanOrder(2, PerCell(tab.Cards(), independencePredictor(t, tab)))
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		f    contingency.VarSet
		a, b int
	}
	wantSig := map[key]bool{
		{contingency.NewVarSet(0, 1), 0, 0}: true, // AB11
		{contingency.NewVarSet(0, 1), 1, 0}: true, // AB21
		{contingency.NewVarSet(1, 2), 0, 1}: true, // BC12
		{contingency.NewVarSet(0, 2), 0, 0}: true, // AC11
		{contingency.NewVarSet(0, 2), 0, 1}: true, // AC12
		{contingency.NewVarSet(0, 2), 2, 0}: true, // AC31
		{contingency.NewVarSet(0, 2), 2, 1}: true, // AC32
	}
	for _, ct := range tests {
		k := key{ct.Family, ct.Values[0], ct.Values[1]}
		if ct.Significant != wantSig[k] {
			t.Errorf("%v%v: significant=%v (delta %.2f), memo says %v",
				ct.Family, ct.Values, ct.Significant, ct.Delta, wantSig[k])
		}
	}
}

func TestScanOrderSkipsSignificant(t *testing.T) {
	tab := memoTable(t)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.MarkSignificant(contingency.NewVarSet(0, 1), []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	tests, err := tt.ScanOrder(2, PerCell(tab.Cards(), independencePredictor(t, tab)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 15 {
		t.Errorf("scan after one mark produced %d tests, want 15", len(tests))
	}
	for _, ct := range tests {
		if ct.Family == contingency.NewVarSet(0, 1) && ct.Values[0] == 0 && ct.Values[1] == 0 {
			t.Error("marked cell still scanned")
		}
	}
}

func TestScanOrderValidation(t *testing.T) {
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := PerCell(contingency.CardsOf(tt.Table()),
		func(contingency.VarSet, []int) (float64, error) { return 0.1, nil })
	if _, err := tt.ScanOrder(1, pred); err == nil {
		t.Error("order 1 accepted")
	}
	if _, err := tt.ScanOrder(4, pred); err == nil {
		t.Error("order above R accepted")
	}
}

func TestMostSignificantEmptyAndTies(t *testing.T) {
	if MostSignificant(nil) != -1 {
		t.Error("empty slice should give -1")
	}
	tests := []CellTest{
		{Delta: 1.0, Significant: false},
		{Delta: -2.0, Significant: true},
		{Delta: -2.0, Significant: true},
		{Delta: -1.0, Significant: true},
	}
	if got := MostSignificant(tests); got != 1 {
		t.Errorf("tie should break to first entry, got %d", got)
	}
	none := []CellTest{{Delta: 0.5}, {Delta: 2}}
	if MostSignificant(none) != -1 {
		t.Error("no significant entries should give -1")
	}
}

func TestForcedCellMessageLength(t *testing.T) {
	// A forced cell's m2 omits the range term entirely.
	tab := memoTable(t)
	tt, err := NewTester(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	if err := tt.MarkSignificant(fam, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	// AB12 is now forced. Its exact probability given the constraints is
	// (N^A_1 - N^AB_11)/N; at that prediction m1 is minimal and the cell
	// must NOT be significant (it is implied, not new information).
	p := (1290.0 - 240.0) / 3428.0
	ct, err := tt.Test(fam, []int{0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Forced {
		t.Fatal("cell not reported forced")
	}
	wantM2 := -math.Log(0.5) + math.Log(15) // remaining = 16 - 1
	if math.Abs(ct.M2-wantM2) > 1e-12 {
		t.Errorf("forced m2 = %.6f, want %.6f", ct.M2, wantM2)
	}
	if ct.Significant {
		t.Error("implied cell scored significant")
	}
}

func TestZeroPredictedWithObservations(t *testing.T) {
	// predicted = 0 but observed > 0: infinitely surprising, delta = -Inf.
	tt, err := NewTester(memoTable(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tt.Test(contingency.NewVarSet(0, 1), []int{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ct.M1, 1) {
		t.Errorf("m1 = %g, want +Inf", ct.M1)
	}
	if !ct.Significant {
		t.Error("impossible observation not significant")
	}
}
