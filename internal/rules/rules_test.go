package rules

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/dataset"
	"pka/internal/kb"
)

// memoKB builds the discovered memo knowledge base.
func memoKB(t testing.TB) *kb.KnowledgeBase {
	t.Helper()
	tab := contingency.MustNew(
		[]string{"SMOKING", "CANCER", "FAMILY HISTORY"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
	k, err := kb.New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestOptionsValidation(t *testing.T) {
	k := memoKB(t)
	bad := []Options{
		{MinProbability: -0.1},
		{MinProbability: 1.1},
		{MinSupport: -0.1},
		{MinSupport: 2},
		{MinLiftDistance: -1},
		{MaxRules: -1},
	}
	for i, o := range bad {
		if _, err := FromKnowledgeBase(k, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestMemoRulesContainSmokingCancer(t *testing.T) {
	// The memo's worked example: IF SMOKING=Smoker THEN CANCER=Yes with
	// probability P(cancer|smoker) ≈ 240/1290 = .186.
	k := memoKB(t)
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules generated")
	}
	found := false
	for _, r := range rs {
		if len(r.If) == 1 && r.If[0].Attr == "SMOKING" && r.If[0].Value == "Smoker" &&
			r.Then.Attr == "CANCER" && r.Then.Value == "Yes" {
			found = true
			if math.Abs(r.Probability-240.0/1290) > 5e-3 {
				t.Errorf("rule probability %.4f, empirical %.4f", r.Probability, 240.0/1290)
			}
			if r.Lift < 1.3 || r.Lift > 1.6 {
				t.Errorf("rule lift %.3f, want ≈1.47", r.Lift)
			}
			if math.Abs(r.Support-240.0/3428) > 5e-3 {
				t.Errorf("rule support %.4f, empirical %.4f", r.Support, 240.0/3428)
			}
		}
	}
	if !found {
		t.Errorf("IF SMOKING=Smoker THEN CANCER=Yes not generated:\n%s", Render(rs))
	}
}

func TestRulesProbabilitiesValid(t *testing.T) {
	k := memoKB(t)
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Probability < 0 || r.Probability > 1+1e-9 {
			t.Errorf("rule %s: probability out of range", r)
		}
		if r.Support < 0 || r.Support > r.Probability+1e-9 {
			t.Errorf("rule %s: support %g exceeds probability %g", r, r.Support, r.Probability)
		}
		if r.Lift < 0 {
			t.Errorf("rule %s: negative lift", r)
		}
		// Consequent must not appear among antecedents.
		for _, a := range r.If {
			if a.Attr == r.Then.Attr {
				t.Errorf("rule %s: consequent attribute in antecedent", r)
			}
		}
	}
}

func TestRulesRankedByLiftDistance(t *testing.T) {
	k := memoKB(t)
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		di := math.Abs(rs[i-1].Lift - 1)
		dj := math.Abs(rs[i].Lift - 1)
		if di < dj-1e-12 {
			t.Errorf("rules %d and %d out of lift order: %.4f then %.4f", i-1, i, di, dj)
		}
	}
}

func TestRuleFilters(t *testing.T) {
	k := memoKB(t)
	all, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := FromKnowledgeBase(k, Options{MinLiftDistance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(strong) >= len(all) {
		t.Errorf("lift filter did not reduce rules: %d vs %d", len(strong), len(all))
	}
	for _, r := range strong {
		if math.Abs(r.Lift-1) < 0.2 {
			t.Errorf("rule %s survived lift filter", r)
		}
	}
	capped, err := FromKnowledgeBase(k, Options{MaxRules: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 3 {
		t.Errorf("MaxRules=3 returned %d rules", len(capped))
	}
	probFiltered, err := FromKnowledgeBase(k, Options{MinProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range probFiltered {
		if r.Probability < 0.5 {
			t.Errorf("rule %s survived probability filter", r)
		}
	}
	supFiltered, err := FromKnowledgeBase(k, Options{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range supFiltered {
		if r.Support < 0.1 {
			t.Errorf("rule %s survived support filter", r)
		}
	}
}

func TestRulesDeduplicated(t *testing.T) {
	k := memoKB(t)
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range rs {
		if seen[r.key()] {
			t.Errorf("duplicate rule %s", r)
		}
		seen[r.key()] = true
	}
}

func TestRuleStringAndRender(t *testing.T) {
	r := Rule{
		If:          []kb.Assignment{{Attr: "B", Value: "1"}, {Attr: "C", Value: "2"}},
		Then:        kb.Assignment{Attr: "A", Value: "x"},
		Probability: 0.75,
		Support:     0.2,
		Lift:        1.5,
	}
	s := r.String()
	for _, want := range []string{"IF B=1 AND C=2", "THEN A=x", "p=0.750", "lift=1.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
	out := Render([]Rule{r, r})
	if !strings.Contains(out, "  1. ") || !strings.Contains(out, "  2. ") {
		t.Errorf("Render numbering wrong:\n%s", out)
	}
}

func TestRulesFromThirdOrderConstraints(t *testing.T) {
	// Build data with a genuine 3-way interaction (XOR): Z = X xor Y plus
	// noise. The discovered third-order constraints must yield rules with
	// two antecedents.
	tab := contingency.MustNew([]string{"X", "Y", "Z"}, []int{2, 2, 2})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			xor := i ^ j
			if err := tab.Set(900, i, j, xor); err != nil {
				t.Fatal(err)
			}
			if err := tab.Set(100, i, j, 1-xor); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"0", "1"}},
		{Name: "Y", Values: []string{"0", "1"}},
		{Name: "Z", Values: []string{"0", "1"}},
	})
	k, err := kb.New(schema, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saw2 := false
	for _, r := range rs {
		if len(r.If) == 2 {
			saw2 = true
			break
		}
	}
	if !saw2 {
		t.Errorf("no two-antecedent rules from XOR data:\n%s", Render(rs))
	}
	// The XOR prediction rule must be strong: IF X=0 AND Y=1 THEN Z=1 with
	// p ≈ 0.9.
	for _, r := range rs {
		if len(r.If) == 2 &&
			r.If[0].Attr == "X" && r.If[0].Value == "0" &&
			r.If[1].Attr == "Y" && r.If[1].Value == "1" &&
			r.Then.Attr == "Z" && r.Then.Value == "1" {
			if math.Abs(r.Probability-0.9) > 0.03 {
				t.Errorf("XOR rule probability %.3f, want ≈0.9", r.Probability)
			}
		}
	}
}

// TestOptionsRejectNonFinite is the NaN/Inf regression: NaN compares false
// with every bound, so the pre-fix range checks (v < 0 || v > 1) let it
// through and the thresholds then filtered with always-false comparisons.
func TestOptionsRejectNonFinite(t *testing.T) {
	k := memoKB(t)
	bad := []Options{
		{MinProbability: math.NaN()},
		{MinProbability: math.Inf(1)},
		{MinSupport: math.NaN()},
		{MinSupport: math.Inf(-1)},
		{MinLiftDistance: math.NaN()},
		{MinLiftDistance: math.Inf(1)},
	}
	for i, opts := range bad {
		if _, err := FromKnowledgeBase(k, opts); err == nil {
			t.Errorf("options %d (%+v) accepted a non-finite threshold", i, opts)
		}
	}
	// Finite thresholds still pass.
	if _, err := FromKnowledgeBase(k, Options{MinProbability: 0.1, MinLiftDistance: 0.05}); err != nil {
		t.Errorf("finite options rejected: %v", err)
	}
}
