package rules

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pka/internal/kb"
)

// Rule is one IF-THEN statement with its statistics.
type Rule struct {
	// If lists the antecedent assignments (sorted by attribute name).
	If []kb.Assignment
	// Then is the consequent assignment.
	Then kb.Assignment
	// Probability is P(Then | If) — the memo's "with probability p".
	Probability float64
	// Support is P(Then ∧ If): how much of the population the rule covers.
	Support float64
	// Lift is P(Then | If)/P(Then): association strength (1 = independent).
	Lift float64
}

// String renders the memo's IF-THEN form.
func (r Rule) String() string {
	conds := make([]string, len(r.If))
	for i, a := range r.If {
		conds[i] = a.String()
	}
	return fmt.Sprintf("IF %s THEN %s (p=%.3f, support=%.3f, lift=%.2f)",
		strings.Join(conds, " AND "), r.Then, r.Probability, r.Support, r.Lift)
}

// Options filters generated rules.
type Options struct {
	// MinProbability drops rules with conditional probability below this
	// (0 keeps all).
	MinProbability float64
	// MinSupport drops rules covering less of the population than this.
	MinSupport float64
	// MinLiftDistance keeps only rules with |lift - 1| >= this, i.e.
	// meaningfully away from independence.
	MinLiftDistance float64
	// MaxRules truncates the ranked output (0 = no cap).
	MaxRules int
}

func (o Options) validate() error {
	// The range checks are written as negations so that NaN — for which
	// both v < lo and v > hi are false — fails them too: a NaN threshold
	// would otherwise slip through and silently filter out every rule.
	if !(o.MinProbability >= 0 && o.MinProbability <= 1) {
		return fmt.Errorf("rules: MinProbability %g outside [0,1]", o.MinProbability)
	}
	if !(o.MinSupport >= 0 && o.MinSupport <= 1) {
		return fmt.Errorf("rules: MinSupport %g outside [0,1]", o.MinSupport)
	}
	if !(o.MinLiftDistance >= 0) || math.IsInf(o.MinLiftDistance, 0) {
		return fmt.Errorf("rules: MinLiftDistance %g must be finite and non-negative", o.MinLiftDistance)
	}
	if o.MaxRules < 0 {
		return fmt.Errorf("rules: negative MaxRules %d", o.MaxRules)
	}
	return nil
}

// FromKnowledgeBase generates rules from every discovered constraint of
// order >= 2: for a constraint over attributes {X, Y, Z}, each attribute in
// turn becomes the consequent with the remaining assignments as antecedent.
// Rules are ranked by |lift - 1| descending (strongest associations first),
// then by support descending for determinism.
func FromKnowledgeBase(k *kb.KnowledgeBase, opts Options) ([]Rule, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	schema := k.Schema()
	seen := make(map[string]bool)
	var out []Rule
	for _, c := range k.Model().Constraints() {
		if c.Order() < 2 {
			continue
		}
		members := c.Family.Members()
		assigns := make([]kb.Assignment, len(members))
		for i, p := range members {
			attr := schema.Attr(p)
			assigns[i] = kb.Assignment{Attr: attr.Name, Value: attr.Values[c.Values[i]]}
		}
		for ti := range assigns {
			rule, ok, err := buildRule(k, assigns, ti)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			key := rule.key()
			if seen[key] {
				continue
			}
			seen[key] = true
			if rule.Probability < opts.MinProbability ||
				rule.Support < opts.MinSupport {
				continue
			}
			if d := rule.Lift - 1; d < opts.MinLiftDistance && d > -opts.MinLiftDistance {
				continue
			}
			out = append(out, rule)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di := absF(out[i].Lift - 1)
		dj := absF(out[j].Lift - 1)
		if di != dj {
			return di > dj
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].key() < out[j].key()
	})
	if opts.MaxRules > 0 && len(out) > opts.MaxRules {
		out = out[:opts.MaxRules]
	}
	return out, nil
}

// buildRule makes the rule with assigns[ti] as consequent. ok is false when
// the antecedent has zero probability (no rule can condition on it).
func buildRule(k *kb.KnowledgeBase, assigns []kb.Assignment, ti int) (Rule, bool, error) {
	then := assigns[ti]
	ifs := make([]kb.Assignment, 0, len(assigns)-1)
	for i, a := range assigns {
		if i != ti {
			ifs = append(ifs, a)
		}
	}
	sort.Slice(ifs, func(i, j int) bool { return ifs[i].Attr < ifs[j].Attr })
	pIf, err := k.Probability(ifs...)
	if err != nil {
		return Rule{}, false, err
	}
	if pIf == 0 {
		return Rule{}, false, nil
	}
	cond, err := k.Conditional([]kb.Assignment{then}, ifs)
	if err != nil {
		return Rule{}, false, err
	}
	all := append(append([]kb.Assignment{}, ifs...), then)
	support, err := k.Probability(all...)
	if err != nil {
		return Rule{}, false, err
	}
	base, err := k.Probability(then)
	if err != nil {
		return Rule{}, false, err
	}
	lift := 0.0
	if base > 0 {
		lift = cond / base
	}
	return Rule{If: ifs, Then: then, Probability: cond, Support: support, Lift: lift}, true, nil
}

func (r Rule) key() string {
	parts := make([]string, 0, len(r.If)+1)
	for _, a := range r.If {
		parts = append(parts, a.String())
	}
	parts = append(parts, "=>", r.Then.String())
	return strings.Join(parts, "|")
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render writes the rules one per line.
func Render(rs []Rule) string {
	var b strings.Builder
	for i, r := range rs {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, r.String())
	}
	return b.String()
}
