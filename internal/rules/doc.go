// Package rules converts the knowledge base's probability relations into
// the memo's IF-THEN form:
//
//	P(A | B, C) = p   ⟺   IF B AND C, THEN A (with probability p)
//
// Rules are generated from the discovered significant joints (each
// constraint family yields one rule per choice of consequent attribute),
// scored with probability (confidence), support, and lift, filtered by
// thresholds, deduplicated, and rendered as text for the expert-system
// audience the memo targets.
package rules
