package rules

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval on a rule's conditional
// probability.
type Interval struct {
	Low, High float64
}

// WilsonInterval returns the Wilson score interval for a proportion p
// estimated from n effective samples at the given z (1.96 ⇒ 95%). It is
// well-behaved at the extremes where the normal interval collapses.
func WilsonInterval(p float64, n float64, z float64) (Interval, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Interval{}, fmt.Errorf("rules: proportion %g outside [0,1]", p)
	}
	if n <= 0 {
		return Interval{}, fmt.Errorf("rules: non-positive effective sample size %g", n)
	}
	if z <= 0 {
		return Interval{}, fmt.Errorf("rules: non-positive z %g", z)
	}
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Low: lo, High: hi}, nil
}

// ScoredRule is a Rule with a confidence interval on its probability.
type ScoredRule struct {
	Rule
	// CI bounds the conditional probability at the requested confidence,
	// using the antecedent's effective sample count.
	CI Interval
	// EffectiveN is the estimated number of samples matching the
	// antecedent (N × P(If)).
	EffectiveN float64
}

// WithIntervals attaches Wilson intervals to rules given the total sample
// count the knowledge base was discovered from. z = 1.96 gives 95% bounds.
func WithIntervals(rs []Rule, totalSamples int64, z float64) ([]ScoredRule, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("rules: non-positive sample count %d", totalSamples)
	}
	out := make([]ScoredRule, 0, len(rs))
	for _, r := range rs {
		// P(If) = support / probability when probability > 0; fall back to
		// support alone for zero-probability rules (excluded upstream).
		pIf := 0.0
		if r.Probability > 0 {
			pIf = r.Support / r.Probability
		}
		effN := pIf * float64(totalSamples)
		if effN <= 0 {
			// Antecedent unseen; the rule should not have been generated,
			// but degrade gracefully with the widest interval.
			out = append(out, ScoredRule{Rule: r, CI: Interval{0, 1}})
			continue
		}
		ci, err := WilsonInterval(r.Probability, effN, z)
		if err != nil {
			return nil, err
		}
		out = append(out, ScoredRule{Rule: r, CI: ci, EffectiveN: effN})
	}
	return out, nil
}

// String renders the scored rule with its interval.
func (s ScoredRule) String() string {
	return fmt.Sprintf("%s CI95=[%.3f,%.3f] n≈%.0f",
		s.Rule.String(), s.CI.Low, s.CI.High, s.EffectiveN)
}
