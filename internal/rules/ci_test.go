package rules

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pka/internal/kb"
)

func TestWilsonIntervalKnown(t *testing.T) {
	// p=0.5, n=100, z=1.96: the textbook interval ≈ [0.404, 0.596].
	ci, err := WilsonInterval(0.5, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Low-0.404) > 0.003 || math.Abs(ci.High-0.596) > 0.003 {
		t.Errorf("CI = [%.4f, %.4f], want ≈[0.404, 0.596]", ci.Low, ci.High)
	}
}

func TestWilsonIntervalExtremes(t *testing.T) {
	// p=0 keeps a nonzero upper bound (the rule of three's territory).
	ci, err := WilsonInterval(0, 30, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Low != 0 || ci.High <= 0 || ci.High > 0.2 {
		t.Errorf("CI(0, 30) = [%.4f, %.4f]", ci.Low, ci.High)
	}
	// p=1 symmetric.
	ci, err = WilsonInterval(1, 30, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if ci.High != 1 || ci.Low >= 1 || ci.Low < 0.8 {
		t.Errorf("CI(1, 30) = [%.4f, %.4f]", ci.Low, ci.High)
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	if _, err := WilsonInterval(-0.1, 10, 1.96); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := WilsonInterval(0.5, 0, 1.96); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := WilsonInterval(0.5, 10, 0); err == nil {
		t.Error("z=0 accepted")
	}
	if _, err := WilsonInterval(math.NaN(), 10, 1.96); err == nil {
		t.Error("NaN p accepted")
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	f := func(pSeed, nSeed uint16) bool {
		p := float64(pSeed%1001) / 1000
		n := float64(nSeed%10000) + 1
		ci, err := WilsonInterval(p, n, 1.96)
		if err != nil {
			return false
		}
		// Contains the point estimate, ordered, within [0,1].
		return ci.Low <= p+1e-12 && p <= ci.High+1e-12 &&
			ci.Low >= 0 && ci.High <= 1 && ci.Low <= ci.High
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	small, _ := WilsonInterval(0.3, 50, 1.96)
	large, _ := WilsonInterval(0.3, 5000, 1.96)
	if (large.High - large.Low) >= (small.High - small.Low) {
		t.Error("interval did not shrink with more samples")
	}
}

func TestWithIntervalsOnMemoRules(t *testing.T) {
	k := memoKB(t)
	rs, err := FromKnowledgeBase(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scored, err := WithIntervals(rs, 3428, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != len(rs) {
		t.Fatalf("scored %d of %d rules", len(scored), len(rs))
	}
	for _, s := range scored {
		if s.CI.Low > s.Probability+1e-9 || s.CI.High < s.Probability-1e-9 {
			t.Errorf("rule %s: CI excludes the estimate", s)
		}
		if s.EffectiveN <= 0 || s.EffectiveN > 3428+1 {
			t.Errorf("rule %s: effective n %g out of range", s, s.EffectiveN)
		}
	}
	// The smoker→cancer rule has ~1290 effective samples.
	for _, s := range scored {
		if len(s.If) == 1 && s.If[0].Attr == "SMOKING" && s.If[0].Value == "Smoker" &&
			s.Then.Attr == "CANCER" && s.Then.Value == "Yes" {
			if math.Abs(s.EffectiveN-1290) > 15 {
				t.Errorf("effective n = %.0f, want ≈1290", s.EffectiveN)
			}
			if !strings.Contains(s.String(), "CI95=") {
				t.Errorf("String missing CI: %s", s)
			}
		}
	}
	if _, err := WithIntervals(rs, 0, 1.96); err == nil {
		t.Error("zero sample count accepted")
	}
}

func TestWithIntervalsDegenerateRule(t *testing.T) {
	rs := []Rule{{
		If:          []kb.Assignment{{Attr: "X", Value: "a"}},
		Then:        kb.Assignment{Attr: "Y", Value: "b"},
		Probability: 0,
		Support:     0,
	}}
	scored, err := WithIntervals(rs, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if scored[0].CI.Low != 0 || scored[0].CI.High != 1 {
		t.Errorf("degenerate rule CI = %+v, want [0,1]", scored[0].CI)
	}
}
