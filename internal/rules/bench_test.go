package rules

import "testing"

func BenchmarkFromKnowledgeBase(b *testing.B) {
	k := memoKB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromKnowledgeBase(k, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromKnowledgeBaseFiltered(b *testing.B) {
	k := memoKB(b)
	opts := Options{MinLiftDistance: 0.1, MinSupport: 0.01, MaxRules: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromKnowledgeBase(k, opts); err != nil {
			b.Fatal(err)
		}
	}
}
