package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/maxent"
	"pka/internal/wire"
)

// Magic is the 4-byte file signature every PKAS snapshot starts with.
const Magic = "PKAS"

// FormatVersion is the current container version. Version 2 lifted the
// 64-bit schema ceiling: constraint families and cached-projection
// families travel as member lists and sparse cell keys as multi-word
// packings, so any schema width round-trips. Readers accept every version
// back to minFormatVersion and reject higher versions with
// ErrUnsupportedVersion rather than guessing at a layout.
const FormatVersion = 2

// minFormatVersion is the oldest version Read still decodes. Version-1
// snapshots (single-word families and keys) load transparently; writes
// always produce the current version.
const minFormatVersion = 1

// headerLen is the fixed container header size: magic, version, flags,
// payload length.
const headerLen = 16

// Named failures a loader can test with errors.Is. Anything else coming
// out of Read is a validation failure inside a structurally sound file.
var (
	ErrBadMagic           = errors.New("snapshot: not a PKAS snapshot (bad magic)")
	ErrUnsupportedVersion = errors.New("snapshot: unsupported format version")
	ErrChecksum           = errors.New("snapshot: checksum mismatch (corrupt or truncated file)")
	ErrTruncated          = wire.ErrTruncated
)

// Section IDs.
const (
	secSchema  = 1
	secModel   = 2
	secCounts  = 3
	secOptions = 4
)

// Counts-section kind bytes.
const (
	countsDense  = 1
	countsSparse = 2
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiscoveryOptions mirrors the public discovery knobs so an updatable
// model restored from a snapshot refits with the policy it was built
// under. The package cannot import the root pka package; conversion
// to/from pka.Options happens there.
type DiscoveryOptions struct {
	MaxOrder           int
	PriorH2            float64
	MaxConstraints     int
	RecordScans        bool
	IncludeForcedCells bool
	Workers            int
	ScreenPairs        bool
	ScreenAlpha        float64
	ScreenCI           bool
	ScreenCIAlpha      float64
}

// Snapshot is the in-memory form of one PKAS file. Schema and Model are
// required; Counts and Options travel only in full snapshots saved from an
// updatable model (a query-only snapshot serves without them).
type Snapshot struct {
	Schema  *dataset.Schema
	Model   *maxent.Model
	Counts  contingency.Counts
	Options *DiscoveryOptions
}

// IsSnapshot reports whether prefix starts with the PKAS magic — the
// format sniff loaders use to dispatch between binary and JSON.
func IsSnapshot(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// section appends one framed section built by fill.
func section(w *wire.Writer, id byte, fill func(*wire.Writer)) {
	var body wire.Writer
	fill(&body)
	w.Byte(id)
	w.Uint64(uint64(body.Len()))
	w.Raw(body.Bytes())
}

// Write serializes the snapshot to w in the PKAS container format.
func Write(w io.Writer, s *Snapshot) error {
	if s.Schema == nil || s.Model == nil {
		return fmt.Errorf("snapshot: schema and model are required")
	}
	st, err := s.Model.Export()
	if err != nil {
		return fmt.Errorf("snapshot: exporting model: %w", err)
	}
	var payload wire.Writer
	section(&payload, secSchema, func(b *wire.Writer) { encodeSchema(b, s.Schema) })
	section(&payload, secModel, func(b *wire.Writer) { encodeModel(b, st) })
	if s.Counts != nil {
		var encErr error
		section(&payload, secCounts, func(b *wire.Writer) { encErr = encodeCounts(b, s.Counts) })
		if encErr != nil {
			return encErr
		}
	}
	if s.Options != nil {
		section(&payload, secOptions, func(b *wire.Writer) { encodeOptions(b, s.Options) })
	}

	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0) // flags, reserved
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))

	sum := crc32.New(castagnoli)
	sum.Write(hdr[:])
	sum.Write(payload.Bytes())
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum.Sum32())

	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing payload: %w", err)
	}
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	return nil
}

// Read deserializes a PKAS snapshot, verifying magic, version, and
// checksum before decoding, and restoring the model's compiled engine
// directly from the stored coefficients — no solve, no block summation.
// The header is read and validated first, so bad magic or a version skew
// fail before the payload is pulled in, and the payload buffer is sized
// from the header's length field instead of grown by doubling.
func Read(r io.Reader) (*Snapshot, error) {
	var hdr [headerLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("snapshot: reading input: %w", err)
	}
	if n < len(Magic) || !IsSnapshot(hdr[:n]) {
		return nil, ErrBadMagic
	}
	if n < headerLen {
		return nil, fmt.Errorf("%w: %d-byte input is shorter than the fixed framing", ErrTruncated, n)
	}
	version := int(binary.LittleEndian.Uint16(hdr[4:6]))
	if version < minFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d through %d",
			ErrUnsupportedVersion, version, minFormatVersion, FormatVersion)
	}
	if flags := binary.LittleEndian.Uint16(hdr[6:8]); flags != 0 {
		return nil, fmt.Errorf("snapshot: unsupported flags %#x", flags)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[8:16])
	// Ordinary payloads are read in one exact-size allocation — no buffer
	// doubling, no copy. The declared length is trusted for sizing only up
	// to a cap, so a corrupt header cannot force a giant allocation; larger
	// claims fall back to growing a buffer organically, which fails with
	// ErrTruncated when the file cannot actually back them.
	var data []byte
	if payloadLen <= 1<<24 {
		data = make([]byte, headerLen+int(payloadLen)+4)
		copy(data, hdr[:])
		n, err := io.ReadFull(r, data[headerLen:])
		if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("snapshot: reading input: %w", err)
		}
		if n < int(payloadLen)+4 {
			carried := n - 4 // the 4-byte checksum trailer is not payload
			if carried < 0 {
				carried = 0
			}
			return nil, fmt.Errorf("%w: header says %d payload bytes, file carries %d",
				ErrTruncated, payloadLen, carried)
		}
		var extra [1]byte
		if m, _ := io.ReadFull(r, extra[:]); m > 0 {
			return nil, fmt.Errorf("%w: header says %d payload bytes, file carries more",
				ErrTruncated, payloadLen)
		}
	} else {
		buf := bytes.NewBuffer(make([]byte, 0, headerLen+1<<24))
		buf.Write(hdr[:])
		if payloadLen <= uint64(math.MaxInt64-headerLen-5) {
			if _, err := io.Copy(buf, io.LimitReader(r, int64(payloadLen)+5)); err != nil {
				return nil, fmt.Errorf("snapshot: reading input: %w", err)
			}
		}
		data = buf.Bytes()
		if payloadLen != uint64(len(data)-headerLen-4) {
			return nil, fmt.Errorf("%w: header says %d payload bytes, file carries %d",
				ErrTruncated, payloadLen, len(data)-headerLen-4)
		}
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if actual := crc32.Checksum(data[:len(data)-4], castagnoli); actual != stored {
		return nil, fmt.Errorf("%w: stored %#08x, computed %#08x", ErrChecksum, stored, actual)
	}

	s := &Snapshot{}
	payload := data[headerLen : len(data)-4]
	for off := 0; off < len(payload); {
		if len(payload)-off < 9 {
			return nil, fmt.Errorf("%w: dangling section frame", ErrTruncated)
		}
		id := payload[off]
		n := binary.LittleEndian.Uint64(payload[off+1 : off+9])
		off += 9
		if n > uint64(len(payload)-off) {
			return nil, fmt.Errorf("%w: section %d claims %d bytes, %d remain", ErrTruncated, id, n, len(payload)-off)
		}
		body := wire.NewReader(payload[off : off+int(n)])
		off += int(n)
		switch id {
		case secSchema:
			if s.Schema, err = decodeSchema(body); err != nil {
				return nil, err
			}
		case secModel:
			if s.Model, err = decodeModel(body, version); err != nil {
				return nil, err
			}
		case secCounts:
			if s.Counts, err = decodeCounts(body, version); err != nil {
				return nil, err
			}
		case secOptions:
			if s.Options, err = decodeOptions(body, version); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("snapshot: unknown section ID %d", id)
		}
		if body.Remaining() != 0 {
			return nil, fmt.Errorf("snapshot: section %d has %d trailing bytes", id, body.Remaining())
		}
	}
	if s.Schema == nil {
		return nil, fmt.Errorf("snapshot: missing schema section")
	}
	if s.Model == nil {
		return nil, fmt.Errorf("snapshot: missing model section")
	}
	return s, nil
}

// encodeSchema writes section 1: attributes with their value labels.
func encodeSchema(w *wire.Writer, sc *dataset.Schema) {
	w.Int(sc.R())
	for i := 0; i < sc.R(); i++ {
		a := sc.Attr(i)
		w.String(a.Name)
		w.Int(len(a.Values))
		for _, v := range a.Values {
			w.String(v)
		}
	}
}

// decodeSchema reads section 1 and revalidates through NewSchema.
func decodeSchema(r *wire.Reader) (*dataset.Schema, error) {
	n := r.Int()
	if r.Err() != nil || n <= 0 || n > contingency.MaxVars {
		return nil, fmt.Errorf("snapshot: decoding schema: %w", firstErr(r.Err()))
	}
	attrs := make([]dataset.Attribute, n)
	// Value-label slices are carved from chunked backing arrays — one
	// allocation per chunk instead of one per attribute.
	var labels []string
	for i := range attrs {
		attrs[i].Name = r.String()
		nv := r.Int()
		if r.Err() != nil || nv <= 0 || nv > r.Remaining()+1 {
			return nil, fmt.Errorf("snapshot: decoding schema: %w", firstErr(r.Err()))
		}
		if len(labels) < nv {
			size := 64
			if nv > size {
				size = nv
			}
			labels = make([]string, size)
		}
		attrs[i].Values = labels[:nv:nv]
		labels = labels[nv:]
		for j := range attrs[i].Values {
			attrs[i].Values[j] = r.String()
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding schema: %w", err)
	}
	sc, err := dataset.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decoding schema: %w", err)
	}
	return sc, nil
}

// encodeModel writes section 2 from the exported model state.
func encodeModel(w *wire.Writer, st *maxent.ModelState) {
	w.Int(len(st.Names))
	for _, n := range st.Names {
		w.String(n)
	}
	w.Ints(st.Cards)
	w.Float64(st.A0)
	w.Int(len(st.Constraints))
	for _, c := range st.Constraints {
		// v2: the family travels as its member list, valid at any width.
		w.Ints(c.Family.Members())
		w.Ints(c.Values)
		w.Float64(c.Target)
	}
	w.Int(len(st.Families))
	for _, f := range st.Families {
		w.Ints(f.Vars)
		w.Floats(f.Coeffs)
	}
	if !st.Factored {
		w.Byte(0)
		return
	}
	w.Byte(1)
	w.Int(len(st.Blocks))
	for _, b := range st.Blocks {
		w.Ints(b.Vars)
		if b.HasA0 {
			w.Byte(1)
			w.Float64(b.A0)
		} else {
			w.Byte(0)
		}
		w.Float64(b.Sum)
	}
}

// decodeModel reads section 2 and rebuilds the fitted model, compiled
// engine included, through maxent.RestoreModel. The many per-constraint
// and per-family slices come out of shared arenas: restore is the
// cold-start hot path, where hundreds of tiny allocations dominate.
func decodeModel(r *wire.Reader, version int) (*maxent.Model, error) {
	var ints wire.IntArena
	var floats wire.FloatArena
	st := &maxent.ModelState{}
	nn := r.Int()
	if r.Err() != nil || nn <= 0 || nn > contingency.MaxVars {
		return nil, fmt.Errorf("snapshot: decoding model: %w", firstErr(r.Err()))
	}
	st.Names = make([]string, nn)
	for i := range st.Names {
		st.Names[i] = r.String()
	}
	st.Cards = r.Ints()
	st.A0 = r.Float64()
	ncons, ok := modelCount(r)
	if !ok {
		return nil, fmt.Errorf("snapshot: decoding model: %w", firstErr(r.Err()))
	}
	st.Constraints = make([]maxent.Constraint, ncons)
	for i := range st.Constraints {
		var fam contingency.VarSet
		if version == 1 {
			fam = contingency.VarSetFromMask(r.Uvarint())
		} else {
			var err error
			if fam, err = varSetFromMembers(r.IntsArena(&ints)); err != nil {
				return nil, fmt.Errorf("snapshot: decoding model: %w", err)
			}
		}
		vals := r.IntsArena(&ints)
		target := r.Float64()
		if r.Err() != nil {
			return nil, fmt.Errorf("snapshot: decoding model: %w", r.Err())
		}
		st.Constraints[i] = maxent.Constraint{
			Family: fam,
			Values: vals,
			Target: target,
		}
	}
	nfams, ok := modelCount(r)
	if !ok {
		return nil, fmt.Errorf("snapshot: decoding model: %w", firstErr(r.Err()))
	}
	st.Families = make([]maxent.FamilyState, nfams)
	for i := range st.Families {
		st.Families[i] = maxent.FamilyState{Vars: r.IntsArena(&ints), Coeffs: r.FloatsArena(&floats)}
	}
	switch mode := r.Byte(); mode {
	case 0:
	case 1:
		st.Factored = true
		nblocks, ok := modelCount(r)
		if !ok {
			return nil, fmt.Errorf("snapshot: decoding model: %w", firstErr(r.Err()))
		}
		st.Blocks = make([]maxent.BlockState, nblocks)
		for i := range st.Blocks {
			b := maxent.BlockState{Vars: r.IntsArena(&ints)}
			if r.Byte() == 1 {
				b.A0, b.HasA0 = r.Float64(), true
			}
			b.Sum = r.Float64()
			st.Blocks[i] = b
		}
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("snapshot: decoding model: unknown engine mode %d", mode)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding model: %w", err)
	}
	m, err := maxent.RestoreModel(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return m, nil
}

// varSetFromMembers rebuilds a family from its decoded member list,
// rejecting out-of-range positions (NewVarSet would panic, and decoders
// must fail on corrupt data instead).
func varSetFromMembers(members []int) (contingency.VarSet, error) {
	var vs contingency.VarSet
	for _, p := range members {
		if p < 0 || p >= contingency.MaxVars {
			return contingency.VarSet{}, fmt.Errorf("family member %d out of range", p)
		}
		vs = vs.Add(p)
	}
	return vs, nil
}

// modelCount reads a structure count and bounds it by the remaining bytes
// (every counted element occupies at least one byte).
func modelCount(r *wire.Reader) (int, bool) {
	n := r.Int()
	if r.Err() != nil || n < 0 || n > r.Remaining() {
		return 0, false
	}
	return n, true
}

// encodeCounts writes section 3: a kind byte plus the contingency codec.
func encodeCounts(w *wire.Writer, c contingency.Counts) error {
	switch t := c.(type) {
	case *contingency.Table:
		w.Byte(countsDense)
		contingency.EncodeTable(w, t)
	case *contingency.Sparse:
		w.Byte(countsSparse)
		contingency.EncodeSparse(w, t)
	default:
		return fmt.Errorf("snapshot: cannot serialize counts of type %T", c)
	}
	return nil
}

// decodeCounts reads section 3.
func decodeCounts(r *wire.Reader, version int) (contingency.Counts, error) {
	switch kind := r.Byte(); kind {
	case countsDense:
		return contingency.DecodeTable(r)
	case countsSparse:
		return contingency.DecodeSparse(r, version)
	default:
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: decoding counts: %w", err)
		}
		return nil, fmt.Errorf("snapshot: unknown counts kind %d", kind)
	}
}

// encodeOptions writes section 4.
func encodeOptions(w *wire.Writer, o *DiscoveryOptions) {
	w.Int(o.MaxOrder)
	w.Float64(o.PriorH2)
	w.Int(o.MaxConstraints)
	var flags byte
	if o.RecordScans {
		flags |= 1
	}
	if o.IncludeForcedCells {
		flags |= 2
	}
	if o.ScreenPairs {
		flags |= 4
	}
	if o.ScreenCI {
		flags |= 8
	}
	w.Byte(flags)
	w.Float64(o.ScreenAlpha)
	w.Int(o.Workers)
	// v2 appends the conditional-independence screen knob.
	w.Float64(o.ScreenCIAlpha)
}

// decodeOptions reads section 4.
func decodeOptions(r *wire.Reader, version int) (*DiscoveryOptions, error) {
	o := &DiscoveryOptions{}
	o.MaxOrder = r.Int()
	o.PriorH2 = r.Float64()
	o.MaxConstraints = r.Int()
	flags := r.Byte()
	o.RecordScans = flags&1 != 0
	o.IncludeForcedCells = flags&2 != 0
	o.ScreenPairs = flags&4 != 0
	o.ScreenCI = flags&8 != 0
	o.ScreenAlpha = r.Float64()
	o.Workers = r.Int()
	if version >= 2 {
		o.ScreenCIAlpha = r.Float64()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding options: %w", err)
	}
	return o, nil
}

// firstErr substitutes ErrTruncated for a nil reader error at a validation
// failure, so callers always wrap a real cause.
func firstErr(err error) error {
	if err != nil {
		return err
	}
	return ErrTruncated
}
