// Package snapshot implements the PKAS binary snapshot format: a fitted
// knowledge base — schema, counts, discovered constraints, and the
// already-solved maxent coefficients with their compiled per-block state —
// persisted so a process restores to its first query by pure
// deserialization, with no refit and no block-sum accumulation.
//
// # Container layout
//
// All integers are little-endian; variable-length integers use Go's
// unsigned-varint encoding; floats are raw IEEE-754 bit patterns (8 bytes,
// little-endian), so every coefficient round-trips bit for bit.
//
//	offset  size  field
//	0       4     magic "PKAS"
//	4       2     format version (uint16), currently 1
//	6       2     flags (uint16), must be 0
//	8       8     payload length L (uint64)
//	16      L     payload: a sequence of sections
//	16+L    4     CRC-32C (Castagnoli, uint32) over bytes [0, 16+L)
//
// Each section is framed as
//
//	1 byte   section ID
//	8 bytes  section payload length (uint64)
//	...      section payload
//
// so a reader can skip to any section without decoding the others — the
// property a future replica-catch-up protocol needs to ship, say, only the
// model section after a warm peer transfers counts out of band. Readers of
// version 1 reject unknown section IDs: every section present is
// load-bearing.
//
// # Sections
//
// ID 1, schema: attribute count, then per attribute its name and ordered
// value labels (length-prefixed strings).
//
// ID 2, model: attribute names and cardinalities, a0, the constraints in
// insertion order (family bitmask, cell values, target), the family
// coefficient arrays in ascending family-mask order, and an engine-mode
// byte. Factored-mode snapshots append the per-block solved state in
// deterministic block order (ascending smallest member): member positions,
// the optional cached a0 contribution from the last fit, and the block's
// unnormalized sum. The sum must travel — its float accumulation order in
// the solver differs from the engine's, so it cannot be recomputed
// bit-identically — and storing it is exactly what lets a load skip the
// per-block summation entirely.
//
// ID 3, counts (optional): a kind byte (1 dense, 2 sparse) followed by the
// contingency codec. Dense tables store shape plus every cell count in
// row-major order; sparse tables store the occupied cells as (packed key,
// count) pairs in ascending key order plus the cached dense projections in
// ascending family-mask order, so a restored model resumes streaming
// ingest with warm marginal caches.
//
// ID 4, discovery options (optional): the knobs the discovery run used,
// carried so a restored updatable model refits with the same policy.
//
// # Canonical encoding
//
// Map-backed structures serialize in sorted order (sparse cells by packed
// key, projections and families by mask), and all other orders are the
// model's own deterministic ones, so Save → Load → Save reproduces
// identical bytes. The equality of wire bytes is what the round-trip
// property tests pin.
package snapshot
