package analysis_test

import (
	"path/filepath"
	"testing"

	"pka/internal/analysis"
	"pka/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestMapIterDet(t *testing.T) {
	analysistest.Run(t, fixture("mapiterdet"), analysis.MapIterDet)
}

func TestPoolHygiene(t *testing.T) {
	analysistest.Run(t, fixture("poolhygiene"), analysis.PoolHygiene)
}

func TestAtomicPub(t *testing.T) {
	analysistest.Run(t, fixture("atomicpub"), analysis.AtomicPub)
}

func TestNamedErr(t *testing.T) {
	analysistest.Run(t, fixture("namederr"), analysis.NamedErr)
}

func TestMemoImmut(t *testing.T) {
	analysistest.Run(t, fixture("memoimmut"), analysis.MemoImmut)
}

func TestNonDeterm(t *testing.T) {
	analysistest.Run(t, fixture("nondeterm"), analysis.NonDeterm)
}

// TestPackageGates proves the determinism analyzers stay silent outside
// their contracted packages: the ungated fixture repeats the violations
// of the gated ones in a package named "other" and must produce nothing.
func TestPackageGates(t *testing.T) {
	analysistest.Run(t, fixture("ungated"), analysis.MapIterDet, analysis.NonDeterm)
}

// TestSuiteOrder pins the registry: six analyzers, stable order, so
// diagnostics sort identically everywhere.
func TestSuiteOrder(t *testing.T) {
	want := []string{"atomicpub", "mapiterdet", "memoimmut", "namederr", "nondeterm", "poolhygiene"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
