package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MemoImmut enforces the memo-cache immutability contract: a value is
// shared the moment it enters a cache — Get hands the same object to
// every concurrent reader, and Put publishes it without copying — so a
// function that obtains a cached value (from Get, or the value it just
// Put) must not write through it afterwards. Field stores, element
// stores, and increments on such a value are flagged; rebinding the
// variable is fine. The one sanctioned exception (a cache whose owner
// maintains entries in place under an exclusive-mutation lock) carries
// a //pkalint:memoimmut justification.
//
// Cache calls are recognized structurally — a method named Get with
// signature func([]byte, int64) (any, bool), or Put with
// func([]byte, int64, any, int64), on a type named Cache — which covers
// internal/memo without the fixture needing to import it.
var MemoImmut = &Analyzer{
	Name: "memoimmut",
	Doc: "flag writes through a memo-cached value after it was obtained from " +
		"Get or handed to Put: cache entries are shared across goroutines and must stay immutable",
	Run: runMemoImmut,
}

func runMemoImmut(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMemoImmut(pass, fd)
		}
	}
	return nil
}

// isMemoCacheCall reports whether call invokes a memo-cache method:
// name and signature must match, and the receiver's named type (behind
// a pointer) must be called Cache.
func isMemoCacheCall(info *types.Info, call *ast.CallExpr, name string, params, results []types.Type) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOrigin(sig.Recv().Type())
	if recv == nil || recv.Obj().Name() != "Cache" {
		return false
	}
	if sig.Params().Len() != len(params) || sig.Results().Len() != len(results) {
		return false
	}
	for i, want := range params {
		if !types.Identical(sig.Params().At(i).Type(), want) {
			return false
		}
	}
	for i, want := range results {
		if !types.Identical(sig.Results().At(i).Type(), want) {
			return false
		}
	}
	return true
}

var (
	memoByteSlice = types.NewSlice(types.Typ[types.Uint8])
	memoInt64     = types.Typ[types.Int64]
	memoAny       = types.Universe.Lookup("any").Type()
	memoBool      = types.Typ[types.Bool]

	memoGetParams  = []types.Type{memoByteSlice, memoInt64}
	memoGetResults = []types.Type{memoAny, memoBool}
	memoPutParams  = []types.Type{memoByteSlice, memoInt64, memoAny, memoInt64}
)

// cachedOrigin unwraps parens, type assertions, derefs, selectors, and
// index expressions down to the base identifier of an expression rooted
// in a cached value: v.(*entry).xs[0] -> v. Unlike rootIdent it sees
// through type assertions, which is how memo's any values are used.
func cachedOrigin(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			id, _ := e.(*ast.Ident)
			return id
		}
	}
}

func checkMemoImmut(pass *Pass, fd *ast.FuncDecl) {
	// tracked maps a variable holding a cache-resident value to the
	// position where it became resident. The walk visits statements in
	// source order, so aliases picked up later (e := v.(*entry)) join the
	// set before the writes that follow them.
	tracked := make(map[types.Object]token.Pos)

	trackedObj := func(e ast.Expr) (types.Object, bool) {
		id := cachedOrigin(e)
		if id == nil {
			return nil, false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return nil, false
		}
		_, ok := tracked[obj]
		return obj, ok
	}
	define := func(id *ast.Ident, at token.Pos) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			tracked[obj] = at
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			tracked[obj] = at
		}
	}
	flagWrite := func(lhs ast.Expr, pos token.Pos) {
		target := ast.Unparen(lhs)
		switch target.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return // plain rebinding of the variable, not a write through it
		}
		if obj, ok := trackedObj(target); ok && pos > tracked[obj] {
			pass.Reportf(pos,
				"write through memo-cached value %s: cache entries are shared across goroutines; build a fresh value and re-Put it instead",
				obj.Name())
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			// v, ok := cache.Get(key, version) marks v resident.
			if len(node.Rhs) == 1 {
				if call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr); ok &&
					isMemoCacheCall(pass.TypesInfo, call, "Get", memoGetParams, memoGetResults) {
					if len(node.Lhs) >= 1 {
						if id, ok := node.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							define(id, call.Pos())
						}
					}
					break
				}
			}
			// Aliases propagate residency: e := v, e := v.(*entry),
			// e, ok := v.(*entry). Writes through a field or index are
			// mutation sites instead.
			for i, lhs := range node.Lhs {
				var rhs ast.Expr
				switch {
				case len(node.Rhs) == len(node.Lhs):
					rhs = node.Rhs[i]
				case len(node.Rhs) == 1 && i == 0:
					rhs = node.Rhs[0]
				}
				if rhs != nil {
					if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name != "_" {
						if obj, ok := trackedObj(rhs); ok {
							define(id, tracked[obj])
							continue
						}
					}
				}
				flagWrite(lhs, node.Pos())
			}
		case *ast.IncDecStmt:
			flagWrite(node.X, node.Pos())
		case *ast.CallExpr:
			// cache.Put(key, version, v, cost) marks v resident from here on.
			if isMemoCacheCall(pass.TypesInfo, node, "Put", memoPutParams, nil) && len(node.Args) == 4 {
				if id := cachedOrigin(node.Args[2]); id != nil {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						tracked[obj] = node.Pos()
					}
				}
			}
		}
		return true
	})
}
