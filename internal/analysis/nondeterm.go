package analysis

import (
	"go/ast"
)

// NonDeterm flags sources of nondeterminism in the numeric core: clock
// reads, random draws, and fmt-formatting of maps. The core's contract
// is that every result is a pure function of the counts and options —
// that is what makes parallel paths bit-comparable to serial ones and
// replicas bit-comparable to their primary.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc: "flag time.Now, math/rand, and map formatting in the numeric core " +
		"(maxent, sumprod, core, contingency, mml); results there must be pure " +
		"functions of counts and options",
	Run: runNonDeterm,
}

var nonDetermPkgs = map[string]bool{
	"maxent": true, "sumprod": true, "core": true,
	"contingency": true, "mml": true,
}

// fmtFormatters are the fmt entry points checked for map arguments.
// Errorf is deliberately absent: error paths may render small maps for
// humans, and namederr owns the error-construction contracts.
var fmtFormatters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runNonDeterm(pass *Pass) error {
	if !nonDetermPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.TypesInfo, call, "time", "Now") {
				pass.Reportf(call.Pos(), "time.Now in the deterministic numeric core: results must be pure functions of counts and options")
				return true
			}
			switch funcPkgPath(pass.TypesInfo, call) {
			case "math/rand", "math/rand/v2":
				fn := calleeFunc(pass.TypesInfo, call)
				pass.Reportf(call.Pos(), "math/rand.%s in the deterministic numeric core: randomness breaks bit-identical replay", fn.Name())
				return true
			case "fmt":
				fn := calleeFunc(pass.TypesInfo, call)
				if !fmtFormatters[fn.Name()] {
					return true
				}
				for _, arg := range call.Args {
					if isMapType(pass.TypesInfo.Types[arg].Type) {
						pass.Reportf(call.Pos(), "fmt.%s formats a map in the numeric core: spell the iteration order explicitly instead of relying on fmt's internal sort", fn.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}
