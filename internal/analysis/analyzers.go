package analysis

// Analyzers returns the pkalint suite in its fixed reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicPub,
		MapIterDet,
		MemoImmut,
		NamedErr,
		NonDeterm,
		PoolHygiene,
	}
}
