package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path   string
	Name   string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded package stream. -export compiles (or reuses the
// build cache for) every package and reports the export-data file the
// type checker imports from, so the loader needs no network and no
// dependency beyond the go toolchain itself.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, translating through one package's ImportMap first
// (vendoring and test-variant renames; identity entries are omitted).
type exportImporter struct {
	gc        types.Importer    // gc export-data importer, shared across packages
	importMap map[string]string // this package's source-path -> canonical-path map
}

func (ei exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if m, ok := ei.importMap[path]; ok {
		path = m
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// newGCImporter returns a shared gc importer whose lookup serves export
// data from the canonical-path -> file map.
func newGCImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadPatterns type-checks the packages matching patterns (relative to
// dir), excluding dependencies, and returns them ready for analysis.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	gc := newGCImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		pkg, err := checkFiles(fset, p.ImportPath, p.Dir, p.GoFiles, exportImporter{gc: gc, importMap: p.ImportMap})
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// CheckPackage type-checks one package from an explicit file list and
// export map — the `go vet -vettool` entry point, where cmd/go hands us
// exactly this information in the .cfg file.
func CheckPackage(path string, files []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	gc := newGCImporter(fset, packageFile)
	var dir string
	if len(files) > 0 {
		dir = filepath.Dir(files[0])
	}
	return checkFiles(fset, path, dir, files, exportImporter{gc: gc, importMap: importMap})
}

// checkFiles parses and type-checks one package's files. Names in files
// may be relative to dir.
func checkFiles(fset *token.FileSet, path, dir string, files []string, imp types.Importer) (*Package, error) {
	syntax := make([]*ast.File, 0, len(files))
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		syntax = append(syntax, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Name:   tpkg.Name(),
		Fset:   fset,
		Syntax: syntax,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// LoadDir type-checks a single directory of Go files that is not part
// of any module build — the analysistest fixture path. Imports are
// limited to the standard library and resolved with one `go list
// -export` run over the fixture's import set.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name()) // checkFiles joins with dir
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)

	// A fast parse pass collects the import set before type-checking.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[p] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		if p != "unsafe" {
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)

	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	gc := newGCImporter(fset, exports)
	return checkFiles(fset, filepath.Base(dir), dir, files, exportImporter{gc: gc})
}
