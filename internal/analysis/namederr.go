package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// NamedErr enforces the persistence-layer failure contracts established
// by the snapshot and replog packages: load/decode failures surface as
// Err* sentinels callers can errors.Is against, and wrapping never drops
// the chain — fmt.Errorf with an error argument must use %w.
var NamedErr = &Analyzer{
	Name: "namederr",
	Doc: "in internal/snapshot, internal/replog, and internal/kb: fmt.Errorf calls " +
		"that pass an error but no %w lose the errors.Is chain, and exported error " +
		"sentinels must be named Err*",
	Run: runNamedErr,
}

var namedErrPkgs = map[string]bool{"snapshot": true, "replog": true, "kb": true}

func runNamedErr(pass *Pass) error {
	if !namedErrPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			checkSentinelNames(pass, gd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkErrorfWrap(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkSentinelNames flags exported package-level error values whose
// names do not start with Err.
func checkSentinelNames(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || !name.IsExported() || strings.HasPrefix(name.Name, "Err") {
				continue
			}
			if implementsError(obj.Type()) {
				pass.Reportf(name.Pos(),
					"exported error sentinel %s must be named Err* so callers can find it with errors.Is", name.Name)
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value but
// format it with something other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.Types[arg].Type
		if t != nil && implementsError(t) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w: the errors.Is/errors.As chain is dropped, so Err* sentinels stop matching")
			return
		}
	}
}
