// Fixture proving the package gates: the same violations that fire in
// the contracted packages are silent in a package outside them.
package other

import (
	"math/rand"
	"time"
)

func sumWeights(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

func stamp() int64 {
	return time.Now().UnixNano() + int64(rand.Int())
}
