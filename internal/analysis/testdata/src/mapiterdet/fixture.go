// Fixture for the mapiterdet analyzer. The package is named maxent so
// the determinism gate applies; the dir name only labels the fixture.
package maxent

import (
	"fmt"
	"io"
	"sort"
)

func sumWeights(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `floating-point accumulation`
		total += v
	}
	return total
}

func sumViaSelfAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `floating-point accumulation`
		total = total + v
	}
	return total
}

// sumSortedKeys is the blessed idiom: collect keys, sort, then range
// the slice. The collecting loop appends only into a slice that is
// sorted before use, and the second loop ranges a slice, not a map.
func sumSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `append to out inside range over map`
		out = append(out, k)
	}
	return out
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `output written`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// countInts accumulates integers: addition commutes exactly, so map
// order cannot leak into the result.
func countInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func justified(m map[string]float64) float64 {
	total := 0.0
	//pkalint:ordered values are exact powers of two, addition order cannot change the sum
	for _, v := range m {
		total += v
	}
	return total
}

func badJustification(m map[string]float64) float64 {
	total := 0.0
	//pkalint:ordered
	for _, v := range m { // want `requires a non-empty justification`
		total += v
	}
	return total
}
