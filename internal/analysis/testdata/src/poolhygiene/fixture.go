// Fixture for the poolhygiene analyzer (ungated: pooling discipline
// applies to every package).
package pools

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func leaks() {
	buf := bufPool.Get().(*bytes.Buffer) // want `bufPool.Get without a matching bufPool.Put`
	buf.Reset()
}

func deferredOK() {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
}

func deferredClosureOK() {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() < 1<<20 {
			bufPool.Put(buf)
		}
	}()
	buf.Reset()
}

func earlyReturn(cond bool) {
	buf := bufPool.Get().(*bytes.Buffer)
	if cond {
		return // want `return without bufPool.Put`
	}
	bufPool.Put(buf)
}

func orderedOK(cond bool) int {
	buf := bufPool.Get().(*bytes.Buffer)
	if cond {
		bufPool.Put(buf)
		return 0
	}
	bufPool.Put(buf)
	return 1
}

func escapes() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	return buf // want `pooled value from bufPool.Get escapes this function`
}

type holder struct{ b *bytes.Buffer }

func fieldStore(h *holder) {
	buf := bufPool.Get().(*bytes.Buffer)
	h.b = buf // want `pooled value from bufPool.Get escapes this function`
	bufPool.Put(buf)
}

// accessor is the pool-accessor pattern: the caller owns the value and
// must release it. The justification carries the contract.
func accessor() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	//pkalint:poolhygiene accessor contract: every caller releases via release() on all paths
	return buf
}

func release(buf *bytes.Buffer) {
	bufPool.Put(buf)
}
