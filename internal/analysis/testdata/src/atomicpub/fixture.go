// Fixture for the atomicpub analyzer (ungated: any package that
// publishes a struct through atomic.Pointer is covered).
package pub

import "sync/atomic"

type engine struct {
	coeff []float64
	n     int
}

type server struct {
	live atomic.Pointer[engine]
}

func (s *server) mutateLoaded() {
	e := s.live.Load()
	e.n = 4 // want `loaded from atomic.Pointer\[engine\]`
}

func (s *server) mutateDirect() {
	s.live.Load().n = 5 // want `loaded from atomic.Pointer\[engine\]`
}

func (s *server) increment() {
	e := s.live.Load()
	e.n++ // want `loaded from atomic.Pointer\[engine\]`
}

// cloneAndSwap is the blessed discipline: reads of the loaded snapshot
// are fine, writes go to a fresh clone that is swapped in atomically.
func (s *server) cloneAndSwap(next []float64) {
	old := s.live.Load()
	clone := &engine{coeff: append([]float64(nil), old.coeff...), n: old.n}
	clone.coeff = next
	clone.n++
	s.live.Store(clone)
}

func (s *server) justified() {
	e := s.live.Load()
	//pkalint:atomicpub single-writer startup path, runs before the pointer is shared
	e.n = 9
}
