// Fixture for the nondeterm analyzer. The package is named core so the
// numeric-core gate applies.
package core

import (
	"fmt"
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in the deterministic numeric core`
}

func jitter() float64 {
	return rand.Float64() // want `math/rand.Float64 in the deterministic numeric core`
}

func shuffled(r *rand.Rand, n int) []int {
	return r.Perm(n) // want `math/rand.Perm in the deterministic numeric core`
}

func describe(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want `fmt.Sprintf formats a map`
}

// describeSlice formats a slice: order is the slice's own, fine.
func describeSlice(s []int) string {
	return fmt.Sprintf("%v", s)
}

func justified() int64 {
	//pkalint:nondeterm trace timestamps are observability-only and never reach results
	return time.Now().UnixNano()
}
