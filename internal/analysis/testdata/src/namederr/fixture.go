// Fixture for the namederr analyzer. The package is named snapshot so
// the persistence-layer gate applies.
package snapshot

import (
	"errors"
	"fmt"
)

var ErrChecksum = errors.New("snapshot: checksum mismatch")

var Corrupt = errors.New("snapshot: corrupt") // want `exported error sentinel Corrupt must be named Err\*`

// errInternal is unexported: the sentinel contract binds the public surface.
var errInternal = errors.New("snapshot: internal")

func loadBad(err error) error {
	return fmt.Errorf("snapshot: load failed: %v", err) // want `fmt.Errorf formats an error without %w`
}

func loadGood(err error) error {
	return fmt.Errorf("snapshot: load failed: %w", err)
}

// formatOnly has no error argument: nothing to wrap.
func formatOnly(n int) error {
	return fmt.Errorf("snapshot: unknown section ID %d", n)
}

func alias() error { return errInternal }

func justified(err error) error {
	//pkalint:namederr checksum detail is advisory, callers match the sentinel returned alongside
	return fmt.Errorf("snapshot: advisory detail: %v", err)
}
