// Fixture for the memoimmut analyzer (ungated: the memo immutability
// contract binds every package that touches a cache). The local Cache
// mirrors internal/memo's Get/Put signatures, which is what the
// analyzer matches on.
package memoimm

type Cache struct{}

func (c *Cache) Get(key []byte, version int64) (any, bool)            { return nil, false }
func (c *Cache) Put(key []byte, version int64, value any, cost int64) {}

type entry struct {
	n  int
	xs []int
}

func getThenFieldWrite(c *Cache, key []byte) {
	v, ok := c.Get(key, 1)
	if !ok {
		return
	}
	e := v.(*entry)
	e.n = 4 // want `write through memo-cached value e`
}

func getThenIndexWrite(c *Cache, key []byte) {
	v, _ := c.Get(key, 1)
	e, ok := v.(*entry)
	if !ok {
		return
	}
	e.xs[0] = 9 // want `write through memo-cached value e`
}

func getThenIncrement(c *Cache, key []byte) {
	v, ok := c.Get(key, 1)
	if ok {
		v.(*entry).n++ // want `write through memo-cached value v`
	}
}

func putThenMutate(c *Cache, key []byte) {
	e := &entry{n: 1}
	c.Put(key, 1, e, 32)
	e.n = 2 // want `write through memo-cached value e`
}

func readOnlyOK(c *Cache, key []byte) int {
	v, ok := c.Get(key, 1)
	if !ok {
		return 0
	}
	return v.(*entry).n
}

func mutateBeforePutOK(c *Cache, key []byte) {
	e := &entry{}
	e.n = 7 // the value is private until Put publishes it
	c.Put(key, 1, e, 32)
}

func rebindOK(c *Cache, key []byte) {
	v, _ := c.Get(key, 1)
	v = nil // rebinding the variable is not a write through the entry
	_ = v
}

func justifiedException(c *Cache, key []byte) {
	v, ok := c.Get(key, 1)
	if !ok {
		return
	}
	e := v.(*entry)
	//pkalint:memoimmut entries are maintained in place under this type's exclusive-mutation lock
	e.n = 4
}

// Registry has a Get of the same shape but is not a Cache: the contract
// is about memo caches, so nothing here is flagged.
type Registry struct{}

func (r *Registry) Get(key []byte, version int64) (any, bool) { return nil, false }

func notACache(r *Registry, key []byte) {
	v, ok := r.Get(key, 1)
	if ok {
		v.(*entry).n = 4
	}
}
