package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPub enforces the clone-and-swap publication discipline: a struct
// type that is published through atomic.Pointer[T] is an immutable
// snapshot once stored, so a value obtained from Load must never have
// its fields written. Mutation builds a fresh clone and Stores it.
var AtomicPub = &Analyzer{
	Name: "atomicpub",
	Doc: "flag field writes to values loaded from an atomic.Pointer[T]: published " +
		"snapshots are immutable; mutate a clone and swap it in with Store",
	Run: runAtomicPub,
}

func runAtomicPub(pass *Pass) error {
	published := publishedTypes(pass.TypesInfo)
	if len(published) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		// loadVars accumulates variables assigned from a published Load
		// anywhere in the file; types.Object identity keeps the map
		// function-scoped in practice.
		loadVars := make(map[types.Object]string)
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				recordLoadVars(pass.TypesInfo, node, published, loadVars)
				checkFieldWrites(pass, node, published, loadVars)
			case *ast.IncDecStmt:
				checkMutatedBase(pass, node.X, node.Pos(), published, loadVars)
			}
			return true
		})
	}
	return nil
}

// publishedTypes collects every named struct type T that appears in the
// package as an atomic.Pointer[T] element.
func publishedTypes(info *types.Info) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, tv := range info.Types {
		elem, ok := isAtomicPointer(tv.Type)
		if !ok {
			continue
		}
		n := namedOrigin(elem)
		if n == nil {
			continue
		}
		if _, isStruct := n.Underlying().(*types.Struct); isStruct {
			out[n.Obj()] = true
		}
	}
	return out
}

// recordLoadVars tracks `v := ptr.Load()` assignments whose pointer
// element type is published.
func recordLoadVars(info *types.Info, as *ast.AssignStmt, published map[*types.TypeName]bool, loadVars map[types.Object]string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	typeName, ok := publishedLoadCall(info, as.Rhs[0], published)
	if !ok {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := info.Defs[id]; obj != nil {
		loadVars[obj] = typeName
	} else if obj := info.Uses[id]; obj != nil {
		loadVars[obj] = typeName
	}
}

// publishedLoadCall reports whether e is a call to Load on an
// atomic.Pointer whose element is a published struct, returning the
// element type name.
func publishedLoadCall(info *types.Info, e ast.Expr, published map[*types.TypeName]bool) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	elem, ok := isAtomicPointer(selection.Recv())
	if !ok {
		return "", false
	}
	n := namedOrigin(elem)
	if n == nil || !published[n.Obj()] {
		return "", false
	}
	return n.Obj().Name(), true
}

// checkFieldWrites flags assignments whose left side is a field selector
// rooted at a Load-derived variable or at a direct Load call.
func checkFieldWrites(pass *Pass, as *ast.AssignStmt, published map[*types.TypeName]bool, loadVars map[types.Object]string) {
	for _, lhs := range as.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); !ok {
			continue
		}
		checkMutatedBase(pass, lhs, as.Pos(), published, loadVars)
	}
}

// checkMutatedBase reports a write to expr when its base is a published
// Load result.
func checkMutatedBase(pass *Pass, expr ast.Expr, pos token.Pos, published map[*types.TypeName]bool, loadVars map[types.Object]string) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Direct form: p.Load().Field = v.
	base := ast.Unparen(sel.X)
	if typeName, ok := publishedLoadCall(pass.TypesInfo, base, published); ok {
		pass.Reportf(pos,
			"field write to %s loaded from atomic.Pointer[%s]: published snapshots are immutable — clone, mutate the clone, and Store it", typeName, typeName)
		return
	}
	// Indirect form: v := p.Load(); ...; v.Field = x.
	if id := rootIdent(sel.X); id != nil {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if typeName, tracked := loadVars[obj]; tracked {
				pass.Reportf(pos,
					"field write through %s, which was loaded from atomic.Pointer[%s]: published snapshots are immutable — clone, mutate the clone, and Store it", id.Name, typeName)
			}
		}
	}
}
