package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolHygiene enforces the hot-path pooling discipline: every
// sync.Pool.Get in a function is matched by a Put on the same pool —
// deferred, or present on every return path after the Get — and the
// pooled value never escapes the function through a return value or a
// struct-field store. Pool-accessor helpers that intentionally hand the
// value to their caller carry a //pkalint:poolhygiene justification.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc: "flag sync.Pool.Get calls without a matching Put on every return path, " +
		"and pooled values escaping via return values or struct-field stores",
	Run: runPoolHygiene,
}

// poolGet records one sync.Pool.Get call site.
type poolGet struct {
	pos  token.Pos
	recv string       // rendered pool expression, e.g. "c.scratch"
	obj  types.Object // variable the result was assigned to, if any
}

// poolPut records one sync.Pool.Put call site.
type poolPut struct {
	pos      token.Pos
	recv     string
	deferred bool
}

func runPoolHygiene(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolUse(pass, fd)
		}
	}
	return nil
}

func checkPoolUse(pass *Pass, fd *ast.FuncDecl) {
	var (
		gets    []poolGet
		puts    []poolPut
		returns []*ast.ReturnStmt // returns of fd itself, not nested literals
		fields  []*ast.AssignStmt // assignments whose LHS is a field selector
	)
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case isMethodFullName(pass.TypesInfo, node, "(*sync.Pool).Get"):
				gets = append(gets, poolGet{
					pos:  node.Pos(),
					recv: types.ExprString(sel.X),
					obj:  assignedObject(pass.TypesInfo, stack),
				})
			case isMethodFullName(pass.TypesInfo, node, "(*sync.Pool).Put"):
				puts = append(puts, poolPut{
					pos:      node.Pos(),
					recv:     types.ExprString(sel.X),
					deferred: underDefer(stack),
				})
			}
		case *ast.ReturnStmt:
			if enclosingFunc(stack) == nil { // stack is rooted at fd.Body
				returns = append(returns, node)
			}
		case *ast.AssignStmt:
			if len(node.Lhs) > 0 {
				if _, ok := ast.Unparen(node.Lhs[0]).(*ast.SelectorExpr); ok {
					fields = append(fields, node)
				}
			}
		}
		return true
	})

	for _, g := range gets {
		if pos, ok := escapeSite(pass.TypesInfo, g, returns, fields); ok {
			pass.Reportf(pos,
				"pooled value from %s.Get escapes this function: a value handed out of the hot path can be reused concurrently once pooled", g.recv)
			continue
		}
		var matched []poolPut
		anyDeferred := false
		for _, p := range puts {
			if p.recv == g.recv {
				matched = append(matched, p)
				anyDeferred = anyDeferred || p.deferred
			}
		}
		if len(matched) == 0 {
			pass.Reportf(g.pos, "%s.Get without a matching %s.Put in this function: the buffer leaks from the pool", g.recv, g.recv)
			continue
		}
		if anyDeferred {
			continue
		}
		for _, ret := range returns {
			if ret.Pos() < g.pos {
				continue
			}
			released := false
			for _, p := range matched {
				if g.pos < p.pos && p.pos <= ret.Pos() {
					released = true
					break
				}
			}
			if !released {
				pass.Reportf(ret.Pos(), "return without %s.Put: this path leaks the buffer taken at line %d (defer the Put or release before every return)",
					g.recv, pass.Fset.Position(g.pos).Line)
			}
		}
	}
}

// assignedObject walks outward from a Get call through type assertions
// and parens to the assignment it feeds, returning the variable object.
func assignedObject(info *types.Info, stack []ast.Node) types.Object {
	for i := len(stack) - 1; i >= 0; i-- {
		switch node := stack[i].(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			if len(node.Lhs) == 1 && len(node.Rhs) == 1 {
				if id, ok := node.Lhs[0].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						return obj
					}
					return info.Uses[id]
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// underDefer reports whether any ancestor is a defer statement — either
// `defer pool.Put(v)` directly or a Put inside a deferred closure.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// escapeSite reports where the pooled value leaves the function: a
// return statement whose results use it, or a store into a struct field.
func escapeSite(info *types.Info, g poolGet, returns []*ast.ReturnStmt, fields []*ast.AssignStmt) (token.Pos, bool) {
	if g.obj == nil {
		return token.NoPos, false
	}
	for _, ret := range returns {
		for _, res := range ret.Results {
			if usesObject(info, res, g.obj) {
				return ret.Pos(), true
			}
		}
	}
	for _, as := range fields {
		for _, rhs := range as.Rhs {
			if usesObject(info, rhs, g.obj) {
				return as.Pos(), true
			}
		}
	}
	return token.NoPos, false
}
