package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks root like ast.Inspect but hands the visitor the
// stack of ancestor nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		stack = append(stack, n)
		if !descend {
			// ast.Inspect still sends the closing nil for this node.
			return false
		}
		return true
	})
}

// calleeFunc returns the called *types.Func for a call expression, or nil
// for builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: fmt.Errorf, time.Now, ...
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods excluded).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// funcPkgPath returns the defining package path of the function a call
// invokes ("" when unknown or a builtin).
func funcPkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMethodFullName reports whether call invokes a method whose
// types.Func.FullName matches full, e.g. "(*sync.Pool).Get".
func isMethodFullName(info *types.Info, call *ast.CallExpr, full string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.FullName() == full
}

// namedOrigin returns the origin *types.Named behind t, unwrapping one
// level of pointer and any instantiation; nil when t is not named.
func namedOrigin(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[E] (or *that),
// returning the element type.
func isAtomicPointer(t types.Type) (elem types.Type, ok bool) {
	n := namedOrigin(t)
	if n == nil {
		return nil, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil, false
	}
	inst := t
	if p, isPtr := t.(*types.Pointer); isPtr {
		inst = p.Elem()
	}
	named, isNamed := inst.(*types.Named)
	if !isNamed || named.TypeArgs().Len() != 1 {
		return nil, false
	}
	return named.TypeArgs().At(0), true
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent unwraps parens, stars, and selectors down to the base
// identifier of an lvalue-ish expression: (*v).f.g -> v.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			id, _ := e.(*ast.Ident)
			return id
		}
	}
}

// usesObject reports whether any identifier inside e resolves to obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
