package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIterDet flags `range` over a map inside the determinism-contracted
// packages when the loop body does something iteration-order can leak
// into: accumulating floating point (addition does not commute bitwise),
// appending to a result slice, or writing output. Collecting into a
// slice that is sorted later in the same function is the blessed
// sorted-keys idiom and is allowed; anything else needs a
// //pkalint:ordered comment with a justification.
var MapIterDet = &Analyzer{
	Name:        "mapiterdet",
	SuppressKey: "ordered",
	Doc: "flag order-sensitive work inside map iteration in the determinism-contracted packages " +
		"(maxent, sumprod, core, contingency, kb, query); parallel paths must be bit-identical " +
		"to their serial twins, and map iteration order is randomized per run",
	Run: runMapIterDet,
}

var mapIterDetPkgs = map[string]bool{
	"maxent": true, "sumprod": true, "core": true,
	"contingency": true, "kb": true, "query": true,
}

func runMapIterDet(pass *Pass) error {
	if !mapIterDetPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pass.TypesInfo.Types[rng.X].Type) {
				return true
			}
			checkMapRangeBody(pass, rng, enclosingFunc(stack))
			return true
		})
	}
	return nil
}

// enclosingFunc returns the innermost function node on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// checkMapRangeBody reports at the loop's `for` keyword — that is the
// line a //pkalint:ordered justification attaches to — at most once per
// violation category.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	mapStr := types.ExprString(rng.X)
	seen := make(map[string]bool)
	report := func(category, format string, args ...any) {
		if !seen[category] {
			seen[category] = true
			pass.Reportf(rng.For, format, args...)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if floatAccumulation(pass.TypesInfo, stmt) {
				report("float",
					"floating-point accumulation (line %d) inside range over map %s: map iteration order is randomized, so the sum is not bit-stable — iterate sorted keys instead",
					pass.Fset.Position(stmt.Pos()).Line, mapStr)
			}
		case *ast.CallExpr:
			if target, ok := appendTarget(pass.TypesInfo, stmt, n); ok {
				if !sortedLaterInFunc(pass, fn, rng.End(), target) {
					report("append:"+target,
						"append to %s inside range over map %s: element order follows randomized map iteration — iterate sorted keys or sort the slice afterwards", target, mapStr)
				}
				return true
			}
			if isOutputCall(pass.TypesInfo, stmt) {
				report("output",
					"output written (line %d) inside range over map %s: byte order follows randomized map iteration — iterate sorted keys instead",
					pass.Fset.Position(stmt.Pos()).Line, mapStr)
			}
		}
		return true
	})
}

// floatAccumulation reports whether stmt accumulates into a float lvalue:
// either a compound assignment (x += v) or the self-referential form
// x = x + v.
func floatAccumulation(info *types.Info, stmt *ast.AssignStmt) bool {
	if len(stmt.Lhs) != 1 {
		return false
	}
	lhs := stmt.Lhs[0]
	if !isFloat(info.Types[lhs].Type) {
		return false
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(stmt.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			l := types.ExprString(lhs)
			return types.ExprString(bin.X) == l || types.ExprString(bin.Y) == l
		}
	}
	return false
}

// appendTarget recognizes append calls that accumulate into a variable
// and returns the rendered slice expression. Appends onto a fresh value
// — the clone idiom append([]T(nil), src...) — carry no iteration-order
// dependence and are ignored.
func appendTarget(info *types.Info, call *ast.CallExpr, _ ast.Node) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	switch ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return types.ExprString(call.Args[0]), true
	}
	return "", false
}

// sortedLaterInFunc reports whether fn contains, after pos, a recognized
// sort call whose first argument renders identically to target — the
// collect-then-sort idiom that makes map-order collection deterministic.
func sortedLaterInFunc(pass *Pass, fn ast.Node, pos token.Pos, target string) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		pkg := funcPkgPath(pass.TypesInfo, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		name := calleeFunc(pass.TypesInfo, call).Name()
		if !strings.HasPrefix(name, "Sort") && !isSortHelper(pkg, name) {
			return true
		}
		if len(call.Args) > 0 && types.ExprString(call.Args[0]) == target {
			found = true
		}
		return !found
	})
	return found
}

// isSortHelper covers the non-Sort-prefixed sorting entry points.
func isSortHelper(pkg, name string) bool {
	if pkg != "sort" {
		return false
	}
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

// isOutputCall reports whether call writes wire-visible output: a method
// on a type from the wire package, or an fmt print call.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		return true
	}
	if strings.HasSuffix(path, "/wire") || path == "wire" {
		return fn.Type().(*types.Signature).Recv() != nil
	}
	return false
}
