// Package analysistest runs analyzers over fixture packages and checks
// their findings against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// A fixture is one directory of Go files under testdata/src/<name>.
// Every line that should produce a finding carries a trailing comment:
//
//	total += v // want `floating-point accumulation`
//
// The regexp must match a diagnostic reported on that line; diagnostics
// on lines without a want comment, and want comments without a matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"pka/internal/analysis"
)

var wantRx = regexp.MustCompile("// want `([^`]*)`|// want \"([^\"]*)\"")

// expectation is one // want comment.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

// Run loads the fixture package rooted at dir, applies the analyzer,
// and diffs findings against the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// collectWants re-parses the fixture files for // want comments.
func collectWants(pkg *analysis.Package) ([]expectation, error) {
	var wants []expectation
	fset := token.NewFileSet()
	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		parsed, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range parsed.Comments {
			for _, c := range cg.List {
				text := c.Text
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", name, pat, err)
					}
					pos := fset.Position(c.Pos())
					if !strings.Contains(text, "// want") {
						continue
					}
					wants = append(wants, expectation{file: name, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}
