// Package analysis is a stdlib-only static-analysis framework plus a
// suite of repo-specific analyzers ("pkalint") that enforce contracts
// the compiler cannot see:
//
//   - determinism: parallel paths are bit-identical to their serial
//     twins, so the numeric core must not iterate maps in accumulation
//     order, read clocks, or draw random numbers (mapiterdet, nondeterm)
//   - pooling: sync.Pool scratch never escapes the hot path and is
//     returned on every exit (poolhygiene)
//   - publication: engines published through atomic.Pointer[T] are
//     immutable; mutation goes through clone-and-swap (atomicpub), and
//     values resident in a memo cache are never written through after
//     Get or Put (memoimmut)
//   - named failures: load/decode errors in the persistence packages
//     wrap with %w and surface as Err* sentinels (namederr)
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, analysistest fixtures) so the suite can migrate onto x/tools
// unchanged if the dependency ever lands; until then everything here is
// built on go/ast, go/types, and `go list -export` alone.
//
// A finding is suppressed by a comment on the flagged line or the line
// above it:
//
//	//pkalint:<key> <justification>
//
// where <key> is the analyzer's suppression key (its name, except
// mapiterdet which uses "ordered"). The justification is mandatory: an
// empty reason string is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	Name string // command-line and diagnostic label
	Doc  string // one-paragraph description of the invariant

	// SuppressKey is the <key> accepted in //pkalint:<key> comments.
	// Empty means Name.
	SuppressKey string

	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) suppressKey() string {
	if a.SuppressKey != "" {
		return a.SuppressKey
	}
	return a.Name
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags       *[]Diagnostic
	suppression map[string]map[int]suppression // filename -> line -> comment
}

// suppression is one parsed //pkalint:<key> comment.
type suppression struct {
	key    string
	reason string
}

var suppressRx = regexp.MustCompile(`^//pkalint:([a-z]+)\b[ \t]*(.*)$`)

// buildSuppressionIndex records every //pkalint: comment by file and line.
func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) map[string]map[int]suppression {
	idx := make(map[string]map[int]suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]suppression)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = suppression{key: m[1], reason: strings.TrimSpace(m[2])}
			}
		}
	}
	return idx
}

// Reportf records a finding at pos unless a justified //pkalint:<key>
// comment covers that line (same line or the line above). A matching
// suppression with an empty reason re-reports the finding with a note
// that the justification is missing.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	where := p.Fset.Position(pos)
	key := p.Analyzer.suppressKey()
	if byLine, ok := p.suppression[where.Filename]; ok {
		for _, line := range [2]int{where.Line, where.Line - 1} {
			s, ok := byLine[line]
			if !ok || s.key != key {
				continue
			}
			if s.reason != "" {
				return // justified suppression
			}
			*p.diags = append(*p.diags, Diagnostic{
				Pos:      where,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" (//pkalint:%s requires a non-empty justification)", key),
			})
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      where,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to pkg and returns the findings sorted by
// position. Test files (*_test.go) never participate: the contracts the
// suite encodes bind production code; tests seed their own rand and
// spawn their own clocks on purpose.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Syntax))
	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	suppIdx := buildSuppressionIndex(pkg.Fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       files,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.Info,
			diags:       &diags,
			suppression: suppIdx,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags, nil
}
