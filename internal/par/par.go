// Package par is the shared worker pool of the acquisition pipeline's
// parallel hot loops: bounded fan-out over an indexed task list with
// deterministic result collection and first-error cancellation.
//
// The paper's procedure is embarrassingly parallel at every level —
// pairwise association screening, per-family MML scans, the independent
// constraint blocks of the maximum-entropy fit, and per-evidence-group
// batch query execution — and each of those loops shares the same shape:
// n independent tasks, each writing its result into slot i of a
// pre-allocated slice, reduced afterwards in index order. Do runs exactly
// that shape. Because workers only ever write their own slot and the
// caller reduces in index order, the observable result is bit-identical
// to the sequential loop regardless of how the scheduler interleaves the
// workers; only wall time changes.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob against a task count: knob <= 0
// asks for GOMAXPROCS (the "use the machine" default every parallel knob
// in this module shares), and the result never exceeds tasks — spawning
// more goroutines than tasks only adds scheduling noise.
func Workers(knob, tasks int) int {
	w := knob
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines and returns the lowest-index error, or nil when every task
// succeeded. workers <= 0 uses GOMAXPROCS; workers == 1 (or n < 2) runs
// the plain sequential loop on the calling goroutine — byte-for-byte
// today's serial path, no goroutines spawned.
//
// Tasks are claimed in index order. After the first failure, workers stop
// claiming new indices (in-flight tasks finish), so a failing run does
// not grind through the remaining work. Every index below a claimed index
// has itself been claimed, which makes the returned error deterministic
// for deterministic fn: the lowest failing index is always evaluated, and
// its error is the one returned — the same error the sequential loop
// stops on.
//
// fn must be safe to call from multiple goroutines for distinct i; Do
// itself performs no synchronization beyond the claim counter, so tasks
// must not share mutable state unless they partition it by index. Do
// returns only after every started task has finished, so the caller may
// read all result slots immediately — a happens-before edge is
// established between each fn return and Do's return.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
