package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		knob, tasks, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3},
		{4, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.knob, c.tasks); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.knob, c.tasks, got, c.want)
		}
	}
}

// TestDoCoversEveryIndex checks each index runs exactly once, for serial
// and parallel worker counts alike.
func TestDoCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 257
			counts := make([]atomic.Int32, n)
			if err := Do(n, workers, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

// TestDoResultsIndexOrdered checks the slot-per-index contract: the result
// slice filled under parallel execution equals the sequential fill.
func TestDoResultsIndexOrdered(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		if err := Do(n, workers, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDoFirstErrorDeterministic checks the lowest failing index's error is
// returned no matter which worker hits which failure first.
func TestDoFirstErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := Do(64, workers, func(i int) error {
				switch i {
				case 7:
					return errLow
				case 8, 20, 63:
					return errHigh
				}
				return nil
			})
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
			}
		}
	}
}

// TestDoCancelsAfterError checks workers stop claiming new indices once a
// failure lands: with one worker the sequential loop must stop exactly at
// the failure, so later indices never run.
func TestDoCancelsAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := Do(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("sequential run evaluated %d tasks after early error, want 4", got)
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(0, 4, func(i int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Do(-5, 4, func(i int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
