package stats

import "testing"

func BenchmarkLogFactorialTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = LogFactorial(int64(i % 255))
	}
}

func BenchmarkLogFactorialLgamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = LogFactorial(int64(i%100000) + 256)
	}
}

func BenchmarkBinomialLogPMF(b *testing.B) {
	bin := Binomial{N: 3428, P: 0.048}
	for i := 0; i < b.N; i++ {
		_ = bin.LogPMF(int64(i % 3428))
	}
}

func BenchmarkBinomialCDFSmallN(b *testing.B) {
	bin := Binomial{N: 1000, P: 0.1}
	for i := 0; i < b.N; i++ {
		_ = bin.CDF(int64(i % 1000))
	}
}

func BenchmarkBinomialCDFIncBeta(b *testing.B) {
	bin := Binomial{N: 100000, P: 0.1}
	for i := 0; i < b.N; i++ {
		_ = bin.CDF(int64(i % 100000))
	}
}

func BenchmarkEntropy(b *testing.B) {
	p := make([]float64, 4096)
	for i := range p {
		p[i] = 1.0 / 4096
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Entropy(p)
	}
}

func BenchmarkKLDivergence(b *testing.B) {
	p := make([]float64, 4096)
	q := make([]float64, 4096)
	for i := range p {
		p[i] = 1.0 / 4096
		q[i] = float64(i%7+1) / (4096 * 4)
	}
	Normalize(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KLDivergence(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquareSF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ChiSquareSF(float64(i%50)+0.5, i%10+1)
	}
}

func BenchmarkCategoricalSampler(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i%13) + 1
	}
	s, err := NewCategoricalSampler(NewRNG(1), w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Draw()
	}
}

func BenchmarkMultinomial(b *testing.B) {
	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(i%5) + 1
	}
	rng := NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rng.Multinomial(10000, w); err != nil {
			b.Fatal(err)
		}
	}
}
