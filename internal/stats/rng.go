package stats

import (
	"fmt"
	"math/rand"
)

// RNG is the deterministic random source all synthetic workloads draw from.
// Seeding it makes every generator, example, and bench reproducible run to
// run, which the experiment harness relies on.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// (Split derives an independent stream).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent RNG from the current stream, so that
// sub-generators (one per attribute, say) remain stable when another
// consumer's draw count changes.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It returns an error if the weights are empty
// or sum to zero.
func (g *RNG) Categorical(w []float64) (int, error) {
	total := 0.0
	for i, v := range w {
		if v < 0 {
			return 0, fmt.Errorf("stats: categorical weight %d is negative (%g)", i, v)
		}
		total += v
	}
	if len(w) == 0 || total <= 0 {
		return 0, fmt.Errorf("stats: categorical weights empty or zero-sum")
	}
	u := g.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i, nil
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i, nil
		}
	}
	return len(w) - 1, nil
}

// CategoricalSampler precomputes the cumulative distribution of a weight
// vector for repeated draws (binary search per draw). It is what the
// synthetic dataset generators use to emit millions of records cheaply.
type CategoricalSampler struct {
	cum []float64
	rng *RNG
}

// NewCategoricalSampler validates w and builds the sampler.
func NewCategoricalSampler(rng *RNG, w []float64) (*CategoricalSampler, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("stats: sampler needs at least one weight")
	}
	cum := make([]float64, len(w))
	acc := 0.0
	for i, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("stats: sampler weight %d is negative (%g)", i, v)
		}
		acc += v
		cum[i] = acc
	}
	if acc <= 0 {
		return nil, fmt.Errorf("stats: sampler weights sum to zero")
	}
	return &CategoricalSampler{cum: cum, rng: rng}, nil
}

// Draw returns one index distributed according to the weights.
func (s *CategoricalSampler) Draw() int {
	u := s.rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Multinomial distributes n draws over the weight vector w and returns the
// per-bucket counts. It draws one sample at a time via the cumulative table,
// which is O(n log k) — fine for the ≤10⁷-draw workloads in the benches.
func (g *RNG) Multinomial(n int64, w []float64) ([]int64, error) {
	s, err := NewCategoricalSampler(g, w)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, len(w))
	for i := int64(0); i < n; i++ {
		counts[s.Draw()]++
	}
	return counts, nil
}
