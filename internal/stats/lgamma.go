package stats

import (
	"fmt"
	"math"
)

// LogGamma returns ln Γ(x) for x > 0.
//
// It is a thin wrapper over math.Lgamma that panics on the domain where the
// gamma function is negative or undefined, because every caller in this
// module passes positive arguments and a silent sign change would corrupt
// message-length arithmetic.
func LogGamma(x float64) float64 {
	v, sign := math.Lgamma(x)
	if sign < 0 {
		panic(fmt.Sprintf("stats: LogGamma called with x=%g where Γ(x) < 0", x))
	}
	return v
}

// LogFactorial returns ln(n!) computed as ln Γ(n+1).
//
// Small n (below the memo table size) are served from a precomputed table so
// significance scans over thousands of cells do not pay the Lgamma cost.
func LogFactorial(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stats: LogFactorial of negative n=%d", n))
	}
	if n < int64(len(logFactTable)) {
		return logFactTable[n]
	}
	return LogGamma(float64(n) + 1)
}

// logFactTable caches ln(n!) for n = 0..255.
var logFactTable = func() [256]float64 {
	var t [256]float64
	acc := 0.0
	for n := 1; n < len(t); n++ {
		acc += math.Log(float64(n))
		t[n] = acc
	}
	return t
}()

// LogChoose returns ln C(n, k), the log binomial coefficient.
// It returns -Inf when k < 0 or k > n (the coefficient is zero).
func LogChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64. It overflows gracefully to +Inf for
// huge arguments rather than wrapping, since it exponentiates LogChoose.
func Choose(n, k int64) float64 {
	lc := LogChoose(n, k)
	if math.IsInf(lc, -1) {
		return 0
	}
	return math.Exp(lc)
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b) for a, b > 0.
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}
