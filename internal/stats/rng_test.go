package stats

import (
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	aa := NewRNG(42)
	for i := 0; i < 10; i++ {
		if aa.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	child := g.Split()
	// Drawing from the parent must not perturb the child's future stream.
	want := make([]float64, 5)
	childCopy := NewRNG(7).Split()
	for i := range want {
		want[i] = childCopy.Float64()
	}
	for i := range want {
		if got := child.Float64(); got != want[i] {
			t.Fatalf("split stream not reproducible at %d", i)
		}
	}
}

func TestCategoricalValidation(t *testing.T) {
	g := NewRNG(1)
	if _, err := g.Categorical(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := g.Categorical([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
	if _, err := g.Categorical([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	g := NewRNG(99)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		idx, err := g.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if !AlmostEqual(got, want, 0.01) {
			t.Errorf("bucket %d frequency %g, want %g", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	g := NewRNG(3)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		idx, err := g.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("drew zero-weight bucket %d", idx)
		}
	}
}

func TestCategoricalSamplerMatchesDirect(t *testing.T) {
	w := []float64{0.5, 0.25, 0.25}
	s, err := NewCategoricalSampler(NewRNG(5), w)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Draw()]++
	}
	for i, want := range w {
		got := float64(counts[i]) / n
		if !AlmostEqual(got, want, 0.01) {
			t.Errorf("sampler bucket %d frequency %g, want %g", i, got, want)
		}
	}
}

func TestCategoricalSamplerValidation(t *testing.T) {
	if _, err := NewCategoricalSampler(NewRNG(1), nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewCategoricalSampler(NewRNG(1), []float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewCategoricalSampler(NewRNG(1), []float64{0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestMultinomialConservesTotal(t *testing.T) {
	g := NewRNG(11)
	counts, err := g.Multinomial(12345, []float64{3, 1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 12345 {
		t.Errorf("multinomial total %d, want 12345", sum)
	}
}

func TestMultinomialError(t *testing.T) {
	g := NewRNG(11)
	if _, err := g.Multinomial(10, []float64{0}); err == nil {
		t.Error("bad weights accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	s, err = Summarize([]float64{5})
	if err != nil || s.Median != 5 || s.SD != 0 {
		t.Errorf("singleton summary = %+v err %v", s, err)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if s.String() == "" {
		t.Error("String should render something")
	}
}
