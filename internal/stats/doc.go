// Package stats provides the numeric substrate used throughout pka:
// log-gamma based combinatorics, the binomial distribution of Eqs. 32-34 of
// the memo, information-theoretic quantities (entropy, KL divergence, mutual
// information), chi-square machinery for the baseline significance criterion,
// and a deterministic seeded random source for synthetic workloads.
//
// Everything here is pure computation on float64/int64 and is safe for
// concurrent use except RNG, which is documented separately.
package stats
