package stats

import (
	"fmt"
	"math"
)

// ChiSquareStat returns Pearson's X² = Σ (obs - exp)² / exp over the cells,
// skipping cells with zero expectation (those contribute +Inf only when the
// observation is nonzero, which we surface explicitly).
//
// It is the classic 1900-era significance machinery the memo's MML criterion
// replaces; we keep it as the ablation baseline (experiment X4).
func ChiSquareStat(observed []int64, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: chi-square length mismatch %d vs %d",
			len(observed), len(expected))
	}
	x2 := 0.0
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			if o != 0 {
				return math.Inf(1), nil
			}
			continue
		}
		d := float64(o) - e
		x2 += d * d / e
	}
	return x2, nil
}

// GStat returns the likelihood-ratio statistic G² = 2 Σ obs · ln(obs/exp),
// the deviance twin of Pearson's X². Cells with zero observation contribute
// zero; zero expectation with nonzero observation yields +Inf.
func GStat(observed []int64, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: G-stat length mismatch %d vs %d",
			len(observed), len(expected))
	}
	g := 0.0
	for i, o := range observed {
		if o == 0 {
			continue
		}
		e := expected[i]
		if e <= 0 {
			return math.Inf(1), nil
		}
		g += float64(o) * math.Log(float64(o)/e)
	}
	return 2 * g, nil
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k degrees
// of freedom, i.e. the regularized lower incomplete gamma P(k/2, x/2).
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return RegLowerGamma(float64(k)/2, x/2)
}

// ChiSquareSF returns the survival function P(X > x) — the p-value of a
// chi-square test statistic x with k degrees of freedom.
func ChiSquareSF(x float64, k int) float64 {
	return 1 - ChiSquareCDF(x, k)
}

// RegLowerGamma computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction for x >= a+1 (Numerical-Recipes style, stdlib only).
func RegLowerGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

func gammaContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LogGamma(a)) * h
}

// ChiSquareCritical returns the approximate critical value x such that
// P(X > x) = alpha for k degrees of freedom, found by bisection on the CDF.
// It is used by the chi-square ablation baseline to convert a significance
// level into a cell-selection threshold.
func ChiSquareCritical(alpha float64, k int) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: alpha %g must be in (0,1)", alpha)
	}
	if k <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom %d must be positive", k)
	}
	lo, hi := 0.0, float64(k)+20*math.Sqrt(2*float64(k))+50
	for ChiSquareSF(hi, k) > alpha {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("stats: chi-square critical value search diverged")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareSF(mid, k) > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
