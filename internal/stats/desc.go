package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float64 sample, used by the
// bench harness to report sweep results.
type Summary struct {
	N      int
	Mean   float64
	SD     float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary. It returns an error for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: cannot summarize empty sample")
	}
	s := Summary{N: len(xs)}
	sum := 0.0
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.SD = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.SD, s.Min, s.Median, s.Max)
}

// AlmostEqual reports whether a and b agree within absolute tolerance tol.
// It treats equal infinities as equal. It is the comparison primitive the
// golden tests use against the memo's rounded figures.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return math.Abs(a-b) <= tol
}

// RelEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute comparison near zero).
func RelEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-12 {
		return math.Abs(a-b) <= rel
	}
	return math.Abs(a-b) <= rel*scale
}
