package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropyUniform(t *testing.T) {
	// H(uniform over k) = ln k.
	for _, k := range []int{2, 3, 10, 100} {
		p := make([]float64, k)
		for i := range p {
			p[i] = 1 / float64(k)
		}
		if got := Entropy(p); !AlmostEqual(got, math.Log(float64(k)), 1e-12) {
			t.Errorf("H(uniform %d) = %g, want ln %d = %g", k, got, k, math.Log(float64(k)))
		}
		if got := MaxEntropy(k); !AlmostEqual(got, math.Log(float64(k)), 0) {
			t.Errorf("MaxEntropy(%d) = %g", k, got)
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Error("point mass should have zero entropy")
	}
	if Entropy(nil) != 0 {
		t.Error("empty distribution should have zero entropy")
	}
	if MaxEntropy(0) != 0 || MaxEntropy(-3) != 0 {
		t.Error("MaxEntropy of non-positive k should be 0")
	}
}

func TestEntropyBoundedProperty(t *testing.T) {
	// For any normalized distribution, 0 <= H <= ln k.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, r := range raw {
			p[i] = float64(r) + 1 // strictly positive
		}
		if _, err := Normalize(p); err != nil {
			return false
		}
		h := Entropy(p)
		return h >= -1e-12 && h <= math.Log(float64(len(p)))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	// Gibbs' inequality: D(p||q) >= 0, equality iff p == q.
	f := func(rawP, rawQ [6]uint8) bool {
		p := make([]float64, 6)
		q := make([]float64, 6)
		for i := 0; i < 6; i++ {
			p[i] = float64(rawP[i]) + 1
			q[i] = float64(rawQ[i]) + 1
		}
		Normalize(p)
		Normalize(q)
		d, err := KLDivergence(p, q)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLSelfIsZero(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	d, err := KLDivergence(p, p)
	if err != nil || !AlmostEqual(d, 0, 1e-14) {
		t.Errorf("D(p||p) = %g, err %v", d, err)
	}
}

func TestKLAbsoluteContinuity(t *testing.T) {
	d, err := KLDivergence([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("KL with missing support = %g, want +Inf", d)
	}
	// But zero p mass over zero q mass is fine.
	d, err = KLDivergence([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil || math.IsInf(d, 1) {
		t.Errorf("KL with p-null cell should be finite, got %g err %v", d, err)
	}
}

func TestKLLengthMismatch(t *testing.T) {
	if _, err := KLDivergence([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CrossEntropy([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("cross-entropy length mismatch accepted")
	}
}

func TestCrossEntropyDecomposition(t *testing.T) {
	// H(p, q) = H(p) + D(p||q).
	p := []float64{0.1, 0.4, 0.5}
	q := []float64{0.3, 0.3, 0.4}
	ce, err := CrossEntropy(p, q)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(ce, Entropy(p)+kl, 1e-12) {
		t.Errorf("H(p,q)=%g != H(p)+D = %g", ce, Entropy(p)+kl)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Product distribution has zero MI.
	px := []float64{0.3, 0.7}
	py := []float64{0.2, 0.5, 0.3}
	joint := make([]float64, 6)
	for x := 0; x < 2; x++ {
		for y := 0; y < 3; y++ {
			joint[x*3+y] = px[x] * py[y]
		}
	}
	mi, err := MutualInformation(joint, 2, 3)
	if err != nil || !AlmostEqual(mi, 0, 1e-12) {
		t.Errorf("MI(independent) = %g err %v", mi, err)
	}
}

func TestMutualInformationPerfectlyCorrelated(t *testing.T) {
	// X == Y uniform binary: MI = ln 2.
	joint := []float64{0.5, 0, 0, 0.5}
	mi, err := MutualInformation(joint, 2, 2)
	if err != nil || !AlmostEqual(mi, math.Log(2), 1e-12) {
		t.Errorf("MI(copy) = %g err %v, want ln 2", mi, err)
	}
}

func TestMutualInformationBadShape(t *testing.T) {
	if _, err := MutualInformation([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := MutualInformation(nil, 0, 2); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestNormalize(t *testing.T) {
	p := []float64{2, 3, 5}
	sum, err := Normalize(p)
	if err != nil || sum != 10 {
		t.Fatalf("Normalize sum = %g err %v", sum, err)
	}
	if !AlmostEqual(p[0], 0.2, 1e-15) || !AlmostEqual(p[2], 0.5, 1e-15) {
		t.Errorf("normalized to %v", p)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("zero-sum normalize accepted")
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Error("negative entry accepted")
	}
	if _, err := Normalize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN entry accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	tv, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || !AlmostEqual(tv, 1, 1e-15) {
		t.Errorf("TV of disjoint point masses = %g err %v, want 1", tv, err)
	}
	tv, err = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil || tv != 0 {
		t.Errorf("TV(p,p) = %g", tv)
	}
	if _, err := TotalVariation([]float64{1}, []float64{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}
