package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		got := math.Exp(LogFactorial(int64(n)))
		if !RelEqual(got, w, 1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %g, want %g", n, got, w)
		}
	}
}

func TestLogFactorialTableMatchesLgamma(t *testing.T) {
	// The cached table and the Lgamma path must agree across the boundary.
	for _, n := range []int64{0, 1, 127, 254, 255, 256, 257, 1000, 100000} {
		direct, _ := math.Lgamma(float64(n) + 1)
		if !RelEqual(LogFactorial(n), direct, 1e-14) {
			t.Errorf("LogFactorial(%d) = %v, Lgamma = %v", n, LogFactorial(n), direct)
		}
	}
}

func TestLogFactorialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFactorial(-1) did not panic")
		}
	}()
	LogFactorial(-1)
}

func TestLogChooseKnownValues(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{0, 0, 1},
		{7, 0, 1},
		{7, 7, 1},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if !RelEqual(got, c.want, 1e-10) {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("C(5,6) should have log -Inf")
	}
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("C(5,-1) should have log -Inf")
	}
	if Choose(5, 6) != 0 {
		t.Error("Choose(5,6) should be 0")
	}
}

func TestLogChooseSymmetryProperty(t *testing.T) {
	// C(n,k) == C(n,n-k) for all valid n,k.
	f := func(n uint16, k uint16) bool {
		nn := int64(n%2000) + 1
		kk := int64(k) % (nn + 1)
		return AlmostEqual(LogChoose(nn, kk), LogChoose(nn, nn-kk), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogChoosePascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in linear space for modest n.
	f := func(n uint8, k uint8) bool {
		nn := int64(n%60) + 2
		kk := int64(k)%(nn-1) + 1
		lhs := Choose(nn, kk)
		rhs := Choose(nn-1, kk-1) + Choose(nn-1, kk)
		return RelEqual(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBeta(t *testing.T) {
	// B(a,b) = Γ(a)Γ(b)/Γ(a+b); B(1,1)=1, B(2,3)=1/12.
	if !RelEqual(math.Exp(LogBeta(1, 1)), 1, 1e-12) {
		t.Errorf("B(1,1) = %g", math.Exp(LogBeta(1, 1)))
	}
	if !RelEqual(math.Exp(LogBeta(2, 3)), 1.0/12, 1e-12) {
		t.Errorf("B(2,3) = %g, want 1/12", math.Exp(LogBeta(2, 3)))
	}
}
