package stats

import (
	"fmt"
	"math"
)

// Entropy returns H(p) = -Σ p_i ln p_i in nats (Eq. 7 of the memo).
// Zero entries contribute zero by the usual 0·ln 0 = 0 convention.
// The distribution need not be normalized; callers that care should
// normalize first (see Normalize).
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// MaxEntropy returns ln(k), the entropy of the uniform distribution over k
// outcomes — the upper bound the maximum-entropy principle pushes toward in
// the absence of constraints.
func MaxEntropy(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Log(float64(k))
}

// KLDivergence returns D(p ‖ q) = Σ p_i ln(p_i / q_i) in nats.
// It returns +Inf when some p_i > 0 has q_i == 0 (absolute-continuity
// violation) and an error when the slices differ in length.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL length mismatch %d vs %d", len(p), len(q))
	}
	d := 0.0
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1), nil
		}
		d += pi * math.Log(pi/q[i])
	}
	// Numerical noise can drive the sum infinitesimally negative.
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d, nil
}

// CrossEntropy returns -Σ p_i ln q_i in nats, +Inf when q lacks support.
func CrossEntropy(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: cross-entropy length mismatch %d vs %d", len(p), len(q))
	}
	h := 0.0
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1), nil
		}
		h -= pi * math.Log(q[i])
	}
	return h, nil
}

// MutualInformation returns I(X;Y) in nats for a joint distribution laid out
// row-major as joint[x*ny + y]. It computes the marginals itself.
func MutualInformation(joint []float64, nx, ny int) (float64, error) {
	if nx <= 0 || ny <= 0 || len(joint) != nx*ny {
		return 0, fmt.Errorf("stats: mutual information wants %dx%d=%d cells, got %d",
			nx, ny, nx*ny, len(joint))
	}
	px := make([]float64, nx)
	py := make([]float64, ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := joint[x*ny+y]
			px[x] += v
			py[y] += v
		}
	}
	mi := 0.0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := joint[x*ny+y]
			if v <= 0 {
				continue
			}
			mi += v * math.Log(v/(px[x]*py[y]))
		}
	}
	if mi < 0 && mi > -1e-12 {
		mi = 0
	}
	return mi, nil
}

// Normalize scales p in place so it sums to 1 and returns the original sum.
// It returns an error if the sum is zero, negative, or not finite.
func Normalize(p []float64) (float64, error) {
	sum := 0.0
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("stats: cannot normalize distribution containing %g", v)
		}
		sum += v
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return 0, fmt.Errorf("stats: cannot normalize distribution with sum %g", sum)
	}
	for i := range p {
		p[i] /= sum
	}
	return sum, nil
}

// TotalVariation returns (1/2) Σ |p_i - q_i|, a bounded distance in [0,1]
// used by the recovery benches to compare fitted and true joints.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: TV length mismatch %d vs %d", len(p), len(q))
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}
