package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareStatHandWorked(t *testing.T) {
	// Classic 2x2: observed [10 20 30 40], expected under independence
	// row sums 30,70; col sums 40,60; N=100 -> e = [12 18 28 42].
	obs := []int64{10, 20, 30, 40}
	exp := []float64{12, 18, 28, 42}
	x2, err := ChiSquareStat(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0/12 + 4.0/18 + 4.0/28 + 4.0/42
	if !AlmostEqual(x2, want, 1e-12) {
		t.Errorf("X² = %g, want %g", x2, want)
	}
}

func TestChiSquareStatZeroExpectation(t *testing.T) {
	x2, err := ChiSquareStat([]int64{5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(x2, 1) {
		t.Errorf("nonzero obs on zero exp should be +Inf, got %g", x2)
	}
	x2, err = ChiSquareStat([]int64{0}, []float64{0})
	if err != nil || x2 != 0 {
		t.Errorf("zero obs on zero exp should contribute 0, got %g err %v", x2, err)
	}
}

func TestChiSquareStatLengthMismatch(t *testing.T) {
	if _, err := ChiSquareStat([]int64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := GStat([]int64{1}, []float64{1, 2}); err == nil {
		t.Error("G-stat length mismatch accepted")
	}
}

func TestGStatZeroWhenExact(t *testing.T) {
	obs := []int64{10, 20, 30}
	exp := []float64{10, 20, 30}
	g, err := GStat(obs, exp)
	if err != nil || !AlmostEqual(g, 0, 1e-12) {
		t.Errorf("G² on exact fit = %g err %v", g, err)
	}
}

func TestGStatApproximatesChiSquareNearFit(t *testing.T) {
	// For small deviations G² ≈ X².
	obs := []int64{101, 99, 100}
	exp := []float64{100, 100, 100}
	g, _ := GStat(obs, exp)
	x2, _ := ChiSquareStat(obs, exp)
	if !AlmostEqual(g, x2, 0.01) {
		t.Errorf("G²=%g and X²=%g should nearly agree near the fit", g, x2)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// k=2: CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !AlmostEqual(got, want, 1e-10) {
			t.Errorf("ChiSquareCDF(%g, 2) = %g, want %g", x, got, want)
		}
	}
	// Standard critical value: P(X > 3.841) = 0.05 for k=1.
	if sf := ChiSquareSF(3.841, 1); !AlmostEqual(sf, 0.05, 5e-4) {
		t.Errorf("SF(3.841, 1) = %g, want ~0.05", sf)
	}
	// P(X > 5.991) = 0.05 for k=2.
	if sf := ChiSquareSF(5.991, 2); !AlmostEqual(sf, 0.05, 5e-4) {
		t.Errorf("SF(5.991, 2) = %g, want ~0.05", sf)
	}
}

func TestChiSquareCDFBounds(t *testing.T) {
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareCDF(0, 3) != 0 {
		t.Error("CDF at or below 0 should be 0")
	}
	if ChiSquareCDF(1, 0) != 0 {
		t.Error("CDF with k<=0 should be 0")
	}
	if got := ChiSquareCDF(1e6, 3); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("CDF far right = %g, want 1", got)
	}
}

func TestChiSquareCDFMonotoneProperty(t *testing.T) {
	f := func(xSeed uint16, kSeed uint8) bool {
		x := float64(xSeed) / 100
		k := int(kSeed%20) + 1
		return ChiSquareCDF(x, k) <= ChiSquareCDF(x+0.5, k)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCriticalRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		for _, alpha := range []float64{0.1, 0.05, 0.01} {
			x, err := ChiSquareCritical(alpha, k)
			if err != nil {
				t.Fatalf("critical(%g, %d): %v", alpha, k, err)
			}
			if sf := ChiSquareSF(x, k); !AlmostEqual(sf, alpha, 1e-6) {
				t.Errorf("SF(critical(%g,%d)=%g) = %g", alpha, k, x, sf)
			}
		}
	}
}

func TestChiSquareCriticalValidation(t *testing.T) {
	if _, err := ChiSquareCritical(0, 3); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := ChiSquareCritical(1, 3); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := ChiSquareCritical(0.05, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRegLowerGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := RegLowerGamma(1, x); !AlmostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(RegLowerGamma(-1, 1)) {
		t.Error("negative a should yield NaN")
	}
	if RegLowerGamma(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
}
