package stats

import (
	"fmt"
	"math"
)

// Binomial is the distribution of Eq. 32 of the memo: the number of
// occurrences of a cell among N samples when each sample lands in the cell
// independently with probability P.
//
//	P(n | p, N) = C(N, n) p^n (1-p)^(N-n)
//
// The zero value is not useful; construct with NewBinomial.
type Binomial struct {
	N int64   // total number of samples
	P float64 // per-sample cell probability
}

// NewBinomial validates its arguments and returns the distribution.
// N must be non-negative and P must lie in [0, 1].
func NewBinomial(n int64, p float64) (Binomial, error) {
	if n < 0 {
		return Binomial{}, fmt.Errorf("stats: binomial N=%d must be >= 0", n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Binomial{}, fmt.Errorf("stats: binomial P=%g must be in [0,1]", p)
	}
	return Binomial{N: n, P: p}, nil
}

// Mean returns N·p, the predicted mean of Eq. 33.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns N·p·(1-p).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// SD returns sqrt(N·p·(1-p)), the standard deviation of Eq. 34.
func (b Binomial) SD() float64 { return math.Sqrt(b.Variance()) }

// LogPMF returns ln P(n | p, N) computed stably in log space.
// Out-of-range n yields -Inf. Degenerate p (0 or 1) is handled exactly.
func (b Binomial) LogPMF(n int64) float64 {
	if n < 0 || n > b.N {
		return math.Inf(-1)
	}
	switch {
	case b.P == 0:
		if n == 0 {
			return 0
		}
		return math.Inf(-1)
	case b.P == 1:
		if n == b.N {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(b.N, n) +
		float64(n)*math.Log(b.P) +
		float64(b.N-n)*math.Log1p(-b.P)
}

// PMF returns P(n | p, N).
func (b Binomial) PMF(n int64) float64 { return math.Exp(b.LogPMF(n)) }

// ZScore returns (n - mean)/sd, the "No. of sd's" column of the memo's
// Table 1. It returns 0 when the distribution is degenerate (sd == 0 and the
// observation equals the mean) and ±Inf when sd == 0 and it does not.
func (b Binomial) ZScore(n int64) float64 {
	sd := b.SD()
	diff := float64(n) - b.Mean()
	if sd == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(sign(diff))
	}
	return diff / sd
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// CDF returns P(X <= n). For modest N it sums the pmf exactly; for large N it
// switches to a numerically stable complemented regularized incomplete beta
// identity: P(X <= n) = I_{1-p}(N-n, n+1).
func (b Binomial) CDF(n int64) float64 {
	if n < 0 {
		return 0
	}
	if n >= b.N {
		return 1
	}
	if b.P == 0 {
		return 1
	}
	if b.P == 1 {
		return 0
	}
	if b.N <= 1024 {
		sum := 0.0
		for k := int64(0); k <= n; k++ {
			sum += b.PMF(k)
		}
		if sum > 1 {
			sum = 1
		}
		return sum
	}
	return RegIncBeta(float64(b.N-n), float64(n+1), 1-b.P)
}

// TailProb returns the two-sided tail mass P(|X - mean| >= |n - mean|),
// a conventional p-value used by the chi-square-style baselines when
// comparing against the memo's MML criterion.
func (b Binomial) TailProb(n int64) float64 {
	mean := b.Mean()
	dev := math.Abs(float64(n) - mean)
	lo := int64(math.Ceil(mean - dev))
	hi := int64(math.Floor(mean + dev))
	// Mass strictly inside (mean-dev, mean+dev), then complement.
	if lo > hi {
		return 1
	}
	inner := b.CDF(hi) - b.CDF(lo-1)
	// Remove the boundary cells themselves: they belong to the tail.
	if dev > 0 {
		if lo >= 0 && float64(lo) == mean-dev {
			inner -= b.PMF(lo)
		}
		if hi <= b.N && float64(hi) == mean+dev {
			inner -= b.PMF(hi)
		}
	}
	p := 1 - inner
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's algorithm), the standard
// approach when no special-function library is available.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := LogBeta(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log1p(-x) - lbeta)
	// Use the symmetry relation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	c, d := 1.0, 1.0-(a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return front * h / a
}
