package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBinomialValidation(t *testing.T) {
	if _, err := NewBinomial(-1, 0.5); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := NewBinomial(10, -0.1); err == nil {
		t.Error("negative P accepted")
	}
	if _, err := NewBinomial(10, 1.1); err == nil {
		t.Error("P > 1 accepted")
	}
	if _, err := NewBinomial(10, math.NaN()); err == nil {
		t.Error("NaN P accepted")
	}
	if _, err := NewBinomial(10, 0.5); err != nil {
		t.Errorf("valid binomial rejected: %v", err)
	}
}

func TestBinomialMomentsMatchMemoTable1(t *testing.T) {
	// Memo Table 1, row N^AB_11: N=3428, p=.048 -> mean 165, sd 12.5.
	b := Binomial{N: 3428, P: 0.048}
	if !AlmostEqual(b.Mean(), 164.5, 0.1) {
		t.Errorf("mean = %g, memo rounds to 165", b.Mean())
	}
	if !AlmostEqual(b.SD(), 12.5, 0.05) {
		t.Errorf("sd = %g, memo says 12.5", b.SD())
	}
	// Row N^AC_11: p=.195 -> mean 668, sd 23.2.
	b = Binomial{N: 3428, P: 0.195}
	if !AlmostEqual(b.Mean(), 668.5, 0.1) {
		t.Errorf("mean = %g, memo says 668", b.Mean())
	}
	if !AlmostEqual(b.SD(), 23.2, 0.05) {
		t.Errorf("sd = %g, memo says 23.2", b.SD())
	}
}

func TestBinomialZScoreMatchesMemo(t *testing.T) {
	// Memo Table 1: N^AB_11 observed 240 vs mean 165 -> 6.03 sd.
	b := Binomial{N: 3428, P: 0.048}
	if z := b.ZScore(240); !AlmostEqual(z, 6.03, 0.05) {
		t.Errorf("z(240) = %g, memo says 6.03", z)
	}
	// N^AC_11 observed 540 -> -5.54 sd.
	b = Binomial{N: 3428, P: 0.195}
	if z := b.ZScore(540); !AlmostEqual(z, -5.54, 0.05) {
		t.Errorf("z(540) = %g, memo says -5.54", z)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int64
		p float64
	}{{10, 0.3}, {100, 0.05}, {1, 0.999}, {50, 0.5}} {
		b := Binomial{N: tc.n, P: tc.p}
		sum := 0.0
		for k := int64(0); k <= tc.n; k++ {
			sum += b.PMF(k)
		}
		if !AlmostEqual(sum, 1, 1e-9) {
			t.Errorf("pmf(N=%d,p=%g) sums to %g", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	b := Binomial{N: 5, P: 0}
	if b.PMF(0) != 1 || b.PMF(1) != 0 {
		t.Error("p=0 should put all mass on n=0")
	}
	b = Binomial{N: 5, P: 1}
	if b.PMF(5) != 1 || b.PMF(4) != 0 {
		t.Error("p=1 should put all mass on n=N")
	}
	if !math.IsInf(b.LogPMF(3), -1) {
		t.Error("log pmf off-support should be -Inf")
	}
	if b.ZScore(5) != 0 {
		t.Error("z-score at the degenerate mean should be 0")
	}
	if !math.IsInf(b.ZScore(3), -1) {
		t.Error("z-score off the degenerate mean should be -Inf")
	}
}

func TestBinomialOutOfSupport(t *testing.T) {
	b := Binomial{N: 10, P: 0.4}
	if !math.IsInf(b.LogPMF(-1), -1) || !math.IsInf(b.LogPMF(11), -1) {
		t.Error("out-of-support log pmf should be -Inf")
	}
	if b.CDF(-1) != 0 {
		t.Error("CDF below support should be 0")
	}
	if b.CDF(10) != 1 {
		t.Error("CDF at N should be 1")
	}
}

func TestBinomialCDFMatchesDirectSum(t *testing.T) {
	// Exercise both the direct-sum and incomplete-beta code paths.
	for _, n := range []int64{100, 5000} {
		b := Binomial{N: n, P: 0.13}
		for _, k := range []int64{0, n / 100, n / 10, n / 2, n - 1} {
			direct := 0.0
			for j := int64(0); j <= k; j++ {
				direct += b.PMF(j)
			}
			if direct > 1 {
				direct = 1
			}
			got := b.CDF(k)
			if !AlmostEqual(got, direct, 1e-8) {
				t.Errorf("N=%d CDF(%d) = %.12f, direct sum %.12f", n, k, got, direct)
			}
		}
	}
}

func TestBinomialCDFMonotoneProperty(t *testing.T) {
	f := func(nSeed uint16, pSeed uint8, k uint16) bool {
		n := int64(nSeed%500) + 1
		p := float64(pSeed%100) / 100
		b := Binomial{N: n, P: p}
		k1 := int64(k) % (n + 1)
		if k1 == n {
			return true
		}
		return b.CDF(k1) <= b.CDF(k1+1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialLogPMFNeverPositive(t *testing.T) {
	f := func(nSeed uint16, pSeed uint8, k uint16) bool {
		n := int64(nSeed%2000) + 1
		p := float64(pSeed)/256*0.998 + 0.001
		b := Binomial{N: n, P: p}
		return b.LogPMF(int64(k)%(n+1)) <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTailProbBounds(t *testing.T) {
	b := Binomial{N: 1000, P: 0.2}
	// At the mean the two-sided tail must be (essentially) 1.
	if p := b.TailProb(200); p < 0.95 {
		t.Errorf("tail at mean = %g, want ~1", p)
	}
	// Far in the tail it must be tiny.
	if p := b.TailProb(400); p > 1e-10 {
		t.Errorf("tail at 400 (mean 200) = %g, want ~0", p)
	}
	// Monotone: farther observation, smaller tail.
	if b.TailProb(260) > b.TailProb(250) {
		t.Error("tail probability should shrink with distance from the mean")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !AlmostEqual(got, x, 1e-10) {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_x(2,2) = 3x² - 2x³.
	for _, x := range []float64{0.25, 0.5, 0.75} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); !AlmostEqual(got, want, 1e-10) {
			t.Errorf("I_%g(2,2) = %g, want %g", x, got, want)
		}
	}
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values of RegIncBeta wrong")
	}
}
