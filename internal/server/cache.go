package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"

	"pka/internal/kb"
	"pka/internal/memo"
	"pka/internal/query"
	"pka/internal/rules"
)

// The wire-tier (L1) cache: exact encoded response bytes, keyed by a
// canonical rendering of the request plus the model version read BEFORE
// the answer was computed. A hot hit is one map lookup and one counted
// Write — zero evaluation, zero re-encode.
//
// Correctness rests on two facts. First, answers are insensitive to
// assignment order (resolution canonicalizes to sorted positions), so the
// key sorts target and evidence parts — the same canonicalization
// AnswerBatch's evidence grouping uses — and any ordering of one question
// hits one entry. Second, the model stores a swapped engine before bumping
// its version (see queryCore), so bytes cached under a pre-read version v
// always come from an engine at least as fresh as v: a client that
// observed version v probes at >= v and can never surface v-1 bytes.
// Only 200 responses are cached; errors re-render their messages.

// wireKeyPool recycles the key-rendering scratch of the wire tier.
var wireKeyPool = sync.Pool{New: func() any { return new(wireKeyBuf) }}

type wireKeyBuf struct{ buf []byte }

// explainKey is the wire key of GET /v1/explain (no parameters).
var explainKey = []byte("e")

// version reads the served model's version, the wire tier's cache key
// epoch; models without a version surface are immutable (version 0).
func (h *handler) version() int64 {
	if h.versioned != nil {
		return h.versioned.Version()
	}
	return 0
}

// appendSortedAssigns renders assignments in (Attr, Value) order without
// mutating the slice: an insertion-sorted index array on the stack keeps
// the render allocation-free for realistic arities. Quoting keeps
// adjacent parts from colliding.
func appendSortedAssigns(dst []byte, as []kb.Assignment) []byte {
	var stack [16]int
	idx := stack[:0]
	if len(as) > len(stack) {
		idx = make([]int, 0, len(as))
	}
	for i := range as {
		idx = append(idx, i)
		for j := len(idx) - 1; j > 0; j-- {
			a, b := as[idx[j]], as[idx[j-1]]
			if a.Attr > b.Attr || (a.Attr == b.Attr && a.Value >= b.Value) {
				break
			}
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		dst = strconv.AppendQuote(dst, as[i].Attr)
		dst = append(dst, '=')
		dst = strconv.AppendQuote(dst, as[i].Value)
		dst = append(dst, ',')
	}
	return dst
}

// appendQueryKey renders one single-query request canonically:
// kind | attr | sorted target | sorted given.
func appendQueryKey(dst []byte, qu *query.Query) []byte {
	dst = append(dst, qu.Kind...)
	dst = append(dst, '|')
	dst = strconv.AppendQuote(dst, qu.Attr)
	dst = append(dst, '|')
	dst = appendSortedAssigns(dst, qu.Target)
	dst = append(dst, '|')
	dst = appendSortedAssigns(dst, qu.Given)
	return dst
}

// appendRulesKey renders /v1/rules parameters: float thresholds travel as
// IEEE-754 bits so distinct values never collide through formatting.
func appendRulesKey(dst []byte, opts rules.Options) []byte {
	dst = append(dst, 'r', '|')
	dst = strconv.AppendUint(dst, math.Float64bits(opts.MinProbability), 16)
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, math.Float64bits(opts.MinSupport), 16)
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, math.Float64bits(opts.MinLiftDistance), 16)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(opts.MaxRules), 10)
	return dst
}

// writeCachedJSON serves a wire-cache hit: the stored bytes, one counted
// write. The cached slice is published and never mutated.
func writeCachedJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// writeJSONCaching encodes v, stores a private copy of the bytes in the
// wire cache under (key, version), and writes the response — the miss
// path of a cacheable 200.
func (h *handler) writeJSONCaching(w http.ResponseWriter, key []byte, version int64, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			bufPool.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	body := buf.Bytes()
	stored := make([]byte, len(body))
	copy(stored, body)
	h.wire.Put(key, version, stored, int64(len(stored)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// statsResponse frames GET /v1/stats: the model version plus one counter
// block per active cache tier.
type statsResponse struct {
	Version int64                  `json:"version"`
	Tiers   []query.CacheTierStats `json:"tiers"`
}

// stats serves the cache-observability counters of every tier this
// process carries: the handler's own wire tier, then whatever the served
// model reports (engine memo, a coordinator's remote-eval memo). With
// caching off the tier list is empty — the endpoint always answers.
func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Version: h.version(), Tiers: []query.CacheTierStats{}}
	if h.wire != nil {
		resp.Tiers = append(resp.Tiers, query.CacheTierStats{Tier: "wire", Stats: h.wire.Stats()})
	}
	if h.cacheStats != nil {
		resp.Tiers = append(resp.Tiers, h.cacheStats.CacheStats()...)
	}
	writeJSON(w, resp)
}

// newWireCache decides the handler's L1 configuration. The wire tier
// needs a version epoch to invalidate on: an updatable model without a
// version surface cannot carry one (stale bytes would serve forever), so
// it stays off there. Read-only models are immutable — version 0 is
// always valid.
func newWireCache(opts Options, ingest query.Ingestor, versioned query.Versioned) *memo.Cache {
	if opts.CacheBytes == 0 {
		return nil
	}
	if ingest != nil && versioned == nil {
		return nil
	}
	return memo.New(opts.CacheBytes)
}
