package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// allocsPerRequest measures steady-state allocations for one request
// against the handler, warming it first so pooled scratch is in play.
// The request/recorder construction is counted too, so the ceilings
// below bound the whole per-request path the server controls.
func allocsPerRequest(t *testing.T, h http.Handler, method, target, body string) float64 {
	t.Helper()
	do := func() int {
		var req *http.Request
		if body != "" {
			req = httptest.NewRequest(method, target, strings.NewReader(body))
		} else {
			req = httptest.NewRequest(method, target, nil)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	for i := 0; i < 50; i++ {
		if code := do(); code != http.StatusOK {
			t.Fatalf("warmup request returned %d", code)
		}
	}
	return testing.AllocsPerRun(200, func() { do() })
}

// BenchmarkHotEndpoints reports per-request cost of the three hot read
// endpoints — the -benchmem numbers the alloc shave is graded on.
func BenchmarkHotEndpoints(b *testing.B) {
	h := New(stubQuerier{})
	cases := []struct {
		name   string
		method string
		target string
		body   string
	}{
		{"query", http.MethodPost, "/v1/query",
			`{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`},
		{"rules", http.MethodGet, "/v1/rules?min_prob=0.1", ""},
		{"explain", http.MethodGet, "/v1/explain", ""},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var req *http.Request
				if tc.body != "" {
					req = httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body))
				} else {
					req = httptest.NewRequest(tc.method, tc.target, nil)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}

// TestWarmPathAllocCeilings pins the per-request allocation budget of the
// three hot read endpoints. The ceilings carry headroom over measured
// steady state (query ~41, rules ~42, explain ~19 on linux/amd64) but
// fail loudly if pooling regresses.
func TestWarmPathAllocCeilings(t *testing.T) {
	h := New(stubQuerier{})
	cases := []struct {
		name    string
		method  string
		target  string
		body    string
		ceiling float64
	}{
		{"query", http.MethodPost, "/v1/query",
			`{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`, 60},
		{"rules", http.MethodGet, "/v1/rules?min_prob=0.1", "", 70},
		{"explain", http.MethodGet, "/v1/explain", "", 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := allocsPerRequest(t, h, tc.method, tc.target, tc.body)
			t.Logf("%s: %.1f allocs/request", tc.name, got)
			if got > tc.ceiling {
				t.Errorf("%s allocates %.1f per request, ceiling %v", tc.name, got, tc.ceiling)
			}
		})
	}

	// The same endpoints with the wire cache armed: after the warmup fills
	// the cache, every request is a hit — decode, one lookup, one cached
	// write. Against the stub (whose answers are nearly free) the saving
	// is modest — measured query 38, rules 32, explain 19 — but the
	// ceilings pin the hit path's own budget: key render, lookup, and
	// cached write must stay alloc-flat even as handlers evolve.
	hc := NewWithOptions(stubQuerier{}, Options{CacheBytes: 1 << 20})
	hitCases := []struct {
		name    string
		method  string
		target  string
		body    string
		ceiling float64
	}{
		{"query_hit", http.MethodPost, "/v1/query",
			`{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`, 45},
		{"rules_hit", http.MethodGet, "/v1/rules?min_prob=0.1", "", 40},
		{"explain_hit", http.MethodGet, "/v1/explain", "", 25},
	}
	for _, tc := range hitCases {
		t.Run(tc.name, func(t *testing.T) {
			got := allocsPerRequest(t, hc, tc.method, tc.target, tc.body)
			t.Logf("%s: %.1f allocs/request", tc.name, got)
			if got > tc.ceiling {
				t.Errorf("%s allocates %.1f per request, ceiling %v", tc.name, got, tc.ceiling)
			}
		})
	}
}
