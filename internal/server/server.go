// Package server is the network layer over the unified query API: an
// http.Handler exposing one compiled knowledge base as JSON endpoints, plus
// graceful-serve helpers for the CLI. The handler holds a single Querier —
// the compiled inference engine is built once at model load and reused for
// every request, so serving adds no per-request compilation or locking; the
// engine itself is safe for any number of concurrent requests.
//
// Endpoints:
//
//	GET  /healthz         liveness probe
//	GET  /readyz          readiness: model loaded and (replicas) caught up
//	GET  /v1/schema       the attribute layout queries are expressed against
//	POST /v1/query        one Query value -> one Result
//	POST /v1/query/batch  {"queries": [...]} -> {"results": [...]}
//	POST /v1/observe      {"rows": [["label", ...], ...]} -> ingest report
//	GET  /v1/rules        extracted IF-THEN rules (min_prob, min_support, min_lift, top)
//	GET  /v1/explain      the stored probability formula, as text
//
// /v1/observe is the streaming-ingest path: when the served model also
// implements query.Ingestor (a discovered model that kept its counts), the
// batch is folded in by an incremental refit and the compiled engine is
// swapped atomically — concurrent queries never block on ingest and always
// see a consistent snapshot. Read-only models (loaded from a saved file)
// answer it with 501.
//
// The request and response bodies use the same encoding as `pka query
// -json` (see internal/query): one wire format across CLI and network.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pka/internal/kb"
	"pka/internal/memo"
	"pka/internal/query"
	"pka/internal/rules"
)

// Options tunes the handler.
type Options struct {
	// MaxBatch caps the number of queries accepted per batch request
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes caps request body size (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxObserveRows caps the rows accepted per observe request
	// (0 = DefaultMaxObserveRows).
	MaxObserveRows int
	// Workers is the server-wide parallelism budget for batch query
	// execution: /v1/query/batch groups queries by evidence set and runs
	// the groups concurrently, and the total extra goroutines across ALL
	// in-flight batch requests never exceeds this budget — each request
	// takes whatever tokens are free (falling back to sequential execution
	// on its own request goroutine when none are), so concurrent batches
	// cannot oversubscribe the scheduler. 0 uses GOMAXPROCS, 1 forces
	// sequential execution for every request. Results are bit-identical at
	// any setting.
	Workers int
	// CacheBytes sizes the wire-tier response cache: exact encoded 200
	// bodies of /v1/query, /v1/rules, and /v1/explain, keyed by canonical
	// request + model version so every observe batch invalidates
	// implicitly. 0 (the default) disables; negative means unbounded. An
	// updatable model that exposes no version surface cannot carry the
	// tier (nothing to invalidate on) and serves uncached regardless.
	CacheBytes int64
}

// DefaultMaxBatch bounds batch requests when Options.MaxBatch is 0.
const DefaultMaxBatch = 1024

// DefaultMaxBodyBytes bounds request bodies when Options.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 20

// DefaultMaxObserveRows bounds observe requests when Options.MaxObserveRows
// is 0.
const DefaultMaxObserveRows = 10000

// New returns the JSON query handler over the model with default options.
func New(q query.Querier) http.Handler { return NewWithOptions(q, Options{}) }

// NewWithOptions returns the JSON query handler over the model.
func NewWithOptions(q query.Querier, opts Options) http.Handler {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxObserveRows <= 0 {
		opts.MaxObserveRows = DefaultMaxObserveRows
	}
	h := &handler{q: q, opts: opts}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	h.workerTokens = make(chan struct{}, budget)
	h.ingest, _ = q.(query.Ingestor)
	h.versioned, _ = q.(query.Versioned)
	h.ready, _ = q.(query.ReadyReporter)
	h.cacheStats, _ = q.(query.CacheStatsReporter)
	h.wire = newWireCache(opts, h.ingest, h.versioned)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.HandleFunc("GET /v1/schema", h.schema)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("POST /v1/query", h.query)
	mux.HandleFunc("POST /v1/query/batch", h.queryBatch)
	mux.HandleFunc("POST /v1/observe", h.observe)
	mux.HandleFunc("GET /v1/rules", h.rules)
	mux.HandleFunc("GET /v1/explain", h.explain)
	return mux
}

type handler struct {
	q query.Querier
	// ingest is the model's streaming-ingest surface; nil when the served
	// model is read-only (loaded from a file, counts not retained).
	ingest query.Ingestor
	// versioned exposes the monotonic model version when the Querier
	// carries one; nil otherwise.
	versioned query.Versioned
	// ready is the Querier's readiness surface (replicas report catch-up
	// lag through it); nil means ready-once-constructed.
	ready query.ReadyReporter
	// cacheStats is the Querier's cache-observability surface (engine and
	// cluster tiers for /v1/stats); nil when it carries none.
	cacheStats query.CacheStatsReporter
	// wire is the L1 response-byte cache (see cache.go); nil when off.
	wire *memo.Cache
	opts Options
	// workerTokens is the server-wide batch-parallelism budget (capacity =
	// Options.Workers, GOMAXPROCS by default): each batch request grabs
	// whatever tokens are free, runs its evidence-group fan-out on that
	// many goroutines, and returns them. Under concurrent load the total
	// batch worker goroutines stay bounded by the budget — late requests
	// simply execute sequentially on their own request goroutine, which is
	// bit-identical, instead of multiplying pools.
	workerTokens chan struct{}
}

// acquireWorkers takes up to max tokens from the free budget without
// blocking; the returned count may be 0 (run sequentially). A lone token
// is never kept: one worker is the sequential path, so reserving a token
// for it would waste budget other batches could spend.
func (h *handler) acquireWorkers(max int) int {
	if max > cap(h.workerTokens) {
		max = cap(h.workerTokens)
	}
	if max < 2 {
		return 0
	}
	n := 0
	for n < max {
		select {
		case h.workerTokens <- struct{}{}:
			n++
			continue
		default:
		}
		break
	}
	if n == 1 {
		<-h.workerTokens
		return 0
	}
	return n
}

func (h *handler) releaseWorkers(n int) {
	for i := 0; i < n; i++ {
		<-h.workerTokens
	}
}

// bufPool recycles response-encoding buffers across requests: every
// response body is rendered into a pooled buffer and written in one call,
// so the serving hot path allocates no fresh encoder scratch per request
// and small responses avoid chunked encoding (one write = Content-Length
// set by net/http).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf bounds the capacity returned to the pool, so one huge batch
// response does not pin its buffer forever.
const maxPooledBuf = 1 << 20

// writeBody JSON-encodes v into a pooled buffer and writes it with the
// given status. Encoding errors surface before any byte or header reaches
// the client, so a failed encode still gets a clean 500.
func writeBody(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			bufPool.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeError emits the shared error body — the same shape a failed batch
// slot has: {"kind": ..., "error": "..."}; kind is empty (and omitted)
// when the request failed before its kind was known.
func writeError(w http.ResponseWriter, status int, kind query.Kind, err error) {
	writeBody(w, status, query.Result{Kind: kind, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeBody(w, http.StatusOK, v)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// readyz is the routing probe, distinct from healthz's liveness: healthz
// says the process is up, readyz says it should receive traffic. A
// standalone model is ready the moment it serves (the model loaded before
// the listener bound); cluster roles report through query.ReadyReporter —
// a replica mid-catch-up or a broken primary answers 503 with its lag or
// fault, so load balancers drain it without killing the process.
func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	rd := query.Readiness{Ready: true, Role: "standalone"}
	if h.versioned != nil {
		rd.Version = h.versioned.Version()
	}
	if h.ready != nil {
		rd = h.ready.Readiness()
	}
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeBody(w, status, rd)
}

// attrJSON mirrors the knowledge-base file's attribute encoding.
type attrJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

func (h *handler) schema(w http.ResponseWriter, r *http.Request) {
	s := h.q.Schema()
	attrs := make([]attrJSON, s.R())
	for i := 0; i < s.R(); i++ {
		a := s.Attr(i)
		attrs[i] = attrJSON{Name: a.Name, Values: append([]string(nil), a.Values...)}
	}
	body := map[string]any{"attributes": attrs}
	if h.versioned != nil {
		// The monotonic model version rides along so clients can gate
		// read-your-writes: poll a replica's schema (or readyz) until its
		// version reaches the one /v1/observe returned.
		body["version"] = h.versioned.Version()
	}
	writeJSON(w, body)
}

// decodeBody decodes one JSON value, rejecting trailing garbage.
func (h *handler) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding request: %w", err)
	}
	return nil
}

// decodeStatus distinguishes "shrink your request" (413, body over the
// MaxBodyBytes cap) from "your JSON is malformed" (400).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// queryPool recycles the single-query request scratch: the decoded Query
// and its assignment slices. A returned Query is deep-cleared first —
// stale elements in the reused arrays must never leak into a later
// request that omits a field JSON-side.
var queryPool = sync.Pool{New: func() any { return new(query.Query) }}

// clearAssignments zeroes the slice through its full capacity and returns
// it empty, keeping the backing array for the next decode.
func clearAssignments(s []kb.Assignment) []kb.Assignment {
	s = s[:cap(s)]
	clear(s)
	return s[:0]
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	qu := queryPool.Get().(*query.Query)
	defer func() {
		*qu = query.Query{
			Target: clearAssignments(qu.Target),
			Given:  clearAssignments(qu.Given),
		}
		queryPool.Put(qu)
	}()
	if err := h.decodeBody(w, r, qu); err != nil {
		writeError(w, decodeStatus(err), "", err)
		return
	}
	if h.wire != nil {
		// The version is read BEFORE answering: the engine swap publishes
		// before the version bump, so the bytes computed below come from an
		// engine at least this fresh — safe to file under this version.
		version := h.version()
		ks := wireKeyPool.Get().(*wireKeyBuf)
		key := appendQueryKey(ks.buf[:0], qu)
		ks.buf = key
		if v, ok := h.wire.Get(key, version); ok {
			wireKeyPool.Put(ks)
			writeCachedJSON(w, v.([]byte))
			return
		}
		res, err := query.Answer(h.q, *qu)
		if err != nil {
			wireKeyPool.Put(ks)
			writeError(w, http.StatusBadRequest, qu.Kind, err)
			return
		}
		h.writeJSONCaching(w, key, version, res)
		wireKeyPool.Put(ks)
		return
	}
	// Answer copies nothing out of the query: every Result field comes from
	// the model, so the scratch can be pooled as soon as we return.
	res, err := query.Answer(h.q, *qu)
	if err != nil {
		writeError(w, http.StatusBadRequest, qu.Kind, err)
		return
	}
	// writeJSON produces query.EncodeResult's exact wire bytes (one JSON
	// object, trailing newline) from the pooled buffer.
	writeJSON(w, res)
}

// batchRequest and batchResponse frame the batch endpoint.
type batchRequest struct {
	Queries []query.Query `json:"queries"`
}

type batchResponse struct {
	Results []query.Result `json:"results"`
}

func (h *handler) queryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), "", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("server: empty batch"))
		return
	}
	if len(req.Queries) > h.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "",
			fmt.Errorf("server: batch of %d exceeds limit %d", len(req.Queries), h.opts.MaxBatch))
		return
	}
	// Spend free server-wide budget on this batch, but only as much as it
	// can use: a batch parallelizes across its distinct evidence groups,
	// so a one-group batch takes nothing and runs sequentially without
	// starving concurrent batches. An exhausted budget likewise means
	// sequential execution (workers = 1), never queueing — the answer
	// bytes are identical either way.
	tokens := h.acquireWorkers(query.CountEvidenceGroups(req.Queries))
	defer h.releaseWorkers(tokens)
	workers := tokens
	if workers < 1 {
		workers = 1
	}
	results, err := query.AnswerBatchWorkers(h.q, req.Queries, workers)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "", err)
		return
	}
	writeJSON(w, batchResponse{Results: results})
}

// observeRequest frames the streaming-ingest endpoint: one value label per
// schema attribute per row, in schema order.
type observeRequest struct {
	Rows [][]string `json:"rows"`
}

func (h *handler) observe(w http.ResponseWriter, r *http.Request) {
	if h.ingest == nil {
		writeError(w, http.StatusNotImplemented, "",
			fmt.Errorf("server: this model is read-only (loaded from a saved file); serve a discovered model with its data to enable ingest"))
		return
	}
	var req observeRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), "", err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("server: empty observe batch"))
		return
	}
	if len(req.Rows) > h.opts.MaxObserveRows {
		writeError(w, http.StatusBadRequest, "",
			fmt.Errorf("server: observe batch of %d exceeds limit %d", len(req.Rows), h.opts.MaxObserveRows))
		return
	}
	rep, err := h.ingest.ObserveLabeled(req.Rows)
	if err != nil {
		// Bad rows are the client's fault; anything else (a refit or
		// rediscovery failing on valid input) is server state.
		status := http.StatusInternalServerError
		if errors.Is(err, query.ErrRejectedRows) {
			status = http.StatusBadRequest
		}
		writeError(w, status, "", err)
		return
	}
	writeJSON(w, rep)
}

// ruleJSON is one extracted rule on the wire.
type ruleJSON struct {
	If          []kb.Assignment `json:"if"`
	Then        kb.Assignment   `json:"then"`
	Probability float64         `json:"probability"`
	Support     float64         `json:"support"`
	Lift        float64         `json:"lift"`
	Text        string          `json:"text"`
}

// floatParam parses an optional float query parameter. ParseFloat happily
// accepts "NaN" and "Inf", which would turn every downstream threshold
// comparison into silent nonsense (NaN compares false with everything), so
// non-finite values are rejected here with the same 400 a parse failure
// gets.
func floatParam(r *http.Request, name string) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("server: bad %s %q", name, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("server: %s must be finite, got %q", name, s)
	}
	return v, nil
}

func (h *handler) rules(w http.ResponseWriter, r *http.Request) {
	var opts rules.Options
	var err error
	if opts.MinProbability, err = floatParam(r, "min_prob"); err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}
	if opts.MinSupport, err = floatParam(r, "min_support"); err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}
	if opts.MinLiftDistance, err = floatParam(r, "min_lift"); err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}
	if s := r.URL.Query().Get("top"); s != "" {
		if opts.MaxRules, err = strconv.Atoi(s); err != nil {
			writeError(w, http.StatusBadRequest, "", fmt.Errorf("server: bad top %q", s))
			return
		}
	}
	if h.wire != nil {
		version := h.version()
		ks := wireKeyPool.Get().(*wireKeyBuf)
		key := appendRulesKey(ks.buf[:0], opts)
		ks.buf = key
		if v, ok := h.wire.Get(key, version); ok {
			wireKeyPool.Put(ks)
			writeCachedJSON(w, v.([]byte))
			return
		}
		h.rulesUncached(w, opts, key, version)
		wireKeyPool.Put(ks)
		return
	}
	h.rulesUncached(w, opts, nil, 0)
}

// rulesUncached extracts, encodes, and (when key is non-nil) caches the
// rules response — the shared tail of the hit-missed and cache-off paths.
func (h *handler) rulesUncached(w http.ResponseWriter, opts rules.Options, key []byte, version int64) {
	rs, err := h.q.Rules(opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}
	sp := ruleScratch.Get().(*[]ruleJSON)
	out := (*sp)[:0]
	for _, rule := range rs {
		out = append(out, ruleJSON{
			If:          rule.If,
			Then:        rule.Then,
			Probability: rule.Probability,
			Support:     rule.Support,
			Lift:        rule.Lift,
			Text:        rule.String(),
		})
	}
	if key != nil {
		h.writeJSONCaching(w, key, version, rulesResponse{Rules: out})
	} else {
		writeJSON(w, rulesResponse{Rules: out})
	}
	// Drop the rule references before pooling so the scratch does not pin
	// the extracted rules (and their assignment slices) across requests.
	clear(out)
	if cap(out) <= maxPooledRules {
		*sp = out[:0]
		ruleScratch.Put(sp)
	}
}

// rulesResponse frames /v1/rules with a concrete type: encoding it skips
// the per-request map and interface boxing of the previous wire shape
// while emitting the same JSON.
type rulesResponse struct {
	Rules []ruleJSON `json:"rules"`
}

// ruleScratch recycles the rules handler's wire-struct slice; capacities
// over maxPooledRules entries are dropped instead of pinned.
var ruleScratch = sync.Pool{New: func() any { return new([]ruleJSON) }}

const maxPooledRules = 4096

func (h *handler) explain(w http.ResponseWriter, r *http.Request) {
	// One counted write: the client gets Content-Length instead of chunked
	// encoding, and WriteString skips fmt's []byte conversion copy.
	var s string
	if h.wire != nil {
		// Explain re-renders the whole constraint list per call; the wire
		// tier keeps the rendered text until the next version bump.
		version := h.version()
		if v, ok := h.wire.Get(explainKey, version); ok {
			s = v.(string)
		} else {
			s = h.q.Explain()
			h.wire.Put(explainKey, version, s, int64(len(s)))
		}
	} else {
		s = h.q.Explain()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(s)))
	_, _ = io.WriteString(w, s)
}

// shutdownGrace bounds how long Serve waits for in-flight requests after
// its context is canceled.
const shutdownGrace = 5 * time.Second

// Serve runs the handler on the listener until ctx is canceled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get shutdownGrace to finish. A clean shutdown returns nil.
func Serve(ctx context.Context, l net.Listener, h http.Handler) error {
	// Full read/write/idle timeouts: queries answer in microseconds, so a
	// connection holding a goroutine for longer than this is a slow or
	// stalled client, not work.
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// ListenAndServe binds addr and calls Serve. ready, if non-nil, receives
// the bound address once listening — for callers that bind port 0.
func ListenAndServe(ctx context.Context, addr string, h http.Handler, ready func(net.Addr)) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(l.Addr())
	}
	return Serve(ctx, l, h)
}
