package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/kb"
	"pka/internal/query"
	"pka/internal/rules"
)

// stubQuerier serves canned answers so handler behaviour is tested in
// isolation from any model; end-to-end serving over a real discovered
// model is covered by cmd/pka's serve test.
type stubQuerier struct{}

func (stubQuerier) Schema() *dataset.Schema {
	return dataset.MustSchema([]dataset.Attribute{
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker"}},
	})
}

func (stubQuerier) Probability(assigns ...kb.Assignment) (float64, error) { return 0.25, nil }

func (stubQuerier) Conditional(target, given []kb.Assignment) (float64, error) {
	if len(target) > 0 && target[0].Value == "boom" {
		return 0, fmt.Errorf("kb: no such value")
	}
	return 0.5, nil
}

func (stubQuerier) Distribution(attr string, given ...kb.Assignment) (map[string]float64, error) {
	return map[string]float64{"Yes": 0.2, "No": 0.8}, nil
}

func (stubQuerier) MostLikely(attr string, given ...kb.Assignment) (string, float64, error) {
	return "No", 0.8, nil
}

func (stubQuerier) Lift(target kb.Assignment, given ...kb.Assignment) (float64, error) {
	return 1.5, nil
}

func (stubQuerier) MostProbableExplanation(given ...kb.Assignment) (kb.Explanation, error) {
	return kb.Explanation{
		Assignments: []kb.Assignment{{Attr: "CANCER", Value: "No"}, {Attr: "SMOKING", Value: "Non smoker"}},
		Probability: 0.4,
	}, nil
}

func (stubQuerier) Rules(opts rules.Options) ([]rules.Rule, error) {
	if opts.MinProbability > 0.9 {
		return nil, nil
	}
	return []rules.Rule{{
		If:          []kb.Assignment{{Attr: "SMOKING", Value: "Smoker"}},
		Then:        kb.Assignment{Attr: "CANCER", Value: "Yes"},
		Probability: 0.24, Support: 0.09, Lift: 1.9,
	}}, nil
}

func (stubQuerier) Explain() string { return "p(cell) = a0 · Π a_constraint\n" }

func (stubQuerier) LogLoss(counts contingency.Counts) (float64, error) { return 1.23, nil }

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWithOptions(stubQuerier{}, Options{MaxBatch: 4}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz = %d %q", status, body)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/v1/schema")
	if status != http.StatusOK {
		t.Fatalf("schema = %d %q", status, body)
	}
	var doc struct {
		Attributes []struct {
			Name   string   `json:"name"`
			Values []string `json:"values"`
		} `json:"attributes"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Attributes) != 2 || doc.Attributes[0].Name != "CANCER" || len(doc.Attributes[0].Values) != 2 {
		t.Errorf("schema body = %q", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := post(t, srv.URL+"/v1/query",
		`{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`)
	if status != http.StatusOK {
		t.Fatalf("query = %d %q", status, body)
	}
	var res query.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.KindConditional || res.Probability != 0.5 || res.Error != "" {
		t.Errorf("result = %+v", res)
	}

	for name, req := range map[string]string{
		"malformed":      `{"kind":`,
		"unknown field":  `{"kind":"mpe","bogus":1}`,
		"invalid kind":   `{"kind":"bogus"}`,
		"model rejects":  `{"kind":"conditional","target":[{"attr":"CANCER","value":"boom"}]}`,
		"missing target": `{"kind":"probability"}`,
	} {
		status, body := post(t, srv.URL+"/v1/query", req)
		if status != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
			t.Errorf("%s: = %d %q, want 400 with error body", name, status, body)
		}
	}

	if resp, err := http.Get(srv.URL + "/v1/query"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
}

func TestQueryBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := post(t, srv.URL+"/v1/query/batch",
		`{"queries":[
			{"kind":"probability","target":[{"attr":"CANCER","value":"Yes"}]},
			{"kind":"conditional","target":[{"attr":"CANCER","value":"boom"}]},
			{"kind":"mpe"}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("batch = %d %q", status, body)
	}
	var res batchResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("batch results = %+v", res)
	}
	if res.Results[0].Probability != 0.25 || res.Results[0].Error != "" {
		t.Errorf("result 0 = %+v", res.Results[0])
	}
	if res.Results[1].Error == "" {
		t.Errorf("failing query did not surface per-slot: %+v", res.Results[1])
	}
	if res.Results[2].Probability != 0.4 || len(res.Results[2].Assignments) != 2 {
		t.Errorf("result 2 = %+v", res.Results[2])
	}

	if status, _ := post(t, srv.URL+"/v1/query/batch", `{"queries":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", status)
	}
	over := `{"queries":[` + strings.Repeat(`{"kind":"mpe"},`, 4) + `{"kind":"mpe"}]}`
	if status, body := post(t, srv.URL+"/v1/query/batch", over); status != http.StatusBadRequest ||
		!strings.Contains(body, "exceeds limit") {
		t.Errorf("over-limit batch = %d %q, want 400", status, body)
	}
}

// TestBodyTooLarge: a body over the byte cap is 413, distinguishable from
// malformed JSON's 400.
func TestBodyTooLarge(t *testing.T) {
	srv := httptest.NewServer(NewWithOptions(stubQuerier{}, Options{MaxBodyBytes: 64}))
	defer srv.Close()
	body := `{"kind":"mpe","given":[` + strings.Repeat(`{"attr":"SMOKING","value":"Smoker"},`, 10) + `]}`
	if status, resp := post(t, srv.URL+"/v1/query", body); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d %q, want 413", status, resp)
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/v1/rules?min_lift=0.5&top=3")
	if status != http.StatusOK {
		t.Fatalf("rules = %d %q", status, body)
	}
	var doc struct {
		Rules []ruleJSON `json:"rules"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 1 || doc.Rules[0].Then.Attr != "CANCER" || !strings.Contains(doc.Rules[0].Text, "IF ") {
		t.Errorf("rules body = %q", body)
	}
	if status, _ := get(t, srv.URL+"/v1/rules?min_prob=0.95"); status != http.StatusOK {
		t.Errorf("empty rules = %d, want 200", status)
	}
	if status, _ := get(t, srv.URL+"/v1/rules?min_prob=nope"); status != http.StatusBadRequest {
		t.Errorf("bad param = %d, want 400", status)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/v1/explain")
	if status != http.StatusOK || !strings.Contains(body, "a0") {
		t.Errorf("explain = %d %q", status, body)
	}
}

// TestServeGracefulShutdown: Serve answers until its context is canceled,
// then returns nil after draining.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var addr net.Addr
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", New(stubQuerier{}), func(a net.Addr) {
			addr = a
			close(ready)
		})
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// stubIngestor is stubQuerier plus a streaming-ingest surface that records
// what it was fed.
type stubIngestor struct {
	stubQuerier
	rows [][]string
	err  error
}

func (s *stubIngestor) ObserveLabeled(rows [][]string) (query.IngestReport, error) {
	if s.err != nil {
		return query.IngestReport{}, s.err
	}
	s.rows = append(s.rows, rows...)
	return query.IngestReport{
		Rows: len(rows), Retargeted: 2, Refit: true, Sweeps: 3, TotalSamples: 100,
	}, nil
}

func TestObserveEndpoint(t *testing.T) {
	ing := &stubIngestor{}
	srv := httptest.NewServer(New(ing))
	defer srv.Close()
	status, body := post(t, srv.URL+"/v1/observe",
		`{"rows":[["Yes","Smoker"],["No","Non smoker"]]}`)
	if status != http.StatusOK {
		t.Fatalf("observe = %d %q", status, body)
	}
	var rep query.IngestReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 2 || !rep.Refit || rep.TotalSamples != 100 {
		t.Errorf("observe report = %+v", rep)
	}
	if len(ing.rows) != 2 || ing.rows[0][0] != "Yes" {
		t.Errorf("ingestor got rows %v", ing.rows)
	}
}

// TestObserveReadOnlyModel: a Querier without the ingest surface answers
// the streaming endpoint with 501, not a panic and not a silent drop.
func TestObserveReadOnlyModel(t *testing.T) {
	srv := testServer(t)
	status, body := post(t, srv.URL+"/v1/observe", `{"rows":[["Yes","Smoker"]]}`)
	if status != http.StatusNotImplemented {
		t.Errorf("observe on read-only model = %d %q, want 501", status, body)
	}
	if !strings.Contains(body, "read-only") {
		t.Errorf("501 body should say why: %q", body)
	}
}

func TestObserveBadRequests(t *testing.T) {
	ing := &stubIngestor{}
	srv := httptest.NewServer(NewWithOptions(ing, Options{MaxObserveRows: 2}))
	defer srv.Close()
	if status, _ := post(t, srv.URL+"/v1/observe", `{"rows":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", status)
	}
	if status, _ := post(t, srv.URL+"/v1/observe", `{"rows":[["a"],["b"],["c"]]}`); status != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", status)
	}
	if status, _ := post(t, srv.URL+"/v1/observe", `{"rows":`); status != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", status)
	}
	ing.err = fmt.Errorf("%w: pka: attribute \"CANCER\" has no value \"Maybe\"", query.ErrRejectedRows)
	if status, body := post(t, srv.URL+"/v1/observe", `{"rows":[["Maybe","Smoker"]]}`); status != http.StatusBadRequest || !strings.Contains(body, "Maybe") {
		t.Errorf("ingest error = %d %q, want 400 with message", status, body)
	}
	// A server-side failure on valid rows is a 500, not the client's fault.
	ing.err = fmt.Errorf("core: initial fit did not converge")
	if status, _ := post(t, srv.URL+"/v1/observe", `{"rows":[["Yes","Smoker"]]}`); status != http.StatusInternalServerError {
		t.Errorf("internal ingest failure = %d, want 500", status)
	}
}

// TestRulesRejectsNonFiniteParams is the NaN/Inf regression: ParseFloat
// accepts "NaN" and "Inf", and a NaN threshold filters with always-false
// comparisons instead of erroring — the server must 400 them.
func TestRulesRejectsNonFiniteParams(t *testing.T) {
	srv := testServer(t)
	for _, q := range []string{
		"min_prob=NaN", "min_prob=Inf", "min_prob=-Inf",
		"min_support=nan", "min_lift=+Inf",
	} {
		if status, body := get(t, srv.URL+"/v1/rules?"+q); status != http.StatusBadRequest {
			t.Errorf("rules?%s = %d %q, want 400", q, status, body)
		}
	}
}

// BenchmarkHandlerQuery measures the handler's per-request overhead —
// decode, answer, pooled-buffer encode — over the stub model, so the
// serving-layer allocations show up undiluted by engine work.
func BenchmarkHandlerQuery(b *testing.B) {
	h := New(stubQuerier{})
	body := []byte(`{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// TestBatchWorkerBudget pins the server-wide parallelism budget: tokens
// are returned after every request (so the budget never leaks under
// sequential load), concurrent batches all answer correctly even when the
// budget is exhausted (they fall back to sequential execution), and a
// Workers=1 handler still serves batches.
func TestBatchWorkerBudget(t *testing.T) {
	for _, workers := range []int{0, 1, 2} {
		h := NewWithOptions(stubQuerier{}, Options{Workers: workers}).(interface {
			http.Handler
		})
		body := []byte(`{"queries":[{"kind":"conditional","target":[{"attr":"CANCER","value":"Yes"}],"given":[{"attr":"SMOKING","value":"Smoker"}]},{"kind":"probability","target":[{"attr":"CANCER","value":"No"}]}]}`)
		do := func() error {
			req := httptest.NewRequest(http.MethodPost, "/v1/query/batch", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
			var resp struct {
				Results []query.Result `json:"results"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				return err
			}
			if len(resp.Results) != 2 || resp.Results[0].Error != "" {
				return fmt.Errorf("unexpected results %+v", resp.Results)
			}
			return nil
		}
		// Concurrent burst: more requests than budget tokens.
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for g := range errs {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				errs[g] = do()
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d: concurrent request %d: %v", workers, g, err)
			}
		}
		// Sequential follow-ups: a leaked token budget would not break
		// these (they fall back to serial), but run them to pin release.
		for i := 0; i < 4; i++ {
			if err := do(); err != nil {
				t.Fatalf("workers=%d: sequential request %d: %v", workers, i, err)
			}
		}
	}
}
