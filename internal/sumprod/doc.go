// Package sumprod implements Appendix B of the memo: evaluation of the
// "sum of products" expressions that arise when the maximum-entropy product
// formula (Eq. 12) is summed over attribute values — the normalizing constant
// 1/a0 (Eq. 89) and predicted marginal probabilities (Eq. 109).
//
// Three layers are provided:
//
//   - Matrix, with the memo's term-by-term multiplication operator X (Eq. 90)
//     and index summation Σ (Eq. 91) — a faithful, teachable rendition of the
//     appendix's notation, used by the repro binary and golden tests.
//
//   - Evaluator, the general R-attribute recursion S_n = Σ_{n+1} (Q_{n+1} X
//     S_{n+1}) (Eq. 105): variables are eliminated from the highest position
//     downward, each level folding in the product Q of every term whose
//     highest variable sits at that level. Peak memory is the joint space of
//     the first R-1 attributes — one cardinality smaller than materializing
//     the full joint. An Evaluator is cheap to build and validate per use;
//     it is the reference implementation the compiled engine is
//     equivalence-tested against.
//
//   - Compiled, the compile-once/query-many engine behind production
//     serving and discovery scans. Compile snapshots the coefficients,
//     fixes the elimination plan, and pools scratch buffers, making every
//     query allocation-free and safe for unlimited concurrent callers. On
//     top of the per-query primitives (Sum, SumFixed, SumPinned) it adds
//     batch marginals: Marginal/MarginalFixed keep a family's variables
//     un-eliminated through one sweep and return every cell of the marginal
//     at once, instead of one full recursion per cell.
//
// Compiled is bit-identical to Evaluator by construction — the fold visits
// levels, cells, and factors in the same order — so switching between the
// per-cell and batch paths never changes a result, only its cost.
package sumprod
