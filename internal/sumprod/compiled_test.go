package sumprod

import (
	"math/rand"
	"sync"
	"testing"
)

// randomEngine builds a random term structure over the cards and returns
// both evaluation paths for comparison.
func randomEngine(t *testing.T, rng *rand.Rand, cards []int) (*Evaluator, *Compiled) {
	t.Helper()
	var terms []Term
	// First-order terms over every attribute.
	for v, card := range cards {
		coeffs := make([]float64, card)
		for i := range coeffs {
			coeffs[i] = 0.1 + rng.Float64()
		}
		terms = append(terms, Term{Vars: []int{v}, Coeffs: coeffs})
	}
	// A few random higher-order terms.
	for k := 0; k < 3; k++ {
		var vars []int
		for v := range cards {
			if rng.Intn(2) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) < 2 {
			continue
		}
		size := 1
		for _, v := range vars {
			size *= cards[v]
		}
		coeffs := make([]float64, size)
		for i := range coeffs {
			coeffs[i] = 0.1 + rng.Float64()
		}
		terms = append(terms, Term{Vars: vars, Coeffs: coeffs})
	}
	ev, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Compile(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	return ev, ce
}

// TestCompiledSumFixedBitIdentical: the compiled fold must reproduce the
// per-call Evaluator recursion bit for bit across random pin patterns.
func TestCompiledSumFixedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{2}, {3, 2}, {2, 3, 2}, {3, 2, 4, 2}, {2, 2, 2, 3, 2}}
	for _, cards := range shapes {
		ev, ce := randomEngine(t, rng, cards)
		if got, want := ce.Sum(), ev.Sum(); got != want {
			t.Errorf("cards %v: Sum = %x, evaluator %x", cards, got, want)
		}
		for trial := 0; trial < 50; trial++ {
			fixed := make([]int, len(cards))
			vars := make([]int, 0, len(cards))
			values := make([]int, 0, len(cards))
			for v, card := range cards {
				if rng.Intn(2) == 0 {
					fixed[v] = rng.Intn(card)
					vars = append(vars, v)
					values = append(values, fixed[v])
				} else {
					fixed[v] = -1
				}
			}
			want := ev.SumFixed(fixed)
			if got := ce.SumFixed(fixed); got != want {
				t.Fatalf("cards %v fixed %v: SumFixed = %x, evaluator %x", cards, fixed, got, want)
			}
			if got := ce.SumPinned(vars, values); got != want {
				t.Fatalf("cards %v pins %v=%v: SumPinned = %x, evaluator %x", cards, vars, values, got, want)
			}
		}
	}
}

// TestCompiledMarginalBitIdentical: every cell of a batch marginal must be
// bit-identical to the SumFixed call that pins the family to that cell —
// the equivalence that keeps discovery results unchanged.
func TestCompiledMarginalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][]int{{3, 2}, {2, 3, 2}, {3, 2, 4, 2}, {2, 2, 3, 2, 2}}
	for _, cards := range shapes {
		ev, ce := randomEngine(t, rng, cards)
		// Every non-empty subset of attributes as the kept family.
		for mask := 1; mask < 1<<len(cards); mask++ {
			var vars []int
			for v := range cards {
				if mask&(1<<v) != 0 {
					vars = append(vars, v)
				}
			}
			marg, err := ce.Marginal(vars)
			if err != nil {
				t.Fatal(err)
			}
			// Walk the family's cells in row-major order, first var slowest.
			values := make([]int, len(vars))
			fixed := make([]int, len(cards))
			for idx := 0; ; idx++ {
				for i := range fixed {
					fixed[i] = -1
				}
				for i, v := range vars {
					fixed[v] = values[i]
				}
				want := ev.SumFixed(fixed)
				if marg[idx] != want {
					t.Fatalf("cards %v family %v cell %v: batch %x, per-cell %x",
						cards, vars, values, marg[idx], want)
				}
				i := len(vars) - 1
				for i >= 0 {
					values[i]++
					if values[i] < cards[vars[i]] {
						break
					}
					values[i] = 0
					i--
				}
				if i < 0 {
					break
				}
			}
		}
	}
}

// TestCompiledMarginalFixedBitIdentical checks the conditional-slice form:
// keep one variable, clamp another, sum the rest.
func TestCompiledMarginalFixedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cards := []int{3, 2, 4, 2}
	ev, ce := randomEngine(t, rng, cards)
	for target := 0; target < len(cards); target++ {
		for pin := 0; pin < len(cards); pin++ {
			if pin == target {
				continue
			}
			for pv := 0; pv < cards[pin]; pv++ {
				fixed := []int{-1, -1, -1, -1}
				fixed[pin] = pv
				marg, err := ce.MarginalFixed([]int{target}, fixed)
				if err != nil {
					t.Fatal(err)
				}
				for tv := 0; tv < cards[target]; tv++ {
					fixed[target] = tv
					want := ev.SumFixed(fixed)
					if marg[tv] != want {
						t.Fatalf("target %d=%d pin %d=%d: batch %x, per-cell %x",
							target, tv, pin, pv, marg[tv], want)
					}
					fixed[target] = -1
				}
			}
		}
	}
}

func TestCompiledFullJointAndCellValue(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cards := []int{3, 2, 2}
	ev, ce := randomEngine(t, rng, cards)
	want := ev.FullJoint()
	got := ce.FullJoint()
	if len(got) != len(want) {
		t.Fatalf("FullJoint size %d, want %d", len(got), len(want))
	}
	cell := make([]int, len(cards))
	for off := range want {
		if got[off] != want[off] {
			t.Errorf("FullJoint[%d] = %x, want %x", off, got[off], want[off])
		}
		rem := off
		for v := len(cards) - 1; v >= 0; v-- {
			cell[v] = rem % cards[v]
			rem /= cards[v]
		}
		if cv := ce.CellValue(1, cell); cv != want[off] {
			t.Errorf("CellValue(%v) = %x, want %x", cell, cv, want[off])
		}
	}
}

func TestCompiledValidation(t *testing.T) {
	if _, err := Compile(nil, nil); err == nil {
		t.Error("empty cards accepted")
	}
	if _, err := Compile([]int{2, 0}, nil); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := Compile([]int{2}, []Term{{Vars: []int{3}, Coeffs: []float64{1}}}); err == nil {
		t.Error("out-of-range term accepted")
	}
	ce, err := Compile([]int{2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Marginal(nil); err == nil {
		t.Error("empty marginal family accepted")
	}
	if _, err := ce.Marginal([]int{1, 0}); err == nil {
		t.Error("unsorted marginal family accepted")
	}
	if _, err := ce.Marginal([]int{0, 0}); err == nil {
		t.Error("repeated marginal variable accepted")
	}
	if _, err := ce.Marginal([]int{2}); err == nil {
		t.Error("out-of-range marginal variable accepted")
	}
	if _, err := ce.MarginalFixed([]int{0}, []int{1, -1}); err == nil {
		t.Error("kept+clamped variable accepted")
	}
}

// TestCompiledSnapshotIsolation: mutating the source coefficient slices
// after Compile must not change compiled results.
func TestCompiledSnapshotIsolation(t *testing.T) {
	coeffs := []float64{1, 2, 3}
	terms := []Term{{Vars: []int{0}, Coeffs: coeffs}}
	ce, err := Compile([]int{3}, terms)
	if err != nil {
		t.Fatal(err)
	}
	before := ce.Sum()
	coeffs[0] = 100
	if after := ce.Sum(); after != before {
		t.Errorf("compiled sum changed after source mutation: %g -> %g", before, after)
	}
}

// TestCompiledConcurrent hammers one engine from many goroutines; run with
// -race. Every call must return the same bits.
func TestCompiledConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cards := []int{3, 2, 4, 2}
	_, ce := randomEngine(t, rng, cards)
	wantSum := ce.Sum()
	wantMarg, err := ce.Marginal([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 3 {
				case 0:
					if got := ce.Sum(); got != wantSum {
						errs <- "Sum mismatch"
						return
					}
				case 1:
					if got := ce.SumPinned([]int{1}, []int{i % 2}); got <= 0 {
						errs <- "SumPinned not positive"
						return
					}
				default:
					marg, err := ce.Marginal([]int{0, 2})
					if err != nil {
						errs <- err.Error()
						return
					}
					for j := range marg {
						if marg[j] != wantMarg[j] {
							errs <- "Marginal mismatch"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
