package sumprod

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// memoFirstOrderTerms builds the first-order a-values of the memo's example
// (Eq. 60): a^A = (.38,.33,.29), a^B = (.13,.87), a^C = (.52,.48) over a
// 3×2×2 space.
func memoFirstOrderTerms() ([]int, []Term) {
	cards := []int{3, 2, 2}
	terms := []Term{
		{Vars: []int{0}, Coeffs: []float64{0.38, 0.33, 0.29}},
		{Vars: []int{1}, Coeffs: []float64{0.13, 0.87}},
		{Vars: []int{2}, Coeffs: []float64{0.52, 0.48}},
	}
	return cards, terms
}

func TestTermValidate(t *testing.T) {
	cards := []int{3, 2, 2}
	bad := []Term{
		{Vars: nil, Coeffs: []float64{1}},
		{Vars: []int{1, 0}, Coeffs: []float64{1, 1, 1, 1, 1, 1}},
		{Vars: []int{0, 0}, Coeffs: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{Vars: []int{3}, Coeffs: []float64{1}},
		{Vars: []int{0}, Coeffs: []float64{1, 1}}, // wrong size
	}
	for i, term := range bad {
		if err := term.Validate(cards); err == nil {
			t.Errorf("bad term %d accepted", i)
		}
	}
	good := Term{Vars: []int{0, 2}, Coeffs: make([]float64, 6)}
	if err := good.Validate(cards); err != nil {
		t.Errorf("good term rejected: %v", err)
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, nil); err == nil {
		t.Error("empty cards accepted")
	}
	if _, err := NewEvaluator([]int{0}, nil); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := NewEvaluator([]int{2}, []Term{{Vars: []int{5}, Coeffs: []float64{1}}}); err == nil {
		t.Error("invalid term accepted")
	}
}

func TestSumMatchesMemoNormalization(t *testing.T) {
	// With first-order probabilities as a-values, Σ = (Σa^A)(Σa^B)(Σa^C) = 1.
	cards, terms := memoFirstOrderTerms()
	e, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.38 + 0.33 + 0.29) * (0.13 + 0.87) * (0.52 + 0.48)
	if got := e.Sum(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestSumAgainstFullJoint(t *testing.T) {
	cards := []int{3, 2, 2}
	terms := []Term{
		{Vars: []int{0}, Coeffs: []float64{0.5, 1.5, 2}},
		{Vars: []int{1}, Coeffs: []float64{0.9, 1.1}},
		{Vars: []int{0, 2}, Coeffs: []float64{1, 2, 3, 4, 5, 6}},
		{Vars: []int{1, 2}, Coeffs: []float64{0.25, 4, 1, 1}},
		{Vars: []int{0, 1, 2}, Coeffs: []float64{1, 1, 2, 1, 1, 1, 1, 3, 1, 1, 1, 1}},
	}
	e, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	brute := 0.0
	for _, v := range e.FullJoint() {
		brute += v
	}
	if got := e.Sum(); !almostEqual(got, brute, 1e-9*math.Abs(brute)+1e-12) {
		t.Errorf("recursive Sum = %g, brute force = %g", got, brute)
	}
}

func TestSumFixedAgainstBruteForce(t *testing.T) {
	cards := []int{3, 2, 2}
	terms := []Term{
		{Vars: []int{0}, Coeffs: []float64{0.5, 1.5, 2}},
		{Vars: []int{0, 2}, Coeffs: []float64{1, 2, 3, 4, 5, 6}},
		{Vars: []int{1, 2}, Coeffs: []float64{0.25, 4, 1, 1}},
	}
	e, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	joint := e.FullJoint()
	// Clamp attribute 0 = 1 and attribute 2 = 0 (cells i=1, k=0, any j).
	brute := 0.0
	for j := 0; j < 2; j++ {
		off := 1*(2*2) + j*2 + 0
		brute += joint[off]
	}
	got := e.SumFixed([]int{1, -1, 0})
	if !almostEqual(got, brute, 1e-12) {
		t.Errorf("SumFixed = %g, brute = %g", got, brute)
	}
	// fixed shorter than cards: tail free.
	got = e.SumFixed([]int{1})
	brute = 0.0
	for off := 4; off < 8; off++ {
		brute += joint[off]
	}
	if !almostEqual(got, brute, 1e-12) {
		t.Errorf("SumFixed(short) = %g, brute = %g", got, brute)
	}
	// Nothing fixed equals Sum.
	if !almostEqual(e.SumFixed(nil), e.Sum(), 1e-12) {
		t.Error("SumFixed(nil) != Sum()")
	}
}

func TestSumFixedAllClampedIsSingleCell(t *testing.T) {
	cards, terms := memoFirstOrderTerms()
	e, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	got := e.SumFixed([]int{2, 1, 0})
	want := 0.29 * 0.87 * 0.52
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("fully clamped = %g, want %g", got, want)
	}
}

func TestRecursiveMatchesBruteProperty(t *testing.T) {
	// For random coefficient sets over a 2×3×2 space with random term
	// structures, the recursion equals brute-force summation.
	f := func(c1, c2, c3 [6]uint8, pick uint8) bool {
		cards := []int{2, 3, 2}
		mk := func(raw []uint8, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(raw[i%len(raw)])/32 + 0.05
			}
			return out
		}
		var terms []Term
		if pick&1 != 0 {
			terms = append(terms, Term{Vars: []int{0}, Coeffs: mk(c1[:], 2)})
		}
		if pick&2 != 0 {
			terms = append(terms, Term{Vars: []int{1}, Coeffs: mk(c2[:], 3)})
		}
		if pick&4 != 0 {
			terms = append(terms, Term{Vars: []int{0, 1}, Coeffs: mk(c1[:], 6)})
		}
		if pick&8 != 0 {
			terms = append(terms, Term{Vars: []int{1, 2}, Coeffs: mk(c3[:], 6)})
		}
		if pick&16 != 0 {
			terms = append(terms, Term{Vars: []int{0, 2}, Coeffs: mk(c2[:], 4)})
		}
		e, err := NewEvaluator(cards, terms)
		if err != nil {
			return false
		}
		brute := 0.0
		for _, v := range e.FullJoint() {
			brute += v
		}
		return almostEqual(e.Sum(), brute, 1e-9*brute+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoTermsSumsCellCount(t *testing.T) {
	// With no terms every cell contributes 1.
	e, err := NewEvaluator([]int{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Sum(); !almostEqual(got, 12, 1e-12) {
		t.Errorf("empty-term Sum = %g, want 12", got)
	}
}

func TestMatrixOperators(t *testing.T) {
	// The memo's Eq. 90: [1 3; 2 4] X [a b; c d] = [a 3b; 2c 4d].
	a, err := FromRows([][]float64{{1, 3}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRows([][]float64{{5, 6}, {7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	x, err := TermByTerm(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{5, 18}, {14, 32}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if x.At(i, j) != want[i][j] {
				t.Errorf("X(%d,%d) = %g, want %g", i, j, x.At(i, j), want[i][j])
			}
		}
	}
	// Eq. 91: Σ_j of a 2x2 gives column sums per row.
	s := SumCols(a)
	if s.Rows != 2 || s.Cols != 1 || s.At(0, 0) != 4 || s.At(1, 0) != 6 {
		t.Errorf("SumCols = %+v", s)
	}
	if SumAll(a) != 10 {
		t.Errorf("SumAll = %g", SumAll(a))
	}
}

func TestMatrixErrors(t *testing.T) {
	if _, err := NewMatrix(0, 2); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty FromRows accepted")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{1}, {2}})
	if _, err := TermByTerm(a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestAppendixBChainEvaluation(t *testing.T) {
	// Reproduce Eq. 89's grouped evaluation with the Matrix layer for the
	// memo's 3×2×2 example using pairwise AB and BC terms, and check it
	// against the Evaluator.
	cards := []int{3, 2, 2}
	aA := []float64{0.38, 0.33, 0.29}
	aB := []float64{0.13, 0.87}
	aC := []float64{0.52, 0.48}
	aAB := []float64{1.1, 0.9, 1, 1, 0.8, 1.2} // 3×2
	aBC := []float64{1.05, 0.95, 1, 1}         // 2×2
	terms := []Term{
		{Vars: []int{0}, Coeffs: aA},
		{Vars: []int{1}, Coeffs: aB},
		{Vars: []int{2}, Coeffs: aC},
		{Vars: []int{0, 1}, Coeffs: aAB},
		{Vars: []int{1, 2}, Coeffs: aBC},
	}
	e, err := NewEvaluator(cards, terms)
	if err != nil {
		t.Fatal(err)
	}
	// Matrix-layer chain: Σ_i a_i Σ_j a_j a_ij Σ_k a_k a_jk.
	// Inner: for each j, inner_j = Σ_k a_k * a_jk.
	inner := make([]float64, 2)
	for j := 0; j < 2; j++ {
		for k := 0; k < 2; k++ {
			inner[j] += aC[k] * aBC[j*2+k]
		}
	}
	total := 0.0
	for i := 0; i < 3; i++ {
		mid := 0.0
		for j := 0; j < 2; j++ {
			mid += aB[j] * aAB[i*2+j] * inner[j]
		}
		total += aA[i] * mid
	}
	if got := e.Sum(); !almostEqual(got, total, 1e-12) {
		t.Errorf("Evaluator Sum = %g, hand chain = %g", got, total)
	}
}
