package sumprod

import (
	"fmt"
	"sort"
)

// Term is one multiplicative factor family of the product formula: a set of
// attribute positions (ascending) and a dense coefficient array over the
// joint values of exactly those attributes, row-major with the first listed
// attribute slowest. A first-order term over attribute A with 3 values is
// {Vars:[0], Coeffs:[a1,a2,a3]}; the memo's a^AC_ik term over a 3×2 space is
// {Vars:[0,2], Coeffs: 6 values}.
type Term struct {
	Vars   []int
	Coeffs []float64
}

// Validate checks the term against the attribute cardinalities.
func (t Term) Validate(cards []int) error {
	if len(t.Vars) == 0 {
		return fmt.Errorf("sumprod: term with no variables")
	}
	if !sort.IntsAreSorted(t.Vars) {
		return fmt.Errorf("sumprod: term variables %v not ascending", t.Vars)
	}
	size := 1
	for i, v := range t.Vars {
		if i > 0 && t.Vars[i-1] == v {
			return fmt.Errorf("sumprod: term repeats variable %d", v)
		}
		if v < 0 || v >= len(cards) {
			return fmt.Errorf("sumprod: term variable %d out of range [0,%d)", v, len(cards))
		}
		size *= cards[v]
	}
	if len(t.Coeffs) != size {
		return fmt.Errorf("sumprod: term over %v wants %d coefficients, has %d",
			t.Vars, size, len(t.Coeffs))
	}
	return nil
}

// coeffAt returns the term's coefficient at the full-space cell.
func (t Term) coeffAt(cell []int, cards []int) float64 {
	off := 0
	for _, v := range t.Vars {
		off = off*cards[v] + cell[v]
	}
	return t.Coeffs[off]
}

// Evaluator computes sums of the product Π_t coeff_t(cell) over cells of the
// full attribute space, by the Appendix B recursion: eliminate the highest
// attribute first, folding in Q_n — the product of all terms whose highest
// variable is n (Eq. 105).
type Evaluator struct {
	cards   []int
	terms   []Term
	byLevel [][]int // byLevel[n] = indices of terms whose highest var is n
}

// NewEvaluator validates the terms and groups them by highest variable.
func NewEvaluator(cards []int, terms []Term) (*Evaluator, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("sumprod: evaluator needs at least one attribute")
	}
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("sumprod: attribute %d has cardinality %d", i, c)
		}
	}
	e := &Evaluator{
		cards:   append([]int(nil), cards...),
		terms:   terms,
		byLevel: make([][]int, len(cards)),
	}
	for ti, t := range terms {
		if err := t.Validate(cards); err != nil {
			return nil, err
		}
		h := t.Vars[len(t.Vars)-1]
		e.byLevel[h] = append(e.byLevel[h], ti)
	}
	return e, nil
}

// Sum returns Σ_cells Π_terms coeff — with all terms being a-values this is
// 1/a0 of Eq. 89 (before a0 is folded in).
func (e *Evaluator) Sum() float64 {
	return e.SumFixed(nil)
}

// SumFixed returns the same sum with some attributes clamped: fixed[v] >= 0
// pins attribute v to that value; -1 leaves it summed over. fixed may be nil
// (nothing pinned) or shorter than the attribute count (the tail is free).
// This evaluates the marginal sums of Eq. 109.
func (e *Evaluator) SumFixed(fixed []int) float64 {
	R := len(e.cards)
	// s holds S_n: the partial sums indexed by the joint values of
	// attributes 0..n-1. Start with S_R collapsed level by level.
	// Represent S_n as a dense array over attrs 0..n-1 (respecting clamps:
	// clamped attributes contribute a single "value").
	dims := make([]int, R)
	for v := 0; v < R; v++ {
		if v < len(fixed) && fixed[v] >= 0 {
			dims[v] = 1
		} else {
			dims[v] = e.cards[v]
		}
	}
	// size of prefix space 0..n-1
	prefixSize := func(n int) int {
		s := 1
		for v := 0; v < n; v++ {
			s *= dims[v]
		}
		return s
	}
	// Fold attributes from the highest position down (Eq. 105). Before
	// folding level n, `in` holds S over the prefix 0..n (row-major,
	// attribute 0 slowest); nil stands for the all-ones S_R, so the first
	// level is computed directly from the terms and peak memory is the
	// prefix space of the first R-1 attributes.
	var in []float64
	cell := make([]int, R)
	for level := R - 1; level >= 0; level-- {
		out := make([]float64, prefixSize(level))
		inSize := prefixSize(level + 1)
		for off := 0; off < inSize; off++ {
			// Decode the prefix cell 0..level, honoring clamps.
			rem := off
			for v := level; v >= 0; v-- {
				idx := rem % dims[v]
				rem /= dims[v]
				if v < len(fixed) && fixed[v] >= 0 {
					cell[v] = fixed[v]
				} else {
					cell[v] = idx
				}
			}
			q := 1.0
			for _, ti := range e.byLevel[level] {
				q *= e.terms[ti].coeffAt(cell, e.cards)
			}
			if in != nil {
				q *= in[off]
			}
			out[off/dims[level]] += q
		}
		in = out
	}
	return in[0]
}

// FullJoint materializes the complete (unnormalized) product over every cell
// in row-major order — used by small-space consumers (the memo's 12-cell
// example) and as the brute-force oracle in tests.
func (e *Evaluator) FullJoint() []float64 {
	size := 1
	for _, c := range e.cards {
		size *= c
	}
	out := make([]float64, size)
	cell := make([]int, len(e.cards))
	for off := 0; off < size; off++ {
		rem := off
		for v := len(e.cards) - 1; v >= 0; v-- {
			cell[v] = rem % e.cards[v]
			rem /= e.cards[v]
		}
		p := 1.0
		for _, t := range e.terms {
			p *= t.coeffAt(cell, e.cards)
		}
		out[off] = p
	}
	return out
}
