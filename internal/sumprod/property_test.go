package sumprod

import (
	"testing"
	"testing/quick"
)

// TestSumFixedMatchesBruteProperty: for random term structures over a
// 2×3×2 space and random pin patterns, SumFixed equals brute-force
// summation over the matching cells.
func TestSumFixedMatchesBruteProperty(t *testing.T) {
	f := func(c1, c2 [6]uint8, pick uint8, pin [3]int8) bool {
		cards := []int{2, 3, 2}
		mk := func(raw []uint8, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(raw[i%len(raw)])/40 + 0.1
			}
			return out
		}
		var terms []Term
		if pick&1 != 0 {
			terms = append(terms, Term{Vars: []int{0}, Coeffs: mk(c1[:], 2)})
		}
		if pick&2 != 0 {
			terms = append(terms, Term{Vars: []int{1, 2}, Coeffs: mk(c2[:], 6)})
		}
		if pick&4 != 0 {
			terms = append(terms, Term{Vars: []int{0, 1}, Coeffs: mk(c2[:], 6)})
		}
		if pick&8 != 0 {
			terms = append(terms, Term{Vars: []int{0, 1, 2}, Coeffs: mk(c1[:], 12)})
		}
		ev, err := NewEvaluator(cards, terms)
		if err != nil {
			return false
		}
		fixed := make([]int, 3)
		for i := range fixed {
			// Map the random int8 into {-1, 0, .., card-1}.
			v := int(pin[i])
			if v < 0 {
				fixed[i] = -1
			} else {
				fixed[i] = v % cards[i]
			}
		}
		joint := ev.FullJoint()
		brute := 0.0
		for off, val := range joint {
			cell := []int{off / 6, (off / 2) % 3, off % 2}
			match := true
			for i := range fixed {
				if fixed[i] >= 0 && cell[i] != fixed[i] {
					match = false
					break
				}
			}
			if match {
				brute += val
			}
		}
		got := ev.SumFixed(fixed)
		diff := got - brute
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*brute+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSumLinearInTermProperty: scaling one term's coefficients by a scalar
// scales the sum by the same scalar (multilinearity of the product-sum).
func TestSumLinearInTermProperty(t *testing.T) {
	f := func(raw [6]uint8, scaleSeed uint8) bool {
		cards := []int{2, 3}
		coeffs := make([]float64, 6)
		for i := range coeffs {
			coeffs[i] = float64(raw[i])/50 + 0.1
		}
		scale := float64(scaleSeed%10) + 0.5
		base := []Term{
			{Vars: []int{0}, Coeffs: []float64{0.4, 0.6}},
			{Vars: []int{0, 1}, Coeffs: coeffs},
		}
		scaled := []Term{
			base[0],
			{Vars: []int{0, 1}, Coeffs: scaleSlice(coeffs, scale)},
		}
		e1, err := NewEvaluator(cards, base)
		if err != nil {
			return false
		}
		e2, err := NewEvaluator(cards, scaled)
		if err != nil {
			return false
		}
		a := e1.Sum() * scale
		b := e2.Sum()
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*b+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func scaleSlice(xs []float64, s float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * s
	}
	return out
}
