package sumprod

import "fmt"

// Matrix is the memo's small dense matrix: rows × cols float64 values in
// row-major order. It exists to express Appendix B's X and Σ operators in
// the paper's own vocabulary.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sumprod: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// FromRows builds a matrix from row slices, validating rectangularity.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("sumprod: empty matrix")
	}
	m, err := NewMatrix(len(rows), len(rows[0]))
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("sumprod: ragged row %d: %d values, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// TermByTerm is the memo's X operator (Eq. 90): element-wise product of two
// equal-shaped matrices.
func TermByTerm(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sumprod: X operator shape mismatch %dx%d vs %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out, err := NewMatrix(a.Rows, a.Cols)
	if err != nil {
		return nil, err
	}
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out, nil
}

// SumCols is the memo's Σ_j operator (Eq. 91): sum each row's columns,
// producing a column vector (rows × 1).
func SumCols(m *Matrix) *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: 1, Data: make([]float64, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j)
		}
		out.Data[i] = s
	}
	return out
}

// SumAll sums every element — the outermost Σ of Eq. 89.
func SumAll(m *Matrix) float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}
