package sumprod

import (
	"fmt"
	"testing"
)

// benchTerms builds first-order terms plus a pairwise chain over r
// attributes of the given cardinality.
func benchTerms(r, card int) ([]int, []Term) {
	cards := make([]int, r)
	for i := range cards {
		cards[i] = card
	}
	var terms []Term
	for i := 0; i < r; i++ {
		coeffs := make([]float64, card)
		for v := range coeffs {
			coeffs[v] = 0.5 + float64(v%3)*0.3
		}
		terms = append(terms, Term{Vars: []int{i}, Coeffs: coeffs})
	}
	for i := 0; i+1 < r; i++ {
		coeffs := make([]float64, card*card)
		for v := range coeffs {
			coeffs[v] = 0.8 + float64(v%5)*0.1
		}
		terms = append(terms, Term{Vars: []int{i, i + 1}, Coeffs: coeffs})
	}
	return cards, terms
}

func BenchmarkSumRecursion(b *testing.B) {
	for _, r := range []int{4, 6, 8} {
		cards, terms := benchTerms(r, 4)
		ev, err := NewEvaluator(cards, terms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ev.Sum()
			}
		})
	}
}

func BenchmarkSumBruteForce(b *testing.B) {
	for _, r := range []int{4, 6, 8} {
		cards, terms := benchTerms(r, 4)
		ev, err := NewEvaluator(cards, terms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total := 0.0
				for _, v := range ev.FullJoint() {
					total += v
				}
				_ = total
			}
		})
	}
}

func BenchmarkSumFixed(b *testing.B) {
	cards, terms := benchTerms(8, 4)
	ev, err := NewEvaluator(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	fixed := []int{-1, 2, -1, -1, 1, -1, -1, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.SumFixed(fixed)
	}
}

// BenchmarkCompiledSumFixed is BenchmarkSumFixed on the compiled engine:
// same recursion, scratch buffers pooled instead of reallocated.
func BenchmarkCompiledSumFixed(b *testing.B) {
	cards, terms := benchTerms(8, 4)
	ce, err := Compile(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	fixed := []int{-1, 2, -1, -1, 1, -1, -1, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ce.SumFixed(fixed)
	}
}

// BenchmarkCompiledMarginal compares evaluating a full second-order family
// marginal (16 cells on the R=8 chain) cell by cell — one SumFixed recursion
// per cell, the pre-compile scan cost — against the compiled batch sweep.
func BenchmarkCompiledMarginal(b *testing.B) {
	cards, terms := benchTerms(8, 4)
	ev, err := NewEvaluator(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	ce, err := Compile(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	family := []int{2, 5}
	b.Run("percell", func(b *testing.B) {
		fixed := make([]int, len(cards))
		out := make([]float64, cards[family[0]]*cards[family[1]])
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := 0
			for x := 0; x < cards[family[0]]; x++ {
				for y := 0; y < cards[family[1]]; y++ {
					for v := range fixed {
						fixed[v] = -1
					}
					fixed[family[0]], fixed[family[1]] = x, y
					out[idx] = ev.SumFixed(fixed)
					idx++
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ce.Marginal(family); err != nil {
				b.Fatal(err)
			}
		}
	})
}
