package sumprod

import (
	"fmt"
	"testing"
)

// benchTerms builds first-order terms plus a pairwise chain over r
// attributes of the given cardinality.
func benchTerms(r, card int) ([]int, []Term) {
	cards := make([]int, r)
	for i := range cards {
		cards[i] = card
	}
	var terms []Term
	for i := 0; i < r; i++ {
		coeffs := make([]float64, card)
		for v := range coeffs {
			coeffs[v] = 0.5 + float64(v%3)*0.3
		}
		terms = append(terms, Term{Vars: []int{i}, Coeffs: coeffs})
	}
	for i := 0; i+1 < r; i++ {
		coeffs := make([]float64, card*card)
		for v := range coeffs {
			coeffs[v] = 0.8 + float64(v%5)*0.1
		}
		terms = append(terms, Term{Vars: []int{i, i + 1}, Coeffs: coeffs})
	}
	return cards, terms
}

func BenchmarkSumRecursion(b *testing.B) {
	for _, r := range []int{4, 6, 8} {
		cards, terms := benchTerms(r, 4)
		ev, err := NewEvaluator(cards, terms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ev.Sum()
			}
		})
	}
}

func BenchmarkSumBruteForce(b *testing.B) {
	for _, r := range []int{4, 6, 8} {
		cards, terms := benchTerms(r, 4)
		ev, err := NewEvaluator(cards, terms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total := 0.0
				for _, v := range ev.FullJoint() {
					total += v
				}
				_ = total
			}
		})
	}
}

func BenchmarkSumFixed(b *testing.B) {
	cards, terms := benchTerms(8, 4)
	ev, err := NewEvaluator(cards, terms)
	if err != nil {
		b.Fatal(err)
	}
	fixed := []int{-1, 2, -1, -1, 1, -1, -1, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.SumFixed(fixed)
	}
}
