package sumprod

import (
	"fmt"
	"sort"
	"sync"
)

// Compiled is an immutable, goroutine-safe inference engine over a snapshot
// of product-formula terms. Where Evaluator is rebuilt (and re-validated)
// per use, Compile is called once: it deep-copies the coefficient arrays,
// fixes the elimination order, groups terms by highest variable, and pools
// the fold scratch buffers so steady-state queries allocate nothing beyond
// their result.
//
// The evaluation primitives are bit-identical to Evaluator: the fold visits
// levels, prefix cells, and term factors in exactly the same order, so every
// float64 it returns equals the corresponding Evaluator result bit for bit
// (the equivalence tests assert this with ==).
//
// On top of the per-query Sum/SumPinned primitives, Compiled adds a batch
// marginal: Marginal computes every cell of a family's marginal in one
// elimination sweep by keeping the family's variables un-eliminated, instead
// of running one full SumFixed recursion per cell.
type Compiled struct {
	cards   []int
	terms   []Term  // coefficient snapshots, deep-copied at Compile time
	byLevel [][]int // byLevel[n] = indices of terms whose highest var is n
	size    int     // full joint size
	scratch sync.Pool
}

// foldScratch holds the per-call working state of one elimination sweep.
// Instances are pooled per engine so concurrent callers never share one.
type foldScratch struct {
	bufA, bufB []float64
	cell       []int
	edims      []int
	fixed      []int
	keep       []bool
}

// Compile validates the terms against the cardinalities and builds the
// immutable engine. The coefficient arrays are copied: later mutation of the
// caller's slices does not affect the compiled snapshot.
func Compile(cards []int, terms []Term) (*Compiled, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("sumprod: compiled engine needs at least one attribute")
	}
	size := 1
	for i, card := range cards {
		if card < 1 {
			return nil, fmt.Errorf("sumprod: attribute %d has cardinality %d", i, card)
		}
		size *= card
	}
	c := &Compiled{
		cards:   append([]int(nil), cards...),
		terms:   make([]Term, len(terms)),
		byLevel: make([][]int, len(cards)),
		size:    size,
	}
	// The deep copies share one backing array per kind: engines are compiled
	// per block on the snapshot-restore cold-start path, where two
	// allocations per term dominate the profile.
	nv, nc := 0, 0
	for _, t := range terms {
		nv += len(t.Vars)
		nc += len(t.Coeffs)
	}
	vbuf := make([]int, nv)
	cbuf := make([]float64, nc)
	for ti, t := range terms {
		if err := t.Validate(cards); err != nil {
			return nil, err
		}
		tv := vbuf[:len(t.Vars):len(t.Vars)]
		vbuf = vbuf[len(t.Vars):]
		copy(tv, t.Vars)
		tc := cbuf[:len(t.Coeffs):len(t.Coeffs)]
		cbuf = cbuf[len(t.Coeffs):]
		copy(tc, t.Coeffs)
		c.terms[ti] = Term{Vars: tv, Coeffs: tc}
		h := t.Vars[len(t.Vars)-1]
		c.byLevel[h] = append(c.byLevel[h], ti)
	}
	r := len(cards)
	c.scratch.New = func() any {
		return &foldScratch{
			cell:  make([]int, r),
			edims: make([]int, r),
			fixed: make([]int, r),
			keep:  make([]bool, r),
		}
	}
	return c, nil
}

// Cards returns a copy of the attribute cardinalities.
func (c *Compiled) Cards() []int { return append([]int(nil), c.cards...) }

// NumCells returns the size of the full joint space.
func (c *Compiled) NumCells() int { return c.size }

// getScratch pops a scratch from the pool with the pin state reset.
func (c *Compiled) getScratch() *foldScratch {
	sc := c.scratch.Get().(*foldScratch)
	for v := range sc.fixed {
		sc.fixed[v] = -1
		sc.keep[v] = false
	}
	//pkalint:poolhygiene accessor contract: every caller pairs getScratch with c.scratch.Put once the fold result is consumed
	return sc
}

// grow returns buf resized to n, reallocating only when capacity is short.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// fold runs the Appendix B elimination with the scratch's pin/keep state:
// sc.fixed[v] >= 0 clamps variable v, sc.keep[v] carries it through to the
// output instead of summing it out. The returned slice is scratch-owned
// (valid until the scratch is released) and holds the result indexed
// row-major by the kept variables in ascending position order — a single
// value when nothing is kept.
//
// The loop structure mirrors Evaluator.SumFixed exactly: levels fold from
// the highest position down, the level value is the fastest-moving digit,
// and each output accumulator receives its additions in the same order, so
// results are bit-identical to the per-cell path.
func (c *Compiled) fold(sc *foldScratch) []float64 {
	r := len(c.cards)
	edims, cell := sc.edims, sc.cell
	for v := 0; v < r; v++ {
		if !sc.keep[v] && sc.fixed[v] >= 0 {
			edims[v] = 1
			cell[v] = sc.fixed[v]
		} else {
			edims[v] = c.cards[v]
			cell[v] = 0
		}
	}
	var in []float64
	out, spare := sc.bufA, sc.bufB
	tail := 1 // joint size of kept variables above the current level
	for n := r - 1; n >= 0; n-- {
		prefSize := 1
		for v := 0; v < n; v++ {
			prefSize *= edims[v]
		}
		dn := edims[n]
		keepN := sc.keep[n]
		outSize := prefSize * tail
		if keepN {
			outSize *= dn
		}
		out = grow(out, outSize)
		clear(out)
		pinnedN := !keepN && sc.fixed[n] >= 0
		if pinnedN {
			cell[n] = sc.fixed[n]
		}
		byL := c.byLevel[n]
		inRow := 0
		for p := 0; p < prefSize; p++ {
			outBase := p * tail
			for x := 0; x < dn; x++ {
				if !pinnedN {
					cell[n] = x
				}
				q := 1.0
				for _, ti := range byL {
					t := &c.terms[ti]
					off := 0
					for _, v := range t.Vars {
						off = off*c.cards[v] + cell[v]
					}
					q *= t.Coeffs[off]
				}
				oRow := outBase
				if keepN {
					oRow = inRow
				}
				if in == nil {
					for k := 0; k < tail; k++ {
						out[oRow+k] += q
					}
				} else {
					for k := 0; k < tail; k++ {
						out[oRow+k] += q * in[inRow+k]
					}
				}
				inRow += tail
			}
			// Advance the prefix odometer over variables 0..n-1 (clamped
			// variables have a single digit and never move).
			for v := n - 1; v >= 0; v-- {
				if edims[v] == 1 {
					continue
				}
				cell[v]++
				if cell[v] < edims[v] {
					break
				}
				cell[v] = 0
			}
		}
		if keepN {
			tail *= dn
		}
		// Ping-pong: the just-written buffer becomes the next input; the
		// previous input (or the untouched spare) is overwritten next level.
		if in == nil {
			in, out = out, spare
		} else {
			in, out = out, in
		}
	}
	sc.bufA, sc.bufB = in, out // retain grown buffers for reuse
	return in
}

// Sum returns Σ_cells Π_terms coeff over the full space.
func (c *Compiled) Sum() float64 {
	return c.SumFixed(nil)
}

// SumFixed returns the same sum with some attributes clamped, exactly as
// Evaluator.SumFixed: fixed[v] >= 0 pins attribute v, -1 leaves it summed
// over, and fixed may be nil or shorter than the attribute count.
func (c *Compiled) SumFixed(fixed []int) float64 {
	sc := c.getScratch()
	for v := 0; v < len(fixed) && v < len(sc.fixed); v++ {
		sc.fixed[v] = fixed[v]
	}
	res := c.fold(sc)[0]
	c.scratch.Put(sc)
	return res
}

// SumPinned is SumFixed with the clamps given sparsely: vars lists pinned
// attribute positions ascending, values their clamped values. It avoids the
// caller materializing a full-width fixed slice per query.
func (c *Compiled) SumPinned(vars []int, values []int) float64 {
	sc := c.getScratch()
	for i, v := range vars {
		sc.fixed[v] = values[i]
	}
	res := c.fold(sc)[0]
	c.scratch.Put(sc)
	return res
}

// Marginal computes every cell of the family's marginal sum in one
// elimination sweep: variables in vars (ascending attribute positions) are
// kept, all others are summed out. The result is dense row-major over the
// kept variables, first listed slowest — the order an odometer over the
// family's value space visits cells. Each entry is bit-identical to the
// SumFixed call that pins the family to that cell.
func (c *Compiled) Marginal(vars []int) ([]float64, error) {
	return c.MarginalFixed(vars, nil)
}

// MarginalFixed is Marginal with additional clamps: fixed[v] >= 0 pins
// variable v (which must not also be listed in vars), -1 or out-of-length
// leaves it summed over. This computes a whole conditional slice — e.g.
// every value of a target attribute under fixed evidence — in one sweep.
func (c *Compiled) MarginalFixed(vars []int, fixed []int) ([]float64, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("sumprod: batch marginal needs at least one kept variable")
	}
	if !sort.IntsAreSorted(vars) {
		return nil, fmt.Errorf("sumprod: marginal variables %v not ascending", vars)
	}
	size := 1
	for i, v := range vars {
		if v < 0 || v >= len(c.cards) {
			return nil, fmt.Errorf("sumprod: marginal variable %d out of range [0,%d)", v, len(c.cards))
		}
		if i > 0 && vars[i-1] == v {
			return nil, fmt.Errorf("sumprod: marginal repeats variable %d", v)
		}
		if v < len(fixed) && fixed[v] >= 0 {
			return nil, fmt.Errorf("sumprod: marginal variable %d is also clamped", v)
		}
		size *= c.cards[v]
	}
	sc := c.getScratch()
	for v := 0; v < len(fixed) && v < len(sc.fixed); v++ {
		sc.fixed[v] = fixed[v]
	}
	for _, v := range vars {
		sc.keep[v] = true
	}
	out := make([]float64, size)
	copy(out, c.fold(sc))
	c.scratch.Put(sc)
	return out, nil
}

// CellValue returns init × Π_terms coeff(cell), multiplying the factors onto
// init in term order. Seeding init with a normalizing constant reproduces
// the exact multiplication order of direct product evaluation.
func (c *Compiled) CellValue(init float64, cell []int) float64 {
	p := init
	for i := range c.terms {
		t := &c.terms[i]
		off := 0
		for _, v := range t.Vars {
			off = off*c.cards[v] + cell[v]
		}
		p *= t.Coeffs[off]
	}
	return p
}

// ArgmaxFixed returns the cell maximizing CellValue(1, ·) among cells
// agreeing with fixed (fixed[v] >= 0 pins variable v; a negative entry or
// an out-of-length position leaves it free; nil leaves every variable
// free), breaking ties toward the lexicographically smallest cell. The
// enumeration visits free variables odometer-style, last position fastest —
// row-major lexicographic order — with a strict > keeping the first
// maximizer, so the tie-break is deterministic.
func (c *Compiled) ArgmaxFixed(fixed []int) ([]int, error) {
	r := len(c.cards)
	if len(fixed) > r {
		return nil, fmt.Errorf("sumprod: %d pins for %d variables", len(fixed), r)
	}
	cell := make([]int, r)
	var free []int
	for v := 0; v < r; v++ {
		fv := -1
		if v < len(fixed) {
			fv = fixed[v]
		}
		if fv >= c.cards[v] {
			return nil, fmt.Errorf("sumprod: value %d out of range for variable %d", fv, v)
		}
		if fv >= 0 {
			cell[v] = fv
		} else {
			free = append(free, v)
		}
	}
	best := make([]int, r)
	bestV := -1.0
	for {
		if v := c.CellValue(1, cell); v > bestV {
			bestV = v
			copy(best, cell)
		}
		i := len(free) - 1
		for i >= 0 {
			cell[free[i]]++
			if cell[free[i]] < c.cards[free[i]] {
				break
			}
			cell[free[i]] = 0
			i--
		}
		if i < 0 || len(free) == 0 {
			break
		}
	}
	return best, nil
}

// FullJoint materializes the complete (unnormalized) product over every cell
// in row-major order, bit-identical to Evaluator.FullJoint.
func (c *Compiled) FullJoint() []float64 {
	out := make([]float64, c.size)
	cell := make([]int, len(c.cards))
	for off := 0; off < c.size; off++ {
		rem := off
		for v := len(c.cards) - 1; v >= 0; v-- {
			cell[v] = rem % c.cards[v]
			rem /= c.cards[v]
		}
		out[off] = c.CellValue(1, cell)
	}
	return out
}
