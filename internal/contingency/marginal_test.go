package contingency

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarginalizeMatchesMemoFigure2(t *testing.T) {
	tab := memoTable(t)

	// Figure 2c: N^AB (summed over family history).
	ab, err := tab.Marginalize(NewVarSet(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantAB := [3][2]int64{{240, 1050}, {93, 1040}, {100, 905}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got := ab.MustAt(i, j); got != wantAB[i][j] {
				t.Errorf("N^AB_%d%d = %d, memo says %d", i+1, j+1, got, wantAB[i][j])
			}
		}
	}

	// Figure 2a margins: N^AC column for C=1: 540, 642, 598.
	ac, err := tab.Marginalize(NewVarSet(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantAC := [3][2]int64{{540, 750}, {642, 491}, {598, 407}}
	for i := 0; i < 3; i++ {
		for k := 0; k < 2; k++ {
			if got := ac.MustAt(i, k); got != wantAC[i][k] {
				t.Errorf("N^AC_%d%d = %d, memo says %d", i+1, k+1, got, wantAC[i][k])
			}
		}
	}

	// N^BC: {270, 163}, {1510, 1485}.
	bc, err := tab.Marginalize(NewVarSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantBC := [2][2]int64{{270, 163}, {1510, 1485}}
	for j := 0; j < 2; j++ {
		for k := 0; k < 2; k++ {
			if got := bc.MustAt(j, k); got != wantBC[j][k] {
				t.Errorf("N^BC_%d%d = %d, memo says %d", j+1, k+1, got, wantBC[j][k])
			}
		}
	}

	// First-order: N^A = 1290, 1133, 1005; N^B = 433, 2995; N^C = 1780, 1648.
	a, _ := tab.Marginalize(NewVarSet(0))
	for i, want := range []int64{1290, 1133, 1005} {
		if got := a.MustAt(i); got != want {
			t.Errorf("N^A_%d = %d, memo says %d", i+1, got, want)
		}
	}
	b, _ := tab.Marginalize(NewVarSet(1))
	for j, want := range []int64{433, 2995} {
		if got := b.MustAt(j); got != want {
			t.Errorf("N^B_%d = %d, memo says %d", j+1, got, want)
		}
	}
	c, _ := tab.Marginalize(NewVarSet(2))
	for k, want := range []int64{1780, 1648} {
		if got := c.MustAt(k); got != want {
			t.Errorf("N^C_%d = %d, memo says %d", k+1, got, want)
		}
	}
}

func TestMarginalizePreservesTotal(t *testing.T) {
	tab := memoTable(t)
	for _, keep := range []VarSet{NewVarSet(0), NewVarSet(1, 2), NewVarSet(0, 1, 2)} {
		m, err := tab.Marginalize(keep)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != tab.Total() {
			t.Errorf("marginal over %v total %d, want %d", keep, m.Total(), tab.Total())
		}
		if err := m.CheckConsistency(); err != nil {
			t.Errorf("marginal over %v inconsistent: %v", keep, err)
		}
	}
}

func TestMarginalizeIdentity(t *testing.T) {
	tab := memoTable(t)
	full, err := tab.Marginalize(NewVarSet(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(full) {
		t.Error("marginalizing over all axes should be the identity")
	}
}

func TestMarginalizeErrors(t *testing.T) {
	tab := memoTable(t)
	if _, err := tab.Marginalize(VarSet{}); err == nil {
		t.Error("empty keep set accepted")
	}
	if _, err := tab.Marginalize(NewVarSet(3)); err == nil {
		t.Error("out-of-range axis accepted")
	}
}

func TestMarginalCountAgainstMarginalize(t *testing.T) {
	tab := memoTable(t)
	// N^AC_12 — the memo's chosen constraint — must be 750.
	v, err := tab.MarginalCount(NewVarSet(0, 2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 750 {
		t.Errorf("N^AC_12 = %d, memo says 750", v)
	}
	// Empty set -> grand total.
	v, err = tab.MarginalCount(VarSet{}, nil)
	if err != nil || v != 3428 {
		t.Errorf("MarginalCount(∅) = %d err %v", v, err)
	}
	// Full set -> single cell.
	v, err = tab.MarginalCount(NewVarSet(0, 1, 2), []int{0, 1, 0})
	if err != nil || v != 410 {
		t.Errorf("full-set marginal = %d err %v, want 410", v, err)
	}
}

func TestMarginalCountErrors(t *testing.T) {
	tab := memoTable(t)
	if _, err := tab.MarginalCount(NewVarSet(0), []int{0, 1}); err == nil {
		t.Error("value-count mismatch accepted")
	}
	if _, err := tab.MarginalCount(NewVarSet(5), []int{0}); err == nil {
		t.Error("out-of-range axis accepted")
	}
	if _, err := tab.MarginalCount(NewVarSet(0), []int{7}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestFirstOrderProbabilitiesMatchMemo(t *testing.T) {
	tab := memoTable(t)
	p, err := tab.FirstOrderProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	// Memo Eq. 48ff: .38/.33/.29, .13/.87, .52/.48 (2-digit rounding).
	wantA := []float64{0.376, 0.331, 0.293}
	wantB := []float64{0.126, 0.874}
	wantC := []float64{0.519, 0.481}
	check := func(axis int, want []float64) {
		for v, w := range want {
			if diff := p[axis][v] - w; diff > 0.0006 || diff < -0.0006 {
				t.Errorf("p[%d][%d] = %.4f, memo says %.3f", axis, v, p[axis][v], w)
			}
		}
	}
	check(0, wantA)
	check(1, wantB)
	check(2, wantC)

	empty := MustNew(nil, []int{2})
	if _, err := empty.FirstOrderProbabilities(); err == nil {
		t.Error("empty table accepted")
	}
}

func TestMarginalizationConsistencyProperty(t *testing.T) {
	// Marginalizing in two steps equals one step:
	// (ABC -> AB -> A) == (ABC -> A).
	f := func(raw [12]uint8) bool {
		tab := MustNew(nil, []int{3, 2, 2})
		cell := make([]int, 3)
		for off := 0; off < 12; off++ {
			tab.Unflatten(off, cell)
			tab.Set(int64(raw[off]), cell...)
		}
		ab, err := tab.Marginalize(NewVarSet(0, 1))
		if err != nil {
			return false
		}
		aViaAB, err := ab.Marginalize(NewVarSet(0)) // axis 0 of AB is A
		if err != nil {
			return false
		}
		aDirect, err := tab.Marginalize(NewVarSet(0))
		if err != nil {
			return false
		}
		return aViaAB.Equal(aDirect)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarginalCountMatchesMarginalizeProperty(t *testing.T) {
	// MarginalCount(vs, values) must equal the corresponding cell of
	// Marginalize(vs) for random tables and assignments.
	f := func(raw [12]uint8, vsSeed uint8, v0, v1 uint8) bool {
		tab := MustNew(nil, []int{3, 2, 2})
		cell := make([]int, 3)
		for off := 0; off < 12; off++ {
			tab.Unflatten(off, cell)
			tab.Set(int64(raw[off]), cell...)
		}
		sets := []VarSet{NewVarSet(0), NewVarSet(1), NewVarSet(2),
			NewVarSet(0, 1), NewVarSet(0, 2), NewVarSet(1, 2)}
		vs := sets[int(vsSeed)%len(sets)]
		members := vs.Members()
		values := make([]int, len(members))
		seeds := []uint8{v0, v1}
		for i, p := range members {
			values[i] = int(seeds[i]) % tab.Card(p)
		}
		direct, err := tab.MarginalCount(vs, values)
		if err != nil {
			return false
		}
		m, err := tab.Marginalize(vs)
		if err != nil {
			return false
		}
		viaTable, err := m.At(values...)
		if err != nil {
			return false
		}
		return direct == viaTable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderSlicesFigure1Layout(t *testing.T) {
	tab := memoTable(t)
	var buf bytes.Buffer
	// Rows = A (smoking), cols = B (cancer), pages = C — the memo's layout.
	if err := tab.RenderSlices(&buf, 0, 1, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"C=1", "C=2", "130", "410", "385", "Σ"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Marginal row of page C=1 must contain 270 and 1510 (Figure 2a).
	if !strings.Contains(out, "270") || !strings.Contains(out, "1510") {
		t.Errorf("render missing Figure 2a marginals:\n%s", out)
	}
}

func TestRenderSlicesErrors(t *testing.T) {
	tab := memoTable(t)
	var buf bytes.Buffer
	if err := tab.RenderSlices(&buf, 0, 0, false); err == nil {
		t.Error("identical axes accepted")
	}
	if err := tab.RenderSlices(&buf, 0, 9, false); err == nil {
		t.Error("out-of-range axis accepted")
	}
}

func TestRenderTwoAxisTable(t *testing.T) {
	tab := MustNew([]string{"X", "Y"}, []int{2, 2})
	tab.Set(5, 0, 0)
	tab.Set(7, 1, 1)
	var buf bytes.Buffer
	if err := tab.RenderSlices(&buf, 0, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12") { // grand total
		t.Errorf("2-axis render missing grand total:\n%s", buf.String())
	}
}
