package contingency

import (
	"encoding/json"
	"fmt"
)

// tableJSON is the wire form of a Table. Counts are row-major, axis 0
// slowest — the same layout as the in-memory representation.
type tableJSON struct {
	Names  []string `json:"names"`
	Cards  []int    `json:"cards"`
	Counts []int64  `json:"counts"`
}

// MarshalJSON encodes the table shape and counts.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Names:  t.names,
		Cards:  t.cards,
		Counts: t.counts,
	})
}

// UnmarshalJSON decodes and validates a table. The receiver is overwritten.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w tableJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("contingency: decoding table: %w", err)
	}
	nt, err := New(w.Names, w.Cards)
	if err != nil {
		return fmt.Errorf("contingency: decoding table: %w", err)
	}
	if len(w.Counts) != len(nt.counts) {
		return fmt.Errorf("contingency: decoding table: %d counts for %d cells",
			len(w.Counts), len(nt.counts))
	}
	var total int64
	for i, c := range w.Counts {
		if c < 0 {
			return fmt.Errorf("contingency: decoding table: cell %d negative (%d)", i, c)
		}
		nt.counts[i] = c
		total += c
	}
	nt.total = total
	*t = *nt
	return nil
}
