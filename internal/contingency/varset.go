package contingency

import (
	"fmt"
	"math/bits"
	"strings"
)

// VarSet is a set of attribute positions encoded as a bitmask.
// Bit i set means attribute i is a member. The zero value is the empty set.
type VarSet uint64

// MaxVars is the largest attribute position a VarSet can hold.
const MaxVars = 64

// NewVarSet builds a set from explicit positions. It panics on positions
// outside [0, MaxVars), which indicates a programming error, not bad data.
func NewVarSet(positions ...int) VarSet {
	var s VarSet
	for _, p := range positions {
		if p < 0 || p >= MaxVars {
			panic(fmt.Sprintf("contingency: variable position %d out of range", p))
		}
		s |= 1 << uint(p)
	}
	return s
}

// Has reports whether position p is a member.
func (s VarSet) Has(p int) bool { return p >= 0 && p < MaxVars && s&(1<<uint(p)) != 0 }

// Add returns the set with position p added.
func (s VarSet) Add(p int) VarSet {
	if p < 0 || p >= MaxVars {
		panic(fmt.Sprintf("contingency: variable position %d out of range", p))
	}
	return s | 1<<uint(p)
}

// Remove returns the set with position p removed.
func (s VarSet) Remove(p int) VarSet { return s &^ (1 << uint(p)) }

// Union returns s ∪ t.
func (s VarSet) Union(t VarSet) VarSet { return s | t }

// Intersect returns s ∩ t.
func (s VarSet) Intersect(t VarSet) VarSet { return s & t }

// Minus returns s \ t.
func (s VarSet) Minus(t VarSet) VarSet { return s &^ t }

// SubsetOf reports whether every member of s is in t.
func (s VarSet) SubsetOf(t VarSet) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t strictly.
func (s VarSet) ProperSubsetOf(t VarSet) bool { return s != t && s.SubsetOf(t) }

// Len returns the number of members (the "order" of an attribute family).
func (s VarSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s VarSet) Empty() bool { return s == 0 }

// Members returns the positions in ascending order.
func (s VarSet) Members() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		p := bits.TrailingZeros64(v)
		out = append(out, p)
		v &^= 1 << uint(p)
	}
	return out
}

// String renders the set as {0,2,5}.
func (s VarSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets returns every subset of s, including the empty set and s itself,
// in an order where smaller masks come first within the standard subset
// enumeration. The count is 2^|s|; callers guard against large s.
func (s VarSet) Subsets() []VarSet {
	out := make([]VarSet, 0, 1<<uint(s.Len()))
	// Classic submask enumeration.
	for sub := VarSet(0); ; sub = (sub - s) & s {
		out = append(out, sub)
		if sub == s {
			break
		}
	}
	return out
}

// ProperSubsets returns the non-empty proper subsets of s — exactly the
// "constraining marginals" of an attribute family in the memo's Eq. 41.
func (s VarSet) ProperSubsets() []VarSet {
	all := s.Subsets()
	out := make([]VarSet, 0, len(all)-2)
	for _, sub := range all {
		if sub != 0 && sub != s {
			out = append(out, sub)
		}
	}
	return out
}

// Combinations returns every VarSet of exactly r members drawn from the
// first n attribute positions, in lexicographic order of member lists.
// This enumerates the order-r attribute families of the memo's Figure 3 scan.
func Combinations(n, r int) []VarSet {
	if r < 0 || n < 0 || r > n || n > MaxVars {
		return nil
	}
	if r == 0 {
		return []VarSet{0}
	}
	var out []VarSet
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, NewVarSet(idx...))
		// Advance the combination.
		i := r - 1
		for i >= 0 && idx[i] == n-r+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}
