package contingency

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// VarSet is a set of attribute positions encoded as a multi-word bitmask:
// positions 0..63 live in an inline word, and wider sets spill the
// remaining words into an immutable string (8 little-endian bytes per
// word, canonical — the last spill word is never zero). The struct is
// comparable, so VarSet keys maps directly, and == is set equality; the
// zero value is the empty set. Sets within the first 64 positions never
// allocate, so narrow-schema call sites keep their old cost.
type VarSet struct {
	lo    uint64
	spill string
}

// MaxVars is the exclusive upper bound on attribute positions a VarSet
// accepts — a sanity ceiling far beyond any practical schema, not a
// packing limit. (Before multi-word keys it was 64 and capped every
// schema; wide schemas now size their sets to the widest member.)
const MaxVars = 1 << 16

// spillWords returns the number of spill words (beyond the inline word).
func (s VarSet) spillWords() int { return len(s.spill) >> 3 }

// NumWords returns how many 64-bit words the set spans (always >= 1).
// With Word it supports allocation-free member iteration:
//
//	for wi := 0; wi < s.NumWords(); wi++ {
//		for w := s.Word(wi); w != 0; w &= w - 1 {
//			p := wi*64 + bits.TrailingZeros64(w)
//			...
//		}
//	}
func (s VarSet) NumWords() int { return 1 + s.spillWords() }

// Word returns the i-th 64-bit word of the mask (word 0 holds positions
// 0..63). Out-of-range words are zero.
func (s VarSet) Word(i int) uint64 {
	if i == 0 {
		return s.lo
	}
	if i < 1 || i > s.spillWords() {
		return 0
	}
	b := s.spill[(i-1)*8:]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// varSetFromWords builds the canonical VarSet for a word slice (word 0 =
// positions 0..63). Trailing zero words are trimmed so equal sets compare
// equal.
func varSetFromWords(words []uint64) VarSet {
	n := len(words)
	for n > 1 && words[n-1] == 0 {
		n--
	}
	if n <= 1 {
		if len(words) == 0 {
			return VarSet{}
		}
		return VarSet{lo: words[0]}
	}
	buf := make([]byte, (n-1)*8)
	for i := 1; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[(i-1)*8:], words[i])
	}
	return VarSet{lo: words[0], spill: string(buf)}
}

// appendWords writes the set's words into dst (resliced as needed) and
// returns it — the scratch form the word-wise set operations work on.
func (s VarSet) appendWords(dst []uint64) []uint64 {
	dst = append(dst[:0], s.lo)
	for i := 1; i <= s.spillWords(); i++ {
		dst = append(dst, s.Word(i))
	}
	return dst
}

// checkPos panics on positions outside [0, MaxVars), which indicates a
// programming error, not bad data.
func checkPos(p int) {
	if p < 0 || p >= MaxVars {
		panic(fmt.Sprintf("contingency: variable position %d out of range", p))
	}
}

// NewVarSet builds a set from explicit positions. It panics on positions
// outside [0, MaxVars).
func NewVarSet(positions ...int) VarSet {
	var lo uint64
	maxWord := 0
	for _, p := range positions {
		checkPos(p)
		if w := p >> 6; w > maxWord {
			maxWord = w
		} else if w == 0 {
			lo |= 1 << uint(p&63)
		}
	}
	if maxWord == 0 {
		return VarSet{lo: lo}
	}
	words := make([]uint64, maxWord+1)
	for _, p := range positions {
		words[p>>6] |= 1 << uint(p&63)
	}
	return varSetFromWords(words)
}

// VarSetFromMask builds a set over positions 0..63 from a plain bitmask —
// the single-word representation VarSet used to be, still the wire form of
// v1 snapshots.
func VarSetFromMask(mask uint64) VarSet { return VarSet{lo: mask} }

// Mask64 returns the single-word bitmask when the set fits positions
// 0..63; ok is false for wider sets.
func (s VarSet) Mask64() (mask uint64, ok bool) { return s.lo, s.spill == "" }

// Has reports whether position p is a member.
func (s VarSet) Has(p int) bool {
	if p < 0 {
		return false
	}
	if p < 64 {
		return s.lo&(1<<uint(p)) != 0
	}
	return s.Word(p>>6)&(1<<uint(p&63)) != 0
}

// Add returns the set with position p added.
func (s VarSet) Add(p int) VarSet {
	checkPos(p)
	if p < 64 {
		return VarSet{lo: s.lo | 1<<uint(p), spill: s.spill}
	}
	w := p >> 6
	n := s.NumWords()
	if w >= n {
		n = w + 1
	}
	words := s.appendWords(make([]uint64, 0, n))
	for len(words) < n {
		words = append(words, 0)
	}
	words[w] |= 1 << uint(p&63)
	return varSetFromWords(words)
}

// Remove returns the set with position p removed.
func (s VarSet) Remove(p int) VarSet {
	if p < 0 || !s.Has(p) {
		return s
	}
	if p < 64 {
		return VarSet{lo: s.lo &^ (1 << uint(p)), spill: s.spill}
	}
	words := s.appendWords(make([]uint64, 0, s.NumWords()))
	words[p>>6] &^= 1 << uint(p&63)
	return varSetFromWords(words)
}

// Union returns s ∪ t.
func (s VarSet) Union(t VarSet) VarSet {
	if s.spill == "" && t.spill == "" {
		return VarSet{lo: s.lo | t.lo}
	}
	n := s.NumWords()
	if tn := t.NumWords(); tn > n {
		n = tn
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = s.Word(i) | t.Word(i)
	}
	return varSetFromWords(words)
}

// Intersect returns s ∩ t.
func (s VarSet) Intersect(t VarSet) VarSet {
	if s.spill == "" || t.spill == "" {
		return VarSet{lo: s.lo & t.lo}
	}
	n := s.NumWords()
	if tn := t.NumWords(); tn < n {
		n = tn
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = s.Word(i) & t.Word(i)
	}
	return varSetFromWords(words)
}

// Minus returns s \ t.
func (s VarSet) Minus(t VarSet) VarSet {
	if s.spill == "" {
		return VarSet{lo: s.lo &^ t.lo}
	}
	words := s.appendWords(make([]uint64, 0, s.NumWords()))
	for i := range words {
		words[i] &^= t.Word(i)
	}
	return varSetFromWords(words)
}

// SubsetOf reports whether every member of s is in t.
func (s VarSet) SubsetOf(t VarSet) bool {
	if s.lo&^t.lo != 0 {
		return false
	}
	for i := s.spillWords(); i >= 1; i-- {
		if s.Word(i)&^t.Word(i) != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t strictly.
func (s VarSet) ProperSubsetOf(t VarSet) bool { return s != t && s.SubsetOf(t) }

// Len returns the number of members (the "order" of an attribute family).
func (s VarSet) Len() int {
	n := bits.OnesCount64(s.lo)
	for i := s.spillWords(); i >= 1; i-- {
		n += bits.OnesCount64(s.Word(i))
	}
	return n
}

// Empty reports whether the set has no members.
func (s VarSet) Empty() bool { return s.lo == 0 && s.spill == "" }

// Less orders sets by their mask value as a multi-word integer — on sets
// within the first 64 positions this is exactly the old uint64 ordering,
// so canonical enumerations (snapshot encodings, sorted family lists) are
// unchanged on narrow schemas.
func (s VarSet) Less(t VarSet) bool {
	// Canonical spills (last word nonzero) make word count the first key.
	if sn, tn := s.spillWords(), t.spillWords(); sn != tn {
		return sn < tn
	}
	for i := s.spillWords(); i >= 1; i-- {
		if sw, tw := s.Word(i), t.Word(i); sw != tw {
			return sw < tw
		}
	}
	return s.lo < t.lo
}

// Members returns the positions in ascending order.
func (s VarSet) Members() []int {
	out := make([]int, 0, s.Len())
	for wi, nw := 0, s.NumWords(); wi < nw; wi++ {
		base := wi * 64
		for w := s.Word(wi); w != 0; w &= w - 1 {
			out = append(out, base+bits.TrailingZeros64(w))
		}
	}
	return out
}

// AppendKey appends a canonical textual identity of the set to dst —
// stable, unique, and allocation-free for narrow sets — for callers
// building composite map keys.
func (s VarSet) AppendKey(dst []byte) []byte {
	dst = strconv.AppendUint(dst, s.lo, 16)
	for i := 1; i <= s.spillWords(); i++ {
		dst = append(dst, '.')
		dst = strconv.AppendUint(dst, s.Word(i), 16)
	}
	return dst
}

// String renders the set as {0,2,5}.
func (s VarSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for wi, nw := 0, s.NumWords(); wi < nw; wi++ {
		base := wi * 64
		for w := s.Word(wi); w != 0; w &= w - 1 {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%d", base+bits.TrailingZeros64(w))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets returns every subset of s, including the empty set and s itself,
// in ascending mask order — the order the old single-word submask
// enumeration produced. The count is 2^|s|; callers guard against large s.
func (s VarSet) Subsets() []VarSet {
	members := s.Members()
	out := make([]VarSet, 0, 1<<uint(len(members)))
	scratch := make([]int, 0, len(members))
	// Enumerating index masks ascending enumerates the actual masks
	// ascending: mapping index bits onto the ascending member positions is
	// monotone in the mask's integer value.
	for idx := 0; ; idx++ {
		scratch = scratch[:0]
		for i, p := range members {
			if idx&(1<<uint(i)) != 0 {
				scratch = append(scratch, p)
			}
		}
		out = append(out, NewVarSet(scratch...))
		if idx == 1<<uint(len(members))-1 {
			break
		}
	}
	return out
}

// ProperSubsets returns the non-empty proper subsets of s — exactly the
// "constraining marginals" of an attribute family in the memo's Eq. 41.
func (s VarSet) ProperSubsets() []VarSet {
	all := s.Subsets()
	out := make([]VarSet, 0, len(all)-2)
	for _, sub := range all {
		if !sub.Empty() && sub != s {
			out = append(out, sub)
		}
	}
	return out
}

// Combinations returns every VarSet of exactly r members drawn from the
// first n attribute positions, in lexicographic order of member lists.
// This enumerates the order-r attribute families of the memo's Figure 3 scan.
func Combinations(n, r int) []VarSet {
	if r < 0 || n < 0 || r > n || n > MaxVars {
		return nil
	}
	if r == 0 {
		return []VarSet{{}}
	}
	var out []VarSet
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, NewVarSet(idx...))
		// Advance the combination.
		i := r - 1
		for i >= 0 && idx[i] == n-r+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}
