package contingency

import "fmt"

// Counts is the read-only view of tabulated observations the acquisition
// machinery scans against: shape, sample total, and marginal counts over
// attribute subsets. Both the dense *Table and the hash-backed *Sparse
// implement it, so the MML tester, the discovery engine, and the validation
// measures run unchanged over either backend — the memo's procedure is
// defined entirely in terms of the N_ij... marginals, never the storage
// layout.
type Counts interface {
	// R returns the number of attributes (axes).
	R() int
	// Card returns the number of values of axis i.
	Card(i int) int
	// Names returns a copy of all axis labels.
	Names() []string
	// Total returns N, the sum of all cells (Eq. 6).
	Total() int64
	// MarginalCount returns the marginal count of a partial assignment:
	// the sum of all cells agreeing with values on the axes of vars
	// (ascending axis order).
	MarginalCount(vars VarSet, values []int) (int64, error)
}

// CellVisitor is the optional companion of Counts for backends that can
// enumerate their occupied cells — used by goodness-of-fit and log-loss
// scoring, which sum over observed cells only. The coordinate slice passed
// to fn is reused between calls. Both *Table and *Sparse implement it.
type CellVisitor interface {
	EachCell(fn func(cell []int, count int64))
}

// EachCellDeterministic returns a deterministic occupied-cell enumerator
// for the backend — sparse tables visit in ascending packed-key order,
// dense tables row-major — so floating-point accumulations over the cells
// reproduce run to run. Backends that cannot enumerate return an error.
func EachCellDeterministic(c Counts) (func(fn func(cell []int, count int64)), error) {
	switch t := c.(type) {
	case *Sparse:
		return t.EachCellSorted, nil
	case CellVisitor:
		return t.EachCell, nil
	}
	return nil, fmt.Errorf("contingency: counts backend %T cannot enumerate occupied cells", c)
}

// consistencyChecker is the optional self-check hook the discovery engine
// probes for on its input.
type consistencyChecker interface {
	CheckConsistency() error
}

// CardsOf collects every axis cardinality of a Counts backend into a slice.
func CardsOf(c Counts) []int {
	out := make([]int, c.R())
	for i := range out {
		out[i] = c.Card(i)
	}
	return out
}

var (
	_ Counts      = (*Table)(nil)
	_ Counts      = (*Sparse)(nil)
	_ CellVisitor = (*Table)(nil)
	_ CellVisitor = (*Sparse)(nil)
)
