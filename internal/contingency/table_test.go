package contingency

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

// memoTable builds the exact contingency table of the memo's Figure 1:
// axes A (smoking, 3 values), B (cancer, 2), C (family history, 2), N=3428.
func memoTable(t *testing.T) *Table {
	t.Helper()
	tab, err := New([]string{"A", "B", "C"}, []int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// counts[i][j][k]: Figure 1a is k=0 (family history yes),
	// Figure 1b is k=1 (no).
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("zero attributes accepted")
	}
	if _, err := New(nil, []int{2, 0}); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := New([]string{"x"}, []int{2, 2}); err == nil {
		t.Error("name/card mismatch accepted")
	}
	if _, err := New(nil, []int{1 << 15, 1 << 15}); err == nil {
		t.Error("oversized table accepted")
	}
	tab, err := New(nil, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name(0) != "v0" || tab.Name(1) != "v1" {
		t.Errorf("default names = %v", tab.Names())
	}
}

func TestMemoTableTotals(t *testing.T) {
	tab := memoTable(t)
	if tab.Total() != 3428 {
		t.Fatalf("N = %d, memo says 3428", tab.Total())
	}
	if tab.NumCells() != 12 {
		t.Errorf("cells = %d, want 12", tab.NumCells())
	}
	// Spot check the memo's highlighted cell: N^ABC_121 = 410
	// (smoker, no cancer, family history yes).
	if v := tab.MustAt(0, 1, 0); v != 410 {
		t.Errorf("N_121 = %d, memo says 410", v)
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestSetAddObserve(t *testing.T) {
	tab := MustNew(nil, []int{2, 2})
	if err := tab.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(4, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v := tab.MustAt(0, 1); v != 5 {
		t.Errorf("count = %d, want 5", v)
	}
	if tab.Total() != 5 {
		t.Errorf("total = %d, want 5", tab.Total())
	}
	if err := tab.Set(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Total() != 2 {
		t.Errorf("total after Set = %d, want 2", tab.Total())
	}
	if err := tab.Add(-3, 0, 1); err == nil {
		t.Error("negative cell accepted")
	}
	if err := tab.Set(-1, 0, 1); err == nil {
		t.Error("negative Set accepted")
	}
}

func TestIndexValidation(t *testing.T) {
	tab := MustNew(nil, []int{2, 3})
	if _, err := tab.At(0); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := tab.At(0, 3); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, err := tab.At(-1, 0); err == nil {
		t.Error("negative coordinate accepted")
	}
	if err := tab.Observe(2, 0); err == nil {
		t.Error("observe out of range accepted")
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	tab := MustNew(nil, []int{3, 2, 4})
	cell := make([]int, 3)
	for off := 0; off < tab.NumCells(); off++ {
		if err := tab.Unflatten(off, cell); err != nil {
			t.Fatal(err)
		}
		back, err := tab.FlatIndex(cell)
		if err != nil {
			t.Fatal(err)
		}
		if back != off {
			t.Fatalf("roundtrip %d -> %v -> %d", off, cell, back)
		}
	}
	if err := tab.Unflatten(-1, cell); err == nil {
		t.Error("negative flat index accepted")
	}
	if err := tab.Unflatten(tab.NumCells(), cell); err == nil {
		t.Error("past-end flat index accepted")
	}
	if err := tab.Unflatten(0, make([]int, 2)); err == nil {
		t.Error("short destination accepted")
	}
}

func TestEachCellVisitsAllOnce(t *testing.T) {
	tab := memoTable(t)
	visits := 0
	var sum int64
	tab.EachCell(func(cell []int, count int64) {
		visits++
		sum += count
	})
	if visits != 12 {
		t.Errorf("visited %d cells, want 12", visits)
	}
	if sum != 3428 {
		t.Errorf("cell sum %d, want 3428", sum)
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := memoTable(t)
	cp := tab.Clone()
	if !tab.Equal(cp) {
		t.Fatal("clone not equal")
	}
	if err := cp.Add(1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if tab.Equal(cp) {
		t.Error("mutating clone affected original (or Equal is broken)")
	}
	if tab.MustAt(0, 0, 0) != 130 {
		t.Error("original mutated")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	tab := memoTable(t)
	p, err := tab.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("probabilities sum to %g", sum)
	}
	empty := MustNew(nil, []int{2})
	if _, err := empty.Probabilities(); err == nil {
		t.Error("empty table probabilities accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := memoTable(t)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(&back) {
		t.Error("JSON round trip lost data")
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	var tab Table
	cases := []string{
		`{"names":["a"],"cards":[2],"counts":[1,2,3]}`, // wrong count length
		`{"names":["a"],"cards":[2],"counts":[1,-1]}`,  // negative count
		`{"names":["a","b"],"cards":[2],"counts":[1,1]}`,
		`{"names":[],"cards":[],"counts":[]}`,
		`not json`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &tab); err == nil {
			t.Errorf("corrupt JSON accepted: %s", c)
		}
	}
}

func TestTableString(t *testing.T) {
	tab := memoTable(t)
	s := tab.String()
	if !strings.Contains(s, "N=3428") || !strings.Contains(s, "A:3") {
		t.Errorf("String = %q", s)
	}
}

func TestTotalInvariantProperty(t *testing.T) {
	// Any sequence of valid Set/Add operations keeps total == Σ cells.
	f := func(ops []struct {
		Cell  uint8
		Delta uint8
	}) bool {
		tab := MustNew(nil, []int{2, 3})
		for _, op := range ops {
			cell := make([]int, 2)
			tab.Unflatten(int(op.Cell)%tab.NumCells(), cell)
			tab.Add(int64(op.Delta), cell...)
		}
		return tab.CheckConsistency() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
