package contingency

import (
	"testing"
	"testing/quick"
)

func TestVarSetBasics(t *testing.T) {
	s := NewVarSet(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) {
		t.Error("membership wrong")
	}
	if s.Has(1) || s.Has(63) || s.Has(-1) || s.Has(64) {
		t.Error("non-members reported present")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := s.String(); got != "{0,2,5}" {
		t.Errorf("String = %q", got)
	}
	members := s.Members()
	if len(members) != 3 || members[0] != 0 || members[1] != 2 || members[2] != 5 {
		t.Errorf("Members = %v", members)
	}
}

func TestVarSetAddRemove(t *testing.T) {
	var s VarSet
	if !s.Empty() {
		t.Error("zero value should be empty")
	}
	s = s.Add(3).Add(7)
	if s.Len() != 2 || !s.Has(3) || !s.Has(7) {
		t.Errorf("after adds: %v", s)
	}
	s = s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Errorf("after remove: %v", s)
	}
	// Removing an absent member is a no-op.
	if s.Remove(50) != s {
		t.Error("removing absent member changed the set")
	}
}

func TestVarSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(MaxVars) did not panic")
		}
	}()
	VarSet{}.Add(MaxVars)
}

func TestVarSetAlgebra(t *testing.T) {
	a := NewVarSet(0, 1, 2)
	b := NewVarSet(1, 2, 3)
	if got := a.Union(b); got != NewVarSet(0, 1, 2, 3) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b); got != NewVarSet(1, 2) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b); got != NewVarSet(0) {
		t.Errorf("minus = %v", got)
	}
	if !NewVarSet(1).SubsetOf(a) || !a.SubsetOf(a) {
		t.Error("subset relation wrong")
	}
	if a.ProperSubsetOf(a) {
		t.Error("a set is not a proper subset of itself")
	}
	if !NewVarSet(0, 1).ProperSubsetOf(a) {
		t.Error("proper subset not detected")
	}
}

func TestVarSetSubsets(t *testing.T) {
	s := NewVarSet(1, 4)
	subs := s.Subsets()
	if len(subs) != 4 {
		t.Fatalf("subsets of 2-set: %d, want 4", len(subs))
	}
	seen := map[VarSet]bool{}
	for _, x := range subs {
		seen[x] = true
		if !x.SubsetOf(s) {
			t.Errorf("%v not a subset of %v", x, s)
		}
	}
	for _, want := range []VarSet{{}, NewVarSet(1), NewVarSet(4), s} {
		if !seen[want] {
			t.Errorf("missing subset %v", want)
		}
	}
	prop := s.ProperSubsets()
	if len(prop) != 2 {
		t.Fatalf("proper subsets: %d, want 2", len(prop))
	}
	for _, x := range prop {
		if x.Empty() || x == s {
			t.Errorf("improper subset %v in ProperSubsets", x)
		}
	}
}

func TestVarSetSubsetsCountProperty(t *testing.T) {
	f := func(raw uint16) bool {
		s := VarSetFromMask(uint64(raw)) // up to 16 members
		return len(s.Subsets()) == 1<<uint(s.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombinations(t *testing.T) {
	// C(4,2) = 6 families, all distinct, all of order 2.
	combos := Combinations(4, 2)
	if len(combos) != 6 {
		t.Fatalf("Combinations(4,2) = %d sets, want 6", len(combos))
	}
	seen := map[VarSet]bool{}
	for _, c := range combos {
		if c.Len() != 2 {
			t.Errorf("combination %v has order %d", c, c.Len())
		}
		if seen[c] {
			t.Errorf("duplicate combination %v", c)
		}
		seen[c] = true
	}
	// Lexicographic first and last.
	if combos[0] != NewVarSet(0, 1) {
		t.Errorf("first = %v, want {0,1}", combos[0])
	}
	if combos[len(combos)-1] != NewVarSet(2, 3) {
		t.Errorf("last = %v, want {2,3}", combos[len(combos)-1])
	}
}

func TestCombinationsEdge(t *testing.T) {
	if got := Combinations(3, 0); len(got) != 1 || !got[0].Empty() {
		t.Errorf("C(3,0) = %v", got)
	}
	if got := Combinations(3, 3); len(got) != 1 || got[0] != NewVarSet(0, 1, 2) {
		t.Errorf("C(3,3) = %v", got)
	}
	if Combinations(3, 4) != nil {
		t.Error("r > n should be nil")
	}
	if Combinations(-1, 0) != nil || Combinations(3, -1) != nil {
		t.Error("negative arguments should be nil")
	}
}

func TestCombinationsCountProperty(t *testing.T) {
	choose := func(n, r int) int {
		if r < 0 || r > n {
			return 0
		}
		c := 1
		for i := 0; i < r; i++ {
			c = c * (n - i) / (i + 1)
		}
		return c
	}
	f := func(nSeed, rSeed uint8) bool {
		n := int(nSeed % 12)
		r := int(rSeed % 12)
		got := Combinations(n, r)
		if r > n {
			return got == nil
		}
		return len(got) == choose(n, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
