package contingency

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randomRows draws n full-width cells over the given cardinalities.
func randomRows(rng *rand.Rand, cards []int, n int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		cell := make([]int, len(cards))
		for j, c := range cards {
			cell[j] = rng.Intn(c)
		}
		rows[i] = cell
	}
	return rows
}

// warmAllPairCaches issues one marginal query per attribute pair so the
// per-family projection cache is populated before mutation.
func warmAllPairCaches(t *testing.T, s *Sparse) {
	t.Helper()
	for i := 0; i < s.R(); i++ {
		for j := i + 1; j < s.R(); j++ {
			if _, err := s.MarginalCount(NewVarSet(i, j), []int{0, 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSparseAddZeroDeltaKeepsCache is the delta-0 regression: Add(0, ...)
// must be a pure validation, not a cache invalidation (the pre-fix code
// dropped every cached projection on any Add, zero included).
func TestSparseAddZeroDeltaKeepsCache(t *testing.T) {
	s, err := NewSparse([]string{"A", "B", "C"}, []int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	warmAllPairCaches(t, s)
	cached := s.CachedProjections()
	if cached == 0 {
		t.Fatal("no projections cached after marginal queries")
	}
	if err := s.Add(0, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedProjections(); got != cached {
		t.Errorf("Add(0) changed cached projections: %d -> %d", cached, got)
	}
	// Zero delta with bad coordinates must still validate.
	if err := s.Add(0, 9, 9, 9); err == nil {
		t.Error("Add(0) accepted out-of-range coordinates")
	}
	if s.Total() != 1 {
		t.Errorf("Add(0) changed total to %d", s.Total())
	}
}

// TestSparseAddMaintainsCacheInPlace: a single Add keeps the cache alive
// and bit-identical to rebuilt projections.
func TestSparseAddMaintainsCacheInPlace(t *testing.T) {
	s, err := NewSparse(nil, []int{3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(2, 1, 3); err != nil {
		t.Fatal(err)
	}
	warmAllPairCaches(t, s)
	cached := s.CachedProjections()
	if err := s.Add(5, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(-1, 2, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedProjections(); got != cached {
		t.Errorf("Add dropped caches: %d -> %d", cached, got)
	}
	if err := errors.Join(s.CheckConsistency(), s.VerifyProjections()); err != nil {
		t.Errorf("cache diverged after Add: %v", err)
	}
	if n, err := s.MarginalCount(NewVarSet(0, 1), []int{1, 0}); err != nil || n != 5 {
		t.Errorf("cached marginal after Add = %d, %v; want 5", n, err)
	}
}

// TestSparseApplyBatchBitIdenticalToUnion is the property test of the
// incremental-cache contract: ObserveBatch part one, warm every pair cache,
// ApplyBatch part two, and every cached marginal must be bit-identical to a
// fresh table built from the union of the rows.
func TestSparseApplyBatchBitIdenticalToUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		r := 2 + rng.Intn(4)
		cards := make([]int, r)
		for i := range cards {
			cards[i] = 2 + rng.Intn(3)
		}
		part1 := randomRows(rng, cards, 30+rng.Intn(40))
		part2 := randomRows(rng, cards, 1+rng.Intn(30))

		inc, err := NewSparse(nil, cards)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.ObserveBatch(part1); err != nil {
			t.Fatal(err)
		}
		warmAllPairCaches(t, inc)
		deltas := make([]CellDelta, len(part2))
		for i, row := range part2 {
			deltas[i] = CellDelta{Cell: row, Delta: 1}
		}
		// Mix in some removals of part1 rows, never removing a cell more
		// often than part1 observed it so counts stay non-negative.
		remaining := make(map[string]int)
		for _, row := range part1 {
			remaining[fmt.Sprint(row)]++
		}
		for i := 0; i < len(part1)/4; i++ {
			row := part1[rng.Intn(len(part1))]
			if k := fmt.Sprint(row); remaining[k] > 0 {
				remaining[k]--
				deltas = append(deltas, CellDelta{Cell: row, Delta: -1})
			}
		}
		if err := inc.ApplyBatch(deltas); err != nil {
			t.Fatal(err)
		}
		if err := errors.Join(inc.CheckConsistency(), inc.VerifyProjections()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		fresh, err := NewSparse(nil, cards)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ObserveBatch(part1); err != nil {
			t.Fatal(err)
		}
		if err := fresh.ApplyBatch(deltas[len(part2):]); err != nil {
			t.Fatal(err)
		}
		if err := fresh.ObserveBatch(part2); err != nil {
			t.Fatal(err)
		}
		if inc.Total() != fresh.Total() || inc.Occupied() != fresh.Occupied() {
			t.Fatalf("trial %d: total/occupied %d/%d vs %d/%d",
				trial, inc.Total(), inc.Occupied(), fresh.Total(), fresh.Occupied())
		}
		// Every pair family, every value: cached incremental read equals
		// the fresh table's count exactly.
		values := make([]int, 2)
		for i := 0; i < r; i++ {
			for j := i + 1; j < r; j++ {
				vs := NewVarSet(i, j)
				for vi := 0; vi < cards[i]; vi++ {
					for vj := 0; vj < cards[j]; vj++ {
						values[0], values[1] = vi, vj
						got, err := inc.MarginalCount(vs, values)
						if err != nil {
							t.Fatal(err)
						}
						want, err := fresh.MarginalCount(vs, values)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("trial %d: marginal %v=%v: incremental %d, fresh %d",
								trial, vs, values, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSparseApplyBatchRejectsBadBatchUntouched: a batch with an invalid
// coordinate or a negative-going aggregate leaves counts, total, and caches
// exactly as they were.
func TestSparseApplyBatchRejectsBadBatchUntouched(t *testing.T) {
	s, err := NewSparse(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(1, 1); err != nil {
		t.Fatal(err)
	}
	warmAllPairCaches(t, s)

	// Out-of-range coordinate.
	err = s.ApplyBatch([]CellDelta{
		{Cell: []int{0, 0}, Delta: 3},
		{Cell: []int{5, 0}, Delta: 1},
	})
	if err == nil {
		t.Fatal("batch with bad coordinates accepted")
	}
	// Aggregate negative: +1 then -3 on the same cell.
	err = s.ApplyBatch([]CellDelta{
		{Cell: []int{1, 1}, Delta: 1},
		{Cell: []int{1, 1}, Delta: -3},
	})
	if err == nil {
		t.Fatal("negative-going batch accepted")
	}
	if s.Total() != 1 {
		t.Errorf("rejected batch mutated total: %d", s.Total())
	}
	if n, _ := s.At(1, 1); n != 1 {
		t.Errorf("rejected batch mutated cell: %d", n)
	}
	if err := errors.Join(s.CheckConsistency(), s.VerifyProjections()); err != nil {
		t.Errorf("caches inconsistent after rejected batch: %v", err)
	}
}

// TestSparseApplyBatchAggregatesDuplicates: duplicate cells in one batch
// are combined, including a +k/-k pair that must cancel to a no-op.
func TestSparseApplyBatchAggregatesDuplicates(t *testing.T) {
	s, err := NewSparse(nil, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]CellDelta{
		{Cell: []int{0, 1}, Delta: 2},
		{Cell: []int{0, 1}, Delta: 3},
		{Cell: []int{1, 2}, Delta: 4},
		{Cell: []int{1, 2}, Delta: -4},
	}); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.At(0, 1); n != 5 {
		t.Errorf("aggregated cell = %d, want 5", n)
	}
	if n, _ := s.At(1, 2); n != 0 {
		t.Errorf("cancelled cell = %d, want 0", n)
	}
	if s.Occupied() != 1 || s.Total() != 5 {
		t.Errorf("occupied %d total %d, want 1/5", s.Occupied(), s.Total())
	}
}

// TestObserveBatchMatchesLoopObserve: batch ingest counts exactly like a
// per-row Observe loop.
func TestObserveBatchMatchesLoopObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cards := []int{3, 2, 2, 4}
	rows := randomRows(rng, cards, 200)
	batched, _ := NewSparse(nil, cards)
	looped, _ := NewSparse(nil, cards)
	if err := batched.ObserveBatch(rows); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := looped.Observe(row...); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Total() != looped.Total() || batched.Occupied() != looped.Occupied() {
		t.Fatalf("batched %d/%d vs looped %d/%d",
			batched.Total(), batched.Occupied(), looped.Total(), looped.Occupied())
	}
	looped.EachCell(func(cell []int, count int64) {
		if n, _ := batched.At(cell...); n != count {
			t.Errorf("cell %v: batched %d, looped %d", cell, n, count)
		}
	})
}

// TestProjectionCacheBound: under a tight byte budget the projection cache
// evicts least-recently-used families instead of growing without bound, the
// eviction counter advances, and every marginal — cached, evicted, or
// rebuilt — still matches the occupied-cell scan.
func TestProjectionCacheBound(t *testing.T) {
	cards := []int{3, 3, 3, 3, 3, 3}
	s, err := NewSparse(nil, cards)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, row := range randomRows(rng, cards, 200) {
		if err := s.Observe(row...); err != nil {
			t.Fatal(err)
		}
	}
	// Each pair entry costs ~200 bytes and the cache spreads its budget
	// over its shards: this budget fits one entry per shard, so shards
	// that attract two or more of the 15 families must evict.
	s.SetProjectionCacheBytes(5 << 10)
	if got := s.CachedProjections(); got != 0 {
		t.Fatalf("resize did not start cold: %d entries", got)
	}
	var families []VarSet
	for i := 0; i < s.R(); i++ {
		for j := i + 1; j < s.R(); j++ {
			families = append(families, NewVarSet(i, j))
		}
	}
	for round := 0; round < 3; round++ {
		for _, vs := range families {
			members := vs.Members()
			values := []int{rng.Intn(cards[members[0]]), rng.Intn(cards[members[1]])}
			got, err := s.MarginalCount(vs, values)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.marginalCountScan(members, values); got != want {
				t.Fatalf("marginal %v%v = %d, scan says %d", vs, values, got, want)
			}
		}
	}
	if ev := s.ProjectionCacheEvictions(); ev == 0 {
		t.Error("cycling more families than fit evicted nothing")
	}
	if err := s.VerifyProjections(); err != nil {
		t.Error(err)
	}
	// The bound holds: cached entries cost more than 0 bytes each, so the
	// entry count cannot exceed capacity/cost; sanity-check it is small.
	if got := s.CachedProjections(); got >= len(families) {
		t.Errorf("%d of %d families cached despite a 1 KiB budget", got, len(families))
	}
}
