package contingency

import (
	"fmt"

	"pka/internal/wire"
)

// Binary codec for the snapshot format (internal/snapshot): tables encode
// their shape and exact integer counts, and a sparse table additionally
// carries its per-family dense-projection cache so a restored replica
// starts with the same warm marginals the saved process had. Encodings are
// canonical — sparse cells sort by packed key, cached projections by
// family order — so Save→Load→Save reproduces identical bytes.
//
// Two sparse wire forms exist. Version 1 (the single-word era) stored each
// cell key as one uint64 and each projection family as a uvarint bitmask;
// version 2 stores KeyWords() uint64 words per cell and each family as its
// member list, so any schema width round-trips. Decoding accepts both.

// encodeShape writes the shared axis header: labels then cardinalities.
func encodeShape(w *wire.Writer, names []string, cards []int) {
	w.Int(len(names))
	for _, n := range names {
		w.String(n)
	}
	w.Ints(cards)
}

// decodeShape reads the axis header written by encodeShape.
func decodeShape(r *wire.Reader) (names []string, cards []int) {
	n := r.Int()
	if r.Err() != nil || n < 0 || n > MaxVars {
		return nil, nil
	}
	names = make([]string, n)
	for i := range names {
		names[i] = r.String()
	}
	cards = r.Ints()
	return names, cards
}

// EncodeTable appends a dense table: shape, then every cell count in
// row-major order (the count of cells is derived from the cardinalities).
func EncodeTable(w *wire.Writer, t *Table) {
	encodeShape(w, t.names, t.cards)
	for _, c := range t.counts {
		w.Uvarint(uint64(c))
	}
}

// DecodeTable reads a dense table written by EncodeTable, revalidating the
// shape and recomputing the total from the decoded counts.
func DecodeTable(r *wire.Reader) (*Table, error) {
	names, cards := decodeShape(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("contingency: decoding dense shape: %w", err)
	}
	t, err := New(names, cards)
	if err != nil {
		return nil, err
	}
	for i := range t.counts {
		c := r.Uvarint()
		t.counts[i] = int64(c)
		t.total += int64(c)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("contingency: decoding dense counts: %w", err)
	}
	if t.total < 0 {
		return nil, fmt.Errorf("contingency: decoded counts overflow int64 total")
	}
	return t, nil
}

// wordsLess compares equal-length packed keys as multi-word integers
// (words least-significant first).
func wordsLess(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// EncodeSparse appends a sparse table in the version-2 form: shape, the
// occupied cells as (packed key words, count) pairs in ascending key order,
// and the cached dense projections as (family member list, row-major
// counts) in ascending family order. On single-word schemas the cell
// section is byte-identical to version 1. Read-only with respect to the
// table; safe alongside concurrent readers.
func EncodeSparse(w *wire.Writer, s *Sparse) {
	encodeShape(w, s.names, s.cards)
	w.Int(s.store.occupied())
	words := make([]uint64, s.keyWords)
	s.EachCellSorted(func(cell []int, c int64) {
		s.packWords(cell, words)
		for _, wd := range words {
			w.Uint64(wd)
		}
		w.Uvarint(uint64(c))
	})
	entries := s.projectionEntries()
	w.Int(len(entries))
	for _, e := range entries {
		w.Ints(e.members)
		// Shape is derivable from the parent table, so only counts travel.
		for _, c := range e.t.counts {
			w.Uvarint(uint64(c))
		}
	}
}

// DecodeSparse reads a sparse table written by EncodeSparse (or, for
// version 1, by the single-word writer). Every packed key is unpacked and
// revalidated against the cardinalities, counts must be positive, and each
// restored projection must be cacheable and account for the full total —
// so a corrupt payload fails here rather than producing a silently
// inconsistent table.
func DecodeSparse(r *wire.Reader, version int) (*Sparse, error) {
	names, cards := decodeShape(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("contingency: decoding sparse shape: %w", err)
	}
	s, err := NewSparse(names, cards)
	if err != nil {
		return nil, err
	}
	keyWords := s.keyWords
	if version == 1 {
		if keyWords != 1 {
			return nil, fmt.Errorf(
				"contingency: version-1 sparse payload declares a schema needing %d key words", keyWords)
		}
	}
	ncells := r.Int()
	if r.Err() != nil || ncells < 0 || ncells > r.Remaining() {
		return nil, fmt.Errorf("contingency: decoding sparse cells: %w", wire.ErrTruncated)
	}
	cell := make([]int, len(cards))
	words := make([]uint64, keyWords)
	rewords := make([]uint64, keyWords)
	prev := make([]uint64, keyWords)
	havePrev := false
	for i := 0; i < ncells; i++ {
		for j := range words {
			words[j] = r.Uint64()
		}
		c := int64(r.Uvarint())
		if r.Err() != nil {
			break
		}
		if havePrev && !wordsLess(prev, words) {
			return nil, fmt.Errorf("contingency: sparse cell keys not strictly ascending")
		}
		copy(prev, words)
		havePrev = true
		s.unpackWords(words, cell)
		if err := s.checkCell(cell); err != nil {
			return nil, fmt.Errorf("contingency: sparse cell key %#x does not unpack to a valid cell", words)
		}
		s.packWords(cell, rewords)
		if !slicesEqual(rewords, words) {
			return nil, fmt.Errorf("contingency: sparse cell key %#x does not unpack to a valid cell", words)
		}
		if c <= 0 {
			return nil, fmt.Errorf("contingency: sparse cell %v holds non-positive count %d", cell, c)
		}
		s.store.add(cell, c)
		s.total += c
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("contingency: decoding sparse cells: %w", err)
	}
	nprojs := r.Int()
	if r.Err() != nil || nprojs < 0 || nprojs > r.Remaining() {
		return nil, fmt.Errorf("contingency: decoding projection cache: %w", wire.ErrTruncated)
	}
	var prevMask VarSet
	for i := 0; i < nprojs; i++ {
		var vs VarSet
		if version == 1 {
			vs = VarSetFromMask(r.Uvarint())
		} else {
			members := r.Ints()
			for _, p := range members {
				if p < 0 || p >= MaxVars {
					return nil, fmt.Errorf("contingency: projection member %d out of range", p)
				}
				vs = vs.Add(p)
			}
		}
		if r.Err() != nil {
			break
		}
		if (i > 0 && !prevMask.Less(vs)) || vs.Empty() {
			return nil, fmt.Errorf("contingency: projection families not strictly ascending")
		}
		prevMask = vs
		members := vs.Members()
		if members[len(members)-1] >= len(cards) {
			return nil, fmt.Errorf("contingency: projection family %v exceeds table's %d axes", vs, len(cards))
		}
		size := 1
		subNames := make([]string, len(members))
		subCards := make([]int, len(members))
		for j, p := range members {
			subNames[j] = s.names[p]
			subCards[j] = s.cards[p]
			size *= s.cards[p]
		}
		if size > maxCachedProjCells {
			return nil, fmt.Errorf("contingency: projection family %v exceeds cache limit", vs)
		}
		t, err := New(subNames, subCards)
		if err != nil {
			return nil, err
		}
		for j := range t.counts {
			c := int64(r.Uvarint())
			t.counts[j] = c
			t.total += c
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("contingency: decoding projection %v: %w", vs, err)
		}
		if t.total != s.total {
			return nil, fmt.Errorf("contingency: projection %v total %d != table total %d", vs, t.total, s.total)
		}
		s.publishProjection(vs, t)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("contingency: decoding projection cache: %w", err)
	}
	return s, nil
}

func slicesEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
