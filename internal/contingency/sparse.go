package contingency

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"pka/internal/memo"
)

// Sparse is a contingency table held as a hash of occupied cells — the
// representation for wide schemas whose dense joint space would not fit in
// memory (the memo's "masses of data" over many attributes). Observed data
// occupies at most N distinct cells regardless of the joint-space size.
//
// Discovery itself solves over dense projected spaces; the sparse table's
// job is tabulation and projection: Project extracts the dense marginal
// table over any small attribute subset.
//
// Cell keys are packed bit fields over however many 64-bit words the
// schema needs. Schemas that fit one word (Σ ceil(log2(card)) <= 64 — the
// old hard cap) keep the original single-uint64 hash as a fast path;
// two-word schemas use a fixed [2]uint64 key; anything wider packs the
// words into a comparable string key. All three specializations sit behind
// the same Counts contract, projection cache, and batch-mutation paths.
type Sparse struct {
	names []string
	cards []int
	// fields maps each attribute to its packed bit field: a word index
	// plus shift/mask within that word (fields never straddle words).
	fields   []keyField
	keyWords int
	store    cellStore
	total    int64

	// subScratch is the mutation-path projection scratch; safe because
	// mutation must not overlap any other call (see the contract below).
	subScratch []int

	// projCache is the per-family dense-projection cache behind
	// MarginalCount: the first marginal query over an attribute family
	// projects the occupied cells onto that family once (O(occupied)),
	// and every later query over the same family is a dense O(1) lookup.
	// Mutation (Observe/Add/ApplyBatch/ObserveBatch) maintains every cached
	// projection in place — O(families) per changed cell instead of an
	// O(occupied) re-projection per family on the next read — so the cache
	// survives streaming ingest. Capacity pressure can retire entries
	// (SetProjectionCacheBytes); a retired family simply re-projects on its
	// next query. projMu serializes publication so a family only ever has
	// one live table (first publication wins) — a requirement of in-place
	// maintenance, which updates the cached table, not copies of it.
	// Concurrency contract: mutation must not overlap any other call — it
	// writes cached tables in place — while read-only use, MarginalCount
	// included, is safe from any number of goroutines.
	projMu    sync.Mutex
	projCache *memo.Cache
}

// maxCachedProjCells bounds the dense size of a cached projection; marginal
// queries over families wider than this fall back to scanning the occupied
// cells instead of materializing a large dense table per family.
const maxCachedProjCells = 1 << 16

// defaultProjCacheBytes is the projection cache's capacity when
// SetProjectionCacheBytes was never called — generous enough that realistic
// discovery scans never feel it, while still bounding a pathological
// many-family workload.
const defaultProjCacheBytes = 256 << 20

// projEntry is one cached projection: the family, its member positions
// (pre-expanded so the per-cell mutation path need not re-derive them), and
// the dense table. The table is deliberately mutated in place after
// insertion — safe under the Sparse concurrency contract, which gives
// mutation exclusive access.
type projEntry struct {
	vs      VarSet
	members []int
	t       *Table
}

// projEntryOverhead approximates a projEntry's bookkeeping bytes beyond the
// table counts and member list.
const projEntryOverhead = 96

// keyField locates one attribute's coordinate inside the packed multi-word
// cell key.
type keyField struct {
	word  int
	shift uint
	mask  uint64
}

// buildKeyLayout assigns each attribute a bit field, packing fields
// tightly but never across a word boundary — so single-word schemas get
// the exact layout (and therefore the exact keys and canonical cell order)
// the old uint64 implementation produced.
func buildKeyLayout(cards []int) (fields []keyField, nwords int, err error) {
	fields = make([]keyField, len(cards))
	word, used := 0, uint(0)
	for i, c := range cards {
		if c < 1 {
			return nil, 0, fmt.Errorf("contingency: attribute %d has cardinality %d", i, c)
		}
		b := uint(bits.Len64(uint64(c - 1)))
		if b == 0 {
			b = 1
		}
		if used+b > 64 {
			word++
			used = 0
		}
		fields[i] = keyField{word: word, shift: used, mask: (1 << b) - 1}
		used += b
	}
	return fields, word + 1, nil
}

// NewSparse creates an empty sparse table. Any schema width is accepted:
// the packed cell key spans as many 64-bit words as Σ ceil(log2(card))
// requires, with single-word schemas (the old 64-bit ceiling) served by
// the original fast path. Only the MaxVars attribute-count sanity ceiling
// applies.
func NewSparse(names []string, cards []int) (*Sparse, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("contingency: sparse table needs at least one attribute")
	}
	if len(cards) > MaxVars {
		return nil, fmt.Errorf(
			"contingency: schema has %d attributes, the multi-word sparse backend caps out at %d",
			len(cards), MaxVars)
	}
	if names != nil && len(names) != len(cards) {
		return nil, fmt.Errorf("contingency: %d names for %d attributes", len(names), len(cards))
	}
	fields, nwords, err := buildKeyLayout(cards)
	if err != nil {
		return nil, err
	}
	s := &Sparse{
		cards:      append([]int(nil), cards...),
		fields:     fields,
		keyWords:   nwords,
		subScratch: make([]int, len(cards)),
		projCache:  memo.New(defaultProjCacheBytes),
	}
	switch nwords {
	case 1:
		s.store = &cellMap[uint64, key64]{codec: key64{fields: fields}, m: make(map[uint64]int64)}
	case 2:
		s.store = &cellMap[[2]uint64, key128]{codec: key128{fields: fields}, m: make(map[[2]uint64]int64)}
	default:
		s.store = &cellMap[string, keyWide]{codec: keyWide{fields: fields, nwords: nwords}, m: make(map[string]int64)}
	}
	if names == nil {
		s.names = make([]string, len(cards))
		for i := range s.names {
			s.names[i] = fmt.Sprintf("v%d", i)
		}
	} else {
		s.names = append([]string(nil), names...)
	}
	return s, nil
}

// R returns the number of attributes.
func (s *Sparse) R() int { return len(s.cards) }

// Card returns the cardinality of axis i.
func (s *Sparse) Card(i int) int { return s.cards[i] }

// Cards returns a copy of all axis cardinalities.
func (s *Sparse) Cards() []int { return append([]int(nil), s.cards...) }

// Names returns a copy of the axis labels.
func (s *Sparse) Names() []string { return append([]string(nil), s.names...) }

// Total returns N.
func (s *Sparse) Total() int64 { return s.total }

// Occupied returns the number of distinct non-zero cells.
func (s *Sparse) Occupied() int { return s.store.occupied() }

// KeyWords returns how many 64-bit words the packed cell key spans — 1 for
// every schema the old single-word representation could hold.
func (s *Sparse) KeyWords() int { return s.keyWords }

// checkCell validates a cell's coordinates.
func (s *Sparse) checkCell(cell []int) error {
	if len(cell) != len(s.cards) {
		return fmt.Errorf("contingency: cell has %d coordinates, table has %d axes",
			len(cell), len(s.cards))
	}
	for i, v := range cell {
		if v < 0 || v >= s.cards[i] {
			return fmt.Errorf("contingency: coordinate %d = %d out of range [0,%d)",
				i, v, s.cards[i])
		}
	}
	return nil
}

// packWords packs a validated cell into words[0:KeyWords()].
func (s *Sparse) packWords(cell []int, words []uint64) {
	for i := range words[:s.keyWords] {
		words[i] = 0
	}
	for i, f := range s.fields {
		words[f.word] |= uint64(cell[i]) << f.shift
	}
}

// unpackWords is the inverse of packWords.
func (s *Sparse) unpackWords(words []uint64, cell []int) {
	for i, f := range s.fields {
		cell[i] = int((words[f.word] >> f.shift) & f.mask)
	}
}

// Observe records one sample.
func (s *Sparse) Observe(cell ...int) error { return s.Add(1, cell...) }

// Add increments a cell by delta, deleting it when it reaches zero. Cached
// marginal projections are updated in place, not dropped; a zero delta is a
// pure validation (it never touches cells or caches). Mutation must not
// overlap other calls (see the concurrency contract on Sparse).
func (s *Sparse) Add(delta int64, cell ...int) error {
	if err := s.checkCell(cell); err != nil {
		return err
	}
	if delta == 0 {
		return nil
	}
	if s.store.get(cell)+delta < 0 {
		return fmt.Errorf("contingency: cell %v would go negative", cell)
	}
	s.store.add(cell, delta)
	s.total += delta
	s.applyToProjections(cell, delta)
	return nil
}

// applyToProjections folds one cell delta into every cached projection. The
// coordinates must already be validated; projection coordinates are a subset
// of the cell's, so the dense adds cannot fail — if one somehow does, the
// stale table is dropped rather than left wrong (Each deletes on false).
// The in-place table writes are safe because mutation holds exclusive
// access to the Sparse by contract.
func (s *Sparse) applyToProjections(cell []int, delta int64) {
	sub := s.subScratch
	s.projCache.Each(func(_ string, v any) bool {
		e := v.(*projEntry)
		for i, p := range e.members {
			sub[i] = cell[p]
		}
		return e.t.Add(delta, sub[:len(e.members)]...) == nil
	})
}

// CellDelta is one batched sparse-table mutation: a full-width cell and a
// signed count delta.
type CellDelta struct {
	Cell  []int
	Delta int64
}

// ApplyBatch applies a group of cell deltas as one mutation. The whole batch
// is validated before anything is written — bad coordinates or a cell count
// that would go negative reject the batch with the table untouched — and
// cached marginal projections are updated in place, one O(families) pass per
// distinct changed cell instead of an O(occupied) re-projection per family
// on the next read. Updated caches are bit-identical to rebuilt ones
// (CheckConsistency verifies this invariant).
func (s *Sparse) ApplyBatch(deltas []CellDelta) error {
	if len(deltas) == 0 {
		return nil
	}
	return s.store.applyBatch(s, deltas)
}

// ObserveBatch records one sample per row, atomically: either every row is
// counted or (on a bad coordinate) none are. Cached projections are updated
// in place, making it the ingest step of the streaming/incremental-refit
// pipeline.
func (s *Sparse) ObserveBatch(rows [][]int) error {
	if len(rows) == 0 {
		return nil
	}
	deltas := make([]CellDelta, len(rows))
	for i, r := range rows {
		deltas[i] = CellDelta{Cell: r, Delta: 1}
	}
	return s.ApplyBatch(deltas)
}

// At returns a cell's count (zero for unobserved cells).
func (s *Sparse) At(cell ...int) (int64, error) {
	if err := s.checkCell(cell); err != nil {
		return 0, err
	}
	return s.store.get(cell), nil
}

// EachCell visits every occupied cell. Iteration order is unspecified; the
// coordinate slice is reused between calls.
func (s *Sparse) EachCell(fn func(cell []int, count int64)) {
	s.store.each(make([]int, len(s.cards)), fn)
}

// Project sums the sparse table onto the kept attribute subset, returning a
// dense table over those axes (ascending position order) — the bridge from
// wide sparse data to the dense machinery of discovery.
func (s *Sparse) Project(keep VarSet) (*Table, error) {
	if keep.Empty() {
		return nil, fmt.Errorf("contingency: cannot project to the empty attribute set")
	}
	members := keep.Members()
	if members[len(members)-1] >= s.R() {
		return nil, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", keep, s.R())
	}
	names := make([]string, len(members))
	cards := make([]int, len(members))
	for i, p := range members {
		names[i] = s.names[p]
		cards[i] = s.cards[p]
	}
	dense, err := New(names, cards)
	if err != nil {
		return nil, err
	}
	sub := make([]int, len(members))
	var outer error
	s.store.each(make([]int, len(s.cards)), func(cell []int, c int64) {
		if outer != nil {
			return
		}
		for i, p := range members {
			sub[i] = cell[p]
		}
		outer = dense.Add(c, sub...)
	})
	if outer != nil {
		return nil, outer
	}
	return dense, nil
}

// ProjectCached is Project served from (and populating) the per-family
// dense-projection cache when the family is small enough to cache; wider
// families fall back to a fresh projection. The returned table is the live
// cache entry and MUST be treated as read-only by the caller. It stays
// current across streaming mutation for free: Observe/Add/ApplyBatch
// maintain every cached projection in place, so repeated callers — the
// pairwise association screen above all — pay O(1) per call instead of an
// O(occupied) re-projection after every ingested batch.
func (s *Sparse) ProjectCached(keep VarSet) (*Table, error) {
	if keep.Empty() {
		return nil, fmt.Errorf("contingency: cannot project to the empty attribute set")
	}
	members := keep.Members()
	if members[len(members)-1] >= s.R() {
		return nil, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", keep, s.R())
	}
	if t := s.projection(keep, members); t != nil {
		return t, nil
	}
	return s.Project(keep)
}

// ToDense materializes the full dense table; it fails when the joint space
// exceeds the dense limit.
func (s *Sparse) ToDense() (*Table, error) {
	dense, err := New(s.names, s.cards)
	if err != nil {
		return nil, err
	}
	var outer error
	s.store.each(make([]int, len(s.cards)), func(cell []int, c int64) {
		if outer != nil {
			return
		}
		outer = dense.Add(c, cell...)
	})
	if outer != nil {
		return nil, outer
	}
	return dense, nil
}

// Clone returns a deep copy of the table's counts. The projection cache
// does not travel: the copy starts cold and rebuilds its cached
// projections on first use — so cloning is cheap in proportion to the
// occupied cells, and a clone taken for speculative mutation never
// aliases the original's cached tables.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{
		names:      append([]string(nil), s.names...),
		cards:      append([]int(nil), s.cards...),
		fields:     append([]keyField(nil), s.fields...),
		keyWords:   s.keyWords,
		store:      s.store.clone(),
		total:      s.total,
		subScratch: make([]int, len(s.cards)),
		projCache:  memo.New(s.projCache.Capacity()),
	}
}

// FromDense converts a dense table to sparse form.
func FromDense(t *Table) (*Sparse, error) {
	s, err := NewSparse(t.Names(), t.Cards())
	if err != nil {
		return nil, err
	}
	var outer error
	t.EachCell(func(cell []int, count int64) {
		if outer != nil || count == 0 {
			return
		}
		outer = s.Add(count, cell...)
	})
	if outer != nil {
		return nil, outer
	}
	return s, nil
}

// MarginalCount returns the marginal count of a partial assignment. Small
// families are served from the per-family dense-projection cache — one
// O(occupied) projection on first use, O(1) per query afterwards, which is
// what makes the discovery scan's repeated marginal lookups affordable on
// wide tables. Families whose dense projection would exceed
// maxCachedProjCells fall back to scanning the occupied cells.
func (s *Sparse) MarginalCount(vars VarSet, values []int) (int64, error) {
	members := vars.Members()
	if len(members) != len(values) {
		return 0, fmt.Errorf("contingency: %d values for attribute set %v", len(values), vars)
	}
	if len(members) == 0 {
		return s.total, nil
	}
	if members[len(members)-1] >= s.R() {
		return 0, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", vars, s.R())
	}
	for i, p := range members {
		if values[i] < 0 || values[i] >= s.cards[p] {
			return 0, fmt.Errorf("contingency: value %d for axis %d out of range", values[i], p)
		}
	}
	if proj := s.projection(vars, members); proj != nil {
		return proj.At(values...)
	}
	return s.marginalCountScan(members, values), nil
}

// marginalCountScan is the uncached marginal: one pass over the occupied
// cells. Retained as the fallback for families too wide to cache and as the
// reference path in tests and benchmarks.
func (s *Sparse) marginalCountScan(members, values []int) int64 {
	var sum int64
	s.store.each(make([]int, len(s.cards)), func(cell []int, c int64) {
		for i, p := range members {
			if cell[p] != values[i] {
				return
			}
		}
		sum += c
	})
	return sum
}

// projection returns the cached dense projection over vars, building and
// memoizing it on first use; nil when the family is too wide to cache.
// Safe for concurrent use among readers; racing builders each compute the
// same table and the first publication wins.
func (s *Sparse) projection(vars VarSet, members []int) *Table {
	size := 1
	for _, p := range members {
		size *= s.cards[p]
		if size > maxCachedProjCells {
			return nil
		}
	}
	var keyArr [48]byte
	key := vars.AppendKey(keyArr[:0])
	if v, ok := s.projCache.Get(key, 0); ok {
		return v.(*projEntry).t
	}
	t, err := s.Project(vars)
	if err != nil {
		// Unreachable after the validations above; fall back to scanning.
		return nil
	}
	return s.publishProjection(vars, t)
}

// publishProjection installs a projection unless a racing builder got there
// first: the double-checked lock keeps one live table per family, which
// in-place maintenance depends on. Returns the table that won.
func (s *Sparse) publishProjection(vars VarSet, t *Table) *Table {
	var keyArr [48]byte
	key := vars.AppendKey(keyArr[:0])
	s.projMu.Lock()
	defer s.projMu.Unlock()
	if v, ok := s.projCache.Get(key, 0); ok {
		return v.(*projEntry).t
	}
	e := &projEntry{vs: vars, members: vars.Members(), t: t}
	cost := int64(8*len(t.counts)+8*len(e.members)) + projEntryOverhead
	s.projCache.Put(key, 0, e, cost)
	return t
}

// projectionEntries snapshots the cached projections in ascending family
// order — the canonical enumeration the snapshot codec and the verifier
// walk.
func (s *Sparse) projectionEntries() []*projEntry {
	var out []*projEntry
	s.projCache.Each(func(_ string, v any) bool {
		out = append(out, v.(*projEntry))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].vs.Less(out[j].vs) })
	return out
}

// SetProjectionCacheBytes bounds the projection cache: n > 0 caps its
// resident bytes (LRU eviction under pressure — an evicted family is not an
// error, its next marginal query re-projects from the live counts), n <= 0
// removes the bound (the pre-knob behavior). Resizing starts the cache
// cold. Call it before sharing the table across goroutines, like mutation.
//
// Caveat for ProjectCached callers holding a returned table across
// mutation: that contract only holds while the family stays cached —
// eviction plus re-projection yields a new table, and the retained pointer
// stops being maintained. Retain tables only with the cache unbounded.
func (s *Sparse) SetProjectionCacheBytes(n int64) {
	if n == 0 {
		n = -1
	}
	s.projMu.Lock()
	s.projCache = memo.New(n)
	s.projMu.Unlock()
}

// ProjectionCacheEvictions reports how many cached projections capacity
// pressure has retired — observability for sizing the cache bound.
func (s *Sparse) ProjectionCacheEvictions() int64 {
	return s.projCache.Stats().Evictions
}

// EachCellSorted visits every occupied cell in ascending packed-key order —
// a deterministic enumeration (map iteration is not) for consumers whose
// floating-point accumulations must reproduce run to run. Multi-word keys
// order as multi-word integers, so single-word schemas keep the exact
// pre-refactor order.
func (s *Sparse) EachCellSorted(fn func(cell []int, count int64)) {
	s.store.eachSorted(make([]int, len(s.cards)), fn)
}

// CheckConsistency verifies the cheap bookkeeping invariants: the cached
// total equals the cell sum and no occupied cell holds a non-positive
// count. It is O(occupied) and safe to run before every discovery pass;
// VerifyProjections adds the (more expensive) cache bit-identity check.
func (s *Sparse) CheckConsistency() error {
	var sum int64
	var bad error
	s.store.each(make([]int, len(s.cards)), func(cell []int, c int64) {
		if c <= 0 && bad == nil {
			bad = fmt.Errorf("contingency: sparse cell %v holds non-positive count %d", cell, c)
		}
		sum += c
	})
	if bad != nil {
		return bad
	}
	if sum != s.total {
		return fmt.Errorf("contingency: cached total %d != cell sum %d", s.total, sum)
	}
	return nil
}

// VerifyProjections checks the streaming-ingest invariant: every cached
// marginal projection — maintained in place by the mutation paths — must be
// bit-identical to a projection rebuilt from the occupied cells. It costs
// O(cached families × occupied); tests and debugging call it, hot paths
// call CheckConsistency.
func (s *Sparse) VerifyProjections() error {
	for _, e := range s.projectionEntries() {
		rebuilt, err := s.Project(e.vs)
		if err != nil {
			return fmt.Errorf("contingency: rebuilding projection %v: %w", e.vs, err)
		}
		if !e.t.Equal(rebuilt) {
			return fmt.Errorf("contingency: cached projection %v diverged from rebuilt counts", e.vs)
		}
	}
	return nil
}

// CachedProjections reports how many per-family dense projections are
// currently cached — observability for the streaming-ingest invariant that
// mutation maintains caches instead of dropping them.
func (s *Sparse) CachedProjections() int {
	return int(s.projCache.Stats().Entries)
}

// ---------------------------------------------------------------------------
// Cell stores: one generic hash-of-cells implementation instantiated per
// key width. The codec is a value type so key operations compile to direct
// calls; the store interface is what Sparse dispatches through.

// keyCodec packs validated cells to comparable keys and back.
type keyCodec[K comparable] interface {
	pack(cell []int) K
	unpack(k K, cell []int)
	less(a, b K) bool
}

// key64 is the original single-word fast path.
type key64 struct{ fields []keyField }

func (c key64) pack(cell []int) uint64 {
	var k uint64
	for i, f := range c.fields {
		k |= uint64(cell[i]) << f.shift
	}
	return k
}

func (c key64) unpack(k uint64, cell []int) {
	for i, f := range c.fields {
		cell[i] = int((k >> f.shift) & f.mask)
	}
}

func (key64) less(a, b uint64) bool { return a < b }

// key128 covers schemas needing two words ([2]uint64 keys hash inline —
// no allocation per cell).
type key128 struct{ fields []keyField }

func (c key128) pack(cell []int) (k [2]uint64) {
	for i, f := range c.fields {
		k[f.word] |= uint64(cell[i]) << f.shift
	}
	return k
}

func (c key128) unpack(k [2]uint64, cell []int) {
	for i, f := range c.fields {
		cell[i] = int((k[f.word] >> f.shift) & f.mask)
	}
}

func (key128) less(a, b [2]uint64) bool {
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[0] < b[0]
}

// keyWide packs any number of words into a string key. Words serialize
// most-significant first in big-endian byte order, so the string's
// lexicographic order is the keys' numeric order and sorted enumeration
// needs no decoding.
type keyWide struct {
	fields []keyField
	nwords int
}

func (c keyWide) pack(cell []int) string {
	buf := make([]byte, 8*c.nwords)
	for i, f := range c.fields {
		off := (c.nwords - 1 - f.word) * 8
		v := uint64(cell[i]) << f.shift
		binary.BigEndian.PutUint64(buf[off:], binary.BigEndian.Uint64(buf[off:])|v)
	}
	return string(buf)
}

func (c keyWide) unpack(k string, cell []int) {
	for i, f := range c.fields {
		off := (c.nwords - 1 - f.word) * 8
		w := binary.BigEndian.Uint64([]byte(k[off : off+8]))
		cell[i] = int((w >> f.shift) & f.mask)
	}
}

func (keyWide) less(a, b string) bool { return a < b }

// cellStore is the width-erased view Sparse drives; every method takes
// pre-validated cells.
type cellStore interface {
	occupied() int
	get(cell []int) int64
	// add applies a delta to a cell, deleting it at zero. The caller has
	// checked the result stays non-negative.
	add(cell []int, delta int64)
	each(scratch []int, fn func(cell []int, count int64))
	eachSorted(scratch []int, fn func(cell []int, count int64))
	clone() cellStore
	applyBatch(s *Sparse, deltas []CellDelta) error
}

// cellMap is the generic hash-of-cells store.
type cellMap[K comparable, C keyCodec[K]] struct {
	codec C
	m     map[K]int64
}

func (c *cellMap[K, C]) occupied() int { return len(c.m) }

func (c *cellMap[K, C]) get(cell []int) int64 { return c.m[c.codec.pack(cell)] }

func (c *cellMap[K, C]) add(cell []int, delta int64) {
	k := c.codec.pack(cell)
	if nv := c.m[k] + delta; nv == 0 {
		delete(c.m, k)
	} else {
		c.m[k] = nv
	}
}

func (c *cellMap[K, C]) each(scratch []int, fn func(cell []int, count int64)) {
	for k, v := range c.m {
		c.codec.unpack(k, scratch)
		fn(scratch, v)
	}
}

func (c *cellMap[K, C]) eachSorted(scratch []int, fn func(cell []int, count int64)) {
	keys := make([]K, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return c.codec.less(keys[i], keys[j]) })
	for _, k := range keys {
		c.codec.unpack(k, scratch)
		fn(scratch, c.m[k])
	}
}

func (c *cellMap[K, C]) clone() cellStore {
	cp := &cellMap[K, C]{codec: c.codec, m: make(map[K]int64, len(c.m))}
	for k, v := range c.m {
		cp.m[k] = v
	}
	return cp
}

// applyBatch is ApplyBatch's width-specific core: validate and aggregate
// per packed key, reject if any aggregate would drive a cell negative,
// then commit in first-seen batch order, folding each distinct cell's
// delta into the cached projections.
func (c *cellMap[K, C]) applyBatch(s *Sparse, deltas []CellDelta) error {
	agg := make(map[K]int64, len(deltas))
	order := make([]K, 0, len(deltas))
	for i, d := range deltas {
		if err := s.checkCell(d.Cell); err != nil {
			return fmt.Errorf("contingency: batch delta %d: %w", i, err)
		}
		k := c.codec.pack(d.Cell)
		if _, seen := agg[k]; !seen {
			order = append(order, k)
		}
		agg[k] += d.Delta
	}
	cell := make([]int, len(s.cards))
	for _, k := range order {
		if nv := c.m[k] + agg[k]; nv < 0 {
			c.codec.unpack(k, cell)
			return fmt.Errorf("contingency: batch would drive cell %v negative (%d%+d)",
				cell, c.m[k], agg[k])
		}
	}
	for _, k := range order {
		d := agg[k]
		if d == 0 {
			continue
		}
		if nv := c.m[k] + d; nv == 0 {
			delete(c.m, k)
		} else {
			c.m[k] = nv
		}
		s.total += d
		c.codec.unpack(k, cell)
		s.applyToProjections(cell, d)
	}
	return nil
}
