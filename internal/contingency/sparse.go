package contingency

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Sparse is a contingency table held as a hash of occupied cells — the
// representation for wide schemas whose dense joint space would not fit in
// memory (the memo's "masses of data" over many attributes). Observed data
// occupies at most N distinct cells regardless of the joint-space size.
//
// Discovery itself solves over dense projected spaces; the sparse table's
// job is tabulation and projection: Project extracts the dense marginal
// table over any small attribute subset.
type Sparse struct {
	names []string
	cards []int
	// shift/mask pack each coordinate into a fixed bit field of the key.
	shifts []uint
	masks  []uint64
	cells  map[uint64]int64
	total  int64

	// projMu guards projs, the per-family dense-projection cache behind
	// MarginalCount: the first marginal query over an attribute family
	// projects the occupied cells onto that family once (O(occupied)),
	// and every later query over the same family is a dense O(1) lookup.
	// Mutation (Observe/Add/ApplyBatch/ObserveBatch) maintains every cached
	// projection in place — O(families) per changed cell instead of an
	// O(occupied) re-projection per family on the next read — so the cache
	// survives streaming ingest.
	// Concurrency contract: mutation must not overlap any other call — it
	// writes cached tables without locking — while read-only use,
	// MarginalCount included, is safe from any number of goroutines.
	projMu sync.RWMutex
	projs  map[VarSet]*Table
}

// maxCachedProjCells bounds the dense size of a cached projection; marginal
// queries over families wider than this fall back to scanning the occupied
// cells instead of materializing a large dense table per family.
const maxCachedProjCells = 1 << 16

// NewSparse creates an empty sparse table. The packed cell key must fit in
// 64 bits: Σ ceil(log2(card)) <= 64 over all attributes (so e.g. 64 binary
// attributes or 16 attributes of 16 values are the widest uniform schemas).
func NewSparse(names []string, cards []int) (*Sparse, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("contingency: sparse table needs at least one attribute")
	}
	if names != nil && len(names) != len(cards) {
		return nil, fmt.Errorf("contingency: %d names for %d attributes", len(names), len(cards))
	}
	s := &Sparse{
		cards:  append([]int(nil), cards...),
		shifts: make([]uint, len(cards)),
		masks:  make([]uint64, len(cards)),
		cells:  make(map[uint64]int64),
	}
	var width uint
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("contingency: attribute %d has cardinality %d", i, c)
		}
		b := uint(bits.Len64(uint64(c - 1)))
		if b == 0 {
			b = 1
		}
		s.shifts[i] = width
		s.masks[i] = (1 << b) - 1
		width += b
	}
	if width > 64 {
		return nil, fmt.Errorf(
			"contingency: schema needs %d packed key bits (Σ ceil(log2(card)) over %d attributes), limit is 64; reduce attribute count or cardinalities",
			width, len(cards))
	}
	if names == nil {
		s.names = make([]string, len(cards))
		for i := range s.names {
			s.names[i] = fmt.Sprintf("v%d", i)
		}
	} else {
		s.names = append([]string(nil), names...)
	}
	return s, nil
}

// R returns the number of attributes.
func (s *Sparse) R() int { return len(s.cards) }

// Card returns the cardinality of axis i.
func (s *Sparse) Card(i int) int { return s.cards[i] }

// Cards returns a copy of all axis cardinalities.
func (s *Sparse) Cards() []int { return append([]int(nil), s.cards...) }

// Names returns a copy of the axis labels.
func (s *Sparse) Names() []string { return append([]string(nil), s.names...) }

// Total returns N.
func (s *Sparse) Total() int64 { return s.total }

// Occupied returns the number of distinct non-zero cells.
func (s *Sparse) Occupied() int { return len(s.cells) }

// key packs a cell into its hash key, validating coordinates.
func (s *Sparse) key(cell []int) (uint64, error) {
	if len(cell) != len(s.cards) {
		return 0, fmt.Errorf("contingency: cell has %d coordinates, table has %d axes",
			len(cell), len(s.cards))
	}
	var k uint64
	for i, v := range cell {
		if v < 0 || v >= s.cards[i] {
			return 0, fmt.Errorf("contingency: coordinate %d = %d out of range [0,%d)",
				i, v, s.cards[i])
		}
		k |= uint64(v) << s.shifts[i]
	}
	return k, nil
}

// unkey unpacks a key into cell.
func (s *Sparse) unkey(k uint64, cell []int) {
	for i := range s.cards {
		cell[i] = int((k >> s.shifts[i]) & s.masks[i])
	}
}

// Observe records one sample.
func (s *Sparse) Observe(cell ...int) error { return s.Add(1, cell...) }

// Add increments a cell by delta, deleting it when it reaches zero. Cached
// marginal projections are updated in place, not dropped; a zero delta is a
// pure validation (it never touches cells or caches). Mutation must not
// overlap other calls (see the concurrency contract on Sparse).
func (s *Sparse) Add(delta int64, cell ...int) error {
	k, err := s.key(cell)
	if err != nil {
		return err
	}
	if delta == 0 {
		return nil
	}
	nv := s.cells[k] + delta
	if nv < 0 {
		return fmt.Errorf("contingency: cell %v would go negative", cell)
	}
	if nv == 0 {
		delete(s.cells, k)
	} else {
		s.cells[k] = nv
	}
	s.total += delta
	s.applyToProjections(cell, delta)
	return nil
}

// applyToProjections folds one cell delta into every cached projection. The
// coordinates must already be validated; projection coordinates are a subset
// of the cell's, so the dense adds cannot fail — if one somehow does, the
// stale table is dropped rather than left wrong.
func (s *Sparse) applyToProjections(cell []int, delta int64) {
	if len(s.projs) == 0 {
		return
	}
	var sub [MaxVars]int
	for vs, t := range s.projs {
		members := vs.Members()
		for i, p := range members {
			sub[i] = cell[p]
		}
		if err := t.Add(delta, sub[:len(members)]...); err != nil {
			delete(s.projs, vs)
		}
	}
}

// CellDelta is one batched sparse-table mutation: a full-width cell and a
// signed count delta.
type CellDelta struct {
	Cell  []int
	Delta int64
}

// ApplyBatch applies a group of cell deltas as one mutation. The whole batch
// is validated before anything is written — bad coordinates or a cell count
// that would go negative reject the batch with the table untouched — and
// cached marginal projections are updated in place, one O(families) pass per
// distinct changed cell instead of an O(occupied) re-projection per family
// on the next read. Updated caches are bit-identical to rebuilt ones
// (CheckConsistency verifies this invariant).
func (s *Sparse) ApplyBatch(deltas []CellDelta) error {
	if len(deltas) == 0 {
		return nil
	}
	// Validate every cell and aggregate per packed key, so duplicate cells
	// in one batch are checked against their combined delta.
	agg := make(map[uint64]int64, len(deltas))
	order := make([]uint64, 0, len(deltas))
	for i, d := range deltas {
		k, err := s.key(d.Cell)
		if err != nil {
			return fmt.Errorf("contingency: batch delta %d: %w", i, err)
		}
		if _, seen := agg[k]; !seen {
			order = append(order, k)
		}
		agg[k] += d.Delta
	}
	for _, k := range order {
		if nv := s.cells[k] + agg[k]; nv < 0 {
			cell := make([]int, len(s.cards))
			s.unkey(k, cell)
			return fmt.Errorf("contingency: batch would drive cell %v negative (%d%+d)",
				cell, s.cells[k], agg[k])
		}
	}
	// Commit. Deltas are folded into the caches per distinct cell in batch
	// order, so the update is deterministic and exact (integer adds).
	cell := make([]int, len(s.cards))
	for _, k := range order {
		d := agg[k]
		if d == 0 {
			continue
		}
		nv := s.cells[k] + d
		if nv == 0 {
			delete(s.cells, k)
		} else {
			s.cells[k] = nv
		}
		s.total += d
		s.unkey(k, cell)
		s.applyToProjections(cell, d)
	}
	return nil
}

// ObserveBatch records one sample per row, atomically: either every row is
// counted or (on a bad coordinate) none are. Cached projections are updated
// in place, making it the ingest step of the streaming/incremental-refit
// pipeline.
func (s *Sparse) ObserveBatch(rows [][]int) error {
	if len(rows) == 0 {
		return nil
	}
	deltas := make([]CellDelta, len(rows))
	for i, r := range rows {
		deltas[i] = CellDelta{Cell: r, Delta: 1}
	}
	return s.ApplyBatch(deltas)
}

// At returns a cell's count (zero for unobserved cells).
func (s *Sparse) At(cell ...int) (int64, error) {
	k, err := s.key(cell)
	if err != nil {
		return 0, err
	}
	return s.cells[k], nil
}

// EachCell visits every occupied cell. Iteration order is unspecified; the
// coordinate slice is reused between calls.
func (s *Sparse) EachCell(fn func(cell []int, count int64)) {
	cell := make([]int, len(s.cards))
	for k, c := range s.cells {
		s.unkey(k, cell)
		fn(cell, c)
	}
}

// Project sums the sparse table onto the kept attribute subset, returning a
// dense table over those axes (ascending position order) — the bridge from
// wide sparse data to the dense machinery of discovery.
func (s *Sparse) Project(keep VarSet) (*Table, error) {
	if keep.Empty() {
		return nil, fmt.Errorf("contingency: cannot project to the empty attribute set")
	}
	members := keep.Members()
	if members[len(members)-1] >= s.R() {
		return nil, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", keep, s.R())
	}
	names := make([]string, len(members))
	cards := make([]int, len(members))
	for i, p := range members {
		names[i] = s.names[p]
		cards[i] = s.cards[p]
	}
	dense, err := New(names, cards)
	if err != nil {
		return nil, err
	}
	sub := make([]int, len(members))
	cell := make([]int, len(s.cards))
	for k, c := range s.cells {
		s.unkey(k, cell)
		for i, p := range members {
			sub[i] = cell[p]
		}
		if err := dense.Add(c, sub...); err != nil {
			return nil, err
		}
	}
	return dense, nil
}

// ProjectCached is Project served from (and populating) the per-family
// dense-projection cache when the family is small enough to cache; wider
// families fall back to a fresh projection. The returned table is the live
// cache entry and MUST be treated as read-only by the caller. It stays
// current across streaming mutation for free: Observe/Add/ApplyBatch
// maintain every cached projection in place, so repeated callers — the
// pairwise association screen above all — pay O(1) per call instead of an
// O(occupied) re-projection after every ingested batch.
func (s *Sparse) ProjectCached(keep VarSet) (*Table, error) {
	if keep.Empty() {
		return nil, fmt.Errorf("contingency: cannot project to the empty attribute set")
	}
	members := keep.Members()
	if members[len(members)-1] >= s.R() {
		return nil, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", keep, s.R())
	}
	if t := s.projection(keep, members); t != nil {
		return t, nil
	}
	return s.Project(keep)
}

// ToDense materializes the full dense table; it fails when the joint space
// exceeds the dense limit.
func (s *Sparse) ToDense() (*Table, error) {
	dense, err := New(s.names, s.cards)
	if err != nil {
		return nil, err
	}
	cell := make([]int, len(s.cards))
	for k, c := range s.cells {
		s.unkey(k, cell)
		if err := dense.Add(c, cell...); err != nil {
			return nil, err
		}
	}
	return dense, nil
}

// Clone returns a deep copy of the table's counts. The projection cache
// does not travel: the copy starts cold and rebuilds its cached
// projections on first use — so cloning is cheap in proportion to the
// occupied cells, and a clone taken for speculative mutation never
// aliases the original's cached tables.
func (s *Sparse) Clone() *Sparse {
	cp := &Sparse{
		names:  append([]string(nil), s.names...),
		cards:  append([]int(nil), s.cards...),
		shifts: append([]uint(nil), s.shifts...),
		masks:  append([]uint64(nil), s.masks...),
		cells:  make(map[uint64]int64, len(s.cells)),
		total:  s.total,
	}
	for k, c := range s.cells {
		cp.cells[k] = c
	}
	return cp
}

// FromDense converts a dense table to sparse form.
func FromDense(t *Table) (*Sparse, error) {
	s, err := NewSparse(t.Names(), t.Cards())
	if err != nil {
		return nil, err
	}
	var outer error
	t.EachCell(func(cell []int, count int64) {
		if outer != nil || count == 0 {
			return
		}
		outer = s.Add(count, cell...)
	})
	if outer != nil {
		return nil, outer
	}
	return s, nil
}

// MarginalCount returns the marginal count of a partial assignment. Small
// families are served from the per-family dense-projection cache — one
// O(occupied) projection on first use, O(1) per query afterwards, which is
// what makes the discovery scan's repeated marginal lookups affordable on
// wide tables. Families whose dense projection would exceed
// maxCachedProjCells fall back to scanning the occupied cells.
func (s *Sparse) MarginalCount(vars VarSet, values []int) (int64, error) {
	members := vars.Members()
	if len(members) != len(values) {
		return 0, fmt.Errorf("contingency: %d values for attribute set %v", len(values), vars)
	}
	if len(members) == 0 {
		return s.total, nil
	}
	if members[len(members)-1] >= s.R() {
		return 0, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", vars, s.R())
	}
	for i, p := range members {
		if values[i] < 0 || values[i] >= s.cards[p] {
			return 0, fmt.Errorf("contingency: value %d for axis %d out of range", values[i], p)
		}
	}
	if proj := s.projection(vars, members); proj != nil {
		return proj.At(values...)
	}
	return s.marginalCountScan(members, values), nil
}

// marginalCountScan is the uncached marginal: one pass over the occupied
// cells. Retained as the fallback for families too wide to cache and as the
// reference path in tests and benchmarks.
func (s *Sparse) marginalCountScan(members, values []int) int64 {
	var sum int64
	cell := make([]int, len(s.cards))
	for k, c := range s.cells {
		s.unkey(k, cell)
		match := true
		for i, p := range members {
			if cell[p] != values[i] {
				match = false
				break
			}
		}
		if match {
			sum += c
		}
	}
	return sum
}

// projection returns the cached dense projection over vars, building and
// memoizing it on first use; nil when the family is too wide to cache.
// Safe for concurrent use among readers; racing builders each compute the
// same table and the first publication wins.
func (s *Sparse) projection(vars VarSet, members []int) *Table {
	size := 1
	for _, p := range members {
		size *= s.cards[p]
		if size > maxCachedProjCells {
			return nil
		}
	}
	s.projMu.RLock()
	t := s.projs[vars]
	s.projMu.RUnlock()
	if t != nil {
		return t
	}
	t, err := s.Project(vars)
	if err != nil {
		// Unreachable after the validations above; fall back to scanning.
		return nil
	}
	s.projMu.Lock()
	if prev, ok := s.projs[vars]; ok {
		t = prev
	} else {
		if s.projs == nil {
			s.projs = make(map[VarSet]*Table)
		}
		s.projs[vars] = t
	}
	s.projMu.Unlock()
	return t
}

// EachCellSorted visits every occupied cell in ascending packed-key order —
// a deterministic enumeration (map iteration is not) for consumers whose
// floating-point accumulations must reproduce run to run.
func (s *Sparse) EachCellSorted(fn func(cell []int, count int64)) {
	keys := make([]uint64, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cell := make([]int, len(s.cards))
	for _, k := range keys {
		s.unkey(k, cell)
		fn(cell, s.cells[k])
	}
}

// CheckConsistency verifies the cheap bookkeeping invariants: the cached
// total equals the cell sum and no occupied cell holds a non-positive
// count. It is O(occupied) and safe to run before every discovery pass;
// VerifyProjections adds the (more expensive) cache bit-identity check.
func (s *Sparse) CheckConsistency() error {
	var sum int64
	for k, c := range s.cells {
		if c <= 0 {
			return fmt.Errorf("contingency: sparse cell %d holds non-positive count %d", k, c)
		}
		sum += c
	}
	if sum != s.total {
		return fmt.Errorf("contingency: cached total %d != cell sum %d", s.total, sum)
	}
	return nil
}

// VerifyProjections checks the streaming-ingest invariant: every cached
// marginal projection — maintained in place by the mutation paths — must be
// bit-identical to a projection rebuilt from the occupied cells. It costs
// O(cached families × occupied); tests and debugging call it, hot paths
// call CheckConsistency.
func (s *Sparse) VerifyProjections() error {
	s.projMu.RLock()
	defer s.projMu.RUnlock()
	for vs, cached := range s.projs {
		rebuilt, err := s.Project(vs)
		if err != nil {
			return fmt.Errorf("contingency: rebuilding projection %v: %w", vs, err)
		}
		if !cached.Equal(rebuilt) {
			return fmt.Errorf("contingency: cached projection %v diverged from rebuilt counts", vs)
		}
	}
	return nil
}

// CachedProjections reports how many per-family dense projections are
// currently cached — observability for the streaming-ingest invariant that
// mutation maintains caches instead of dropping them.
func (s *Sparse) CachedProjections() int {
	s.projMu.RLock()
	defer s.projMu.RUnlock()
	return len(s.projs)
}
